"""The epoch monitor: threshold-network testing plus alarm hysteresis.

Per epoch, the whole network executes one Theorem 1.2 trial (every node
fresh-samples and votes; the alarm count is compared to ``T``).  A single
epoch's verdict errs with probability up to 1/3; the monitor therefore
raises an **incident** only after ``raise_after`` consecutive alarming
epochs and clears it after ``clear_after`` consecutive quiet ones.  Since
epoch verdicts are independent given the stream, the false-incident rate
per healthy epoch is at most ``(1/3)^{raise_after}`` and the
missed-detection rate during a sustained deviation is at most
``(1/3)^{clear_after}`` — the standard hysteresis trade-off, measurable
with :meth:`UniformityMonitor.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.monitoring.stream import EpochStream
from repro.rng import SeedLike, derive, ensure_rng, spawn
from repro.zeroround.threshold_tester import ThresholdNetworkTester


@dataclass(frozen=True)
class Incident:
    """A raised-and-cleared (or still-open) deviation incident.

    ``raised_at`` is the epoch the incident opened (the last of the
    ``raise_after`` consecutive alarms); ``cleared_at`` is the epoch it
    closed, or ``None`` if still open at the end of the run.
    """

    raised_at: int
    cleared_at: Optional[int]

    def duration(self, total_epochs: int) -> int:
        """Epochs the incident was open (clamped to the run length)."""
        end = self.cleared_at if self.cleared_at is not None else total_epochs
        return end - self.raised_at


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's observation."""

    epoch: int
    alarms: int
    alarming: bool
    incident_open: bool


@dataclass(frozen=True)
class MonitorReport:
    """Full history of one monitoring run."""

    records: Tuple[EpochRecord, ...]
    incidents: Tuple[Incident, ...]

    @property
    def epochs(self) -> int:
        return len(self.records)

    def incident_open_at(self, epoch: int) -> bool:
        """Whether an incident was open during *epoch*."""
        if not 0 <= epoch < len(self.records):
            raise ParameterError(
                f"epoch must be in [0, {len(self.records)}), got {epoch}"
            )
        return self.records[epoch].incident_open

    def epochs_in_incident(self) -> int:
        """Total epochs spent inside incidents."""
        return sum(1 for r in self.records if r.incident_open)


@dataclass(frozen=True)
class UniformityMonitor:
    """Continuous uniformity monitoring with hysteresis.

    Parameters
    ----------
    tester:
        The solved Theorem 1.2 network tester run once per epoch.
    raise_after:
        Consecutive alarming epochs before an incident opens (≥ 1).
    clear_after:
        Consecutive quiet epochs before an open incident closes (≥ 1).
    """

    tester: ThresholdNetworkTester
    raise_after: int = 2
    clear_after: int = 2

    def __post_init__(self) -> None:
        if self.raise_after < 1:
            raise ParameterError(f"raise_after must be >= 1, got {self.raise_after}")
        if self.clear_after < 1:
            raise ParameterError(f"clear_after must be >= 1, got {self.clear_after}")

    def run(
        self,
        stream: EpochStream,
        epochs: int,
        rng: SeedLike = None,
    ) -> MonitorReport:
        """Monitor *stream* for *epochs* epochs; return the full history.

        Each epoch draws from its own stream keyed by ``(rng, epoch)``, so
        ``run(stream, N)`` records are a bit-identical prefix of
        ``run(stream, 2 * N)`` under the same seed: extending a run never
        rewrites its history.
        """
        if epochs < 1:
            raise ParameterError(f"epochs must be >= 1, got {epochs}")
        if rng is None or isinstance(rng, (int, np.integer)):
            # Stable per-epoch key: independent of how many epochs run.
            # ``None`` still means fresh entropy — but drawn once, so the
            # run is internally prefix-stable all the same.
            base = (
                int(np.random.SeedSequence().generate_state(1)[0])
                if rng is None
                else int(rng)
            )

            def epoch_rng(epoch: int) -> np.random.Generator:
                return derive(base, "monitor", epoch)

        else:
            # Generator / SeedSequence parent: sequential spawns are also
            # prefix-stable (spawn advances only the parent's spawn counter).
            gen = ensure_rng(rng)

            def epoch_rng(epoch: int) -> np.random.Generator:
                return spawn(gen, 1)[0]

        threshold = self.tester.params.threshold
        records: List[EpochRecord] = []
        incidents: List[Incident] = []
        consecutive_alarms = 0
        consecutive_quiet = 0
        open_incident: Optional[int] = None

        for epoch in range(epochs):
            distribution = stream.distribution_at(epoch)
            alarms = self.tester.rejection_count(distribution, epoch_rng(epoch))
            alarming = alarms >= threshold
            if alarming:
                consecutive_alarms += 1
                consecutive_quiet = 0
            else:
                consecutive_quiet += 1
                consecutive_alarms = 0
            if open_incident is None and consecutive_alarms >= self.raise_after:
                open_incident = epoch
            elif open_incident is not None and consecutive_quiet >= self.clear_after:
                incidents.append(Incident(raised_at=open_incident, cleared_at=epoch))
                open_incident = None
            records.append(
                EpochRecord(
                    epoch=epoch,
                    alarms=alarms,
                    alarming=alarming,
                    incident_open=open_incident is not None,
                )
            )
        if open_incident is not None:
            incidents.append(Incident(raised_at=open_incident, cleared_at=None))
        return MonitorReport(records=tuple(records), incidents=tuple(incidents))
