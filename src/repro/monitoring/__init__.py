"""Continuous monitoring on top of the 0-round testers.

The paper's motivating deployments (DoS watchdogs, sensor plants) are not
one-shot hypothesis tests: the network watches a *stream* of epochs, and
the operator cares about incidents — sustained deviations — rather than
single-epoch verdicts.  This package provides that production layer:

- :mod:`repro.monitoring.stream` — synthetic epoch streams: stationary,
  drifting, and attack-window scenarios over any base distribution.
- :mod:`repro.monitoring.monitor` — :class:`UniformityMonitor`, which
  runs the Theorem 1.2 threshold network every epoch and applies alarm
  hysteresis (raise after ``raise_after`` consecutive alarming epochs,
  clear after ``clear_after`` quiet ones), turning the tester's ≤ 1/3
  per-epoch error into an incident-level false-positive rate that decays
  geometrically in ``raise_after``.
"""

from repro.monitoring.monitor import Incident, MonitorReport, UniformityMonitor
from repro.monitoring.stream import (
    AttackWindowStream,
    DriftStream,
    EpochStream,
    StationaryStream,
)

__all__ = [
    "EpochStream",
    "StationaryStream",
    "DriftStream",
    "AttackWindowStream",
    "UniformityMonitor",
    "MonitorReport",
    "Incident",
]
