"""Synthetic epoch streams for monitoring experiments.

An :class:`EpochStream` yields one distribution per epoch — the "state of
the world" the network samples during that epoch.  The included streams
model the scenarios from the paper's introduction:

- :class:`StationaryStream` — a fixed distribution (healthy baseline, or
  a persistent fault).
- :class:`DriftStream` — linear interpolation from one distribution to
  another over a window (slow sensor drift).
- :class:`AttackWindowStream` — a baseline with a foreign distribution
  mixed in during ``[start, end)`` (a DoS burst).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError


@runtime_checkable
class EpochStream(Protocol):
    """Yields the underlying distribution for each epoch."""

    def distribution_at(self, epoch: int) -> DiscreteDistribution:
        """The distribution the environment follows during *epoch*."""
        ...


@dataclass(frozen=True)
class StationaryStream:
    """The same distribution every epoch."""

    distribution: DiscreteDistribution

    def distribution_at(self, epoch: int) -> DiscreteDistribution:
        if epoch < 0:
            raise ParameterError(f"epoch must be >= 0, got {epoch}")
        return self.distribution


@dataclass(frozen=True)
class DriftStream:
    """Linear drift from *start* to *end* over ``duration`` epochs.

    Epoch 0 is exactly *start*; epochs ≥ duration are exactly *end*.
    """

    start: DiscreteDistribution
    end: DiscreteDistribution
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ParameterError(f"duration must be >= 1, got {self.duration}")
        if self.start.n != self.end.n:
            raise ParameterError("start and end must share a domain")

    def distribution_at(self, epoch: int) -> DiscreteDistribution:
        if epoch < 0:
            raise ParameterError(f"epoch must be >= 0, got {epoch}")
        if epoch >= self.duration:
            return self.end
        weight = 1.0 - epoch / self.duration
        return self.start.mix(self.end, weight)


@dataclass(frozen=True)
class AttackWindowStream:
    """A baseline with an attack mixture active during ``[start, end)``.

    During the window the environment follows
    ``(1 − share)·baseline + share·attack``.
    """

    baseline: DiscreteDistribution
    attack: DiscreteDistribution
    share: float
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ParameterError(f"share must be in (0, 1], got {self.share}")
        if not 0 <= self.start < self.end:
            raise ParameterError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )
        if self.baseline.n != self.attack.n:
            raise ParameterError("baseline and attack must share a domain")

    def distribution_at(self, epoch: int) -> DiscreteDistribution:
        if epoch < 0:
            raise ParameterError(f"epoch must be >= 0, got {epoch}")
        if self.start <= epoch < self.end:
            return self.attack.mix(self.baseline, self.share)
        return self.baseline
