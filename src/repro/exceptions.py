"""Exception hierarchy for the ``repro`` library.

All exceptions raised by library code derive from :class:`ReproError`, so
callers can catch everything from this package with a single ``except``
clause.  Each subclass names a distinct failure domain:

- :class:`InvalidDistributionError` -- a probability vector is malformed
  (negative mass, does not sum to one, empty domain, ...).
- :class:`ParameterError` -- tester or protocol parameters are outside the
  regime in which the paper's guarantees (or our numeric solvers) apply.
- :class:`InfeasibleParametersError` -- a parameter *solver* proved that no
  setting satisfies the requested completeness/soundness constraints (for
  example, Eq. (5) of the paper admits no threshold ``T``).
- :class:`SimulationError` -- the synchronous network simulator detected a
  protocol bug (message to a non-neighbour, node stepping after halting).
- :class:`BandwidthExceededError` -- a CONGEST message exceeded the per-edge
  per-round bit budget.
- :class:`CodingError` -- error-correcting-code construction or encoding
  failed (e.g. message length does not match the code dimension).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidDistributionError(ReproError, ValueError):
    """A probability vector is malformed."""


class ParameterError(ReproError, ValueError):
    """Tester/protocol parameters are invalid or outside the valid regime."""


class InfeasibleParametersError(ParameterError):
    """No parameter setting satisfies the requested guarantees.

    Raised by numeric solvers (e.g. the threshold solver for Eq. (5)) when
    the constraint system is provably empty for the given ``n``, ``k``,
    ``eps`` and error budget.
    """


class SimulationError(ReproError, RuntimeError):
    """The network simulator detected an illegal protocol action."""


class BandwidthExceededError(SimulationError):
    """A message exceeded the CONGEST per-edge bandwidth limit."""


class CodingError(ReproError, ValueError):
    """Error-correcting-code construction or encoding failed."""
