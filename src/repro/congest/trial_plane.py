"""The vectorised CONGEST trial plane: layout replay + batched verdicts.

A Monte-Carlo error-rate sweep of the Theorem 1.4 tester runs the same
protocol thousands of times, varying only the sampled tokens.  But the
protocol's *control flow* never looks at a token's value: the tree is a
pure function of the topology (max-ID flooding under deterministic
delivery), the ``c(v)`` counts are pure functions of the tree and ``τ``,
and the TOKENS phase forwards "the first ``c(v)`` tokens held" — a rule
about buffer *positions*, not values.  Hence **which node's j-th sample
lands in which package** — the *packaging layout* — is fixed across
trials, and a trial's verdict reduces to

1. gather each package's sample values (a numpy fancy-index),
2. flag packages containing a repeat (one sort+diff pass —
   :func:`repro.zeroround.network.grouped_collision_flags`),
3. compare the alarm count against the Theorem 1.2 threshold for the
   realised package count ``ℓ`` (a constant).

Three layout sources — division of labour:

- :class:`PackagingLayout` — computed directly from the cached
  :class:`~repro.simulator.graph.TreeSchedule` by simulating the TOKENS
  phase on slot IDs (``O(k·τ)`` once per topology, no engine).
  :meth:`PackagingLayout.verify_layout` cross-checks it against a real
  cold engine run.  Valid for the fault-free plain tester, warm or cold.
- :class:`RealisedLayout` — **pack-then-replay** for the hardened tester
  under a fixed :class:`~repro.simulator.faults.FaultPlan`: the plan's
  drop/delay/crash decisions are pure hashes of ``(seed, edge, round,
  index)``, never of payloads, so the faulty run's realised layout *and*
  the set of subtree votes the root counts are identical across sample
  redraws.  One instrumented engine run extracts them; every further
  trial is a numpy pass.
- :class:`~repro.congest.fault_plane.HardenedFaultPlane` — batched
  replay for **per-trial-keyed** plans (one distinct
  :class:`~repro.simulator.faults.FaultPlan` per trial, as in the E14
  robustness sweep), where every trial realises a different layout and
  pack-then-replay would need one engine run each.  It re-derives the
  layouts themselves — flooding, retries, token transfer, give-ups — as
  array ops over the whole plan batch, no engine runs at all.

Bit-identity contract: the batched kernels consume the trial engine's
chunk-keyed streams exactly like the scalar engine experiments (one
``sample_matrix(k, s)``-worth of draws per trial, numpy streams being
prefix-stable under call splitting), under the same trial labels — so
fast-path and engine trial ``t`` see the *same sample values* and must
produce the same verdict.  ``engine_check`` re-runs a prefix of the
trials through the real engine and raises on any disagreement.  The
engine remains the measurement of record for rounds, bandwidth and
fault counters; the trial plane only accelerates verdict statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.congest.hardened import (
    HardenedCongestTester,
    HardenedRunResult,
    _HardenedTrialExperiment,
)
from repro.congest.tester import (
    CongestUniformityTester,
    _CongestTrialExperiment,
)
from repro.congest.token_packaging import TokenPackagingProgram
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import (
    InfeasibleParametersError,
    ParameterError,
    SimulationError,
)
from repro.experiments.runner import TrialRunner
from repro.rng import ensure_rng
from repro.simulator.engine import SynchronousEngine
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology, TreeSchedule
from repro.simulator.message import bits_for_int
from repro.zeroround.network import auto_batch, grouped_collision_flags


# ---------------------------------------------------------------------------
# Fault-free layout, straight from the tree schedule
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class LayoutCheck:
    """Result of :meth:`PackagingLayout.verify_layout`."""

    equivalent: bool
    mismatched_nodes: Tuple[int, ...] = ()


@dataclass(frozen=True, eq=False)
class PackagingLayout:
    """Which token slot lands in which package, for a fault-free run.

    Token *slots* are flat indices into the ``(k, s)`` sample matrix:
    node ``v``'s ``j``-th sample is slot ``v·s + j``.  ``members[p]``
    lists the ``τ`` slots of package ``p`` in buffer order,
    ``package_owner[p]`` is the node holding it, and ``dropped`` are the
    slots the root discarded (at most ``τ − 1``, per Definition 2).

    Built once per ``(topology, τ, s)`` by :meth:`from_schedule` and
    cached on the tree schedule; :meth:`verify_layout` cross-checks the
    simulation against an actual cold engine run.
    """

    k: int
    tau: int
    tokens_per_node: int
    members: np.ndarray
    package_owner: np.ndarray
    dropped: Tuple[int, ...]

    @property
    def virtual_nodes(self) -> int:
        """Realised package count ``ℓ``."""
        return int(self.members.shape[0])

    @property
    def total_tokens(self) -> int:
        """Flat sample-vector length ``k·s`` one trial consumes."""
        return self.k * self.tokens_per_node

    @staticmethod
    def from_schedule(
        topology: Topology, tau: int, tokens_per_node: int = 1
    ) -> "PackagingLayout":
        """Extract the layout from the cached tree schedule, no engine.

        Replays the warm-start TOKENS dynamics on slot IDs: each round
        every node first appends the tokens delivered this round (in
        ascending sender order — the engine's deterministic inbox
        order), then forwards its buffer head to its parent if it still
        owes tokens; after ``τ`` forwarding rounds (plus the final
        delivery round) each buffer is cut into consecutive ``τ``-slot
        packages.  Identical to what a cold run realises because the
        warm start is round-for-round equivalent to the cold TOKENS
        phase (``verify_warm_start``) and the dynamics never read token
        values.  Cached per ``(τ, s)`` on the schedule's ``aux`` dict.
        """
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        if tokens_per_node < 1:
            raise ParameterError(
                f"tokens_per_node must be >= 1, got {tokens_per_node}"
            )
        schedule: TreeSchedule = topology.tree_schedule()
        key = ("trial_layout", tau, tokens_per_node)
        cached = schedule.aux.get(key)
        if cached is not None:
            return cached
        with telemetry.span(
            "trial_plane.layout",
            k=topology.k,
            tau=tau,
            tokens_per_node=tokens_per_node,
        ) as span:
            k, s = topology.k, tokens_per_node
            counts = schedule.token_counts(tau, s)
            buffers = [deque(range(v * s, (v + 1) * s)) for v in range(k)]
            sent = [0] * k
            dropped: List[int] = []
            arrivals: List[List[int]] = [[] for _ in range(k)]
            for r in range(tau + 1):
                for v in range(k):
                    if arrivals[v]:
                        buffers[v].extend(arrivals[v])
                next_arrivals: List[List[int]] = [[] for _ in range(k)]
                if r < tau:
                    for v in range(k):
                        if sent[v] < counts[v] and buffers[v]:
                            slot = buffers[v].popleft()
                            sent[v] += 1
                            parent = schedule.parent[v]
                            if parent is None:
                                dropped.append(slot)
                            else:
                                next_arrivals[parent].append(slot)
                arrivals = next_arrivals
            member_rows: List[Sequence[int]] = []
            owners: List[int] = []
            for v in range(k):
                if sent[v] != counts[v]:
                    raise SimulationError(
                        f"layout extraction: node {v} forwarded {sent[v]} of "
                        f"c(v)={counts[v]} slots in tau={tau} rounds — the "
                        f"pipelining invariant (Theorem 5.1) failed"
                    )
                held = list(buffers[v])
                if len(held) % tau != 0:
                    raise SimulationError(
                        f"layout extraction: node {v} holds {len(held)} slots, "
                        f"not a multiple of tau={tau}"
                    )
                for i in range(0, len(held), tau):
                    member_rows.append(held[i : i + tau])
                    owners.append(v)
            members = np.asarray(member_rows, dtype=np.int64).reshape(
                len(member_rows), tau
            )
            members.setflags(write=False)
            package_owner = np.asarray(owners, dtype=np.int64)
            package_owner.setflags(write=False)
            layout = PackagingLayout(
                k=k,
                tau=tau,
                tokens_per_node=s,
                members=members,
                package_owner=package_owner,
                dropped=tuple(dropped),
            )
            span.count("packages", layout.virtual_nodes)
            span.count("dropped_slots", len(dropped))
        schedule.aux[key] = layout
        return layout

    def verify_layout(self, topology: Topology) -> LayoutCheck:
        """Cross-check this layout against an actual cold engine run.

        Runs the full FLOOD/CHILD/COUNT/TOKENS protocol with slot-ID
        tokens and compares, per node, the realised packages (contents
        *and* order) and the root's drop set against the simulated
        layout.
        """
        if topology.k != self.k:
            raise ParameterError(
                f"layout built for k={self.k}, topology has {topology.k}"
            )
        k, s, tau = self.k, self.tokens_per_node, self.tau
        token_bits = bits_for_int(k * s)
        engine = SynchronousEngine(
            topology,
            bandwidth_bits=max(token_bits, 2 * bits_for_int(k)),
            max_rounds=10 * (topology.diameter_upper_bound() + tau + 10),
            deadlock_quiet_rounds=tau + 6,
        )
        report = engine.run(
            lambda v: TokenPackagingProgram(
                node_id=v,
                k=k,
                tau=tau,
                token=range(v * s, (v + 1) * s),
                token_bits=token_bits,
            ),
            None,
        )
        mine: List[List[Tuple[int, ...]]] = [[] for _ in range(k)]
        for p in range(self.virtual_nodes):
            mine[int(self.package_owner[p])].append(
                tuple(int(x) for x in self.members[p])
            )
        mismatched = []
        for v, outcome in enumerate(report.outputs):
            engine_packages = list(outcome.packages)
            engine_dropped = list(outcome.leftover)
            expected_dropped = list(self.dropped) if outcome.is_root else []
            if engine_packages != mine[v] or engine_dropped != expected_dropped:
                mismatched.append(v)
        return LayoutCheck(
            equivalent=not mismatched, mismatched_nodes=tuple(mismatched)
        )


# ---------------------------------------------------------------------------
# Batched verdict kernels (picklable, trial-engine compatible)
# ---------------------------------------------------------------------------


def _accepts(
    flat: np.ndarray, members: np.ndarray, threshold: Optional[int]
) -> np.ndarray:
    """Vectorised root decision over a ``(trials, k·s)`` sample matrix.

    ``threshold=None`` encodes the zero-package degenerate case, where
    the plain root accepts unconditionally.
    """
    if threshold is None:
        return np.ones(flat.shape[0], dtype=bool)
    alarms = grouped_collision_flags(flat, members).sum(axis=1)
    return alarms < threshold


@dataclass(frozen=True, eq=False)
class CongestVerdictKernel:
    """Batched experiment: fault-free Theorem 1.4 trial error flags.

    ``(rng, count) -> flags`` where ``True`` means the verdict disagrees
    with ``is_uniform``.  Consumes exactly ``count`` trials' worth of
    ``sample_matrix(k, s)`` draws, so it is bit-identical to the scalar
    engine experiment on the same chunk stream.
    """

    distribution: DiscreteDistribution
    members: np.ndarray
    threshold: Optional[int]
    total_tokens: int
    is_uniform: bool

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        with telemetry.span("trial_plane.draw", trials=count) as sp:
            flat = self.distribution.sample(count * self.total_tokens, rng)
            sp.count("tokens", count * self.total_tokens)
        with telemetry.span("trial_plane.verdict", trials=count):
            accepted = _accepts(
                flat.reshape(count, self.total_tokens),
                self.members,
                self.threshold,
            )
            return accepted != self.is_uniform


@dataclass(frozen=True, eq=False)
class HardenedVerdictKernel:
    """Batched experiment: hardened-tester trial error flags under a
    fixed fault plan, replayed over the extracted realised layout.

    ``root_alive=False`` (the plan crashes the elected root) means every
    trial's verdict is ``None`` — an error on either side — but the
    sample stream is still consumed, keeping the chunk streams aligned
    with the engine path.  ``threshold=None`` with a live root encodes
    the reject-always outcomes (zero counted packages, or no separating
    threshold at the realised ``ℓ``).
    """

    distribution: DiscreteDistribution
    members: np.ndarray
    threshold: Optional[int]
    total_tokens: int
    is_uniform: bool
    root_alive: bool

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        with telemetry.span(
            "trial_plane.draw", trials=count, hardened=True
        ) as sp:
            flat = self.distribution.sample(count * self.total_tokens, rng)
            sp.count("tokens", count * self.total_tokens)
        with telemetry.span("trial_plane.verdict", trials=count, hardened=True):
            if not self.root_alive:
                return np.ones(count, dtype=bool)
            if self.threshold is None:
                accepted = np.zeros(count, dtype=bool)
            else:
                alarms = grouped_collision_flags(
                    flat.reshape(count, self.total_tokens), self.members
                ).sum(axis=1)
                accepted = alarms < self.threshold
            return accepted != self.is_uniform


# ---------------------------------------------------------------------------
# Fault-free trial runner (plain tester)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class CongestTrialRunner:
    """Vectorised Monte-Carlo trials for the fault-free CONGEST tester.

    Wraps a solved :class:`CongestUniformityTester`, the topology's
    :class:`PackagingLayout` and the Theorem 1.2 threshold for the
    realised package count; trial verdicts are then one gather + one
    sort + one comparison per batch.  ``build`` is the constructor.
    """

    tester: CongestUniformityTester
    topology: Topology
    layout: PackagingLayout
    threshold: Optional[int]

    @staticmethod
    def build(
        tester: CongestUniformityTester, topology: Topology
    ) -> "CongestTrialRunner":
        """Extract (or reuse the cached) layout and place the threshold."""
        if topology.k != tester.params.k:
            raise ParameterError(
                f"tester solved for k={tester.params.k}, topology has "
                f"{topology.k}"
            )
        layout = PackagingLayout.from_schedule(
            topology, tester.params.tau, tester.params.samples_per_node
        )
        ell = layout.virtual_nodes
        # Mirrors the root's decision rule: zero packages accept
        # unconditionally; otherwise the exact-tail threshold (raising
        # InfeasibleParametersError exactly when the engine path would).
        threshold = None if ell == 0 else tester.params.threshold_for(ell)
        return CongestTrialRunner(
            tester=tester, topology=topology, layout=layout, threshold=threshold
        )

    # -- per-sample / per-seed APIs ------------------------------------

    def accepts(self, samples: np.ndarray) -> np.ndarray:
        """Verdicts for a ``(trials, k·s)`` (or ``(trials, k, s)``) batch."""
        flat = np.asarray(samples).reshape(-1, self.layout.total_tokens)
        return _accepts(flat, self.layout.members, self.threshold)

    def verdicts_for_seeds(
        self, distribution: DiscreteDistribution, seeds: Sequence[int]
    ) -> List[bool]:
        """Per-seed verdicts matching ``tester.run(topo, dist, rng=seed)``.

        Each seed's samples are drawn exactly as the engine path draws
        them (``ensure_rng(seed)`` then one ``sample_matrix(k, s)``), so
        verdict ``i`` is bit-identical to the engine run at
        ``seeds[i]``.
        """
        total = self.layout.total_tokens
        flat = np.stack(
            [distribution.sample(total, ensure_rng(seed)) for seed in seeds]
        )
        return [bool(a) for a in self.accepts(flat)]

    # -- trial-engine APIs ---------------------------------------------

    def run_flags(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        base_seed: int = 0,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> np.ndarray:
        """Per-trial error flags via the chunk-keyed trial engine.

        Bit-identical to the scalar engine route
        (:meth:`CongestUniformityTester.estimate_error` with
        ``fast_path=False``) — same ``("congest", k)`` labels, same
        stream consumption.  ``engine_check`` ∈ [0, 1] re-runs that
        fraction of the trials (at least one; a prefix of the same
        stream, so no extra bookkeeping) through the full engine and
        raises :class:`SimulationError` on any flag mismatch.
        """
        if not 0.0 <= engine_check <= 1.0:
            raise ParameterError(
                f"engine_check must be in [0, 1], got {engine_check}"
            )
        kernel = CongestVerdictKernel(
            distribution=distribution,
            members=self.layout.members,
            threshold=self.threshold,
            total_tokens=self.layout.total_tokens,
            is_uniform=is_uniform,
        )
        flags = TrialRunner(base_seed=base_seed).run_flags_batched(
            kernel,
            trials,
            "congest",
            self.topology.k,
            batch=auto_batch(self.layout.total_tokens),
            workers=workers,
        )
        if engine_check > 0.0:
            checked = min(trials, max(1, int(round(engine_check * trials))))
            with telemetry.span(
                "trial_plane.engine_check", trials=checked
            ) as sp:
                experiment = _CongestTrialExperiment(
                    tester=self.tester,
                    topology=self.topology,
                    distribution=distribution,
                    is_uniform=is_uniform,
                    warm_start=True,
                )
                engine_flags = TrialRunner(base_seed=base_seed).run_flags(
                    experiment, checked, "congest", self.topology.k
                )
                sp.count("checked", checked)
                if not np.array_equal(engine_flags, flags[:checked]):
                    bad = np.flatnonzero(engine_flags != flags[:checked])
                    raise SimulationError(
                        f"trial-plane verdicts diverge from the engine on "
                        f"trials {bad[:8].tolist()} of {checked} checked — "
                        f"bit-identity contract broken"
                    )
        return flags

    def error_rate(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        base_seed: int = 0,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate over :meth:`run_flags`."""
        flags = self.run_flags(
            distribution,
            is_uniform,
            trials,
            base_seed=base_seed,
            workers=workers,
            engine_check=engine_check,
        )
        return float(flags.sum()) / trials


# ---------------------------------------------------------------------------
# Pack-then-replay for the hardened tester under a fixed fault plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class RealisedLayout:
    """The packaging layout one (possibly faulty) hardened run realised,
    restricted to the packages the root's verdict actually counted.

    Extracted by :meth:`from_engine` from a single instrumented engine
    run with slot-ID tokens: ``members[p]`` lists the slots of the
    ``p``-th counted package, ``counted_nodes`` the nodes whose vote
    reached the root (the ``vote_included`` closure from node ``k−1``),
    and ``root_alive`` whether the elected root survived to decide.
    Valid for replay across sample redraws because the fault plan's
    decisions and the protocol's control flow are payload-independent.
    """

    k: int
    tau: int
    tokens_per_node: int
    members: np.ndarray
    counted_nodes: Tuple[int, ...]
    root_alive: bool
    probe: HardenedRunResult

    @property
    def counted_packages(self) -> int:
        """The package count ``ℓ`` the root thresholds against."""
        return int(self.members.shape[0])

    @property
    def total_tokens(self) -> int:
        return self.k * self.tokens_per_node

    @staticmethod
    def from_engine(
        tester: HardenedCongestTester,
        topology: Topology,
        faults: Optional[FaultPlan] = None,
        d_hint: Optional[int] = None,
    ) -> "RealisedLayout":
        """One instrumented engine run under ``faults`` → realised layout.

        The probe run uses slot IDs as tokens (same declared token bits
        as a real run, so frames, bandwidth and fault decisions are
        identical) and captures the program objects, then walks the
        ``vote_included`` tree from the root: a node's packages are
        counted iff every link of its vote path reached the root in
        time.  Cross-checks the closure against the root's own
        ``vote_packages``/``vote_alarms`` totals and raises on mismatch.
        """
        plan = faults if faults is not None else FaultPlan.none()
        k = topology.k
        s = tester.params.samples_per_node
        slots = np.arange(k * s, dtype=np.int64).reshape(k, s)
        programs: List = []
        probe = tester.run_from_samples(
            topology,
            slots,
            faults=plan,
            d_hint=d_hint,
            _capture_programs=programs,
        )
        root = k - 1
        root_alive = probe.outcomes[root] is not None
        member_rows: List[Tuple[int, ...]] = []
        counted: List[int] = []
        if root_alive:
            seen = {root}
            stack = [root]
            while stack:
                v = stack.pop()
                counted.append(v)
                member_rows.extend(programs[v].package_contents)
                for child in programs[v].vote_included:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
            root_program = programs[root]
            if len(member_rows) != root_program.vote_packages:
                raise SimulationError(
                    f"realised-layout closure found {len(member_rows)} "
                    f"packages but the root counted "
                    f"{root_program.vote_packages} — extraction and "
                    f"protocol disagree"
                )
            if root_program.vote_alarms != 0:
                # Slot IDs are all distinct, so any alarm in the probe
                # run means tokens were duplicated somewhere.
                raise SimulationError(
                    f"probe run raised {root_program.vote_alarms} alarms "
                    f"on distinct slot tokens — duplicated tokens"
                )
        members = np.asarray(member_rows, dtype=np.int64).reshape(
            len(member_rows), tester.params.tau
        )
        members.setflags(write=False)
        return RealisedLayout(
            k=k,
            tau=tester.params.tau,
            tokens_per_node=s,
            members=members,
            counted_nodes=tuple(sorted(counted)),
            root_alive=root_alive,
            probe=probe,
        )


@dataclass(frozen=True, eq=False)
class HardenedTrialRunner:
    """Pack-then-replay Monte-Carlo trials for the hardened tester.

    One probe run under the fixed plan fixes the counted layout; trial
    verdicts then replay it over fresh samples.  ``threshold=None``
    (with a live root) means the root rejects every trial — zero counted
    packages, or no separating threshold at the realised ``ℓ``.
    """

    tester: HardenedCongestTester
    topology: Topology
    faults: FaultPlan
    layout: RealisedLayout
    threshold: Optional[int]
    d_hint: Optional[int] = None

    @staticmethod
    def build(
        tester: HardenedCongestTester,
        topology: Topology,
        faults: Optional[FaultPlan] = None,
        d_hint: Optional[int] = None,
    ) -> "HardenedTrialRunner":
        """Probe the plan once and place the verdict threshold."""
        if topology.k != tester.params.k:
            raise ParameterError(
                f"tester solved for k={tester.params.k}, topology has "
                f"{topology.k}"
            )
        plan = faults if faults is not None else FaultPlan.none()
        layout = RealisedLayout.from_engine(
            tester, topology, faults=plan, d_hint=d_hint
        )
        threshold: Optional[int] = None
        if layout.root_alive and layout.counted_packages > 0:
            try:
                threshold = tester.params.threshold_for(
                    layout.counted_packages
                )
            except InfeasibleParametersError:
                threshold = None  # root rejects and flags infeasibility
        return HardenedTrialRunner(
            tester=tester,
            topology=topology,
            faults=plan,
            layout=layout,
            threshold=threshold,
            d_hint=d_hint,
        )

    # -- per-seed API (used by the E14 sweep) ---------------------------

    def verdicts_for_seeds(
        self, distribution: DiscreteDistribution, seeds: Sequence[int]
    ) -> List[Optional[bool]]:
        """Per-seed verdicts matching ``tester.run(..., rng=seed,
        faults=plan).verdict`` (``None`` when the root crashed)."""
        total = self.layout.total_tokens
        flat = np.stack(
            [distribution.sample(total, ensure_rng(seed)) for seed in seeds]
        )
        if not self.layout.root_alive:
            return [None] * len(seeds)
        if self.threshold is None:
            return [False] * len(seeds)
        alarms = grouped_collision_flags(flat, self.layout.members).sum(axis=1)
        return [bool(a < self.threshold) for a in alarms]

    # -- trial-engine APIs ---------------------------------------------

    def run_flags(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        base_seed: int = 0,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> np.ndarray:
        """Per-trial error flags, bit-identical to the engine route
        (labels ``("hardened", k)``); see
        :meth:`CongestTrialRunner.run_flags` for the ``engine_check``
        contract."""
        if not 0.0 <= engine_check <= 1.0:
            raise ParameterError(
                f"engine_check must be in [0, 1], got {engine_check}"
            )
        kernel = HardenedVerdictKernel(
            distribution=distribution,
            members=self.layout.members,
            threshold=self.threshold,
            total_tokens=self.layout.total_tokens,
            is_uniform=is_uniform,
            root_alive=self.layout.root_alive,
        )
        flags = TrialRunner(base_seed=base_seed).run_flags_batched(
            kernel,
            trials,
            "hardened",
            self.topology.k,
            batch=auto_batch(self.layout.total_tokens),
            workers=workers,
        )
        if engine_check > 0.0:
            checked = min(trials, max(1, int(round(engine_check * trials))))
            with telemetry.span(
                "trial_plane.engine_check", trials=checked, hardened=True
            ) as sp:
                experiment = _HardenedTrialExperiment(
                    tester=self.tester,
                    topology=self.topology,
                    distribution=distribution,
                    is_uniform=is_uniform,
                    faults=self.faults,
                    d_hint=self.d_hint,
                )
                engine_flags = TrialRunner(base_seed=base_seed).run_flags(
                    experiment, checked, "hardened", self.topology.k
                )
                sp.count("checked", checked)
                if not np.array_equal(engine_flags, flags[:checked]):
                    bad = np.flatnonzero(engine_flags != flags[:checked])
                    raise SimulationError(
                        f"pack-then-replay verdicts diverge from the engine "
                        f"on trials {bad[:8].tolist()} of {checked} checked "
                        f"— bit-identity contract broken"
                    )
        return flags

    def error_rate(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        base_seed: int = 0,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate over :meth:`run_flags`."""
        flags = self.run_flags(
            distribution,
            is_uniform,
            trials,
            base_seed=base_seed,
            workers=workers,
            engine_check=engine_check,
        )
        return float(flags.sum()) / trials
