"""CONGEST-model uniformity testing (Section 5 of the paper).

Two layers:

- :mod:`repro.congest.token_packaging` — the ``τ``-token-packaging
  protocol of Definition 2 / Theorem 5.1: concentrate the network's ``k``
  single-sample tokens into packages of exactly ``τ`` tokens in
  ``O(D + τ)`` rounds, losing at most ``τ − 1`` tokens.
- :mod:`repro.congest.tester` — Theorem 1.4: package the samples, treat
  each package as a *virtual node* of the 0-round threshold tester
  (Theorem 1.2), convergecast the alarm count to the BFS root, and have
  the root broadcast the verdict.  Total ``O(D + n/(kε⁴))`` rounds, all
  messages within the ``O(log n)``-bit CONGEST budget (engine-enforced).
- :mod:`repro.congest.hardened` — fault-tolerant variants of both:
  timer-driven phases, ack/retransmit with bounded retries, and graceful
  degradation under the engine's deterministic
  :class:`~repro.simulator.faults.FaultPlan` injection.
- :mod:`repro.congest.trial_plane` — the vectorised Monte-Carlo fast
  path: extract the sample-value-independent packaging layout once
  (:class:`~repro.congest.trial_plane.PackagingLayout`, or
  :class:`~repro.congest.trial_plane.RealisedLayout` via pack-then-replay
  under a fixed fault plan), then batch whole trial matrices through
  numpy collision kernels, bit-identical per seed to the engine path.
- :mod:`repro.congest.fault_plane` — the same idea for
  **per-trial-keyed** fault plans (one :class:`FaultPlan` per trial, as
  in robustness sweeps): replay the hardened protocol's control flow —
  flooding, retry ladders, token transfer, give-ups — as array ops over
  the whole plan batch, no engine runs at all.
"""

from repro.congest.token_packaging import (
    PackagingOutcome,
    TokenPackagingProgram,
    WarmStart,
    WarmStartCheck,
    run_token_packaging,
    verify_packaging,
    verify_warm_start,
    warm_start_views,
)
from repro.congest.tester import (
    CongestParameters,
    CongestUniformityTester,
    congest_parameters,
)
from repro.congest.hardened import (
    HardenedCongestTester,
    HardenedCongestTesterProgram,
    HardenedPackagingOutcome,
    HardenedRunResult,
    HardenedTesterOutcome,
    HardenedTokenPackagingProgram,
    PhaseSchedule,
    RetryPolicy,
    run_hardened_packaging,
)
from repro.congest.fault_plane import (
    FaultPlaneScore,
    HardenedFaultPlane,
    ReplayedTrials,
    replay_hardened_trials,
)
from repro.congest.trial_plane import (
    CongestTrialRunner,
    CongestVerdictKernel,
    HardenedTrialRunner,
    HardenedVerdictKernel,
    LayoutCheck,
    PackagingLayout,
    RealisedLayout,
)

__all__ = [
    "HardenedCongestTester",
    "HardenedCongestTesterProgram",
    "HardenedPackagingOutcome",
    "HardenedRunResult",
    "HardenedTesterOutcome",
    "HardenedTokenPackagingProgram",
    "PhaseSchedule",
    "RetryPolicy",
    "run_hardened_packaging",
    "TokenPackagingProgram",
    "PackagingOutcome",
    "WarmStart",
    "WarmStartCheck",
    "run_token_packaging",
    "verify_packaging",
    "verify_warm_start",
    "warm_start_views",
    "CongestParameters",
    "CongestUniformityTester",
    "congest_parameters",
    "CongestTrialRunner",
    "CongestVerdictKernel",
    "HardenedTrialRunner",
    "HardenedVerdictKernel",
    "LayoutCheck",
    "PackagingLayout",
    "RealisedLayout",
    "FaultPlaneScore",
    "HardenedFaultPlane",
    "ReplayedTrials",
    "replay_hardened_trials",
]
