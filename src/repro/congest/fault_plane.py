"""The CONGEST fault plane: batched replay of per-trial-keyed fault sweeps.

PR 4's trial plane (:mod:`repro.congest.trial_plane`) removed the engine
from fault-free trials and from hardened trials under one *fixed*
:class:`~repro.simulator.faults.FaultPlan`.  The remaining engine-bound
hot path was the E14 robustness grid, which keys a fresh plan to every
trial — a different realised layout per trial, so no single probe run
can be replayed.  This module replays *batches* of hardened trials, one
plan per trial, entirely as array operations over a ``(trials, nodes)``
state machine:

1. the fault RNG is evaluated in bulk (:func:`~repro.simulator.faults.
   uniform_array` — the vectorized SplitMix64 kernel, bit-identical per
   key to the engine's scalar draws);
2. the hardened protocol's deterministic control flow — max-ID flooding,
   :class:`~repro.congest.hardened.PhaseSchedule` timers, the
   :class:`~repro.congest.hardened.RetryPolicy` ack/retransmit ladders,
   stop-and-wait token transfer with give-up shortfall accounting, vote
   fold deadlines and the verdict broadcast — is replayed round by round
   on integer arrays, no node objects;
3. verdicts and agreement are then one gather + sort + threshold pass
   per sample batch over the realised per-trial package membership.

Fault-replay validity contract
------------------------------
The replay is **bit-identical to the engine per (plan, sample seed)**.
That guarantee rests on properties of the hardened protocol and the
fault model which the replay checks or requires:

- *Keyed draws.*  Drop decisions are pure functions of ``(seed, src,
  dst, round, index)`` — no stream consumption — so the replay can
  evaluate exactly the draws the engine would, in any order.  Frames
  merge all subframes per directed edge per round, so ``index`` is
  always 0.
- *Payload independence.*  No fault draw and no control-flow branch
  reads a token value; only package membership depends on the samples.
- *No delivery delays.*  Plans carrying a ``DelayDistribution`` are
  rejected (:class:`~repro.exceptions.ParameterError`): delayed frames
  reorder inbox processing in ways the batched state machine does not
  model.  Route those plans through the engine.
- *Crash horizon.*  Crash rounds must fall in ``[0, tokens_end]`` (or
  beyond ``decide_end``, i.e. never take effect): a node crashed by
  ``tokens_end`` produces no outcome, and a never-crashed node always
  halts, so "has an outcome" reduces to "never crashed".  Crashes
  during the vote/decide windows make outcome existence depend on exact
  halt rounds (which depend on ack traffic the replay elides) and are
  rejected.  E14's sweep crashes within ``[1, count_end]``.
- *The engine stays the measurement of record* for rounds, delivered
  bits and drop counts; the plane replays verdicts and the degradation
  counters (``shortfall`` / ``missing_subtrees`` / ``unheard`` /
  ``agreement``) and is cross-checked against engine runs via the
  ``engine_check`` pattern (:func:`ReplayedTrials.check_against_engine`
  raises :class:`~repro.exceptions.SimulationError` on any divergence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.congest.hardened import (
    HardenedCongestTester,
    HardenedRunResult,
    PhaseSchedule,
)
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import (
    InfeasibleParametersError,
    ParameterError,
    SimulationError,
)
from repro.rng import ensure_rng
from repro.simulator.faults import _SALT_DROP, FaultPlan, uniform_array
from repro.simulator.graph import Topology

_NEVER = 1 << 30  # crash round for "never crashes"
_BIG = 1 << 30  # "not yet" round sentinel
_F = 1 << 21  # flood key field width (21 bits each for dist/src)


def _require_replayable(
    plans: Sequence[FaultPlan], k: int, schedule: PhaseSchedule
) -> Tuple[np.ndarray, np.ndarray, List[Optional[Dict]]]:
    """Validate the plan batch; returns (seeds, crash rounds, overrides).

    Raises :class:`ParameterError` when a plan violates the validity
    contract (delay distribution, or a crash round inside the
    vote/decide windows — see the module docstring).
    """
    if not plans:
        raise ParameterError("fault-plane replay needs at least one plan")
    T = len(plans)
    seeds = np.zeros(T, dtype=np.uint64)
    crash = np.full((T, k), _NEVER, dtype=np.int64)
    overrides: List[Optional[Dict]] = [None] * T
    for t, plan in enumerate(plans):
        if plan.delay is not None and plan.delay.outcomes:
            raise ParameterError(
                "fault-plane replay does not model delivery delays; run "
                "delayed plans through the engine (see the fault-replay "
                "validity contract)"
            )
        seeds[t] = plan.seed & ((1 << 64) - 1)
        for node, round_ in plan.crashes.items():
            if not 0 <= node < k:
                raise ParameterError(
                    f"crash schedule names node {node}, k={k}"
                )
            if schedule.tokens_end < round_ <= schedule.decide_end:
                raise ParameterError(
                    f"crash round {round_} for node {node} falls in the "
                    f"vote/decide windows ({schedule.tokens_end}, "
                    f"{schedule.decide_end}]; the fault-plane replay only "
                    f"supports crashes by tokens_end (or never)"
                )
            if round_ <= schedule.tokens_end:
                crash[t, node] = round_
        if plan.edge_drop:
            overrides[t] = dict(plan.edge_drop)
    return seeds, crash, overrides


@dataclass(eq=False)
class ReplayedTrials:
    """Per-trial realised layout + degradation counters for a plan batch.

    One row per trial; the sample-independent outputs of the replay.
    ``members``/``pkg_trial``/``pkg_root`` describe every *counted*
    package (reached a live fragment root's verdict) across the batch:
    ``members[p]`` lists its ``τ`` token slots (flat ``(k·s)`` indices),
    owned by trial ``pkg_trial[p]`` and thresholded by fragment root
    ``pkg_root[p]``.  ``threshold[t, v]`` is the Theorem 1.2 threshold
    fragment root ``v`` places (−1 = reject always: zero packages or no
    separating threshold; −2 = not a live fragment root).
    """

    k: int
    tau: int
    tokens_per_node: int
    trials: int
    alive: np.ndarray  # (T, k) bool — node produced an outcome
    frag_root: np.ndarray  # (T, k) — root of each node's parent chain
    is_frag_root: np.ndarray  # (T, k) bool — alive and parent-less
    heard: np.ndarray  # (T, k) bool — received the verdict broadcast
    threshold: np.ndarray  # (T, k) int64
    members: np.ndarray  # (P, tau) int64 slot ids
    pkg_trial: np.ndarray  # (P,)
    pkg_root: np.ndarray  # (P,)
    shortfall: np.ndarray  # (T,) int64
    missing_subtrees: np.ndarray  # (T,) int64
    unheard: np.ndarray  # (T,) int64

    @property
    def total_tokens(self) -> int:
        return self.k * self.tokens_per_node

    @property
    def root_alive(self) -> np.ndarray:
        """(T,) — whether the elected root ``k−1`` survived to decide."""
        return self.alive[:, self.k - 1]

    # -- sample-dependent scoring --------------------------------------

    def score(self, flat: np.ndarray) -> "FaultPlaneScore":
        """Verdicts + agreement for one ``(T, k·s)`` sample batch.

        Row ``t`` must hold the samples trial ``t``'s engine run would
        draw; the result then matches ``tester.run(...)`` bit for bit:
        ``verdicts[t]`` is the elected root's decision (``None`` if it
        crashed) and ``agreement[t]`` the fraction of surviving nodes
        agreeing with it.
        """
        with telemetry.span("fault_plane.score", trials=self.trials):
            return self._score(flat)

    def _score(self, flat: np.ndarray) -> "FaultPlaneScore":
        T, k = self.trials, self.k
        flat = np.asarray(flat)
        if flat.shape != (T, self.total_tokens):
            raise ParameterError(
                f"expected a ({T}, {self.total_tokens}) sample batch, got "
                f"{flat.shape}"
            )
        alarms = np.zeros((T, k), dtype=np.int64)
        if len(self.pkg_trial):
            values = flat[self.pkg_trial[:, None], self.members]
            values.sort(axis=1)
            flagged = (values[:, 1:] == values[:, :-1]).any(axis=1)
            np.add.at(alarms, (self.pkg_trial, self.pkg_root), flagged)
        # Fragment-root decisions: reject-always where threshold == -1.
        decides = (self.threshold >= 0) & (alarms < self.threshold)
        root = k - 1
        verdicts: List[Optional[bool]] = [
            bool(decides[t, root]) if self.alive[t, root] else None
            for t in range(T)
        ]
        # Per-node decisions: own verdict at fragment roots, the chain
        # root's verdict where the broadcast arrived, default-reject
        # (False) where it never did.
        rows = np.arange(T)[:, None]
        node_dec = np.where(
            self.is_frag_root | self.heard,
            decides[rows, self.frag_root],
            False,
        )
        n_alive = self.alive.sum(axis=1)
        agree = (
            (node_dec == decides[:, root][:, None]) & self.alive
        ).sum(axis=1)
        agreement = np.where(
            self.alive[:, root] & (n_alive > 0), agree / np.maximum(n_alive, 1), 0.0
        )
        return FaultPlaneScore(
            verdicts=verdicts, agreement=agreement, alarms=alarms
        )

    def check_against_engine(
        self,
        index: int,
        result: HardenedRunResult,
        verdict: Optional[bool],
        agreement: float,
    ) -> None:
        """Cross-check trial ``index`` against its engine run.

        ``verdict``/``agreement`` are the replay's sample-dependent
        outputs for the same trial (from :meth:`score`); the counters
        compared here are sample-independent.  Raises
        :class:`SimulationError` on any divergence — the bit-identity
        contract is broken and no fast-path numbers can be trusted.
        """
        mismatches = []
        if result.verdict is not verdict:
            mismatches.append(
                f"verdict engine={result.verdict} replay={verdict}"
            )
        if result.agreement != agreement:
            mismatches.append(
                f"agreement engine={result.agreement} replay={agreement}"
            )
        for name, engine_value, replay_value in (
            ("shortfall", result.shortfall, int(self.shortfall[index])),
            (
                "missing_subtrees",
                result.missing_subtrees,
                int(self.missing_subtrees[index]),
            ),
            ("unheard", result.unheard, int(self.unheard[index])),
        ):
            if engine_value != replay_value:
                mismatches.append(
                    f"{name} engine={engine_value} replay={replay_value}"
                )
        if mismatches:
            raise SimulationError(
                f"fault-plane replay diverges from the engine at trial "
                f"{index}: {'; '.join(mismatches)} — bit-identity "
                f"contract broken"
            )


@dataclass(frozen=True, eq=False)
class FaultPlaneScore:
    """Sample-dependent outputs of :meth:`ReplayedTrials.score`."""

    verdicts: List[Optional[bool]]
    agreement: np.ndarray
    alarms: np.ndarray


# ---------------------------------------------------------------------------
# The batched state machine
# ---------------------------------------------------------------------------


def _flood(
    topology: Topology,
    seeds: np.ndarray,
    crash: np.ndarray,
    prob_edge: np.ndarray,
    flood_end: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay max-ID flooding; returns (parent, dist), each ``(T, k)``.

    Node state ``(best, dist, parent)`` is packed into one monotone
    int64 key — ``best`` (bits 42+), then ``F−1−dist`` (bits 21..41),
    then ``F−1−(src+1)`` (bits 0..20) — whose ordering is exactly the
    engine's adoption preference: higher best wins, then smaller
    distance, then smaller sender.  A never-adopted node carries the
    src-field ``F−1`` (parent −1), which outranks every equal-best
    candidate; that is safe because its distance is 0 and every
    candidate's is ≥ 1, so a tie the src-field would have to break
    cannot occur — reproducing the ``parent is None`` guard in
    ``_adopt``.  Sequential inbox processing equals a max over
    candidates because the preference is a total order and candidates
    are built from sender states frozen at the previous round.
    """
    T = len(seeds)
    k = topology.k
    esrc, edst = [], []
    for u, v in topology.edges():
        esrc += [u, v]
        edst += [v, u]
    esrc = np.asarray(esrc, dtype=np.int64)
    edst = np.asarray(edst, dtype=np.int64)
    rounds = np.arange(1, flood_end + 1, dtype=np.int64)
    u = uniform_array(
        seeds[:, None, None],
        esrc[None, :, None],
        edst[None, :, None],
        rounds[None, None, :],
        0,
        _SALT_DROP,
    )
    dropped = (prob_edge[:, :, None] > 0.0) & (u < prob_edge[:, :, None])
    key = (
        (np.arange(k, dtype=np.int64) << 42)
        | ((_F - 1) << 21)
        | np.int64(_F - 1)
    )
    key = np.broadcast_to(key, (T, k)).copy()
    flat = key.reshape(-1)
    scatter = np.arange(T)[:, None] * k + edst[None, :]
    for r in range(1, flood_end + 1):
        best = key >> 42
        dist = (_F - 1) - ((key >> 21) & (_F - 1))
        sb = best[:, esrc]
        nd = dist[:, esrc] + 1
        cand = (sb << 42) | ((_F - 1 - nd) << 21) | (_F - 2 - esrc)[None, :]
        ok = (
            (crash[:, esrc] > r - 1)
            & (crash[:, edst] > r)
            & ~dropped[:, :, r - 1]
        )
        np.maximum.at(flat, scatter[ok], cand[ok])
        key = flat.reshape(T, k)
    best = key >> 42
    dist = (_F - 1) - ((key >> 21) & (_F - 1))
    parent = (_F - 2) - (key & (_F - 1))
    return parent.astype(np.int64), dist.astype(np.int64)


def replay_hardened_trials(
    tester: HardenedCongestTester,
    topology: Topology,
    plans: Sequence[FaultPlan],
    d_hint: Optional[int] = None,
) -> ReplayedTrials:
    """Replay one hardened trial per plan, engine-free, bit-identically.

    Validates every plan against the fault-replay validity contract
    (module docstring), then runs the batched ``(T, k)`` state machine:
    flooding, claim/count/vote retry ladders as fixed arithmetic
    attempt schedules (sound because acks only suppress retransmits of
    idempotent registrations — see ``docs/writing_protocols.md``),
    faithful stop-and-wait token transfer (acks are load-bearing there:
    they pace the window and define ``transferred``), packaging,
    fragment closure and the verdict broadcast.  Internally
    cross-checks the vote closure against each fragment root's folded
    package total and raises :class:`SimulationError` on mismatch.
    """
    with telemetry.span(
        "fault_plane.replay", trials=len(plans), k=topology.k
    ) as sp:
        replayed = _replay_hardened_trials(tester, topology, plans, d_hint)
        sp.count("packages", int(replayed.members.shape[0]))
        sp.count("crashed_roots", int((~replayed.root_alive).sum()))
        return replayed


def _replay_hardened_trials(
    tester: HardenedCongestTester,
    topology: Topology,
    plans: Sequence[FaultPlan],
    d_hint: Optional[int] = None,
) -> ReplayedTrials:
    if topology.k != tester.params.k:
        raise ParameterError(
            f"tester solved for k={tester.params.k}, topology has "
            f"{topology.k}"
        )
    k = topology.k
    tau = tester.params.tau
    s = tester.params.samples_per_node
    if d_hint is None:
        d_hint = topology.diameter_upper_bound()
    sch = PhaseSchedule.build(d_hint, tau, tester.policy)
    pol = tester.policy
    to, A = pol.timeout, pol.attempts
    seeds, crash, overrides = _require_replayable(plans, k, sch)
    T = len(plans)

    # Per-trial per-directed-edge drop probabilities for the flood.
    esrc, edst = [], []
    for uu, vv in topology.edges():
        esrc += [uu, vv]
        edst += [vv, uu]
    esrc_a = np.asarray(esrc, dtype=np.int64)
    edst_a = np.asarray(edst, dtype=np.int64)
    prob_edge = np.repeat(
        np.asarray([p.drop_prob for p in plans], dtype=np.float64)[:, None],
        len(esrc_a),
        axis=1,
    )
    for t, ov in enumerate(overrides):
        if ov:
            for e in range(len(esrc_a)):
                prob_edge[t, e] = plans[t].drop_probability(
                    int(esrc_a[e]), int(edst_a[e])
                )

    F = sch.flood_end
    with telemetry.span("fault_plane.flood", rounds=F, trials=T):
        parent, dist = _flood(topology, seeds, crash, prob_edge, F)
    par_valid = parent >= 0
    par = np.where(par_valid, parent, np.arange(k)[None, :])

    # Tree-edge drop masks.  Upward frames (claims, counts, tokens,
    # votes) end with the last vote retry; downward frames (acks, the
    # verdict broadcast) run to decide_end.  Uniforms are only drawn
    # for (trial, node) rows that can actually drop — a tree edge with
    # positive probability — mirroring the scalar ``should_drop``
    # short-circuit and skipping fault-free/crash-only trials entirely.
    r0 = F + 1
    up_end = sch.vote_last_call + (A - 1) * to + 1
    rounds_up = np.arange(r0, up_end + 1, dtype=np.int64)
    rounds_dn = np.arange(r0, sch.decide_end + 1, dtype=np.int64)
    nodes = np.arange(k, dtype=np.int64)
    prob_up = np.repeat(
        np.asarray([p.drop_prob for p in plans], dtype=np.float64)[:, None],
        k,
        axis=1,
    )
    prob_dn = prob_up.copy()
    for t, ov in enumerate(overrides):
        if ov:
            for c in range(k):
                prob_up[t, c] = plans[t].drop_probability(c, int(par[t, c]))
                prob_dn[t, c] = plans[t].drop_probability(int(par[t, c]), c)
    drop_up = np.zeros((T, k, len(rounds_up)), dtype=bool)
    lossy = (prob_up > 0.0) & par_valid
    if lossy.any():
        tv, cv = np.nonzero(lossy)
        u = uniform_array(
            seeds[tv][:, None],
            cv[:, None],
            par[tv, cv][:, None],
            rounds_up[None, :],
            0,
            _SALT_DROP,
        )
        drop_up[tv, cv] = u < prob_up[tv, cv][:, None]
    drop_dn = np.zeros((T, k, len(rounds_dn)), dtype=bool)
    lossy = (prob_dn > 0.0) & par_valid
    if lossy.any():
        tv, cv = np.nonzero(lossy)
        u = uniform_array(
            seeds[tv][:, None],
            par[tv, cv][:, None],
            cv[:, None],
            rounds_dn[None, :],
            0,
            _SALT_DROP,
        )
        drop_dn[tv, cv] = u < prob_dn[tv, cv][:, None]
    crash_par = crash[np.arange(T)[:, None], par]

    # Claim registrations: fixed attempt schedule, precomputed.
    claim_reg = np.full((T, k), _BIG, dtype=np.int64)
    for i in range(A - 1, -1, -1):
        sr = F + i * to  # send round; delivery at sr + 1
        ok = (
            par_valid
            & (crash > sr)
            & (crash_par > sr + 1)
            & ~drop_up[:, :, sr + 1 - r0]
        )
        claim_reg[ok] = sr + 1

    # -- mutable (T, k) state ------------------------------------------
    registered = np.zeros((T, k), dtype=bool)
    wait_count = np.zeros((T, k), dtype=np.int64)  # registered, count pending
    wait_vote = np.zeros((T, k), dtype=np.int64)  # registered, vote pending
    count_rec = np.zeros((T, k), dtype=bool)
    sum_counts = np.zeros((T, k), dtype=np.int64)
    count_fold_r = np.full((T, k), _BIG, dtype=np.int64)
    c_value = np.zeros((T, k), dtype=np.int64)
    # Token machinery.
    buf_cap = s + max(topology.degree(v) for v in range(k)) * tau
    buf = np.zeros((T, k, buf_cap), dtype=np.int64)
    buf[:, :, :s] = (
        nodes[None, :, None] * s + np.arange(s, dtype=np.int64)[None, None, :]
    )
    head = np.zeros((T, k), dtype=np.int64)
    tail = np.full((T, k), s, dtype=np.int64)
    transferred = np.zeros((T, k), dtype=np.int64)
    given_up = np.zeros((T, k), dtype=np.int64)
    out_seq = np.zeros((T, k), dtype=np.int64)
    o_seq = np.full((T, k), -1, dtype=np.int64)  # outstanding seq (-1 none)
    o_slot = np.zeros((T, k), dtype=np.int64)
    tok_att = np.zeros((T, k), dtype=np.int64)
    tok_last = np.full((T, k), -_BIG, dtype=np.int64)
    seen = np.zeros((T, k, tau + 1), dtype=bool)
    tok_frame = np.zeros((T, k), dtype=bool)  # token in flight, sent last round
    fl_seq = np.zeros((T, k), dtype=np.int64)
    fl_slot = np.zeros((T, k), dtype=np.int64)
    ack_pend = np.full((T, k), -1, dtype=np.int64)  # parent->child ack payload
    packaged = np.zeros((T, k), dtype=bool)
    shortfall = np.zeros((T, k), dtype=np.int64)
    my_pkgs = np.zeros((T, k), dtype=np.int64)
    # Vote / decide machinery.
    vote_rec = np.zeros((T, k), dtype=bool)
    vote_inc = np.zeros((T, k), dtype=bool)  # vote folded into parent's
    sum_vote_pkg = np.zeros((T, k), dtype=np.int64)
    vote_fold_r = np.full((T, k), _BIG, dtype=np.int64)
    vote_pkg_val = np.zeros((T, k), dtype=np.int64)
    missing_vote = np.zeros((T, k), dtype=np.int64)
    dec_round = np.full((T, k), _BIG, dtype=np.int64)
    dec_snap = np.zeros((T, k), dtype=bool)
    pending = np.zeros((T, k), dtype=bool)
    heard = np.zeros((T, k), dtype=bool)
    trial_rows = np.arange(T)[:, None]

    def register(tv: np.ndarray, cv: np.ndarray) -> None:
        """First upward subframe from child ``cv`` registers it."""
        fresh = ~registered[tv, cv]
        tv, cv = tv[fresh], cv[fresh]
        if not len(tv):
            return
        registered[tv, cv] = True
        pv = par[tv, cv]
        np.add.at(wait_count, (tv, pv), ~count_rec[tv, cv])
        np.add.at(wait_vote, (tv, pv), ~vote_rec[tv, cv])

    for r in range(F + 1, sch.decide_end + 1):
        ri = r - r0
        # ---- deliveries of frames sent at r - 1 (handlers) ----
        if r <= F + (A - 1) * to + 1:
            tv, cv = np.nonzero(claim_reg == r)
            register(tv, cv)
        if sch.child_end < r <= sch.count_last_call + (A - 1) * to + 1:
            age = (r - 1) - count_fold_r
            deliv = (
                par_valid
                & (age >= 0)
                & (age % to == 0)
                & (age < A * to)
                & (crash > r - 1)
                & (crash_par > r)
                & ~drop_up[:, :, ri]
            )
            tv, cv = np.nonzero(deliv)
            if len(tv):
                register(tv, cv)
                fresh = ~count_rec[tv, cv]
                tv, cv = tv[fresh], cv[fresh]
                if len(tv):
                    count_rec[tv, cv] = True
                    pv = par[tv, cv]
                    np.add.at(wait_count, (tv, pv), -1)
                    np.add.at(sum_counts, (tv, pv), c_value[tv, cv])
        if sch.child_end + 1 < r <= sch.tokens_end:
            # Token acks (parent -> child), sent at receipt round r - 1.
            deliv = (
                (ack_pend >= 0) & (crash > r) & ~drop_dn[:, :, ri]
            )
            hit = deliv & (o_seq == ack_pend)
            transferred[hit] += 1
            out_seq[hit] += 1
            o_seq[hit] = -1
        new_ack = np.full((T, k), -1, dtype=np.int64)
        if sch.child_end < r <= sch.tokens_end:
            # Token frames (child -> parent), payload captured at send.
            deliv = (
                tok_frame
                & (crash_par > r)
                & ~drop_up[:, :, ri]
            )
            tv, cv = np.nonzero(deliv)
            if len(tv):
                register(tv, cv)
                seqs = fl_seq[tv, cv]
                new_ack[tv, cv] = seqs
                fresh = ~seen[tv, cv, seqs]
                seen[tv, cv, seqs] = True
                tv, cv, sl = tv[fresh], cv[fresh], fl_slot[tv, cv][fresh]
                if len(tv):
                    pv = par[tv, cv]
                    # Engine inbox order: ascending sender within a round.
                    order = np.lexsort((cv, pv, tv))
                    tvs, pvs, sls = tv[order], pv[order], sl[order]
                    g = tvs * k + pvs
                    startmask = np.empty(len(g), dtype=bool)
                    startmask[0] = True
                    startmask[1:] = g[1:] != g[:-1]
                    gstart = np.flatnonzero(startmask)
                    gsize = np.diff(np.append(gstart, len(g)))
                    rank = np.arange(len(g)) - np.repeat(gstart, gsize)
                    buf[tvs, pvs, tail[tvs, pvs] + rank] = sls
                    np.add.at(tail, (tvs, pvs), 1)
        tok_frame[:] = False
        ack_pend = new_ack
        if sch.tokens_end < r <= sch.vote_last_call + (A - 1) * to + 1:
            age = (r - 1) - vote_fold_r
            deliv = (
                par_valid
                & (age >= 0)
                & (age % to == 0)
                & (age < A * to)
                & (crash > r - 1)
                & (crash_par > r)
                & ~drop_up[:, :, ri]
            )
            tv, cv = np.nonzero(deliv)
            if len(tv):
                register(tv, cv)
                fresh = ~vote_rec[tv, cv]
                tv, cv = tv[fresh], cv[fresh]
                if len(tv):
                    vote_rec[tv, cv] = True
                    pv = par[tv, cv]
                    np.add.at(wait_vote, (tv, pv), -1)
                    np.add.at(sum_vote_pkg, (tv, pv), vote_pkg_val[tv, cv])
                    # Included iff recorded before the parent's fold.
                    vote_inc[tv, cv] = vote_fold_r[tv, pv] > r
        if r > sch.tokens_end:
            page = (r - 1) - dec_round[trial_rows, par]
            deliv = (
                par_valid
                & pending
                & (dec_round == _BIG)
                & (page >= 0)
                & (page % to == 0)
                & (page < A * to)
                & (crash_par > r - 1)
                & (crash > r)
                & ~drop_dn[:, :, ri]
            )
            dec_round[deliv] = r
            heard |= deliv
        # ---- ticks (timers), alive nodes only ----
        alive_r = crash > r
        if sch.child_end <= r <= sch.count_last_call:
            fold = (
                alive_r
                & (count_fold_r == _BIG)
                & ((wait_count == 0) | (r >= sch.count_last_call))
            )
            count_fold_r[fold] = r
            c_value[fold] = (s + sum_counts[fold]) % tau
        if sch.child_end <= r < sch.tokens_end:
            active = alive_r & (count_fold_r <= r) & ~packaged
            # Retransmit or give up on the outstanding token.
            due = active & (o_seq >= 0) & (r - tok_last >= to)
            retry = due & (tok_att < A)
            tok_frame[retry] = True
            fl_seq[retry] = o_seq[retry]
            fl_slot[retry] = o_slot[retry]
            tok_att[retry] += 1
            tok_last[retry] = r
            quit_ = due & ~retry
            given_up[quit_] += 1
            o_seq[quit_] = -1
            out_seq[quit_] += 1
            owed = c_value - transferred - given_up
            # Roots drain owed tokens into the discard bin as they arrive.
            drain = np.where(
                active & ~par_valid,
                np.minimum(np.maximum(owed, 0), tail - head),
                0,
            )
            head += drain
            transferred += drain
            # Non-roots start the next stop-and-wait transfer.
            start = (
                active
                & par_valid
                & (o_seq < 0)
                & (owed > 0)
                & (tail > head)
            )
            tv, cv = np.nonzero(start)
            if len(tv):
                sl = buf[tv, cv, head[tv, cv]]
                head[tv, cv] += 1
                o_seq[tv, cv] = out_seq[tv, cv]
                o_slot[tv, cv] = sl
                tok_frame[tv, cv] = True
                fl_seq[tv, cv] = out_seq[tv, cv]
                fl_slot[tv, cv] = sl
                tok_att[tv, cv] = 1
                tok_last[tv, cv] = r
        if r == sch.tokens_end:
            pack = alive_r & (count_fold_r <= r) & ~packaged
            lost = pack & (o_seq >= 0)
            given_up[lost] += 1
            o_seq[lost] = -1
            shortfall[pack] = np.maximum(
                0, (c_value - transferred)[pack]
            )
            my_pkgs[pack] = (tail - head)[pack] // tau
            packaged |= pack
        if sch.tokens_end <= r <= sch.vote_last_call:
            fold = (
                alive_r
                & packaged
                & (vote_fold_r == _BIG)
                & ((wait_vote == 0) | (r >= sch.vote_last_call))
            )
            vote_fold_r[fold] = r
            missing_vote[fold] = wait_vote[fold]
            vote_pkg_val[fold] = (my_pkgs + sum_vote_pkg)[fold]
            root_fold = fold & ~par_valid
            dec_round[root_fold] = r
            heard |= root_fold
        if r >= sch.tokens_end:
            newdec = alive_r & (dec_round <= r) & ~dec_snap
            if newdec.any():
                pending |= registered & newdec[trial_rows, par] & par_valid
                dec_snap |= newdec
    # ---- post-loop aggregation ----
    alive = crash == _NEVER
    unheard_nodes = alive & (dec_round == _BIG)
    is_frag_root = alive & ~par_valid
    # Parent-pointer chains are acyclic ((best, -dist) strictly increases
    # along them), so pointer doubling converges in ceil(log2 k) + 1 hops.
    frag = par.copy()
    for _ in range(max(1, k).bit_length() + 1):
        nxt = frag[trial_rows, frag]
        if np.array_equal(nxt, frag):
            break
        frag = nxt
    # Counted closure: every vote_inc link on the path to a live root.
    counted = is_frag_root.copy()
    for _ in range(k):
        nxt = counted | (vote_inc & counted[trial_rows, par])
        if np.array_equal(nxt, counted):
            break
        counted = nxt
    # Closure must reproduce each fragment root's folded package total.
    ell = np.zeros((T, k), dtype=np.int64)
    tv, cv = np.nonzero(counted)
    np.add.at(ell, (tv, frag[tv, cv]), my_pkgs[tv, cv])
    roots_t, roots_v = np.nonzero(is_frag_root)
    bad = ell[roots_t, roots_v] != vote_pkg_val[roots_t, roots_v]
    if bad.any():
        b = int(np.flatnonzero(bad)[0])
        raise SimulationError(
            f"fault-plane closure found {int(ell[roots_t[b], roots_v[b]])} "
            f"packages for fragment root {int(roots_v[b])} of trial "
            f"{int(roots_t[b])} but its fold counted "
            f"{int(vote_pkg_val[roots_t[b], roots_v[b]])} — replay and "
            f"protocol disagree"
        )
    # Counted package membership, node-major, buffer order.
    tv, cv = np.nonzero(counted & (my_pkgs > 0))
    npkg = my_pkgs[tv, cv]
    counts = npkg * tau
    offsets = np.arange(counts.sum()) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    rep_t = np.repeat(tv, counts)
    rep_v = np.repeat(cv, counts)
    slots = buf[rep_t, rep_v, head[rep_t, rep_v] + offsets]
    members = slots.reshape(-1, tau)
    pkg_trial = np.repeat(tv, npkg)
    pkg_owner = np.repeat(cv, npkg)
    pkg_root = frag[pkg_trial, pkg_owner]
    # Per-fragment-root thresholds (lru-cached solve per distinct ell).
    threshold = np.full((T, k), -2, dtype=np.int64)
    for t, v in zip(roots_t.tolist(), roots_v.tolist()):
        l = int(vote_pkg_val[t, v])
        if l == 0:
            threshold[t, v] = -1
            continue
        try:
            threshold[t, v] = tester.params.threshold_for(l)
        except InfeasibleParametersError:
            threshold[t, v] = -1
    members.setflags(write=False)
    return ReplayedTrials(
        k=k,
        tau=tau,
        tokens_per_node=s,
        trials=T,
        alive=alive,
        frag_root=frag,
        is_frag_root=is_frag_root,
        heard=heard,
        threshold=threshold,
        members=members,
        pkg_trial=pkg_trial,
        pkg_root=pkg_root,
        shortfall=(shortfall * alive).sum(axis=1),
        missing_subtrees=(missing_vote * alive).sum(axis=1),
        unheard=unheard_nodes.sum(axis=1),
    )


@dataclass(frozen=True, eq=False)
class HardenedFaultPlane:
    """Per-trial-keyed fault sweeps off the engine: build once, score
    any sample batch.

    ``build`` validates and replays one hardened trial per plan;
    :meth:`score_seeds` then reproduces ``tester.run(topology, dist,
    rng=seed, faults=plans[i])`` for every column ``i`` — verdict and
    agreement bit-identical per seed, plus the sample-independent
    degradation counters on :attr:`trials`.
    """

    tester: HardenedCongestTester
    topology: Topology
    plans: Tuple[FaultPlan, ...]
    trials: ReplayedTrials
    d_hint: Optional[int] = None

    @staticmethod
    def build(
        tester: HardenedCongestTester,
        topology: Topology,
        plans: Sequence[FaultPlan],
        d_hint: Optional[int] = None,
    ) -> "HardenedFaultPlane":
        with telemetry.span("fault_plane.build", trials=len(plans)):
            replayed = replay_hardened_trials(
                tester, topology, plans, d_hint=d_hint
            )
        return HardenedFaultPlane(
            tester=tester,
            topology=topology,
            plans=tuple(plans),
            trials=replayed,
            d_hint=d_hint,
        )

    def score_seeds(
        self, distribution: DiscreteDistribution, seeds: Sequence[int]
    ) -> FaultPlaneScore:
        """Score trial ``i`` on the samples ``ensure_rng(seeds[i])``
        draws — exactly the engine path's ``sample_matrix(k, s)``
        stream, so the verdicts match ``tester.run`` per seed."""
        if len(seeds) != self.trials.trials:
            raise ParameterError(
                f"need one seed per plan: {len(seeds)} seeds, "
                f"{self.trials.trials} plans"
            )
        total = self.trials.total_tokens
        with telemetry.span(
            "fault_plane.draw", trials=len(seeds)
        ) as sp:
            flat = np.stack(
                [distribution.sample(total, ensure_rng(sd)) for sd in seeds]
            )
            sp.count("tokens", total * len(seeds))
        return self.trials.score(flat)
