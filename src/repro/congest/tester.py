"""Theorem 1.4 — the end-to-end CONGEST uniformity tester.

Pipeline (Section 5): every node starts with **one sample** of the unknown
``μ``.  The network

1. runs :mod:`τ-token packaging <repro.congest.token_packaging>` to
   concentrate the ``k`` samples into ``ℓ = Θ(k/τ)`` *virtual nodes*
   (packages) of exactly ``τ`` samples each,
2. each package runs the single-collision tester ``A_δ`` (a package with a
   repeated sample is an alarm),
3. the alarm count and the package count are convergecast to the BFS root,
4. the root places the Theorem 1.2 threshold for the *actual* number of
   virtual nodes ``ℓ`` and broadcasts the verdict down the tree.

Round complexity: ``O(D)`` for flooding/convergecast/broadcast plus ``τ``
for token forwarding — with ``τ = Θ(n/(kε⁴))`` this is the theorem's
``O(D + n/(kε⁴))``.  Every message respects the CONGEST budget of
``max(⌈log₂ n⌉, 2⌈log₂ k⌉)`` bits (engine-enforced).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.core.binomial import find_separating_threshold
from repro.core.collision import (
    collision_free_probability_uniform,
    effective_delta,
    far_accept_upper_bound,
    gamma_slack,
)
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.simulator.engine import EngineReport, SynchronousEngine
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology
from repro.simulator.message import Message, bits_for_domain, bits_for_int
from repro.simulator.node import Context
from repro.congest.token_packaging import (
    TokenPackagingProgram,
    WarmStart,
    warm_start_views,
)

_VOTE = "vote"
_DECIDE = "decide"


@dataclass(frozen=True)
class CongestParameters:
    """Solved Theorem 1.4 instance.

    Attributes
    ----------
    n, k, eps, p:
        Problem parameters; each node holds one sample (``s = 1``).
    tau:
        Package size — samples per virtual node.
    expected_virtual_nodes:
        ``⌊k/τ⌋``, the upper bound on packages (at most ``τ−1`` samples
        are dropped so at least ``⌊(k−τ+1)/τ⌋`` are formed).
    delta:
        Per-package collision probability budget ``binom(τ,2)/n``.
    gamma:
        γ slack at ``(n, τ, ε)`` (reported for comparison with the
        asymptotic analysis; threshold placement uses exact tails).
    alarm_prob_uniform:
        Exact upper bound on ``Pr[package alarms | uniform]``.
    alarm_prob_far:
        Lemma 3.3 lower bound on ``Pr[package alarms | ε-far]``.
    """

    n: int
    k: int
    eps: float
    p: float
    tau: int
    expected_virtual_nodes: int
    delta: float
    gamma: float
    alarm_prob_uniform: float
    alarm_prob_far: float
    samples_per_node: int = 1

    def predicted_rounds(self, diameter: int) -> float:
        """The paper's ``O(D + τ)`` with constant ≈ 5 for our phase count
        (flood + child + count + tokens + vote + decide)."""
        return 5.0 * diameter + self.tau + 10.0

    def threshold_for(self, virtual_nodes: int) -> int:
        """Exact-tail threshold for the realised package count.

        The alarm count under uniform is dominated by
        ``Bin(ℓ, alarm_prob_uniform)`` and under any ε-far distribution
        dominates ``Bin(ℓ, alarm_prob_far)``; the threshold separates the
        two at error ``p`` per side.

        Memoised per realised ``ℓ``: :func:`find_separating_threshold` is
        ``lru_cache``d, so across Monte-Carlo trials the threshold is
        solved once per distinct package count instead of once per trial.
        """
        threshold = find_separating_threshold(
            virtual_nodes, self.alarm_prob_uniform, self.alarm_prob_far, self.p
        )
        if threshold is None:
            raise InfeasibleParametersError(
                f"no threshold separates the alarm distributions for "
                f"l={virtual_nodes} packages of tau={self.tau} samples at "
                f"n={self.n}, eps={self.eps}"
            )
        return threshold


@lru_cache(maxsize=4096)
def _alarm_probabilities(n: int, tau: int, eps: float) -> "tuple[float, float]":
    """Exact per-package alarm probabilities ``(uniform, far lower bound)``.

    Uniform side: ``1 − ∏(1 − i/n)`` exactly.  Far side: Lemma 3.2 gives
    ``χ ≥ (1+ε²)/n`` and Lemma 3.3 turns it into the acceptance bound
    ``e^{−t}(1+t)``; the alarm probability is its complement.

    Memoised: the τ solver and every Monte-Carlo trial's threshold
    placement revisit the same ``(n, τ, ε)`` points.
    """
    p_uniform = 1.0 - collision_free_probability_uniform(n, tau)
    chi_far = (1.0 + eps * eps) / n
    p_far = 1.0 - far_accept_upper_bound(chi_far, tau)
    return p_uniform, p_far


def congest_parameters(
    n: int, k: int, eps: float, p: float = 1.0 / 3.0, samples_per_node: int = 1
) -> CongestParameters:
    """Choose the package size ``τ`` for Theorem 1.4 at ``(n, k, ε, p)``.

    Returns the smallest ``τ`` for which the exact binomial alarm-count
    tails are separable at error ``p`` for the worst-case realised package
    count ``ℓ = ⌊(k·s − τ + 1)/τ⌋`` — minimising ``τ`` minimises the
    protocol's ``O(D + τ)`` round complexity, which is the theorem's
    objective.  The asymptotic shape ``τ = Θ(n/(kε⁴))`` is reproduced by
    benchmark E6.  ``samples_per_node`` is the paper's "generalises to
    larger s": every node contributes ``s`` tokens.

    Instead of the naive linear scan, the search probes ``τ = 2, 4, 8, …``
    until it crosses the feasibility frontier and then bisects down to the
    smallest feasible value (``O(log τ)`` tail evaluations; separability
    is monotone at the lower frontier — more samples per package means
    more separation per package, faster than the package count shrinks).
    If no probe is feasible the exact linear scan runs as a fallback
    before declaring the instance infeasible, so the result matches the
    naive scan on every input.
    """
    if k < 2:
        raise ParameterError(f"CONGEST tester needs k >= 2 nodes, got {k}")
    if samples_per_node < 1:
        raise ParameterError(
            f"samples_per_node must be >= 1, got {samples_per_node}"
        )
    total = k * samples_per_node

    def feasible(tau: int) -> bool:
        virtual = (total - tau + 1) // tau
        if virtual < 1:
            return False
        p_uniform, p_far = _alarm_probabilities(n, tau, eps)
        if p_far <= p_uniform:
            return False
        return find_separating_threshold(virtual, p_uniform, p_far, p) is not None

    # Largest tau that still yields at least one package.
    tau_cap = (total + 1) // 2
    lo, hi = 1, None  # lo: known infeasible, hi: known feasible
    probe = 2
    while probe <= tau_cap:
        if feasible(probe):
            hi = probe
            break
        lo = probe
        probe *= 2
    if hi is None and lo < tau_cap and feasible(tau_cap):
        hi = tau_cap
    if hi is None:
        # Feasibility can be non-monotone near tau_cap (the per-package
        # alarm probabilities both approach 1); re-check exhaustively with
        # the legacy scan before declaring the instance infeasible.
        for tau in range(2, tau_cap + 1):
            if feasible(tau):
                lo, hi = tau - 1, tau
                break
        else:
            raise InfeasibleParametersError(
                f"no package size tau makes Theorem 1.4 feasible at n={n}, "
                f"k={k}, eps={eps}, p={p}: the network does not hold enough "
                f"samples (total k samples must be Omega(sqrt(n)/eps^2))"
            )
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    tau = hi
    p_uniform, p_far = _alarm_probabilities(n, tau, eps)
    return CongestParameters(
        n=n,
        k=k,
        eps=eps,
        p=p,
        samples_per_node=samples_per_node,
        tau=tau,
        expected_virtual_nodes=total // tau,
        delta=effective_delta(n, tau),
        gamma=gamma_slack(n, tau, eps),
        alarm_prob_uniform=p_uniform,
        alarm_prob_far=p_far,
    )


class CongestTesterProgram(TokenPackagingProgram):
    """Token packaging extended with testing, voting, and the verdict.

    After packaging, each node tests its packages locally (one alarm per
    package containing a collision), convergecasts ``(alarms, packages)``
    pairs up the tree, and the root broadcasts accept/reject.  Every node
    halts with the network verdict (``True`` = uniform).
    """

    def __init__(
        self,
        node_id: int,
        k: int,
        params: CongestParameters,
        token: int,
        token_bits: int,
        warm_start: Optional[WarmStart] = None,
    ) -> None:
        super().__init__(
            node_id=node_id,
            k=k,
            tau=params.tau,
            token=token,
            token_bits=token_bits,
            warm_start=warm_start,
        )
        self.params = params
        self.my_alarms = 0
        self.my_packages = 0
        self.vote_pending: set = set()
        self.vote_alarms = 0
        self.vote_packages = 0
        self.vote_sent = False
        self.decision: Optional[bool] = None

    # -- phase 5: local testing + vote convergecast -------------------------

    def _on_packaged(self, ctx: Context, packages) -> None:
        self.my_packages = len(packages)
        for package in packages:
            if len(set(package)) < len(package):
                self.my_alarms += 1
        self.phase = _VOTE
        self.vote_pending = set(self.children)
        self.vote_alarms = self.my_alarms
        self.vote_packages = self.my_packages
        if not self.vote_pending:
            self._send_vote(ctx)

    def _vote_bits(self) -> int:
        return 2 * bits_for_int(self.k)

    def _send_vote(self, ctx: Context) -> None:
        self.vote_sent = True
        if self.parent is not None:
            ctx.send(
                self.parent,
                (self.vote_alarms, self.vote_packages),
                bits=self._vote_bits(),
                tag=_VOTE,
            )
        else:
            # Root: place the threshold for the realised package count and
            # decide.  A degenerate run with zero packages accepts (it can
            # also only happen when k < 2 tau, outside the solver's regime).
            if self.vote_packages == 0:
                self.decision = True
            else:
                threshold = self.params.threshold_for(self.vote_packages)
                self.decision = self.vote_alarms < threshold
            self.phase = _DECIDE
            for child in self.children:
                ctx.send(child, self.decision, bits=1, tag=_DECIDE)
            ctx.halt(bool(self.decision))

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if self.phase == _VOTE:
            for msg in inbox:
                if msg.tag == _VOTE and msg.src in self.vote_pending:
                    self.vote_pending.discard(msg.src)
                    alarms, packages = msg.payload
                    self.vote_alarms += int(alarms)
                    self.vote_packages += int(packages)
            if not self.vote_pending and not self.vote_sent:
                self._send_vote(ctx)
            elif self.vote_sent and self.parent is not None:
                for msg in inbox:
                    if msg.tag == _DECIDE:
                        self._relay_decision(ctx, bool(msg.payload))
            return
        super().on_round(ctx, inbox)

    def _relay_decision(self, ctx: Context, decision: bool) -> None:
        self.decision = decision
        for child in self.children:
            ctx.send(child, decision, bits=1, tag=_DECIDE)
        ctx.halt(decision)


@dataclass(frozen=True)
class CongestUniformityTester:
    """Runner for the Theorem 1.4 protocol.

    Examples
    --------
    >>> params = congest_parameters(n=2_000, k=4_000, eps=0.8)
    >>> params.tau >= 2
    True
    """

    params: CongestParameters

    @staticmethod
    def solve(
        n: int,
        k: int,
        eps: float,
        p: float = 1.0 / 3.0,
        samples_per_node: int = 1,
    ) -> "CongestUniformityTester":
        """Choose parameters and build the tester."""
        return CongestUniformityTester(
            params=congest_parameters(n, k, eps, p, samples_per_node)
        )

    def run(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        rng: SeedLike = None,
        warm_start: bool = False,
        faults: Optional[FaultPlan] = None,
    ) -> Tuple[bool, EngineReport]:
        """Execute the protocol once; returns ``(accepted, report)``.

        Draws one fresh sample per node, simulates the full protocol, and
        returns the network verdict plus measured round/message counts.
        ``warm_start=True`` skips the tree-building phases using the
        topology's cached schedule — same verdict (tested), but the
        report's round count then excludes the ``O(D)`` prefix; keep it
        off when measuring the Theorem 1.4 round bound.

        ``faults`` forwards a fault plan to the engine; this protocol
        assumes reliable delivery (see
        :class:`repro.congest.hardened.HardenedCongestTester` for the
        fault-tolerant variant), so only ``FaultPlan.none()`` is useful
        here — it asserts the bit-identity contract end to end.
        """
        if topology.k != self.params.k:
            raise ParameterError(
                f"tester solved for k={self.params.k}, topology has {topology.k}"
            )
        if distribution.n != self.params.n:
            raise ParameterError(
                f"tester solved for n={self.params.n}, distribution has "
                f"{distribution.n}"
            )
        gen = ensure_rng(rng)
        s = self.params.samples_per_node
        samples = distribution.sample_matrix(topology.k, s, gen)
        return self.run_from_samples(
            topology, samples, warm_start=warm_start, faults=faults, rng=gen
        )

    def run_from_samples(
        self,
        topology: Topology,
        samples: np.ndarray,
        warm_start: bool = False,
        faults: Optional[FaultPlan] = None,
        rng: SeedLike = None,
    ) -> Tuple[bool, EngineReport]:
        """Execute the protocol on a fixed ``(k, s)`` sample matrix.

        The deterministic tail of :meth:`run` — everything after the
        sampling step.  Exposed so the trial plane
        (:mod:`repro.congest.trial_plane`) can re-run the engine on the
        exact samples a vectorised trial consumed and compare verdicts
        bit for bit.  The protocol draws no node randomness, so for a
        fixed sample matrix the run is fully deterministic; ``rng`` only
        seeds the engine's (never-materialised) per-node generators.
        """
        samples = np.asarray(samples)
        s = self.params.samples_per_node
        if samples.shape != (topology.k, s):
            raise ParameterError(
                f"expected a ({topology.k}, {s}) sample matrix, got "
                f"{samples.shape}"
            )
        tokens = samples.tolist()  # native ints, one list per node
        token_bits = bits_for_domain(self.params.n)
        bandwidth = max(token_bits, 2 * bits_for_int(topology.k))
        engine = SynchronousEngine(
            topology,
            bandwidth_bits=bandwidth,
            max_rounds=50 * (topology.diameter_upper_bound() + self.params.tau + 10),
            deadlock_quiet_rounds=self.params.tau + 6,
            faults=faults,
            # Telemetry phase labels, one per quiet-separated segment:
            # the CLAIM/COUNT convergecasts share a segment, as do
            # VOTE/DECIDE (no globally-quiet round between them).
            phase_names=(
                ("tokens", "vote_decide")
                if warm_start
                else ("flood", "claim_count", "tokens", "vote_decide")
            ),
        )
        views = (
            warm_start_views(topology, self.params.tau, s) if warm_start else None
        )
        report = engine.run(
            lambda v: CongestTesterProgram(
                node_id=v,
                k=topology.k,
                params=self.params,
                token=tokens[v],
                token_bits=token_bits,
                warm_start=None if views is None else views[v],
            ),
            rng,
        )
        verdicts = set(report.outputs)
        if len(verdicts) != 1:
            raise ParameterError(f"nodes disagree on the verdict: {verdicts}")
        return bool(report.outputs[0]), report

    def estimate_error(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
        workers: int = 1,
        warm_start: bool = True,
        fast_path: bool = False,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate over full protocol executions.

        Seed-like ``rng`` routes through the trial engine: chunk-keyed
        streams, reproducible for any ``workers``, and ``workers > 1``
        fans full protocol executions out over a process pool.  A
        ``Generator`` parent falls back to the sequential legacy loop.

        ``warm_start`` (default on) runs each trial from the topology's
        cached tree schedule — the error rate is bit-identical to cold
        trials (the protocols draw no node randomness after sampling, and
        the verdict equivalence is tested) at a fraction of the cost.
        Pass ``False`` to measure the full protocol.

        ``fast_path=True`` (seed-like ``rng`` only) skips the engine
        entirely: trial verdicts are computed in numpy from the
        :class:`~repro.congest.trial_plane.PackagingLayout` of the
        topology's tree schedule, bit-identical per trial to the engine
        route because both consume the same chunk-keyed sample streams.
        ``engine_check`` re-runs that fraction of the trials (at least
        one, a prefix of the same stream) through the real engine and
        raises if any verdict disagrees.  The engine remains the
        measurement of record for rounds/bandwidth; the fast path exists
        for error-rate sweeps, where only the verdict matters.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if rng is None or isinstance(rng, (int, np.integer)):
            base_seed = 0 if rng is None else int(rng)
            if fast_path:
                from repro.congest.trial_plane import CongestTrialRunner

                runner = CongestTrialRunner.build(self, topology)
                return runner.error_rate(
                    distribution,
                    is_uniform,
                    trials,
                    base_seed=base_seed,
                    workers=workers,
                    engine_check=engine_check,
                )
            from repro.experiments.runner import TrialRunner

            experiment = _CongestTrialExperiment(
                tester=self,
                topology=topology,
                distribution=distribution,
                is_uniform=is_uniform,
                warm_start=warm_start,
            )
            est = TrialRunner(base_seed=base_seed).error_rate(
                experiment, trials, "congest", topology.k, workers=workers
            )
            return est.rate
        if fast_path:
            raise ParameterError(
                "fast_path needs a seed-like rng (None or int): the trial "
                "plane replays chunk-keyed streams, not a shared Generator"
            )
        gen = ensure_rng(rng)
        errors = 0
        for _ in range(trials):
            accepted, _ = self.run(topology, distribution, gen, warm_start=warm_start)
            if accepted != is_uniform:
                errors += 1
        return errors / trials


@dataclass(frozen=True)
class _CongestTrialExperiment:
    """Picklable scalar experiment: one full protocol run, ``True`` = error."""

    tester: CongestUniformityTester
    topology: Topology
    distribution: DiscreteDistribution
    is_uniform: bool
    warm_start: bool = False

    def __call__(self, rng: np.random.Generator) -> bool:
        accepted, _ = self.tester.run(
            self.topology, self.distribution, rng, warm_start=self.warm_start
        )
        return accepted != self.is_uniform
