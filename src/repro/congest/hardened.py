"""Fault-tolerant variants of the CONGEST protocols.

The protocols in :mod:`repro.congest.token_packaging` and
:mod:`repro.congest.tester` assume the synchronous model's perfect
delivery: every phase transition keys off *globally quiet rounds*, and a
single lost message deadlocks the network (a parent waits forever for a
count that will never arrive).  This module hardens them against the
engine's :class:`~repro.simulator.faults.FaultPlan` — message drops,
delivery delays, and crash-stop failures — with three standard devices:

1. **Timer-driven phases.**  Quiet rounds are meaningless under loss, so
   every node derives a fixed :class:`PhaseSchedule` of absolute round
   windows from shared constants (``d_hint`` — an upper bound on the
   diameter — ``τ``, and the :class:`RetryPolicy`).  Nodes act on the
   clock, never on global silence.
2. **Ack/retransmit with bounded retries.**  Every point-to-point payload
   (child claims, count and vote convergecasts, token transfers, verdict
   broadcast) is acknowledged; the sender retransmits every
   ``policy.timeout`` rounds up to ``policy.max_retries`` retries, then
   *gives up and records it* instead of blocking.  Token transfers are
   stop-and-wait with per-token sequence numbers, so drops can lose a
   token (bounded, reported) but never duplicate one.
3. **Graceful degradation.**  A parent whose child never reports by the
   phase's last-call deadline proceeds without that subtree and reports
   it (``missing_count_children`` / ``missing_vote_children``); the root
   places the Theorem 1.2 threshold for the *realised* package count, so
   losing a subtree shrinks the evidence rather than corrupting it; a
   node that never hears the verdict defaults to **reject** (the
   conservative verdict) and is flagged ``unheard``.

Model note: messages between a node pair are merged into one *frame* per
directed edge per round (the CONGEST "one message per edge" rule,
engine-enforced); a frame carries a bounded number of ``O(log n + log
k)``-bit subframes, so the protocol stays within a constant-factor
CONGEST budget.  The hardened protocols use no node randomness, so under
a fixed :class:`FaultPlan` a run is bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.congest.tester import CongestParameters, congest_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import (
    InfeasibleParametersError,
    ParameterError,
)
from repro.rng import SeedLike, ensure_rng
from repro.simulator.engine import EngineReport, SynchronousEngine
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology
from repro.simulator.message import Message, bits_for_domain, bits_for_int
from repro.simulator.node import Context, NodeProgram

_FRAME = "frame"

# Subframe kinds (short strings keep traces readable).
_FL = "flood"
_CL = "claim"
_CLA = "claim-ack"
_CT = "count"
_CTA = "count-ack"
_TK = "token"
_TKA = "token-ack"
_VT = "vote"
_VTA = "vote-ack"
_DC = "decide"
_DCA = "decide-ack"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry contract for every acknowledged transfer.

    A payload is (re)sent up to ``max_retries + 1`` times total, waiting
    ``timeout`` rounds for an ack between attempts (the engine's
    round-trip is 2 rounds, so the default timeout of 2 retransmits
    exactly when an ack is overdue).  After the final attempt's timeout
    the sender gives up and records the failure; it never blocks.
    """

    timeout: int = 2
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ParameterError(f"timeout must be >= 1, got {self.timeout}")
        if self.max_retries < 0:
            raise ParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    @property
    def attempts(self) -> int:
        """Total transmissions per payload (first send + retries)."""
        return self.max_retries + 1

    @property
    def window(self) -> int:
        """Rounds one acknowledged transfer may take before give-up."""
        return self.timeout * self.attempts + 2


@dataclass(frozen=True)
class PhaseSchedule:
    """Absolute round windows shared by every node.

    Built from constants all nodes know (``d_hint``, ``τ``, the policy),
    so the phase transitions are synchronised *by the clock* instead of
    by global quiet rounds — the device that loss breaks.
    """

    flood_end: int
    child_end: int
    count_last_call: int
    count_end: int
    tokens_end: int
    vote_last_call: int
    vote_end: int
    decide_end: int

    @staticmethod
    def build(d_hint: int, tau: int, policy: RetryPolicy) -> "PhaseSchedule":
        if d_hint < 1:
            raise ParameterError(f"d_hint must be >= 1, got {d_hint}")
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        w = policy.window
        # Flooding re-announces every round, so a hop's latency under drop
        # probability p is geometric; doubling the hop budget plus one full
        # retry window absorbs the tail at the rates we harden for.
        flood_end = 2 * (d_hint + 2) + policy.timeout * policy.attempts
        child_end = flood_end + w
        count_end = child_end + 2 * (d_hint + 1) + 2 * w
        count_last_call = count_end - w
        # Stop-and-wait moves one token per 2 rounds; c(v) <= tau - 1.
        tokens_end = count_end + 2 * (tau + 2) + 2 * w
        vote_end = tokens_end + 2 * (d_hint + 1) + 2 * w
        vote_last_call = vote_end - w
        decide_end = vote_end + 2 * (d_hint + 1) + 2 * w
        return PhaseSchedule(
            flood_end=flood_end,
            child_end=child_end,
            count_last_call=count_last_call,
            count_end=count_end,
            tokens_end=tokens_end,
            vote_last_call=vote_last_call,
            vote_end=vote_end,
            decide_end=decide_end,
        )


def hardened_bandwidth(n_bits: int, k: int, tau: int) -> int:
    """Per-edge per-round frame budget (constant-factor CONGEST).

    A frame merges at most one subframe of each kind in flight between a
    pair, each ``O(log n + log k)`` bits; the budget sums their worst
    cases plus slack for the one-bit acks.
    """
    id_bits = 2 * bits_for_int(k)
    seq_bits = bits_for_int(tau) + 1
    return 2 * id_bits + 2 * (n_bits + seq_bits) + bits_for_int(tau) + 16


@dataclass(frozen=True)
class HardenedPackagingOutcome:
    """One node's output from the hardened packaging protocol.

    ``shortfall`` counts tokens the node owed its parent but could not
    confirm delivered — retries exhausted or supply never arrived.  A
    given-up token is *discarded locally* (the parent may have received
    it even though every ack was lost), so faults can lose tokens but
    never duplicate them into two packages.
    """

    packages: Tuple[Tuple[int, ...], ...]
    leftover: Tuple[int, ...]
    is_root: bool
    shortfall: int
    missing_count_children: Tuple[int, ...]
    late_children: int
    claim_acked: bool


class HardenedTokenPackagingProgram(NodeProgram):
    """τ-token packaging rebuilt on timers, acks, and give-up deadlines.

    Phase windows (see :class:`PhaseSchedule`):

    - ``[0, flood_end)`` — every node re-broadcasts its best known
      ``(leader, dist)`` *every round*; repetition replaces reliability.
      The tree is frozen at ``flood_end``.
    - ``[flood_end, child_end)`` — acknowledged child claims (retried per
      the policy).  Parents also learn children *implicitly* from any
      later count/token/vote subframe, so a lost claim degrades instead
      of orphaning a subtree.
    - ``[child_end, count_end)`` — acknowledged count convergecast; at
      ``count_last_call`` a node still missing children gives up on them
      (recorded) and reports what it has.
    - ``[., tokens_end)`` — stop-and-wait token transfer to the parent
      with per-token sequence numbers; at ``tokens_end`` every node cuts
      whatever it holds into ⌊·/τ⌋ packages and reports the shortfall.
    """

    def __init__(
        self,
        node_id: int,
        k: int,
        tau: int,
        token: "int | Sequence[int]",
        token_bits: int,
        schedule: PhaseSchedule,
        policy: RetryPolicy,
    ) -> None:
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        self.node_id = node_id
        self.k = k
        self.tau = tau
        self.token_bits = token_bits
        self.schedule = schedule
        self.policy = policy
        initial = (
            [int(token)] if isinstance(token, int) else [int(t) for t in token]
        )
        if not initial:
            raise ParameterError("every node needs at least one token")
        self._initial_count = len(initial)
        # Flooding / tree state.
        self.best = node_id
        self.dist = 0
        self.parent: Optional[int] = None
        self.children: Set[int] = set()
        # Child-claim state.
        self.claim_acked = False
        self._claim_attempts = 0
        self._claim_last = -(1 << 30)
        # Count state.
        self.counts_received: Dict[int, int] = {}
        self.c_value: Optional[int] = None
        self.count_sent = False
        self.count_acked = False
        self.count_giveup = False
        self.missing_count_children: Tuple[int, ...] = ()
        self.late_children = 0
        self._count_attempts = 0
        self._count_last = -(1 << 30)
        # Token state.
        self.buffer: Deque[int] = deque(initial)
        self.transferred = 0  # ack-confirmed deliveries (or root discards)
        self._given_up = 0
        self.out_seq = 0
        self.outstanding: Optional[Tuple[int, int]] = None  # (seq, token)
        self._tok_attempts = 0
        self._tok_last = -(1 << 30)
        self._seen_token_seqs: Dict[int, Set[int]] = {}
        self.discarded: List[int] = []
        self.packaged = False
        # Frame assembly: dst -> list of (kind, payload, bits).
        self._out: Dict[int, List[Tuple[str, Any, int]]] = {}
        self._result: Any = None
        self._done = False

    # -- frame plumbing ----------------------------------------------------

    def _queue(self, dst: int, kind: str, payload: Any, bits: int) -> None:
        self._out.setdefault(dst, []).append((kind, payload, bits))

    def _flush(self, ctx: Context) -> None:
        if not self._out:
            return
        for dst in sorted(self._out):
            subs = self._out[dst]
            ctx.send(
                dst,
                tuple((kind, payload) for kind, payload, _ in subs),
                bits=sum(b for _, _, b in subs),
                tag=_FRAME,
            )
        self._out.clear()

    def _id_bits(self) -> int:
        return 2 * bits_for_int(self.k)

    def _seq_bits(self) -> int:
        return bits_for_int(self.tau) + 1

    @property
    def is_root(self) -> bool:
        """Root of this node's tree fragment (the global BFS root unless
        crashes disconnected the graph)."""
        return self.parent is None

    # -- engine hooks ------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self._announce(ctx)
        self._flush(ctx)
        ctx.request_wakeup(1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        r = ctx.round
        for msg in inbox:
            if msg.tag != _FRAME:
                continue
            for kind, payload in msg.payload:
                self._handle(ctx, msg.src, kind, payload, r)
        self._tick(ctx, r)
        self._flush(ctx)
        if self._done:
            ctx.halt(self._result)
        else:
            ctx.request_wakeup(r + 1)

    # -- subframe handlers -------------------------------------------------

    def _register_child(self, src: int) -> None:
        """Any upward subframe proves *src* is a tree child of ours."""
        self.children.add(src)

    def _handle(
        self, ctx: Context, src: int, kind: str, payload: Any, r: int
    ) -> None:
        if kind == _FL:
            # Frames sent at flood_end - 1 arrive at flood_end; later
            # stragglers are ignored — the tree is frozen.
            if r <= self.schedule.flood_end:
                self._adopt(src, payload)
        elif kind == _CL:
            self._register_child(src)
            self._queue(src, _CLA, None, 1)
        elif kind == _CLA:
            self.claim_acked = True
        elif kind == _CT:
            self._register_child(src)
            if src not in self.counts_received:
                self.counts_received[src] = int(payload)
                if self.count_sent:
                    # Too late to fold into our own count: the subtree's
                    # tokens still flow, only the mod-τ bookkeeping is off.
                    self.late_children += 1
            self._queue(src, _CTA, None, 1)
        elif kind == _CTA:
            self.count_acked = True
        elif kind == _TK:
            seq, token = payload
            self._register_child(src)
            seen = self._seen_token_seqs.setdefault(src, set())
            if seq not in seen:
                seen.add(seq)
                self.buffer.append(int(token))
            self._queue(src, _TKA, seq, self._seq_bits())
        elif kind == _TKA:
            if self.outstanding is not None and payload == self.outstanding[0]:
                self.outstanding = None
                self.transferred += 1
                self.out_seq += 1

    def _adopt(self, src: int, label: Tuple[int, int]) -> None:
        cand_best, cand_dist = label
        nd = cand_dist + 1
        if cand_best > self.best:
            self.best, self.dist, self.parent = cand_best, nd, src
        elif cand_best == self.best and self.parent is not None:
            if nd < self.dist or (nd == self.dist and src < self.parent):
                self.dist, self.parent = nd, src

    def _announce(self, ctx: Context) -> None:
        for u in ctx.neighbors:
            self._queue(u, _FL, (self.best, self.dist), self._id_bits())

    # -- per-round timers --------------------------------------------------

    def _tick(self, ctx: Context, r: int) -> None:
        s = self.schedule
        p = self.policy
        if r < s.flood_end:
            self._announce(ctx)
            return
        # Child claim: first send at flood_end, then retry on timeout.
        if (
            self.parent is not None
            and not self.claim_acked
            and self._claim_attempts < p.attempts
            and r - self._claim_last >= (p.timeout if self._claim_attempts else 0)
        ):
            self._queue(self.parent, _CL, None, 1)
            self._claim_attempts += 1
            self._claim_last = r
        # Count convergecast.
        if r >= s.child_end and not self.count_sent:
            waiting = self.children - set(self.counts_received)
            if not waiting or r >= s.count_last_call:
                self.missing_count_children = tuple(sorted(waiting))
                self.c_value = (
                    self._initial_count + sum(self.counts_received.values())
                ) % self.tau
                self.count_sent = True
                if self.parent is None:
                    self.count_acked = True
                else:
                    self._queue(
                        self.parent, _CT, self.c_value, bits_for_int(self.tau)
                    )
                    self._count_attempts = 1
                    self._count_last = r
        elif (
            self.count_sent
            and self.parent is not None
            and not self.count_acked
            and not self.count_giveup
            and r - self._count_last >= p.timeout
        ):
            if self._count_attempts < p.attempts:
                self._queue(
                    self.parent, _CT, self.c_value, bits_for_int(self.tau)
                )
                self._count_attempts += 1
                self._count_last = r
            else:
                self.count_giveup = True
        # Token forwarding (stop-and-wait; may overlap the count window).
        if self.count_sent and not self.packaged:
            if r >= s.tokens_end:
                self._finish_packaging(ctx)
            else:
                self._token_step(r)

    def _token_step(self, r: int) -> None:
        p = self.policy
        assert self.c_value is not None
        if self.outstanding is not None and r - self._tok_last >= p.timeout:
            if self._tok_attempts < p.attempts:
                seq, token = self.outstanding
                self._queue(
                    self.parent,
                    _TK,
                    (seq, token),
                    self.token_bits + self._seq_bits(),
                )
                self._tok_attempts += 1
                self._tok_last = r
            else:
                # Ack never came.  The parent may still have the token, so
                # keeping it would risk packaging it twice; discard and
                # count it against the shortfall instead.
                self._given_up += 1
                self.outstanding = None
                self.out_seq += 1
        owed = self.c_value - self.transferred - self._given_up
        if self.parent is None:
            # The root "forwards" into its discard bin, one per round is
            # unnecessary — drain what is owed as supply arrives.
            while owed > 0 and self.buffer:
                self.discarded.append(self.buffer.popleft())
                self.transferred += 1
                owed -= 1
        elif self.outstanding is None and owed > 0 and self.buffer:
            token = self.buffer.popleft()
            self.outstanding = (self.out_seq, token)
            self._queue(
                self.parent,
                _TK,
                (self.out_seq, token),
                self.token_bits + self._seq_bits(),
            )
            self._tok_attempts = 1
            self._tok_last = r

    def _finish_packaging(self, ctx: Context) -> None:
        assert self.c_value is not None
        if self.outstanding is not None:
            self._given_up += 1
            self.outstanding = None
        shortfall = max(0, self.c_value - self.transferred)
        held = list(self.buffer)
        n_pkg = len(held) // self.tau
        packages = tuple(
            tuple(held[i * self.tau: (i + 1) * self.tau])
            for i in range(n_pkg)
        )
        leftover = tuple(held[n_pkg * self.tau:]) + tuple(self.discarded)
        self.packaged = True
        self._on_packaged(ctx, packages, leftover, shortfall)

    def _on_packaged(
        self,
        ctx: Context,
        packages: Tuple[Tuple[int, ...], ...],
        leftover: Tuple[int, ...],
        shortfall: int,
    ) -> None:
        """Packaging finished; the standalone protocol reports and halts.
        The tester subclass overrides this to continue with the vote."""
        self._result = HardenedPackagingOutcome(
            packages=packages,
            leftover=leftover,
            is_root=self.is_root,
            shortfall=shortfall,
            missing_count_children=self.missing_count_children,
            late_children=self.late_children,
            claim_acked=self.claim_acked or self.parent is None,
        )
        self._done = True


def run_hardened_packaging(
    topology: Topology,
    tokens: Sequence[int],
    tau: int,
    token_bits: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    d_hint: Optional[int] = None,
    rng: SeedLike = None,
) -> Tuple[List[Optional[HardenedPackagingOutcome]], EngineReport]:
    """Run hardened τ-token packaging; returns per-node outcomes + report.

    Crashed nodes never halt, so their outcome slot is ``None``.  On a
    fault-free network the realised packaging satisfies Definition 2
    exactly (the give-up paths never trigger); under faults the outcomes
    report shortfalls and missing subtrees instead of raising.
    """
    if len(tokens) != topology.k:
        raise ParameterError(
            f"need one token per node: {len(tokens)} tokens, k={topology.k}"
        )
    policy = policy or RetryPolicy()
    if token_bits is None:
        token_bits = bits_for_int(max(int(t) for t in tokens))
    if d_hint is None:
        d_hint = topology.diameter_upper_bound()
    schedule = PhaseSchedule.build(d_hint, tau, policy)
    engine = SynchronousEngine(
        topology,
        bandwidth_bits=hardened_bandwidth(token_bits, topology.k, tau),
        max_rounds=schedule.tokens_end + 4,
        deadlock_quiet_rounds=max(8, tau + 6),
        faults=faults,
        phase_names=("flood", "claim_count", "tokens"),
    )
    report = engine.run(
        lambda v: HardenedTokenPackagingProgram(
            node_id=v,
            k=topology.k,
            tau=tau,
            token=int(tokens[v]),
            token_bits=token_bits,
            schedule=schedule,
            policy=policy,
        ),
        rng,
    )
    return list(report.outputs), report


@dataclass(frozen=True)
class HardenedTesterOutcome:
    """One node's output from the hardened CONGEST tester."""

    decision: Optional[bool]
    is_root: bool
    packages: int
    alarms: int
    shortfall: int
    missing_count_children: Tuple[int, ...]
    missing_vote_children: Tuple[int, ...]
    unheard: bool
    threshold_infeasible: bool = False


class HardenedCongestTesterProgram(HardenedTokenPackagingProgram):
    """Hardened packaging extended with the vote and verdict phases.

    The reject-vote convergecast degrades gracefully: at the vote
    deadline a parent counts a silent subtree as ``(0 alarms, 0
    packages)`` and reports it; the root thresholds the alarm count
    against the *realised* package total, so lost evidence widens the
    confidence interval instead of biasing the verdict.  A node that
    never hears the broadcast verdict rejects by default (``unheard``).
    """

    def __init__(
        self,
        node_id: int,
        k: int,
        params: CongestParameters,
        token: "int | Sequence[int]",
        token_bits: int,
        schedule: PhaseSchedule,
        policy: RetryPolicy,
    ) -> None:
        super().__init__(
            node_id=node_id,
            k=k,
            tau=params.tau,
            token=token,
            token_bits=token_bits,
            schedule=schedule,
            policy=policy,
        )
        self.params = params
        self.my_alarms = 0
        self.my_packages = 0
        # Realised-layout instrumentation, read by the trial plane's
        # pack-then-replay extraction (which captures the program objects,
        # so these survive even for nodes that crash before halting):
        # the literal token tuples packaged here, and the children whose
        # votes were folded into ours at vote time (entries arriving
        # after the fold are acked but never counted — reconstructing
        # this from the final ``votes_received`` would over-count).
        self.package_contents: Tuple[Tuple[int, ...], ...] = ()
        self.vote_included: Tuple[int, ...] = ()
        self.shortfall = 0
        self.votes_received: Dict[int, Tuple[int, int]] = {}
        self.vote_sent = False
        self.vote_acked = False
        self.vote_giveup = False
        self.missing_vote_children: Tuple[int, ...] = ()
        self._vote_attempts = 0
        self._vote_last = -(1 << 30)
        self.vote_alarms = 0
        self.vote_packages = 0
        self.decision: Optional[bool] = None
        self.unheard = False
        self.threshold_infeasible = False
        self._decide_pending: Optional[Set[int]] = None
        self._decide_acks: Set[int] = set()
        self._decide_attempts = 0
        self._decide_last = -(1 << 30)
        self._decide_done = False

    # -- subframes ---------------------------------------------------------

    def _handle(
        self, ctx: Context, src: int, kind: str, payload: Any, r: int
    ) -> None:
        if kind == _VT:
            self._register_child(src)
            if src not in self.votes_received:
                self.votes_received[src] = (int(payload[0]), int(payload[1]))
            self._queue(src, _VTA, None, 1)
        elif kind == _VTA:
            self.vote_acked = True
        elif kind == _DC:
            if self.decision is None:
                self.decision = bool(payload)
            self._queue(src, _DCA, None, 1)
        elif kind == _DCA:
            self._decide_acks.add(src)
        else:
            super()._handle(ctx, src, kind, payload, r)

    # -- phases ------------------------------------------------------------

    def _on_packaged(self, ctx, packages, leftover, shortfall) -> None:
        self.my_packages = len(packages)
        self.package_contents = packages
        self.shortfall = shortfall
        for package in packages:
            if len(set(package)) < len(package):
                self.my_alarms += 1
        # Vote phase proceeds from _tick; nothing to send yet this round.

    def _vote_bits(self) -> int:
        return 2 * bits_for_int(self.k)

    def _decide_root(self) -> None:
        """Root verdict from the realised evidence (missing subtrees have
        already been excluded from both totals)."""
        if self.vote_packages == 0:
            # No packages survived: no evidence either way.  Reject — the
            # conservative verdict for a tester whose job is to catch
            # deviation — and flag that the threshold was unplaceable.
            self.decision = False
            self.threshold_infeasible = True
            return
        try:
            threshold = self.params.threshold_for(self.vote_packages)
        except InfeasibleParametersError:
            self.decision = False
            self.threshold_infeasible = True
            return
        self.decision = self.vote_alarms < threshold

    def _tick(self, ctx: Context, r: int) -> None:
        super()._tick(ctx, r)
        s = self.schedule
        p = self.policy
        if not self.packaged:
            return
        # Vote convergecast (same ack/retransmit scheme as counts).
        if not self.vote_sent:
            waiting = self.children - set(self.votes_received)
            if not waiting or r >= s.vote_last_call:
                self.missing_vote_children = tuple(sorted(waiting))
                self.vote_included = tuple(sorted(self.votes_received))
                self.vote_alarms = self.my_alarms + sum(
                    a for a, _ in self.votes_received.values()
                )
                self.vote_packages = self.my_packages + sum(
                    q for _, q in self.votes_received.values()
                )
                self.vote_sent = True
                if self.parent is None:
                    self.vote_acked = True
                    self._decide_root()
                else:
                    self._queue(
                        self.parent,
                        _VT,
                        (self.vote_alarms, self.vote_packages),
                        self._vote_bits(),
                    )
                    self._vote_attempts = 1
                    self._vote_last = r
        elif (
            self.parent is not None
            and not self.vote_acked
            and not self.vote_giveup
            and r - self._vote_last >= p.timeout
        ):
            if self._vote_attempts < p.attempts:
                self._queue(
                    self.parent,
                    _VT,
                    (self.vote_alarms, self.vote_packages),
                    self._vote_bits(),
                )
                self._vote_attempts += 1
                self._vote_last = r
            else:
                self.vote_giveup = True
        # Verdict broadcast down the tree, child-acked.
        if self.decision is not None and not self._decide_done:
            if self._decide_pending is None:
                self._decide_pending = set(self.children)
                self._decide_attempts = 0
                self._decide_last = -(1 << 30)
            pending = self._decide_pending - self._decide_acks
            if not pending:
                self._decide_done = True
            elif r - self._decide_last >= p.timeout:
                if self._decide_attempts < p.attempts:
                    for child in sorted(pending):
                        self._queue(child, _DC, self.decision, 1)
                    self._decide_attempts += 1
                    self._decide_last = r
                else:
                    # Unreached children will default-reject at decide_end.
                    self._decide_done = True
        # Halting: verdict known and relayed, or the hard deadline.
        if self.decision is not None and self._decide_done:
            self._finish(ctx)
        elif r >= s.decide_end:
            if self.decision is None:
                self.decision = False
                self.unheard = True
            self._decide_done = True
            self._finish(ctx)

    def _finish(self, ctx: Context) -> None:
        self._result = HardenedTesterOutcome(
            decision=self.decision,
            is_root=self.is_root,
            packages=self.my_packages,
            alarms=self.my_alarms,
            shortfall=self.shortfall,
            missing_count_children=self.missing_count_children,
            missing_vote_children=self.missing_vote_children,
            unheard=self.unheard,
            threshold_infeasible=self.threshold_infeasible,
        )
        self._done = True


@dataclass(frozen=True)
class HardenedRunResult:
    """Network-level summary of one hardened tester execution.

    ``verdict`` is the global root's decision (node ``k-1`` wins the
    election whenever it is alive) or ``None`` if it crashed.
    ``agreement`` is the fraction of surviving nodes whose decision
    matches the verdict — 1.0 on any run where the broadcast got
    through.  The counters aggregate the per-node degradation reports.
    """

    verdict: Optional[bool]
    agreement: float
    report: EngineReport
    outcomes: Tuple[Optional[HardenedTesterOutcome], ...]
    missing_subtrees: int
    shortfall: int
    unheard: int

    @property
    def total_packages(self) -> int:
        return sum(o.packages for o in self.outcomes if o is not None)


@dataclass(frozen=True)
class HardenedCongestTester:
    """Fault-tolerant runner for the Theorem 1.4 protocol.

    Same parameter solve as :class:`~repro.congest.tester.\
CongestUniformityTester`; the execution swaps the quiet-round protocol
    for the hardened one and accepts a :class:`FaultPlan`.
    """

    params: CongestParameters
    policy: RetryPolicy = field(default_factory=RetryPolicy)

    @staticmethod
    def solve(
        n: int,
        k: int,
        eps: float,
        p: float = 1.0 / 3.0,
        samples_per_node: int = 1,
        policy: Optional[RetryPolicy] = None,
    ) -> "HardenedCongestTester":
        return HardenedCongestTester(
            params=congest_parameters(n, k, eps, p, samples_per_node),
            policy=policy or RetryPolicy(),
        )

    def run(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        rng: SeedLike = None,
        faults: Optional[FaultPlan] = None,
        d_hint: Optional[int] = None,
    ) -> HardenedRunResult:
        """One full hardened execution; bit-reproducible per (rng, plan)."""
        if topology.k != self.params.k:
            raise ParameterError(
                f"tester solved for k={self.params.k}, topology has "
                f"{topology.k}"
            )
        if distribution.n != self.params.n:
            raise ParameterError(
                f"tester solved for n={self.params.n}, distribution has "
                f"{distribution.n}"
            )
        gen = ensure_rng(rng)
        s = self.params.samples_per_node
        samples = distribution.sample_matrix(topology.k, s, gen)
        return self.run_from_samples(
            topology, samples, faults=faults, d_hint=d_hint, rng=gen
        )

    def run_from_samples(
        self,
        topology: Topology,
        samples: Any,
        faults: Optional[FaultPlan] = None,
        d_hint: Optional[int] = None,
        rng: SeedLike = None,
        _capture_programs: Optional[List[Any]] = None,
    ) -> HardenedRunResult:
        """Execute the hardened protocol on a fixed ``(k, s)`` sample matrix.

        The deterministic tail of :meth:`run`: the protocol uses no node
        randomness and the :class:`FaultPlan` makes its drop/delay/crash
        decisions from pure hashes of ``(seed, edge, round, index)``, so
        for fixed samples and plan the run — including the realised
        message schedule and packaging layout — is bit-reproducible.
        ``_capture_programs`` (internal; used by the trial plane's
        pack-then-replay extraction) collects the per-node program
        objects so instrumented layout state is readable even for nodes
        that crashed before producing an outcome.
        """
        samples = np.asarray(samples)
        s = self.params.samples_per_node
        if samples.shape != (topology.k, s):
            raise ParameterError(
                f"expected a ({topology.k}, {s}) sample matrix, got "
                f"{samples.shape}"
            )
        tokens = samples.tolist()
        token_bits = bits_for_domain(self.params.n)
        if d_hint is None:
            d_hint = topology.diameter_upper_bound()
        schedule = PhaseSchedule.build(d_hint, self.params.tau, self.policy)
        engine = SynchronousEngine(
            topology,
            bandwidth_bits=hardened_bandwidth(
                token_bits, topology.k, self.params.tau
            ),
            max_rounds=schedule.decide_end + 4,
            deadlock_quiet_rounds=max(8, self.params.tau + 6),
            faults=faults,
            phase_names=("flood", "claim_count", "tokens", "vote_decide"),
        )

        def factory(v: int) -> HardenedCongestTesterProgram:
            program = HardenedCongestTesterProgram(
                node_id=v,
                k=topology.k,
                params=self.params,
                token=tokens[v],
                token_bits=token_bits,
                schedule=schedule,
                policy=self.policy,
            )
            if _capture_programs is not None:
                _capture_programs.append(program)
            return program

        report = engine.run(factory, rng)
        outcomes: Tuple[Optional[HardenedTesterOutcome], ...] = tuple(
            report.outputs
        )
        root_out = outcomes[topology.k - 1]
        verdict = None if root_out is None else root_out.decision
        alive = [o for o in outcomes if o is not None]
        agreeing = sum(1 for o in alive if o.decision == verdict)
        return HardenedRunResult(
            verdict=verdict,
            agreement=agreeing / len(alive) if alive else 0.0,
            report=report,
            outcomes=outcomes,
            missing_subtrees=sum(
                len(o.missing_vote_children) for o in alive
            ),
            shortfall=sum(o.shortfall for o in alive),
            unheard=sum(1 for o in alive if o.unheard),
        )

    def estimate_error(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
        faults: Optional[FaultPlan] = None,
        workers: int = 1,
        fast_path: bool = True,
        engine_check: float = 0.0,
        d_hint: Optional[int] = None,
    ) -> float:
        """Monte-Carlo error rate under one **fixed** :class:`FaultPlan`.

        A trial errs when the network verdict disagrees with
        ``is_uniform`` (a ``None`` verdict — the root crashed — counts as
        an error on either side).  ``rng`` must be seed-like (``None`` or
        int); trials draw from the trial engine's chunk-keyed streams.

        ``fast_path`` (default on) uses pack-then-replay: because the
        plan's fault decisions are pure functions of ``(seed, edge,
        round, index)`` — never of message payloads — the realised
        packaging layout and the set of subtree votes the root counts
        are identical across sample redraws.  One instrumented engine
        run under the plan extracts that layout
        (:class:`~repro.congest.trial_plane.RealisedLayout`); every trial
        then reduces to a numpy collision pass over its sample matrix,
        bit-identical per trial to the engine route.  ``engine_check``
        re-runs that fraction of the trials (at least one, a prefix of
        the same stream) through the full engine and raises on any
        verdict mismatch.

        This replay is only sound for a plan that is fixed across
        trials.  Sweeps that re-key the plan per trial (e.g. E14's
        ``robustness_sweep``) go through the vectorized fault plane
        instead (:class:`~repro.congest.fault_plane.HardenedFaultPlane`),
        which replays one trial per plan — hardened control flow and
        all — without instantiating nodes.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if not (rng is None or isinstance(rng, (int, np.integer))):
            raise ParameterError(
                "estimate_error needs a seed-like rng (None or int), got "
                f"{type(rng).__name__}"
            )
        base_seed = 0 if rng is None else int(rng)
        if fast_path:
            from repro.congest.trial_plane import HardenedTrialRunner

            runner = HardenedTrialRunner.build(
                self, topology, faults=faults, d_hint=d_hint
            )
            return runner.error_rate(
                distribution,
                is_uniform,
                trials,
                base_seed=base_seed,
                workers=workers,
                engine_check=engine_check,
            )
        from repro.experiments.runner import TrialRunner

        experiment = _HardenedTrialExperiment(
            tester=self,
            topology=topology,
            distribution=distribution,
            is_uniform=is_uniform,
            faults=faults,
            d_hint=d_hint,
        )
        est = TrialRunner(base_seed=base_seed).error_rate(
            experiment, trials, "hardened", topology.k, workers=workers
        )
        return est.rate


@dataclass(frozen=True)
class _HardenedTrialExperiment:
    """Picklable scalar experiment: one hardened run under a fixed plan;
    ``True`` = the verdict disagrees with ``is_uniform`` (``None`` errs)."""

    tester: HardenedCongestTester
    topology: Topology
    distribution: DiscreteDistribution
    is_uniform: bool
    faults: Optional[FaultPlan] = None
    d_hint: Optional[int] = None

    def __call__(self, rng: np.random.Generator) -> bool:
        result = self.tester.run(
            self.topology,
            self.distribution,
            rng,
            faults=self.faults,
            d_hint=self.d_hint,
        )
        expected = True if self.is_uniform else False
        return result.verdict is not expected
