"""The τ-token-packaging protocol (Definition 2, Theorem 5.1).

Every node starts with one token (in the tester: its sample).  The goal is
to output packages — multisets of exactly ``τ`` tokens — such that every
token joins at most one package and at most ``τ − 1`` tokens are dropped,
in ``O(D + τ)`` rounds of CONGEST.

Protocol (Section 5 of the paper), as a per-node phase machine:

1. **FLOOD** — max-ID flooding elects the leader ``r`` and builds a BFS
   tree rooted there.  Ends at the first globally quiet round (the wave
   has settled; ``D + O(1)`` rounds).  Nodes do not know ``D``.
2. **CHILD** — one round: every non-root node tells its parent "I am your
   child", giving each node its tree-children set.
3. **COUNT** — convergecast of ``c(v) = (1 + Σ c(children)) mod τ``: the
   number of tokens ``v`` will forward upward.  Leaves start immediately;
   the wave reaches the root in ``height(T)`` rounds, then a quiet round
   synchronises everyone.
4. **TOKENS** — exactly ``τ`` rounds, counted locally: each node forwards
   the first ``c(v)`` tokens it holds (its own token counts as held from
   the start) one per round to its parent, keeping everything after that.
   The root "forwards" ``c(r)`` tokens into the bin.  The paper's
   pipelining invariant guarantees every node finishes within ``τ`` rounds
   — this implementation *checks* that invariant and raises if it ever
   failed.
5. Package: every node now holds a multiple of ``τ`` tokens; it cuts them
   into packages and (in the standalone protocol) halts with output
   ``PackagingOutcome``.

Message sizes: flooding/count/child messages are ``O(log k)`` bits, token
messages ``⌈log₂ n⌉`` bits — all within CONGEST.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError, SimulationError
from repro.rng import SeedLike
from repro.simulator.engine import EngineReport, SynchronousEngine
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology, TreeSchedule
from repro.simulator.message import Message, bits_for_domain, bits_for_int
from repro.simulator.node import Context, NodeProgram

# Phase labels (plain strings keep traces readable).
_FLOOD = "flood"
_CHILD = "child"
_COUNT = "count"
_TOKENS = "tokens"


@dataclass(frozen=True)
class WarmStart:
    """Precomputed per-node tree state that replaces FLOOD/CHILD/COUNT.

    A warm-started :class:`TokenPackagingProgram` loads ``parent``,
    ``children`` and ``c_value`` from the topology's cached
    :class:`~repro.simulator.graph.TreeSchedule` and enters the TOKENS
    phase directly at round 0.  The token-phase dynamics are then
    round-for-round identical to a cold run shifted by the tree-building
    prefix — :func:`verify_warm_start` checks this.
    """

    parent: Optional[int]
    children: Tuple[int, ...]
    c_value: int


def warm_start_views(
    topology: Topology, tau: int, tokens_per_node: int = 1
) -> List[WarmStart]:
    """Per-node :class:`WarmStart` views from the cached tree schedule.

    Cached per ``(τ, tokens_per_node)`` on the schedule (the views are
    immutable); Monte-Carlo loops reuse one list across trials.  Treat the
    returned list as read-only.
    """
    schedule: TreeSchedule = topology.tree_schedule()
    key = ("warm_views", tau, tokens_per_node)
    views = schedule.aux.get(key)
    if views is None:
        counts = schedule.token_counts(tau, tokens_per_node)
        views = [
            WarmStart(
                parent=schedule.parent[v],
                children=schedule.children[v],
                c_value=counts[v],
            )
            for v in range(topology.k)
        ]
        schedule.aux[key] = views
    return views


@dataclass(frozen=True)
class PackagingOutcome:
    """A node's final packaging output.

    Attributes
    ----------
    packages:
        This node's packages, each a tuple of exactly ``τ`` tokens.
    leftover:
        Tokens this node still holds outside packages.  Zero everywhere
        except the root's discard bin.
    is_root:
        Whether this node is the elected BFS root.
    """

    packages: Tuple[Tuple[int, ...], ...]
    leftover: Tuple[int, ...]
    is_root: bool


class TokenPackagingProgram(NodeProgram):
    """Per-node phase machine for τ-token packaging.

    Parameters
    ----------
    node_id:
        This node's ID (doubles as its flooding identifier).
    k:
        Network size (known to all nodes, as in the paper).
    tau:
        Package size ``τ ≥ 1``.
    token:
        The node's initial token, or a sequence of tokens — the paper's
        "each node starts with a single sample" generalises directly to
        ``s`` samples per node (c(v) counts all of them mod τ).
    token_bits:
        Bits per token message (``⌈log₂ n⌉``).
    warm_start:
        Optional precomputed tree state (:class:`WarmStart`).  When given,
        the program skips FLOOD/CHILD/COUNT and enters the TOKENS phase
        at round 0 with the supplied parent/children/``c(v)`` — the fast
        path for Monte-Carlo trials over a fixed topology.
    """

    def __init__(
        self,
        node_id: int,
        k: int,
        tau: int,
        token: "int | Sequence[int]",
        token_bits: int,
        warm_start: Optional[WarmStart] = None,
    ) -> None:
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        self.node_id = node_id
        self.k = k
        self.tau = tau
        self.token_bits = token_bits
        initial = [int(token)] if isinstance(token, (int,)) else [int(t) for t in token]
        if not initial:
            raise ParameterError("every node needs at least one token")
        self._initial_count = len(initial)
        self.phase = _FLOOD
        # Flooding state.
        self.best = node_id
        self.dist = 0
        self.parent: Optional[int] = None
        # Tree state.
        self.children: List[int] = []
        self.pending_counts: set = set()
        self.c_value: Optional[int] = None
        self._children_count_sum = 0
        # Token state.
        self.buffer: Deque[int] = deque(initial)
        self.sent_tokens = 0
        self.tokens_phase_end: Optional[int] = None
        self.discarded: List[int] = []
        self._warm_start = warm_start
        if warm_start is not None:
            self.phase = _TOKENS
            self.best = k - 1
            self.parent = warm_start.parent
            self.children = list(warm_start.children)
            self.c_value = warm_start.c_value

    # -- phase 1: flooding ------------------------------------------------

    def _id_bits(self) -> int:
        return 2 * bits_for_int(self.k)

    def _announce(self, ctx: Context) -> None:
        ctx.broadcast((self.best, self.dist), bits=self._id_bits(), tag=_FLOOD)

    def on_start(self, ctx: Context) -> None:
        if self._warm_start is not None:
            # Tree already known: the TOKENS phase starts immediately, with
            # the same round-relative dynamics as a cold run entering it
            # after the COUNT quiet round (forward one token now, then one
            # per round for the remaining τ − 1 rounds).
            self.tokens_phase_end = ctx.round + self.tau
            self._forward_token(ctx)
            self._schedule_token_wake(ctx)
            return
        self._announce(ctx)

    @property
    def is_root(self) -> bool:
        """Whether this node won the leader election."""
        return self.parent is None

    # -- main dispatch -----------------------------------------------------

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if self.phase == _FLOOD:
            self._round_flood(ctx, inbox)
        elif self.phase == _CHILD:
            self._round_child(ctx, inbox)
        elif self.phase == _COUNT:
            self._round_count(ctx, inbox)
        elif self.phase == _TOKENS:
            self._round_tokens(ctx, inbox)
        else:  # pragma: no cover - phases are exhaustive
            raise SimulationError(f"unknown phase {self.phase!r}")

    def _round_flood(self, ctx: Context, inbox: List[Message]) -> None:
        changed = False
        for msg in inbox:
            cand_best, cand_dist = msg.payload
            if cand_best > self.best or (
                cand_best == self.best and cand_dist + 1 < self.dist
            ):
                self.best = cand_best
                self.dist = cand_dist + 1
                self.parent = msg.src
                changed = True
        if changed:
            self._announce(ctx)
        elif ctx.quiet_rounds >= 1:
            # Wave settled globally; everyone transitions together.  The
            # wakeup guarantees even childless nodes process the CHILD round.
            self.phase = _CHILD
            if self.parent is not None:
                ctx.send(self.parent, None, bits=1, tag=_CHILD)
            ctx.request_wakeup(ctx.round + 1)

    def _round_child(self, ctx: Context, inbox: List[Message]) -> None:
        self.children = sorted(msg.src for msg in inbox if msg.tag == _CHILD)
        self.pending_counts = set(self.children)
        self.phase = _COUNT
        if not self.pending_counts:
            self._send_count(ctx)

    # -- phase 3: c(v) convergecast ----------------------------------------

    def _send_count(self, ctx: Context) -> None:
        self.c_value = (self._initial_count + self._children_count_sum) % self.tau
        if self.parent is not None:
            ctx.send(
                self.parent,
                self.c_value,
                bits=bits_for_int(self.tau),
                tag=_COUNT,
            )

    def _round_count(self, ctx: Context, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.tag == _COUNT and msg.src in self.pending_counts:
                self.pending_counts.discard(msg.src)
                self._children_count_sum += int(msg.payload)
        if self.c_value is None and not self.pending_counts:
            self._send_count(ctx)
        if self.c_value is not None and ctx.quiet_rounds >= 1:
            # All counts delivered network-wide; token phase starts *now*,
            # simultaneously everywhere, for exactly tau rounds.
            self.phase = _TOKENS
            self.tokens_phase_end = ctx.round + self.tau
            self._forward_token(ctx)
            self._schedule_token_wake(ctx)

    # -- phase 4: pipelined token forwarding --------------------------------

    def _schedule_token_wake(self, ctx: Context) -> None:
        """Next wakeup during TOKENS: every round while tokens are still
        owed, otherwise straight to the phase end.  Incoming tokens wake
        the node anyway (mail), so sleeping through the wait is
        message-for-message identical to waking idle each round."""
        assert self.tokens_phase_end is not None
        if self.sent_tokens < self.c_value:
            ctx.request_wakeup(ctx.round + 1)
        else:
            ctx.request_wakeup(self.tokens_phase_end)

    def _forward_token(self, ctx: Context) -> None:
        """Send (or discard, at the root) one token if still owed."""
        assert self.c_value is not None
        if self.sent_tokens < self.c_value and self.buffer:
            token = self.buffer.popleft()
            self.sent_tokens += 1
            if self.parent is None:
                self.discarded.append(token)
            else:
                ctx.send(self.parent, int(token), bits=self.token_bits, tag=_TOKENS)

    def _round_tokens(self, ctx: Context, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.tag == _TOKENS:
                self.buffer.append(int(msg.payload))
        assert self.tokens_phase_end is not None
        if ctx.round < self.tokens_phase_end:
            if self.sent_tokens < self.c_value:
                self._forward_token(ctx)
            self._schedule_token_wake(ctx)
            return
        # tau rounds elapsed: verify the paper's pipelining invariant held.
        if self.sent_tokens != self.c_value:
            raise SimulationError(
                f"node {self.node_id}: pipelining invariant violated — sent "
                f"{self.sent_tokens} of c(v)={self.c_value} tokens in tau="
                f"{self.tau} rounds"
            )
        if len(self.buffer) % self.tau != 0:
            raise SimulationError(
                f"node {self.node_id}: holds {len(self.buffer)} tokens, not "
                f"a multiple of tau={self.tau}"
            )
        held = list(self.buffer)
        packages = tuple(
            tuple(held[i: i + self.tau]) for i in range(0, len(held), self.tau)
        )
        self._on_packaged(ctx, packages)

    def _on_packaged(self, ctx: Context, packages: Tuple[Tuple[int, ...], ...]) -> None:
        """Packaging finished.  The standalone protocol halts here;
        the CONGEST tester subclass overrides this to keep going."""
        ctx.halt(
            PackagingOutcome(
                packages=packages,
                leftover=tuple(self.discarded),
                is_root=self.is_root,
            )
        )


def run_token_packaging(
    topology: Topology,
    tokens: Sequence[int],
    tau: int,
    token_bits: Optional[int] = None,
    rng: SeedLike = None,
    warm_start: bool = False,
    faults: Optional[FaultPlan] = None,
) -> Tuple[List[PackagingOutcome], EngineReport]:
    """Run τ-token packaging over *topology* with the given initial tokens.

    Returns the per-node outcomes and the engine's measured statistics
    (rounds, messages, bits) — benchmark E5 compares ``report.rounds``
    against the ``O(D + τ)`` bound.  ``warm_start=True`` loads the cached
    :class:`~repro.simulator.graph.TreeSchedule` and skips the
    FLOOD/CHILD/COUNT phases; the packaging outcome is identical (see
    :func:`verify_warm_start`), but ``report.rounds`` then measures only
    the TOKENS phase — keep it off when measuring the ``O(D + τ)`` bound.

    ``faults`` forwards a :class:`~repro.simulator.faults.FaultPlan` to the
    engine.  This protocol assumes reliable delivery — real faults will
    generally deadlock or corrupt it (use the hardened variant in
    :mod:`repro.congest.hardened` instead); the parameter exists so
    ``FaultPlan.none()`` bit-identity can be asserted end to end.
    """
    if len(tokens) != topology.k:
        raise ParameterError(
            f"need one token per node: {len(tokens)} tokens, k={topology.k}"
        )
    if token_bits is None:
        token_bits = bits_for_int(max(int(t) for t in tokens))
    bandwidth = max(token_bits, 2 * bits_for_int(topology.k))
    # Token forwarding can be globally silent for up to tau rounds (when all
    # c(v) = 0), and a single-node network is silent from round one; widen
    # the deadlock detector accordingly.
    engine = SynchronousEngine(
        topology,
        bandwidth_bits=bandwidth,
        max_rounds=10 * (topology.diameter_upper_bound() + tau + 10),
        deadlock_quiet_rounds=tau + 6,
        faults=faults,
        phase_names=(
            ("tokens",)
            if warm_start
            else ("flood", "claim_count", "tokens")
        ),
    )
    views = warm_start_views(topology, tau) if warm_start else None
    report = engine.run(
        lambda v: TokenPackagingProgram(
            node_id=v,
            k=topology.k,
            tau=tau,
            token=int(tokens[v]),
            token_bits=token_bits,
            warm_start=None if views is None else views[v],
        ),
        rng,
    )
    outcomes = list(report.outputs)
    return outcomes, report


@dataclass(frozen=True)
class WarmStartCheck:
    """Result of :func:`verify_warm_start`.

    ``equivalent`` is True when the cold (full-protocol) and warm-started
    runs produced identical per-node packaging outcomes.  Both engine
    reports are kept so benchmarks can report the real protocol's
    ``O(D + τ)`` round count alongside the fast path's.
    """

    equivalent: bool
    cold_report: EngineReport
    warm_report: EngineReport
    mismatched_nodes: Tuple[int, ...] = ()


def verify_warm_start(
    topology: Topology,
    tokens: Sequence[int],
    tau: int,
    token_bits: Optional[int] = None,
    rng: SeedLike = None,
) -> WarmStartCheck:
    """Cross-check the warm-start fast path against the full protocol.

    Runs packaging twice — cold (FLOOD/CHILD/COUNT/TOKENS) and warm
    (TOKENS only, from the cached tree schedule) — and compares the
    per-node :class:`PackagingOutcome` for exact equality.  Also asserts
    both runs satisfy Definition 2 via :func:`verify_packaging`.
    """
    cold_outcomes, cold_report = run_token_packaging(
        topology, tokens, tau, token_bits=token_bits, rng=rng, warm_start=False
    )
    warm_outcomes, warm_report = run_token_packaging(
        topology, tokens, tau, token_bits=token_bits, rng=rng, warm_start=True
    )
    verify_packaging(cold_outcomes, tokens, tau)
    verify_packaging(warm_outcomes, tokens, tau)
    mismatched = tuple(
        v
        for v, (c, w) in enumerate(zip(cold_outcomes, warm_outcomes))
        if c != w
    )
    return WarmStartCheck(
        equivalent=not mismatched,
        cold_report=cold_report,
        warm_report=warm_report,
        mismatched_nodes=mismatched,
    )


def verify_packaging(
    outcomes: Sequence[PackagingOutcome],
    tokens: Sequence[int],
    tau: int,
) -> None:
    """Assert the three Definition 2 requirements; raise on any violation.

    1. Every package has size exactly ``τ``.
    2. Every token lands in at most one package (checked as a multiset).
    3. At most ``τ − 1`` tokens are unpackaged.
    """
    from collections import Counter

    packaged: Counter = Counter()
    total_packaged = 0
    for outcome in outcomes:
        for package in outcome.packages:
            if len(package) != tau:
                raise AssertionError(
                    f"package of size {len(package)}, expected {tau}"
                )
            packaged.update(package)
            total_packaged += len(package)
    original: Counter = Counter(int(t) for t in tokens)
    leftover_multiset = original - packaged
    overdraw = packaged - original
    if overdraw:
        raise AssertionError(f"tokens duplicated into packages: {dict(overdraw)}")
    dropped = len(tokens) - total_packaged
    if dropped > tau - 1:
        raise AssertionError(
            f"{dropped} tokens unpackaged, Definition 2 allows at most {tau - 1}"
        )
