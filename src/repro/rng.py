"""Deterministic randomness management.

Every randomized component in this library draws randomness from a
:class:`numpy.random.Generator`.  Nothing ever touches process-global random
state, which keeps experiments reproducible and lets tests pin seeds.

Four helpers cover the common needs:

- :func:`ensure_rng` normalises "anything seed-like" (``None``, an ``int``, a
  ``SeedSequence`` or an existing ``Generator``) into a ``Generator``.
- :func:`spawn` derives ``count`` statistically independent child generators
  from a parent via ``SeedSequence`` spawning (the collision-safe numpy
  idiom), used to give each simulated network node its own private coins
  (the paper's protocols are all *private coin*).  :func:`spawn_lazy` is the
  deferred form the simulator uses: same streams, but each child generator
  is only materialised if its node actually draws randomness.
- :func:`derive` derives a generator keyed by ``(seed, *labels)`` — the
  stable per-configuration streams the experiment harness is built on.
- :func:`derive_many` is the vectorised form of :func:`derive` over a run of
  integer tail labels, bit-identical to calling :func:`derive` in a loop but
  hashing all the trailing indices with one batch of numpy ops.  The trial
  engine (:mod:`repro.experiments.runner`) uses it to key its chunk streams.

Example
-------
>>> rng = ensure_rng(7)
>>> children = spawn(rng, 3)
>>> [int(c.integers(100)) for c in children]  # doctest: +SKIP
[51, 92, 14]
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

#: Anything accepted as a source of randomness by :func:`ensure_rng`.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

_FNV_OFFSET = 1469598103934665603  # FNV-1a offset basis
_FNV_PRIME = 1099511628211
_MASK63 = (1 << 63) - 1


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    Children are spawned from the parent's underlying ``SeedSequence``
    (``Generator.spawn``), numpy's collision-safe derivation: child streams
    are guaranteed independent and the parent's *bit stream* is untouched
    (only its spawn counter advances, so successive calls yield fresh
    children).  This mirrors giving each network node its own private coin
    flips.  Generators without an attached seed sequence fall back to
    seeding children from parent draws.

    Parameters
    ----------
    rng:
        Parent generator.
    count:
        Number of children; must be non-negative.

    Returns
    -------
    list[numpy.random.Generator]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    try:
        return list(rng.spawn(count))
    except (AttributeError, TypeError, ValueError):
        # Pre-SeedSequence generator (e.g. wrapping a bare BitGenerator):
        # legacy 63-bit integer seeding, still deterministic per parent state.
        seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
        return [np.random.default_rng(int(s)) for s in seeds]


class _LazySpawn:
    """Shared deferred spawn state behind :func:`spawn_lazy`.

    Nothing is derived until the first ``get``; that call spawns all
    ``count`` child seed sequences at once (so the assignment of stream to
    index is deterministic no matter which index asks first), and each
    index's ``Generator`` is then built on demand.
    """

    __slots__ = ("_rng", "_count", "_sources")

    def __init__(self, rng: np.random.Generator, count: int) -> None:
        self._rng = rng
        self._count = count
        self._sources: Optional[list] = None

    def get(self, index: int) -> np.random.Generator:
        sources = self._sources
        if sources is None:
            rng = self._rng
            try:
                bitgen = rng.bit_generator
                cls = type(bitgen)
                sources = [(cls, ss) for ss in bitgen.seed_seq.spawn(self._count)]
            except (AttributeError, TypeError, ValueError):
                # No spawnable seed sequence: eager legacy fallback.
                sources = [(None, g) for g in spawn(rng, self._count)]
            self._sources = sources
            self._rng = None  # the parent is no longer needed; drop the ref
        cls, src = sources[index]
        if cls is None:
            return src
        return np.random.Generator(cls(src))


def spawn_lazy(
    rng: np.random.Generator, count: int
) -> List[Callable[[], np.random.Generator]]:
    """Fully deferred :func:`spawn`: derive nothing until a factory is called.

    Calling factory ``i`` yields a generator bit-identical to
    ``spawn(rng, count)[i]`` evaluated at the first access (all ``count``
    child seed sequences spawn together then, so stream-to-node assignment
    does not depend on access order).  The simulator hands every node a
    private-coin factory this way: when a protocol never flips a coin — the
    common case — the run pays nothing for node randomness.

    Unlike :func:`spawn`, the parent's spawn counter only advances if some
    factory is actually invoked; callers that interleave spawn-based and
    lazy derivations on one parent generator should not rely on unused lazy
    spawns reserving streams.

    Parameters
    ----------
    rng:
        Parent generator.
    count:
        Number of children; must be non-negative.

    Returns
    -------
    list of zero-argument callables, each returning a fresh ``Generator``
    (one per call; callers should memoise if they need a stable stream).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    holder = _LazySpawn(rng, count)
    return [(lambda i=i: holder.get(i)) for i in range(count)]


def derive(rng_or_seed: SeedLike, *labels: Union[str, int]) -> np.random.Generator:
    """Derive a generator keyed by *labels* without disturbing the parent.

    Unlike :func:`spawn`, this does not advance the parent stream when the
    parent is given as an ``int`` seed: the child seed is a stable hash of
    ``(seed, *labels)``.  Useful when an experiment wants per-configuration
    reproducibility ("chunk 17 of sweep point (n=1000, k=8)") independent of
    iteration order.  The hash of the label *prefix* is memoised, so deriving
    many streams that share all but their final label (the trial-engine
    pattern) does not re-hash the prefix each time.

    Parameters
    ----------
    rng_or_seed:
        Base seed or generator.  A ``Generator`` parent falls back to
        :func:`spawn` semantics (one child, spawn counter advances).
    labels:
        Hashable labels mixed into the child seed.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        return spawn(rng_or_seed, 1)[0]
    base = 0 if rng_or_seed is None else int(np.random.SeedSequence(rng_or_seed).entropy)
    mixed = np.random.SeedSequence([base & _MASK63, _labels_key(labels)])
    return np.random.default_rng(mixed)


def derive_many(
    rng_or_seed: SeedLike,
    *labels: Union[str, int],
    count: int,
    start: int = 0,
) -> List[np.random.Generator]:
    """Vectorised :func:`derive` over integer tail labels.

    Returns ``count`` generators where entry ``i`` is bit-identical to
    ``derive(rng_or_seed, *labels, start + i)``, but all the tail-index
    hashing happens in a handful of vectorised numpy passes (one per decimal
    digit position) instead of a pure-Python byte loop per stream.

    Parameters
    ----------
    rng_or_seed:
        Base seed.  A ``Generator`` parent falls back to :func:`spawn`
        semantics (``count`` children, spawn counter advances).
    labels:
        Shared label prefix.
    count:
        Number of consecutive streams; must be non-negative.
    start:
        First tail index; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if start < 0:
        raise ValueError(f"start must be >= 0, got {start}")
    if isinstance(rng_or_seed, np.random.Generator):
        return spawn(rng_or_seed, count)
    if count == 0:
        return []
    base = 0 if rng_or_seed is None else int(np.random.SeedSequence(rng_or_seed).entropy)
    base &= _MASK63
    keys = _index_keys(_prefix_state(labels), start, count)
    return [
        np.random.default_rng(np.random.SeedSequence([base, int(key)]))
        for key in keys
    ]


# ---------------------------------------------------------------------------
# FNV-1a label hashing (63-bit), scalar + vectorised forms
# ---------------------------------------------------------------------------


def _fnv_extend(acc: int, label: Union[str, int]) -> int:
    """Fold one label's UTF-8 bytes into a running 63-bit FNV-1a state."""
    for byte in str(label).encode("utf-8"):
        acc ^= byte
        acc = (acc * _FNV_PRIME) & _MASK63
    return acc


@lru_cache(maxsize=4096)
def _prefix_state(labels: Tuple[Union[str, int], ...]) -> int:
    """Memoised FNV-1a state after hashing a label prefix."""
    if not labels:
        return _FNV_OFFSET
    return _fnv_extend(_prefix_state(labels[:-1]), labels[-1])


def _labels_key(labels: tuple) -> int:
    """Stable non-negative integer key for a tuple of str/int labels."""
    if not labels:
        return _FNV_OFFSET
    return _fnv_extend(_prefix_state(labels[:-1]), labels[-1])


def _index_keys(prefix: int, start: int, count: int) -> np.ndarray:
    """FNV-1a keys for the decimal strings of ``start .. start+count-1``.

    Vectorised digit-at-a-time: position ``j`` of every index is folded into
    all states in one uint64 pass.  Multiplication wraps mod 2**64 and the
    state is re-masked to 63 bits each step, which matches the scalar
    ``(acc * prime) % 2**63`` exactly (the low 63 bits of a product depend
    only on the low 64 bits of its factors).
    """
    idx = np.arange(start, start + count, dtype=np.uint64)
    # Decimal digit count per index (index 0 renders as "0": one digit).
    ndigits = np.ones(count, dtype=np.int64)
    upper = 10
    top = start + count - 1
    while upper <= top:
        ndigits[idx >= np.uint64(upper)] += 1
        upper *= 10
    acc = np.full(count, prefix, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    mask = np.uint64(_MASK63)
    zero_byte = np.uint64(ord("0"))
    max_digits = int(ndigits.max())
    for pos in range(max_digits):
        active = ndigits > pos
        # Digit `pos` counted from the most significant digit.
        shift = (ndigits[active] - 1 - pos).astype(np.uint64)
        digit = (idx[active] // np.power(np.uint64(10), shift)) % np.uint64(10)
        byte = digit + zero_byte
        acc[active] = ((acc[active] ^ byte) * prime) & mask
    return acc
