"""Deterministic randomness management.

Every randomized component in this library draws randomness from a
:class:`numpy.random.Generator`.  Nothing ever touches process-global random
state, which keeps experiments reproducible and lets tests pin seeds.

Two helpers cover the common needs:

- :func:`ensure_rng` normalises "anything seed-like" (``None``, an ``int``, a
  ``SeedSequence`` or an existing ``Generator``) into a ``Generator``.
- :func:`spawn` derives ``count`` statistically independent child generators
  from a parent, used to give each simulated network node its own private
  coins (the paper's protocols are all *private coin*).

Example
-------
>>> rng = ensure_rng(7)
>>> children = spawn(rng, 3)
>>> [int(c.integers(100)) for c in children]  # doctest: +SKIP
[51, 92, 14]
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

#: Anything accepted as a source of randomness by :func:`ensure_rng`.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    The children are seeded from fresh draws of the parent, so the parent's
    stream advances but the children are mutually independent for all
    practical purposes.  This mirrors giving each network node its own
    private coin flips.

    Parameters
    ----------
    rng:
        Parent generator.
    count:
        Number of children; must be non-negative.

    Returns
    -------
    list[numpy.random.Generator]
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive(rng_or_seed: SeedLike, *labels: Union[str, int]) -> np.random.Generator:
    """Derive a generator keyed by *labels* without disturbing the parent.

    Unlike :func:`spawn`, this does not advance the parent stream when the
    parent is given as an ``int`` seed: the child seed is a stable hash of
    ``(seed, *labels)``.  Useful when an experiment wants per-configuration
    reproducibility ("trial 17 of sweep point (n=1000, k=8)") independent of
    iteration order.

    Parameters
    ----------
    rng_or_seed:
        Base seed or generator.  A ``Generator`` parent falls back to
        :func:`spawn` semantics (one child, stream advances).
    labels:
        Hashable labels mixed into the child seed.
    """
    if isinstance(rng_or_seed, np.random.Generator):
        return spawn(rng_or_seed, 1)[0]
    base = 0 if rng_or_seed is None else int(np.random.SeedSequence(rng_or_seed).entropy)
    mixed = np.random.SeedSequence([base & (2**63 - 1), _labels_key(labels)])
    return np.random.default_rng(mixed)


def _labels_key(labels: tuple) -> int:
    """Stable non-negative integer key for a tuple of str/int labels."""
    acc = 1469598103934665603  # FNV-1a offset basis
    for label in labels:
        data = str(label).encode("utf-8")
        for byte in data:
            acc ^= byte
            acc = (acc * 1099511628211) % (2**63)
    return acc
