"""repro — a reproduction of *Distributed Uniformity Testing* (PODC 2018).

Fischer, Meir and Oshman study testing whether an unknown distribution
``μ`` on ``{1, ..., n}`` is uniform or ε-far from uniform (L1), in a
network of ``k`` nodes that each draw their own samples.  This library
implements the paper end to end:

- the single-collision ``(δ, α)``-gap tester and its analysis
  (:mod:`repro.core`),
- 0-round distributed testers under the AND and threshold decision rules,
  including the asymmetric-cost generalisation (:mod:`repro.zeroround`),
- a synchronous LOCAL/CONGEST network simulator with bandwidth
  enforcement (:mod:`repro.simulator`),
- the τ-token-packaging protocol and the full CONGEST tester
  (:mod:`repro.congest`),
- the MIS-based LOCAL tester (:mod:`repro.localmodel`),
- the simultaneous-Equality machinery behind the lower bound: codes, the
  torus-chunk protocol, the Blais–Canonne–Gur reduction
  (:mod:`repro.smp`),
- distributions, distances and certified ε-far families
  (:mod:`repro.distributions`), and an experiment harness
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import uniform, far_family, ThresholdNetworkTester
>>> tester = ThresholdNetworkTester.solve(n=50_000, k=20_000, eps=0.9)
>>> tester.test(uniform(50_000), rng=0)
True
>>> tester.test(far_family("paninski", 50_000, 0.9, rng=1), rng=2)
False
"""

from repro.core import (
    CollisionGapTester,
    GapGuarantee,
    GapSpec,
    and_rule_parameters,
    cp_constant,
    threshold_parameters,
)
from repro.distributions import (
    DiscreteDistribution,
    far_family,
    l1_distance,
    l1_distance_to_uniform,
    uniform,
)
from repro.zeroround import (
    AndRuleNetworkTester,
    CostVector,
    ThresholdNetworkTester,
    asymmetric_and_parameters,
    asymmetric_threshold_parameters,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DiscreteDistribution",
    "uniform",
    "far_family",
    "l1_distance",
    "l1_distance_to_uniform",
    "GapSpec",
    "GapGuarantee",
    "CollisionGapTester",
    "cp_constant",
    "and_rule_parameters",
    "threshold_parameters",
    "AndRuleNetworkTester",
    "ThresholdNetworkTester",
    "CostVector",
    "asymmetric_threshold_parameters",
    "asymmetric_and_parameters",
]
