"""Centralized uniformity-testing baselines.

The paper positions its single-collision tester against the classical
centralized testers, which need ``Θ(√n/ε²)`` samples but achieve constant
error on their own.  These are the comparators for benchmark E10:

- :class:`CollisionCountTester` — the coincidence-based tester of
  Goldreich–Ron / Paninski [21]: count pairwise collisions among ``s``
  samples and compare to a threshold between the uniform expectation
  ``binom(s,2)/n`` and the ε-far expectation ``binom(s,2)(1+ε²)/n``.
- :class:`ChiSquareTester` — the unbiased-χ²-style statistic
  ``Σ_x ((N_x − s/n)² − N_x)``, whose expectation is
  ``s(s−1)·‖μ − U‖₂² ≥ 0`` with equality iff uniform.
- :class:`EmpiricalL1Tester` — the naive plug-in: accept iff the empirical
  distribution is L1-close to uniform.  Needs ``Θ(n/ε²)`` samples; included
  to show why sub-linear testers matter.

All three implement the
:class:`~repro.core.gap.CentralizedTester` protocol so they can slot into
the same experiment harnesses as the paper's tester.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError


def count_collisions(samples: np.ndarray, n: int) -> int:
    """Number of colliding *pairs* in the batch: ``Σ_x binom(N_x, 2)``."""
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size == 0:
        return 0
    counts = np.bincount(arr, minlength=n)
    return int((counts * (counts - 1) // 2).sum())


def histogram(samples: np.ndarray, n: int) -> np.ndarray:
    """Occurrence counts ``N_x`` over the full domain ``[n]``."""
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise ParameterError("samples out of domain")
    return np.bincount(arr, minlength=n)


@dataclass(frozen=True)
class CollisionCountTester:
    """Paninski-style collision-counting tester [21].

    Accepts iff the number of colliding pairs is at most
    ``binom(s,2)·(1 + ε²/2)/n`` — the midpoint between the uniform
    expectation and the Lemma 3.2 far-side expectation.  Achieves constant
    error with ``s = Θ(√n/ε²)``.

    Attributes
    ----------
    n:
        Domain size.
    s:
        Samples per invocation.
    eps:
        Distance parameter used to place the threshold.
    """

    n: int
    s: int
    eps: float

    def __post_init__(self) -> None:
        if self.n < 1 or self.s < 2:
            raise ParameterError(f"need n >= 1 and s >= 2, got {(self.n, self.s)}")
        if not 0.0 < self.eps < 2.0:
            raise ParameterError(f"eps must be in (0, 2), got {self.eps}")

    @staticmethod
    def with_standard_budget(n: int, eps: float, constant: float = 3.0) -> "CollisionCountTester":
        """Instantiate at the classical budget ``s = constant·√n/ε²``."""
        s = max(2, int(math.ceil(constant * math.sqrt(n) / (eps * eps))))
        return CollisionCountTester(n=n, s=s, eps=eps)

    @property
    def samples_required(self) -> int:
        return self.s

    @property
    def collision_threshold(self) -> float:
        """Accept iff collisions ≤ this value."""
        pairs = self.s * (self.s - 1) / 2.0
        return pairs * (1.0 + self.eps * self.eps / 2.0) / self.n

    def decide(self, samples: np.ndarray) -> bool:
        arr = np.asarray(samples)
        if arr.size != self.s:
            raise ParameterError(f"tester calibrated for s={self.s}, got {arr.size}")
        return count_collisions(arr, self.n) <= self.collision_threshold


@dataclass(frozen=True)
class ChiSquareTester:
    """Unbiased χ²-style tester.

    Statistic ``Z = Σ_x N_x(N_x − 1) − s(s−1)/n`` with
    ``E[Z] = s(s−1)·‖μ − U_n‖₂²`` under i.i.d. draws — zero iff uniform, and
    at least ``s(s−1)·ε²/n`` for ε-far ``μ`` (Lemma 3.2 again, since
    ``‖μ − U‖₂² = χ(μ) − 1/n``).  Accepts iff ``Z ≤ s(s−1)·ε²/(2n)``.
    """

    n: int
    s: int
    eps: float

    def __post_init__(self) -> None:
        if self.n < 1 or self.s < 2:
            raise ParameterError(f"need n >= 1 and s >= 2, got {(self.n, self.s)}")
        if not 0.0 < self.eps < 2.0:
            raise ParameterError(f"eps must be in (0, 2), got {self.eps}")

    @staticmethod
    def with_standard_budget(n: int, eps: float, constant: float = 3.0) -> "ChiSquareTester":
        """Instantiate at the classical budget ``s = constant·√n/ε²``."""
        s = max(2, int(math.ceil(constant * math.sqrt(n) / (eps * eps))))
        return ChiSquareTester(n=n, s=s, eps=eps)

    @property
    def samples_required(self) -> int:
        return self.s

    def statistic(self, samples: np.ndarray) -> float:
        """The centred statistic ``Z`` (see class docstring)."""
        counts = histogram(samples, self.n).astype(np.float64)
        return float((counts * (counts - 1.0)).sum() - self.s * (self.s - 1) / self.n)

    @property
    def acceptance_threshold(self) -> float:
        """Accept iff ``Z`` is at most this value."""
        return self.s * (self.s - 1) * self.eps * self.eps / (2.0 * self.n)

    def decide(self, samples: np.ndarray) -> bool:
        arr = np.asarray(samples)
        if arr.size != self.s:
            raise ParameterError(f"tester calibrated for s={self.s}, got {arr.size}")
        return self.statistic(arr) <= self.acceptance_threshold


@dataclass(frozen=True)
class EmpiricalL1Tester:
    """Plug-in tester: accept iff ``‖empirical − U_n‖₁ ≤ ε/2``.

    Requires ``s = Θ(n/ε²)`` samples for constant error — linear in the
    domain, i.e. asymptotically useless, which is the point of including it.
    """

    n: int
    s: int
    eps: float

    def __post_init__(self) -> None:
        if self.n < 1 or self.s < 1:
            raise ParameterError(f"need n >= 1 and s >= 1, got {(self.n, self.s)}")
        if not 0.0 < self.eps < 2.0:
            raise ParameterError(f"eps must be in (0, 2), got {self.eps}")

    @staticmethod
    def with_standard_budget(n: int, eps: float, constant: float = 4.0) -> "EmpiricalL1Tester":
        """Instantiate at the plug-in budget ``s = constant·n/ε²``."""
        s = max(1, int(math.ceil(constant * n / (eps * eps))))
        return EmpiricalL1Tester(n=n, s=s, eps=eps)

    @property
    def samples_required(self) -> int:
        return self.s

    def decide(self, samples: np.ndarray) -> bool:
        arr = np.asarray(samples)
        if arr.size != self.s:
            raise ParameterError(f"tester calibrated for s={self.s}, got {arr.size}")
        empirical = histogram(arr, self.n) / self.s
        distance = float(np.abs(empirical - 1.0 / self.n).sum())
        return distance <= self.eps / 2.0
