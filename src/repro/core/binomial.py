"""Exact binomial tail computations for threshold placement.

The paper's threshold analyses (Eq. 5, Theorem 1.2/1.4) use Chernoff
bounds, whose constants force very large networks before the windows open.
For *running* the protocols at laptop scale we also provide exact
binomial tails: the alarm count is a sum of independent Bernoulli bits, so
``R`` is stochastically dominated by / dominates true binomials with the
per-node bounds, and exact tails give the tightest threshold placement the
same proof structure supports.  Benchmarks report both the Chernoff-derived
and the exact-tail parameterisations.

Implemented in log space via ``lgamma`` — no scipy dependency, stable for
``n`` in the millions.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError

# Vectorised lgamma, built once: np.vectorize construction is pure overhead
# when repeated per call on the threshold-solver hot path.
_lgamma = np.vectorize(math.lgamma, otypes=[np.float64])


def _check_np(n: int, p: float) -> None:
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"p must be in [0, 1], got {p}")


def binom_logpmf(t: np.ndarray, n: int, p: float) -> np.ndarray:
    """Log of the Binomial(n, p) pmf at integer points *t* (vectorised)."""
    _check_np(n, p)
    t = np.asarray(t, dtype=np.int64)
    out = np.full(t.shape, -np.inf, dtype=np.float64)
    valid = (t >= 0) & (t <= n)
    tv = t[valid].astype(np.float64)
    if p == 0.0:
        out[valid] = np.where(tv == 0, 0.0, -np.inf)
        return out
    if p == 1.0:
        out[valid] = np.where(tv == n, 0.0, -np.inf)
        return out
    if tv.size == 0:
        return out
    log_comb = _lgamma(n + 1.0) - _lgamma(tv + 1.0) - _lgamma(n - tv + 1.0)
    out[valid] = log_comb + tv * math.log(p) + (n - tv) * math.log1p(-p)
    return out


def _window_hi(n: int, p: float) -> int:
    """Upper summation cutoff: mean + 40 sigma covers all non-negligible
    mass (the discarded tail is < e^{-320})."""
    sigma = math.sqrt(max(n * p * (1 - p), 1.0))
    return min(n, int(n * p + 40.0 * sigma) + 2)


def _window_lo(n: int, p: float) -> int:
    """Lower summation cutoff: mean − 40 sigma."""
    sigma = math.sqrt(max(n * p * (1 - p), 1.0))
    return max(0, int(n * p - 40.0 * sigma) - 2)


def binom_sf(t: int, n: int, p: float) -> float:
    """Upper tail ``P[Binomial(n, p) >= t]`` (exact up to < e^{-320})."""
    _check_np(n, p)
    if t <= 0:
        return 1.0
    if t > n:
        return 0.0
    hi = max(_window_hi(n, p), t)
    if t > hi:  # pragma: no cover - hi >= t by construction
        return 0.0
    ts = np.arange(t, hi + 1)
    logs = binom_logpmf(ts, n, p)
    peak = logs.max()
    if peak == -np.inf:
        return 0.0
    return float(min(1.0, math.exp(peak) * np.exp(logs - peak).sum()))


def binom_cdf(t: int, n: int, p: float) -> float:
    """Lower tail ``P[Binomial(n, p) <= t]`` (exact up to < e^{-320})."""
    _check_np(n, p)
    if t < 0:
        return 0.0
    if t >= n:
        return 1.0
    lo = min(_window_lo(n, p), t)
    ts = np.arange(lo, t + 1)
    logs = binom_logpmf(ts, n, p)
    peak = logs.max()
    if peak == -np.inf:
        return 0.0
    return float(min(1.0, math.exp(peak) * np.exp(logs - peak).sum()))


@lru_cache(maxsize=4096)
def find_separating_threshold(
    trials: int, p_low: float, p_high: float, error: float
) -> Optional[int]:
    """Error-balancing integer ``T`` separating two binomials.

    Among thresholds with ``P[Bin(trials, p_low) >= T] <= error`` **and**
    ``P[Bin(trials, p_high) < T] <= error``, returns the one minimising
    the *worse* of the two sides (ties to the smaller ``T``); ``None``
    when no threshold qualifies.  This is the exact-tail analogue of the
    paper's Eq. (5) window — the alarm count under uniform is dominated
    by ``Bin(ℓ, p_low)`` and under a far distribution dominates
    ``Bin(ℓ, p_high)`` — with the threshold placed mid-window rather than
    at the feasibility edge, so neither error side sits at its budget.

    ``lru_cache``d: the τ solver and the CONGEST root's per-trial
    threshold placement hit the same ``(ℓ, p_low, p_high, error)`` points
    over and over (a pure function of scalars, so caching is free of
    aliasing concerns).
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if not 0.0 <= p_low <= p_high <= 1.0:
        raise ParameterError(
            f"need 0 <= p_low <= p_high <= 1, got {(p_low, p_high)}"
        )
    if not 0.0 < error < 1.0:
        raise ParameterError(f"error must be in (0, 1), got {error}")
    # Candidate T range: between the two means, padded by 6 sigma.
    sigma = math.sqrt(trials * max(p_high, 1e-12)) * 6.0 + 2.0
    lo = max(1, int(trials * p_low - sigma))
    hi = min(trials + 1, int(trials * p_high + sigma) + 2)
    best: Optional[Tuple[float, int]] = None
    for threshold in range(lo, hi):
        err_low = binom_sf(threshold, trials, p_low)
        if err_low > error:
            continue
        err_high = binom_cdf(threshold - 1, trials, p_high)
        if err_high > error:
            # cdf only grows with T; no later candidate can recover.
            break
        worst = max(err_low, err_high)
        if best is None or worst < best[0]:
            best = (worst, threshold)
    return None if best is None else best[1]


def separation_error(
    trials: int, p_low: float, p_high: float, threshold: int
) -> Tuple[float, float]:
    """The two error sides achieved by a concrete threshold:
    ``(P[Bin(trials,p_low) >= T], P[Bin(trials,p_high) < T])``."""
    return (
        binom_sf(threshold, trials, p_low),
        binom_cdf(threshold - 1, trials, p_high),
    )
