"""The single-collision gap tester ``A_δ`` (Section 3.1 of the paper).

The tester draws ``s`` samples with ``s(s−1) = 2δn`` and accepts iff **all
samples are distinct**.  In this regime the expected number of collisions is
``δ ≪ 1``, so counting collisions (as the optimal centralized tester [21]
does) is pointless — the paper's insight is that the *mere presence* of one
collision is already a usable, if faint, signal:

- **Completeness** (Lemma 3.4(1)): under ``U_n``, Markov gives
  ``Pr[collision] ≤ binom(s,2)/n = δ``.
- **Soundness** (Lemma 3.4(2)): for ``μ`` ε-far from uniform, Lemma 3.2 gives
  ``χ(μ) ≥ (1+ε²)/n`` and the birthday bound of Lemma 3.3 (Wiener) yields
  ``Pr[no collision] ≤ e^{−t}(1+t)`` with ``t = (s−1)√χ``; expanding,
  ``Pr[collision] ≥ (1 + γ·ε²)·δ`` with the explicit slack ``γ`` of Eq. (1).

This module implements the tester, the integer sample-size solver, the γ
slack, the paper's validity region (``δ < ε⁴/64``, ``n > 64/(ε⁴δ)``), and
the exact probability formulas used by tests and benchmarks to cross-check
the bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.gap import GapGuarantee
from repro.exceptions import ParameterError


def sample_size_for_delta(n: int, delta: float) -> int:
    """Largest integer ``s ≥ 2`` with ``s(s−1) ≤ 2δn``.

    The paper assumes ``s(s−1) = 2δn`` exactly; with integer ``s`` we round
    *down*, so the effective δ (:func:`effective_delta`) never exceeds the
    requested one.  That direction matters: in the distributed
    constructions completeness (all ``k`` nodes accepting the uniform
    distribution) is the global constraint, and it is governed by the
    effective δ.  Soundness callers should use the effective δ too.

    Parameters
    ----------
    n:
        Domain size, ``n ≥ 1``.
    delta:
        Requested completeness error, in ``(0, 1)``.
    """
    if n < 1:
        raise ParameterError(f"domain size must be >= 1, got {n}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    target = 2.0 * delta * n
    s = int(math.floor((1.0 + math.sqrt(1.0 + 4.0 * target)) / 2.0))
    # The closed form can overshoot by one when sqrt rounds up across an
    # integer boundary; step down so s(s-1) <= 2*delta*n really holds.
    while s > 2 and s * (s - 1) > target:
        s -= 1
    return max(s, 2)


def effective_delta(n: int, s: int) -> float:
    """The δ actually achieved by ``s`` samples: ``binom(s,2)/n``."""
    if s < 2:
        raise ParameterError(f"s must be >= 2, got {s}")
    return s * (s - 1) / (2.0 * n)


def gamma_slack(n: int, s: int, eps: float) -> float:
    """The slack term γ of Eq. (1) of the paper.

    ``γ = 1 − 1/s − √(2δ(1+ε²)) − (1/s + √(2δ(1+ε²)))/ε²`` with
    ``δ = s(s−1)/(2n)``.  The proved soundness gap is ``α = 1 + γ·ε²``; γ
    approaches 1 as ``n/s² → ∞`` and can be negative when the tester is run
    outside its regime (in which case no gap is guaranteed).
    """
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    delta = effective_delta(n, s)
    root = math.sqrt(2.0 * delta * (1.0 + eps * eps))
    return 1.0 - 1.0 / s - root - (1.0 / s + root) / (eps * eps)


def validity_region(n: int, delta: float, eps: float) -> Tuple[bool, str]:
    """Check the paper's strict parameter regime for the ``(δ, 1+ε²/2)`` gap.

    Section 3.1: the distributed instantiation uses ``δ < ε⁴/64`` and
    ``n > 64/(ε⁴·δ)``, under which ``γ ≥ 1/2``.  Returns ``(ok, reason)``;
    ``reason`` is empty when ``ok``.
    """
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    e4 = eps**4
    if delta >= e4 / 64.0:
        return False, f"delta={delta:.3g} >= eps^4/64 = {e4 / 64.0:.3g}"
    if n <= 64.0 / (e4 * delta):
        return False, f"n={n} <= 64/(eps^4 delta) = {64.0 / (e4 * delta):.3g}"
    return True, ""


def collision_free_log_probability_uniform(n: int, s: int) -> float:
    """``ln Pr[no collision]`` for ``s`` uniform samples on ``[n]``.

    The log of the birthday product, ``Σ_{i=0}^{s−1} ln(1 − i/n)``, and
    ``−inf`` for ``s > n`` (a collision is then certain).  This is the
    numerically safe form: for ``s² ≫ n`` (large-τ packages on a small
    domain) the product itself underflows ``float64`` to ``0.0`` around
    ``ln P < −745``, while the log stays finite and matches the lgamma
    identity ``lgamma(n+1) − lgamma(n−s+1) − s·ln n`` to machine
    precision — callers that need ratios or complements of tiny
    survival probabilities should work from this value.
    """
    if n < 1:
        raise ParameterError(f"domain size must be >= 1, got {n}")
    if s < 0:
        raise ParameterError(f"s must be >= 0, got {s}")
    if s > n:
        return float("-inf")
    i = np.arange(s, dtype=np.float64)
    return float(np.log1p(-i / n).sum())


def collision_free_probability_uniform(n: int, s: int) -> float:
    """Exact ``Pr[no collision]`` for ``s`` uniform samples on ``[n]``.

    ``exp`` of :func:`collision_free_log_probability_uniform`; the
    product ``∏_{i=0}^{s−1} (1 − i/n)`` is always computed in log space
    for numerical stability.  Always at least ``1 − binom(s,2)/n`` (the
    Markov/union bound the paper uses), a fact the tests verify.  In the
    deep-underflow corner (``s² ≫ n``) this linear-scale value rounds to
    ``0.0``; use the log variant when that distinction matters.
    """
    return float(np.exp(collision_free_log_probability_uniform(n, s)))


def far_accept_upper_bound(chi: float, s: int) -> float:
    """Wiener's birthday bound (Lemma 3.3): ``Pr[no collision] ≤ e^{−t}(1+t)``
    with ``t = (s−1)√χ``, for *any* distribution with collision probability
    ``χ``."""
    if not 0.0 < chi <= 1.0:
        raise ParameterError(f"chi must be in (0, 1], got {chi}")
    if s < 1:
        raise ParameterError(f"s must be >= 1, got {s}")
    t = (s - 1) * math.sqrt(chi)
    return math.exp(-t) * (1.0 + t)


#: Below this size a hash set with early exit beats even a plain
#: ``np.sort`` (measured crossover ≈ 28 on CPython 3.11) — the common
#: regime, since the paper's testers use s = O(√(δn)) samples per node.
_SET_SCAN_CUTOFF = 24


def has_collision(samples: np.ndarray) -> bool:
    """Whether the sample batch contains two equal values.

    Small batches use a hash set with an early exit on the first repeat —
    ``O(s)`` expected, allocation-light, and up to ~3× faster than any
    vectorised route at tiny ``s``.  Larger batches use a sort+diff scan,
    which beats the previous ``np.unique`` implementation ~2× by skipping
    the unique-value extraction it never needed.  ``tools/bench_perf.py``
    micro-benchmarks both paths.
    """
    arr = np.asarray(samples)
    size = arr.size
    if size < 2:
        return False
    if size <= _SET_SCAN_CUTOFF:
        seen = set()
        for value in arr.ravel().tolist():
            if value in seen:
                return True
            seen.add(value)
        return False
    ordered = np.sort(arr, axis=None)
    return bool((ordered[1:] == ordered[:-1]).any())


@dataclass(frozen=True)
class CollisionGapTester:
    """The paper's single-collision tester ``A_δ``.

    Accepts iff all ``s`` samples are distinct.  Construct directly from a
    sample count, or from a requested δ via :meth:`from_delta`.

    Attributes
    ----------
    n:
        Domain size the tester is calibrated for.
    s:
        Samples per invocation (``s ≥ 2``; with ``s < 2`` no collision is
        possible and the tester is vacuous).

    Examples
    --------
    >>> tester = CollisionGapTester.from_delta(n=10_000, delta=0.05)
    >>> tester.s
    32
    >>> round(tester.delta, 4)  # effective delta after integer rounding
    0.0496
    """

    n: int
    s: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ParameterError(f"n must be >= 1, got {self.n}")
        if self.s < 2:
            raise ParameterError(f"s must be >= 2, got {self.s}")

    @staticmethod
    def from_delta(n: int, delta: float) -> "CollisionGapTester":
        """Build the tester with the smallest ``s`` achieving error ≤ ~δ."""
        return CollisionGapTester(n=n, s=sample_size_for_delta(n, delta))

    # -- CentralizedTester protocol ------------------------------------

    @property
    def samples_required(self) -> int:
        """Samples consumed per invocation (= ``s``)."""
        return self.s

    def decide(self, samples: np.ndarray) -> bool:
        """Accept iff the batch has no repeated value.

        Raises if the batch size differs from ``s`` — a size mismatch is
        always a harness bug, and silently accepting it would invalidate
        the guarantee.
        """
        arr = np.asarray(samples)
        if arr.size != self.s:
            raise ParameterError(
                f"tester calibrated for s={self.s} samples, got {arr.size}"
            )
        return not has_collision(arr)

    # -- analysis ------------------------------------------------------

    @property
    def delta(self) -> float:
        """Effective completeness error ``binom(s,2)/n``."""
        return effective_delta(self.n, self.s)

    def gamma(self, eps: float) -> float:
        """γ slack of Eq. (1) at distance *eps*."""
        return gamma_slack(self.n, self.s, eps)

    def guarantee(self, eps: float) -> GapGuarantee:
        """The proved ``(δ, α)`` guarantee at distance *eps*.

        ``α = 1 + γ·ε²`` when γ > 0; if γ ≤ 0 the construction proves no
        gap and the guarantee carries ``alpha`` barely above 1 with
        ``in_paper_regime = False`` so callers can tell.
        """
        g = self.gamma(eps)
        delta = self.delta
        ok, _ = validity_region(self.n, delta, eps)
        alpha = 1.0 + max(g, 1e-12) * eps * eps
        return GapGuarantee(
            delta=delta,
            alpha=alpha,
            eps=eps,
            samples=self.s,
            gamma=g,
            in_paper_regime=ok and g >= 0.5,
        )

    def uniform_accept_probability(self) -> float:
        """Exact acceptance probability under the uniform distribution."""
        return collision_free_probability_uniform(self.n, self.s)

    def far_accept_probability_bound(self, eps: float) -> float:
        """Upper bound on acceptance probability for any ε-far distribution.

        Combines Lemma 3.2 (``χ ≥ (1+ε²)/n``) with Lemma 3.3.
        """
        chi = (1.0 + eps * eps) / self.n
        return far_accept_upper_bound(chi, self.s)

    def accept_probability(self, chi: float) -> float:
        """Upper bound on acceptance for a distribution of known ``χ``."""
        return far_accept_upper_bound(chi, self.s)
