"""Closed-form complexity predictions for every theorem in the paper.

Benchmarks plot these curves next to measured quantities.  Each function
implements the paper's formula with the explicit constants of the
construction where the paper gives them, and a documented choice of
constant where it writes ``Θ(·)``.  Lower-bound formulas (Section 7) live
here too, so a single import gives an experiment both sides of the
sandwich.
"""

from __future__ import annotations

import math

from repro.core.params import cp_constant
from repro.exceptions import ParameterError


def _check(n: int, eps: float) -> None:
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")


# ---------------------------------------------------------------------------
# Centralized reference points
# ---------------------------------------------------------------------------


def centralized_sample_complexity(n: int, eps: float) -> float:
    """``Θ(√n/ε²)`` — the tight centralized bound [Paninski 2008].

    Constant 1 by convention; both the upper and lower centralized bounds
    have this shape.
    """
    _check(n, eps)
    return math.sqrt(n) / (eps * eps)


def gap_tester_samples(n: int, delta: float) -> float:
    """Theorem 3.1: the ``(δ, 1+Θ(ε²))``-gap tester uses ``√(2δn)`` samples.

    The constant ``√2`` is exact — it comes from ``s(s−1) = 2δn``.
    """
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(2.0 * delta * n)


# ---------------------------------------------------------------------------
# 0-round upper bounds
# ---------------------------------------------------------------------------


def and_rule_samples(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> float:
    """Theorem 1.1 sample count, with the construction's own constants.

    ``s = m·√(2δ'n)`` with ``m = ⌈ln C_p / ln(1+ε²/2)⌉`` and
    ``δ' = (ln(1/(1−p))/k)^{1/m}``.  This is
    ``Θ((C_p/ε²)·√(n/k^{Θ(ε²/C_p)}))``, written out.
    """
    _check(n, eps)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    cp = cp_constant(p)
    m = max(1, math.ceil(math.log(cp) / math.log(1.0 + eps * eps / 2.0)))
    delta_prime = (math.log(1.0 / (1.0 - p)) / k) ** (1.0 / m)
    return m * math.sqrt(2.0 * delta_prime * n)


def threshold_rule_samples(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> float:
    """Theorem 1.2 sample count: ``√(2·kδ·n/k)`` with ``kδ = Θ(1/ε⁴)``.

    The total rejection budget uses the explicit Chernoff feasibility point
    of Eq. (5) at γ = 1/2:
    ``kδ = ((√(3L) + √(2L(1+ε²/2))) / (ε²/2))²`` with ``L = ln(1/p)``.
    The result scales as ``√(n/k)/ε²`` — the paper's headline.
    """
    _check(n, eps)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    big_l = math.log(1.0 / p)
    g = eps * eps / 2.0
    k_delta = ((math.sqrt(3.0 * big_l) + math.sqrt(2.0 * big_l * (1.0 + g))) / g) ** 2
    return math.sqrt(2.0 * k_delta * n / k)


def threshold_value(eps: float, p: float = 1.0 / 3.0) -> float:
    """Theorem 1.2's ``T = Θ(1/ε⁴)``: the mid-window threshold at γ = 1/2."""
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    big_l = math.log(1.0 / p)
    g = eps * eps / 2.0
    k_delta = ((math.sqrt(3.0 * big_l) + math.sqrt(2.0 * big_l * (1.0 + g))) / g) ** 2
    t_lo = k_delta + math.sqrt(3.0 * big_l * k_delta)
    t_hi = (1.0 + g) * k_delta - math.sqrt(2.0 * big_l * (1.0 + g) * k_delta)
    return (t_lo + t_hi) / 2.0


# ---------------------------------------------------------------------------
# Multi-round models
# ---------------------------------------------------------------------------


def congest_rounds(n: int, k: int, eps: float, diameter: int) -> float:
    """Theorem 1.4: ``O(D + n/(kε⁴))`` rounds, constant 1."""
    _check(n, eps)
    if k < 1 or diameter < 0:
        raise ParameterError(f"need k >= 1 and diameter >= 0, got {(k, diameter)}")
    return diameter + n / (k * eps**4)


def congest_package_size(n: int, k: int, eps: float) -> float:
    """The token-package size ``τ = Θ(n/(kε⁴))`` used inside Theorem 1.4."""
    _check(n, eps)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    return n / (k * eps**4)


def local_radius(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> float:
    """Section 6: the LOCAL gathering radius.

    ``r = (and_rule_samples-style expression)^{1/(1−θ)}`` with
    ``θ = Θ(ε²/C_p)`` the exponent through which ``k`` enters Theorem 1.1.
    We use the construction's own ``m`` so that ``θ = 1/(2m)·...``; concretely
    the paper's expression with ``θ = ln(1+ε²/2)/ln C_p / (2·1)``:
    ``r = A^{1/(1−1/(2m))}`` where ``A = and_rule_samples(n, 2k/r ...)``
    collapsed at ``k`` virtual nodes of ``r/2`` samples.  For the benchmark
    curve we report the simpler fixed point of
    ``r = and_rule_samples(n, 2k/r, eps, p)`` solved numerically — the
    radius at which MIS nodes hold exactly enough samples.
    """
    _check(n, eps)
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    r = max(2.0, math.sqrt(n) / (eps * eps) / k)  # crude start
    for _ in range(200):
        virtual_nodes = max(1.0, 2.0 * k / r)
        needed = 2.0 * and_rule_samples(n, max(1, int(virtual_nodes)), eps, p)
        new_r = max(2.0, needed)
        if abs(new_r - r) < 1e-9:
            break
        r = 0.5 * r + 0.5 * new_r
    return r


# ---------------------------------------------------------------------------
# Lower bounds (Section 7)
# ---------------------------------------------------------------------------


def f_tau(tau: float) -> float:
    """``f(τ) = τ − 1 − ln τ`` — the KL separation rate of Lemma 2.1.

    Positive for all ``τ > 1`` (and ``τ < 1``), zero at ``τ = 1``.
    """
    if tau <= 0:
        raise ParameterError(f"tau must be positive, got {tau}")
    return tau - 1.0 - math.log(tau)


def kl_separation_lower_bound(delta: float, tau: float) -> float:
    """Lemma 2.1: ``D(B_{1−δ} ‖ B_{1−τδ}) ≥ (δ/4)·f(τ)``.

    Valid for ``δ ∈ (0, 1/4)`` and ``τ ∈ (1, 1/δ)``.
    """
    if not 0.0 < delta < 0.25:
        raise ParameterError(f"delta must be in (0, 1/4), got {delta}")
    if not 1.0 < tau < 1.0 / delta:
        raise ParameterError(f"tau must be in (1, 1/delta), got {tau}")
    return delta / 4.0 * f_tau(tau)


def smp_equality_lower_bound(n: int, delta: float, tau: float) -> float:
    """Theorem 7.2: ``SMP_{(1−τ'δ),δ}(EQ) = Ω(√(f(τ)δn))``, constant 1."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not 0.0 < delta < 1.0:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(f_tau(tau) * delta * n)


def smp_equality_upper_bound(n: int, delta: float, tau: float) -> float:
    """Lemma 7.3's protocol cost: ``t = ⌈√(24·τδn)⌉`` chunk bits plus the
    two coordinates (``O(log n)``); we report the dominant ``√`` term."""
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    if not 0.0 < delta < 1.0 or tau <= 1.0:
        raise ParameterError(f"need delta in (0,1), tau > 1; got {(delta, tau)}")
    return math.sqrt(24.0 * tau * delta * n)


def gap_tester_lower_bound(n: int, delta: float, alpha: float) -> float:
    """Corollary 7.4: ``(δ, α)``-gap uniformity testing needs
    ``Ω(√(f(α)δn)/log n)`` samples."""
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if not 0.0 < delta < 1.0 or alpha <= 1.0:
        raise ParameterError(f"need delta in (0,1), alpha > 1; got {(delta, alpha)}")
    return math.sqrt(f_tau(alpha) * delta * n) / math.log(n)


def zero_round_lower_bound(n: int, k: int) -> float:
    """Theorem 1.3: anonymous 0-round testers need ``Ω(√(n/k)/log n)``
    samples per node (ε treated as constant, per the paper's remark)."""
    if n < 2 or k < 1:
        raise ParameterError(f"need n >= 2, k >= 1; got {(n, k)}")
    return math.sqrt(n / k) / math.log(n)
