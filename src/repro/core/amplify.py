"""Gap amplification by AND-of-m repetition (Section 3.2.1 of the paper).

A ``(δ', α)``-gap tester rejects the uniform distribution w.p. ≤ δ' and an
ε-far one w.p. ≥ α·δ'.  Running ``m`` independent copies on *fresh* samples
and rejecting iff **all copies reject** turns it into a
``(δ'^m, α^m)``-gap tester:

- uniform rejection ≤ ``δ'^m`` (independence),
- far rejection ≥ ``(α·δ')^m = α^m · δ'^m``.

The multiplicative gap is thus raised from ``α`` to ``α^m`` at the cost of
``m×`` samples and a sharply smaller base rejection rate — exactly the
trade-off Theorem 1.1 navigates when it needs each node's gap to reach the
constant ``C_p`` while keeping ``k`` nodes' worth of uniform rejections
below the global budget (Eq. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.gap import CentralizedTester, GapSpec
from repro.exceptions import ParameterError


def repetitions_for_gap(base_alpha: float, target_gap: float) -> int:
    """Smallest ``m`` with ``base_alpha^m ≥ target_gap``.

    Theorem 1.1 uses ``m = log_{1+Θ(ε²)}(C_p) = Θ(C_p/ε²)`` repetitions; this
    helper computes the exact integer for concrete parameters.
    """
    if base_alpha <= 1.0:
        raise ParameterError(f"base_alpha must exceed 1, got {base_alpha}")
    if target_gap <= 1.0:
        return 1
    return max(1, int(math.ceil(math.log(target_gap) / math.log(base_alpha))))


def amplified_gap(spec: GapSpec, m: int) -> GapSpec:
    """The ``(δ'^m, α^m)`` spec achieved by AND-of-*m* repetition of *spec*."""
    if m < 1:
        raise ParameterError(f"m must be >= 1, got {m}")
    new_delta = spec.delta**m
    new_alpha = spec.alpha**m
    if new_alpha * new_delta > 1.0:
        raise ParameterError("amplified parameters are inconsistent")
    return GapSpec(delta=new_delta, alpha=new_alpha, eps=spec.eps)


@dataclass(frozen=True)
class RepeatedAndTester:
    """AND-of-m amplification wrapper around any single-node tester.

    Consumes ``m × base.samples_required`` samples per invocation, splits
    them into ``m`` fresh batches, and **rejects iff every batch rejects**.
    (Note the polarity: *accept* iff at least one batch accepted.)

    This is the tester the paper calls "running ``A_δ'`` independently ``m``
    times" — each network node in the Theorem 1.1 construction runs one
    ``RepeatedAndTester``.
    """

    base: CentralizedTester
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")

    @property
    def samples_required(self) -> int:
        """Total samples across all ``m`` repetitions."""
        return self.m * self.base.samples_required

    def decide(self, samples: np.ndarray) -> bool:
        """Accept unless all ``m`` independent repetitions reject."""
        arr = np.asarray(samples)
        per = self.base.samples_required
        if arr.size != self.m * per:
            raise ParameterError(
                f"expected {self.m}x{per} samples, got {arr.size}"
            )
        batches = arr.reshape(self.m, per)
        for batch in batches:
            if self.base.decide(batch):
                return True
        return False
