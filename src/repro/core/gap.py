"""The ``(δ, α)``-gap tester abstraction (Definition 1 of the paper).

A gap tester is a single-node algorithm with a deliberately *asymmetric*
error profile: it accepts the uniform distribution with probability at least
``1 − δ``, and accepts any ε-far distribution with probability at most
``1 − α·δ`` — a rejection gap of only ``(α − 1)·δ``, with ``α`` barely above
1.  The paper's distributed testers are built by handing every node such a
weak signal and combining the one-bit outputs with a decision rule.

This module defines:

- :class:`GapSpec` — the ``(δ, α)`` pair plus ``ε``, with the derived
  quantities both analyses use.
- :class:`GapGuarantee` — a *proved* guarantee attached to a concrete tester:
  bounds on rejection probabilities under uniform / far inputs.
- :class:`CentralizedTester` — the minimal protocol all single-node testers
  implement (collision tester, baselines, amplified testers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class GapSpec:
    """Target parameters for a ``(δ, α)``-gap ε-uniformity tester.

    Attributes
    ----------
    delta:
        Completeness error budget: ``Pr[reject | uniform] <= delta``.
    alpha:
        Soundness multiplier: ``Pr[reject | ε-far] >= alpha * delta``.
        Must exceed 1.
    eps:
        The L1 distance parameter of the testing problem, in ``(0, 2)``.
    """

    delta: float
    alpha: float
    eps: float

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ParameterError(f"delta must be in (0, 1), got {self.delta}")
        if self.alpha <= 1.0:
            raise ParameterError(f"alpha must exceed 1, got {self.alpha}")
        if not 0.0 < self.eps < 2.0:
            raise ParameterError(f"eps must be in (0, 2), got {self.eps}")
        if self.alpha * self.delta > 1.0:
            raise ParameterError(
                f"alpha*delta = {self.alpha * self.delta} > 1 is unsatisfiable"
            )

    @property
    def uniform_reject_bound(self) -> float:
        """Upper bound on ``Pr[reject | uniform]``."""
        return self.delta

    @property
    def far_reject_bound(self) -> float:
        """Lower bound on ``Pr[reject | ε-far]``."""
        return self.alpha * self.delta

    @property
    def rejection_gap(self) -> float:
        """The absolute gap ``(α − 1)·δ`` the decision rule must exploit."""
        return (self.alpha - 1.0) * self.delta


@dataclass(frozen=True)
class GapGuarantee:
    """A proved ``(δ, α)`` guarantee for a concrete tester instance.

    Unlike :class:`GapSpec` (a *request*), this records what a constructed
    tester actually achieves given its integer sample count: the effective
    ``δ`` after rounding ``s``, the provable ``α`` from the γ slack, and the
    validity flags of the regime checks (Section 3.1: ``δ < ε⁴/64`` and
    ``n > 64/(ε⁴δ)``).
    """

    delta: float
    alpha: float
    eps: float
    samples: int
    gamma: float
    in_paper_regime: bool

    @property
    def spec(self) -> GapSpec:
        """The guarantee viewed as a :class:`GapSpec`."""
        return GapSpec(delta=self.delta, alpha=self.alpha, eps=self.eps)


@runtime_checkable
class CentralizedTester(Protocol):
    """Protocol for single-node testers.

    Implementations expose how many samples one invocation consumes and a
    ``decide`` method mapping a sample batch to accept (``True``) / reject
    (``False``).  Implementations must be deterministic given the samples
    *and* any RNG passed in; collision-style testers are deterministic in
    the samples alone.
    """

    @property
    def samples_required(self) -> int:
        """Number of samples one invocation of the tester consumes."""
        ...

    def decide(self, samples: np.ndarray) -> bool:
        """Return ``True`` to accept (looks uniform), ``False`` to reject."""
        ...


def decide_many(tester: CentralizedTester, samples: np.ndarray) -> np.ndarray:
    """Batched tester verdicts: one bool per row of a ``(trials, s)`` matrix.

    Row-identical to calling ``tester.decide`` on each row.  The two
    collision testers get closed-form vectorised paths (a per-row sort
    plus adjacent-equality scan covers both the collision *gap* decision
    and the exact collision-*pair* count); any other
    :class:`CentralizedTester` falls back to a per-row ``decide`` loop, so
    the function is always safe to call.
    """
    arr = np.asarray(samples)
    if arr.ndim != 2 or arr.shape[1] != tester.samples_required:
        raise ParameterError(
            f"tester consumes {tester.samples_required} samples per trial, "
            f"got batch of shape {arr.shape}"
        )
    if arr.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    from repro.core.baselines import CollisionCountTester
    from repro.core.collision import CollisionGapTester

    if isinstance(tester, CollisionGapTester):
        ordered = np.sort(arr, axis=1)
        return ~(ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
    if isinstance(tester, CollisionCountTester):
        ordered = np.sort(arr, axis=1)
        eq = ordered[:, 1:] == ordered[:, :-1]
        # Collision pairs per row: a run of L equal samples contributes
        # C(L, 2) pairs = the sum over the run of each element's distance
        # to the run start, computed via the last not-equal position.
        idx = np.arange(eq.shape[1])
        last_neq = np.maximum.accumulate(np.where(~eq, idx, -1), axis=1)
        pairs = np.where(eq, idx - last_neq, 0).sum(axis=1)
        return pairs <= tester.collision_threshold
    return np.fromiter(
        (bool(tester.decide(row)) for row in arr), dtype=bool, count=arr.shape[0]
    )
