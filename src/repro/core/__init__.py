"""Core uniformity-testing machinery — the paper's primary contribution.

Layout
------
- :mod:`repro.core.gap` — the ``(δ, α)``-gap tester abstraction
  (Definition 1 of the paper) and the generic tester protocol.
- :mod:`repro.core.collision` — the single-collision tester ``A_δ``
  (Section 3.1, Theorem 3.1, Lemma 3.4), with the exact sample-size solver
  for ``s(s−1) = 2δn`` and the γ slack term of Eq. (1).
- :mod:`repro.core.amplify` — AND-of-m gap amplification (Section 3.2.1).
- :mod:`repro.core.params` — numeric parameter solvers that instantiate
  Theorems 1.1 and 1.2 at concrete ``(n, k, ε, p)``.
- :mod:`repro.core.bounds` — closed-form sample/round complexity predictions
  for every theorem, used by benchmarks to plot paper-vs-measured.
- :mod:`repro.core.baselines` — centralized baselines: the Paninski-style
  collision-count tester [21], a χ²-style tester, and the empirical-L1
  plug-in tester.
"""

from repro.core.amplify import RepeatedAndTester, amplified_gap, repetitions_for_gap
from repro.core.baselines import (
    ChiSquareTester,
    CollisionCountTester,
    EmpiricalL1Tester,
)
from repro.core.collision import (
    CollisionGapTester,
    collision_free_log_probability_uniform,
    collision_free_probability_uniform,
    far_accept_upper_bound,
    gamma_slack,
    sample_size_for_delta,
    validity_region,
)
from repro.core.gap import CentralizedTester, GapGuarantee, GapSpec
from repro.core.params import (
    AndRuleParameters,
    ThresholdParameters,
    and_rule_parameters,
    cp_constant,
    threshold_parameters,
)

__all__ = [
    "GapSpec",
    "GapGuarantee",
    "CentralizedTester",
    "CollisionGapTester",
    "sample_size_for_delta",
    "gamma_slack",
    "validity_region",
    "collision_free_log_probability_uniform",
    "collision_free_probability_uniform",
    "far_accept_upper_bound",
    "RepeatedAndTester",
    "repetitions_for_gap",
    "amplified_gap",
    "cp_constant",
    "AndRuleParameters",
    "ThresholdParameters",
    "and_rule_parameters",
    "threshold_parameters",
    "CollisionCountTester",
    "ChiSquareTester",
    "EmpiricalL1Tester",
]
