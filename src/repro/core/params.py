"""Numeric parameter solvers instantiating Theorems 1.1 and 1.2.

The paper's statements are asymptotic (``Θ(·)``); to *run* the constructions
at concrete ``(n, k, ε, p)`` we need actual integers: how many repetitions
``m``, what base-tester sample count ``s``, what threshold ``T``.  The
solvers here derive them from the exact finite inequalities rather than the
asymptotic forms, via short fixed-point iterations on the γ slack of
Eq. (1) (γ depends on δ, which depends on the chosen ``s``, which depends on
γ).  When no setting satisfies the constraints — e.g. ``n`` too small for
the requested ``k, ε`` — they raise
:class:`~repro.exceptions.InfeasibleParametersError` with the violated
inequality, instead of silently producing a tester with no guarantee.

Closed-form asymptotic predictions (for plotting "paper curve vs measured")
live in :mod:`repro.core.bounds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.amplify import RepeatedAndTester
from repro.core.collision import (
    CollisionGapTester,
    effective_delta,
    gamma_slack,
    sample_size_for_delta,
)
from repro.exceptions import InfeasibleParametersError, ParameterError

#: Fixed-point iterations for the γ ↔ δ dependence; convergence is
#: geometric, a dozen rounds is far more than needed.
_MAX_FIXED_POINT_ITERS = 60


def cp_constant(p: float) -> float:
    """The paper's ``C_p = ln(1/p) / ln(1/(1−p))``.

    This is the multiplicative gap each node's tester must reach in the
    AND-rule construction.  For ``p = 1/3``, ``C_p ≈ 2.71``.
    """
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    return math.log(1.0 / p) / math.log(1.0 / (1.0 - p))


def _check_common(n: int, k: int, eps: float, p: float) -> None:
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")


# ---------------------------------------------------------------------------
# Theorem 1.1 — the AND decision rule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AndRuleParameters:
    """Concrete instantiation of the Theorem 1.1 construction.

    Every node runs ``m`` independent copies of the collision tester with
    ``s_per_repetition`` samples each and rejects iff **all copies reject**;
    the network rejects iff **any node rejects** (the AND rule on
    acceptances).

    Attributes
    ----------
    n, k, eps, p:
        Problem parameters: domain size, nodes, distance, error budget.
    m:
        Repetitions per node.
    s_per_repetition:
        Collision-tester samples per repetition.
    samples_per_node:
        ``m * s_per_repetition`` — the headline cost of Theorem 1.1.
    delta_node:
        Per-node uniform-rejection budget ``1 − (1−p)^{1/k}`` (so the whole
        network accepts ``U_n`` w.p. exactly ``≥ 1−p``).
    far_reject_needed:
        Per-node far-rejection requirement ``1 − p^{1/k}``.
    delta_prime:
        Effective per-repetition δ after integer rounding of ``s``.
    gamma:
        γ slack (Eq. 1) of the base tester at this ``(n, s, ε)``.
    """

    n: int
    k: int
    eps: float
    p: float
    m: int
    s_per_repetition: int
    samples_per_node: int
    delta_node: float
    far_reject_needed: float
    delta_prime: float
    gamma: float

    def build_node_tester(self) -> RepeatedAndTester:
        """The tester each network node runs."""
        base = CollisionGapTester(n=self.n, s=self.s_per_repetition)
        return RepeatedAndTester(base=base, m=self.m)

    @property
    def uniform_reject_per_node(self) -> float:
        """Proved bound on ``Pr[node rejects | uniform]`` = ``δ'^m``."""
        return self.delta_prime**self.m

    @property
    def far_reject_per_node(self) -> float:
        """Proved bound on ``Pr[node rejects | ε-far]`` = ``((1+γε²)δ')^m``."""
        alpha = 1.0 + self.gamma * self.eps * self.eps
        return (alpha * self.delta_prime) ** self.m

    @property
    def network_error_uniform(self) -> float:
        """Proved bound on ``Pr[some node rejects | uniform]``."""
        return 1.0 - (1.0 - self.uniform_reject_per_node) ** self.k

    @property
    def network_error_far(self) -> float:
        """Proved bound on ``Pr[all nodes accept | ε-far]``."""
        return (1.0 - self.far_reject_per_node) ** self.k


def and_rule_parameters(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> AndRuleParameters:
    """Solve for the Theorem 1.1 construction at concrete parameters.

    Strategy (Section 3.2.1 made exact):

    1. Completeness budget per node: ``δ_node = 1 − (1−p)^{1/k}`` makes the
       network accept ``U_n`` w.p. exactly ``1 − p``.
    2. Soundness requirement per node: ``r_far = 1 − p^{1/k}``.
    3. The base collision tester has gap ``1 + γε²``; AND-of-m amplification
       must cover the needed ratio, accounting for the loss from rounding
       ``s`` down (effective ``δ'^m`` may undershoot ``δ_node``).  We iterate
       ``m → δ' → s → γ → m`` until stable.

    Raises
    ------
    InfeasibleParametersError
        If γ ≤ 0 at the implied sample counts (``n`` too small for the
        requested ``k, ε, p``) or the iteration cannot satisfy soundness.
    """
    _check_common(n, k, eps, p)
    delta_node = 1.0 - (1.0 - p) ** (1.0 / k)
    far_needed = 1.0 - p ** (1.0 / k)

    best = None
    for m in range(1, _MAX_FIXED_POINT_ITERS + 1):
        # Completeness caps the per-repetition delta': delta'^m <= delta_node.
        s_cap = sample_size_for_delta(n, delta_node ** (1.0 / m))
        for s in range(2, s_cap + 1):
            delta_prime = effective_delta(n, s)
            if delta_prime**m > delta_node:
                break
            gamma = gamma_slack(n, s, eps)
            if gamma <= 0.0:
                # gamma is hump-shaped in s (the 1/s term dominates at the
                # bottom, the sqrt(2delta') term at the top), so keep
                # scanning: a later s may clear zero.
                continue
            alpha = 1.0 + gamma * eps * eps
            if (alpha * delta_prime) ** m >= far_needed:
                if best is None or m * s < best.samples_per_node:
                    best = AndRuleParameters(
                        n=n,
                        k=k,
                        eps=eps,
                        p=p,
                        m=m,
                        s_per_repetition=s,
                        samples_per_node=m * s,
                        delta_node=delta_node,
                        far_reject_needed=far_needed,
                        delta_prime=delta_prime,
                        gamma=gamma,
                    )
                break  # smallest feasible s for this m found
    if best is None:
        raise InfeasibleParametersError(
            f"no (m, s) with m <= {_MAX_FIXED_POINT_ITERS} satisfies both "
            f"completeness and soundness at n={n}, k={k}, eps={eps}, p={p}: "
            "the AND rule needs larger k or eps (see Theorem 1.1's regime)"
        )
    return best


# ---------------------------------------------------------------------------
# Theorem 1.2 — the threshold decision rule
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ThresholdParameters:
    """Concrete instantiation of the Theorem 1.2 construction.

    Every node runs one collision tester ``A_δ`` with ``s`` samples; the
    network rejects iff at least ``T`` nodes reject.  The threshold sits in
    the Chernoff window of Eq. (5) between the expected rejection counts
    ``η(U) ≤ kδ`` and ``η(μ) ≥ (1+γε²)kδ``.

    Attributes
    ----------
    n, k, eps, p:
        Problem parameters (``p`` bounds each error side).
    s:
        Samples per node.
    delta:
        Effective per-node δ after integer rounding of ``s``.
    threshold:
        The reject-count threshold ``T``.
    gamma:
        γ slack of Eq. (1) at these parameters.
    eta_uniform, eta_far:
        The two expectation bounds the threshold separates.
    """

    n: int
    k: int
    eps: float
    p: float
    s: int
    delta: float
    threshold: int
    gamma: float
    eta_uniform: float
    eta_far: float

    def build_node_tester(self) -> CollisionGapTester:
        """The tester each network node runs (a single ``A_δ``)."""
        return CollisionGapTester(n=self.n, s=self.s)

    @property
    def samples_per_node(self) -> int:
        """Per-node sample cost — the headline of Theorem 1.2."""
        return self.s

    @property
    def completeness_error_bound(self) -> float:
        """Chernoff bound on ``Pr[R ≥ T | uniform]``."""
        d = self.threshold - self.eta_uniform
        if d <= 0:
            return 1.0
        return math.exp(-d * d / (3.0 * self.eta_uniform))

    @property
    def soundness_error_bound(self) -> float:
        """Chernoff bound on ``Pr[R < T | ε-far]``."""
        d = self.eta_far - self.threshold
        if d <= 0:
            return 1.0
        return math.exp(-d * d / (2.0 * self.eta_far))


def _threshold_window(n, k, s, eps, big_l):
    """Eq. (5) window for a concrete per-node sample count ``s``.

    Returns ``(delta, gamma, eta_uniform, eta_far, threshold)`` when the
    Chernoff window contains an integer threshold, else ``None``.
    """
    delta = effective_delta(n, s)
    gamma = gamma_slack(n, s, eps)
    if gamma <= 0.0:
        return None
    eta_uniform = k * delta
    eta_far = (1.0 + gamma * eps * eps) * k * delta
    t_lo = eta_uniform + math.sqrt(3.0 * big_l * eta_uniform)
    t_hi = eta_far - math.sqrt(2.0 * big_l * eta_far)
    threshold = math.ceil((t_lo + t_hi) / 2.0)
    if not t_lo <= threshold <= t_hi:
        return None
    return delta, gamma, eta_uniform, eta_far, float(threshold)


def threshold_parameters(
    n: int, k: int, eps: float, p: float = 1.0 / 3.0, slack: float = 1.05
) -> ThresholdParameters:
    """Solve for the Theorem 1.2 construction at concrete parameters.

    Scans per-node sample counts ``s`` upward and returns the *smallest*
    ``s`` whose Eq. (5) Chernoff window contains an integer threshold.
    The scan sidesteps the γ ↔ δ circularity (γ is evaluated exactly at
    each candidate ``s``), and minimising ``s`` directly is exactly the
    theorem's objective.  ``slack`` widens the window requirement: the
    chosen ``s`` must clear the bare feasibility budget by a factor
    ``slack``, giving the mid-window threshold breathing room.

    Raises
    ------
    InfeasibleParametersError
        If no ``s`` up to the δ = 1/2 point yields a non-empty window —
        which happens exactly when ``n`` is too small for the requested
        ``(k, ε, p)``.
    """
    _check_common(n, k, eps, p)
    if slack < 1.0:
        raise ParameterError(f"slack must be >= 1, got {slack}")
    big_l = math.log(1.0 / p)

    # delta <= 1/2 bounds the useful range of s: beyond it a *single* node
    # already sees collisions constantly and the gap analysis is void.
    s_max = sample_size_for_delta(n, 0.5)
    best = None
    for s in range(2, s_max + 1):
        window = _threshold_window(n, k, s, eps, big_l)
        if window is None:
            continue
        delta, gamma, eta_u, eta_f, threshold = window
        # Enforce the slack margin: the chosen budget must clear the bare
        # Chernoff feasibility point by the `slack` factor (robustness to
        # integer rounding and Monte-Carlo noise).
        g = gamma * eps * eps
        k_delta_min = (
            (math.sqrt(3.0 * big_l) + math.sqrt(2.0 * big_l * (1.0 + g))) / g
        ) ** 2
        if k * delta < slack * k_delta_min:
            continue
        best = (s, delta, gamma, eta_u, eta_f, int(threshold))
        break
    if best is None:
        raise InfeasibleParametersError(
            f"no per-node sample count s in [2, {s_max}] satisfies the "
            f"Eq. (5) window at n={n}, k={k}, eps={eps}, p={p}: increase n "
            "or k, or relax eps/p"
        )
    s, delta, gamma, eta_uniform, eta_far, threshold = best
    return ThresholdParameters(
        n=n,
        k=k,
        eps=eps,
        p=p,
        s=s,
        delta=delta,
        threshold=threshold,
        gamma=gamma,
        eta_uniform=eta_uniform,
        eta_far=eta_far,
    )


def threshold_parameters_exact(
    n: int, k: int, eps: float, p: float = 1.0 / 3.0
) -> ThresholdParameters:
    """Theorem 1.2 solver with exact binomial tails instead of Chernoff.

    Same proof structure as :func:`threshold_parameters` — the alarm count
    under uniform is dominated by ``Bin(k, p_u)`` with
    ``p_u = 1 − ∏(1−i/n)`` (exact), and under any ε-far distribution
    dominates ``Bin(k, p_f)`` with ``p_f`` from Lemma 3.3 — but the
    threshold is placed by exact tail evaluation rather than the Chernoff
    bounds of Eq. (5).  The guarantee is identical in kind; the constants
    are far smaller, so much smaller networks become provably feasible
    (benchmark E12 quantifies the gap).  Returns the same
    :class:`ThresholdParameters` shape; the ``gamma``/``eta`` fields
    report the analysis quantities for comparison.
    """
    from repro.core.binomial import find_separating_threshold
    from repro.core.collision import (
        collision_free_probability_uniform,
        far_accept_upper_bound,
    )

    import math as _math

    _check_common(n, k, eps, p)
    s_max = sample_size_for_delta(n, 0.5)
    for s in range(2, s_max + 1):
        p_uniform = 1.0 - collision_free_probability_uniform(n, s)
        p_far = 1.0 - far_accept_upper_bound((1.0 + eps * eps) / n, s)
        if p_far <= p_uniform:
            continue
        # Cheap prescreen: the means must part by ~a standard deviation
        # before exact tails can possibly separate at constant error.
        mean_gap = k * (p_far - p_uniform)
        sigma_sum = _math.sqrt(k * p_uniform) + _math.sqrt(k * p_far)
        if mean_gap < 0.5 * sigma_sum:
            continue
        threshold = find_separating_threshold(k, p_uniform, p_far, p)
        if threshold is None:
            continue
        return ThresholdParameters(
            n=n,
            k=k,
            eps=eps,
            p=p,
            s=s,
            delta=effective_delta(n, s),
            threshold=threshold,
            gamma=gamma_slack(n, s, eps),
            eta_uniform=k * p_uniform,
            eta_far=k * p_far,
        )
    raise InfeasibleParametersError(
        f"no per-node sample count s in [2, {s_max}] separates the exact "
        f"alarm tails at n={n}, k={k}, eps={eps}, p={p}"
    )
