"""Sample gathering: route every node's sample to a nearby MIS node.

Given an MIS ``S`` of the power graph ``G^r``, every non-MIS node has an
MIS node within ``r`` hops (maximality); it picks the closest one (ties to
the smallest ID) and routes its sample there.  In the LOCAL model this
takes ``r`` rounds — messages are unbounded, so each intermediate node
simply forwards the bundle — and the round cost is exactly the routing
radius, which is what this module charges.

The key quantitative fact (Section 6): distinct MIS nodes are more than
``r`` apart in ``G``, so the ``r/2``-ball of an MIS node is claimed by no
other MIS node; with ties broken consistently every sample in that ball
routes to its owner, giving each MIS node at least ``|N^{r/2}(v)| ≥ r/2``
samples (connectivity).  :func:`assign_catchments` computes the exact
assignment and verifies these lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.simulator.graph import Topology


@dataclass(frozen=True)
class GatherResult:
    """Outcome of the sample-routing phase.

    Attributes
    ----------
    owner:
        For each node, the MIS node its sample routes to (MIS nodes own
        their own sample).
    samples_at:
        For each MIS node, the list of node IDs whose samples it received.
    routing_rounds:
        LOCAL rounds charged: the maximum routing distance (≤ r).
    """

    owner: Tuple[int, ...]
    samples_at: Dict[int, Tuple[int, ...]]
    routing_rounds: int


def assign_catchments(
    topology: Topology,
    mis: Sequence[bool],
    r: int,
) -> GatherResult:
    """Assign every node's sample to its closest MIS node within ``r`` hops.

    Raises if some node has no MIS node within ``r`` hops — that would mean
    *mis* is not maximal on ``G^r``.
    """
    if len(mis) != topology.k:
        raise ParameterError("mis length must equal node count")
    if r < 1:
        raise ParameterError(f"r must be >= 1, got {r}")
    mis_nodes = np.flatnonzero(np.asarray(mis, dtype=bool))
    if not mis_nodes.size:
        raise ParameterError("MIS is empty")

    # Lexicographic (distance, owner-ID) relaxation from all MIS sources:
    # after i sweeps every node within i hops of the MIS knows its exact
    # (closest distance, smallest owner at that distance).  This matches
    # the deterministic local routing rule "forward toward the closest MIS
    # node, breaking ties to the smallest ID".  The pair packs into one
    # int64 key ``dist·base + owner`` (base > any owner), so a sweep is a
    # single scatter-min over the edge list: a neighbour's candidate is
    # its own key plus one distance unit.
    infinity = topology.k + 1
    base = np.int64(topology.k + 2)
    key = np.full(topology.k, np.int64(infinity) * base + infinity, dtype=np.int64)
    key[mis_nodes] = mis_nodes  # dist 0, owner = self
    src = np.array(
        [v for v in range(topology.k) for _ in topology.neighbors(v)],
        dtype=np.int64,
    )
    dst = np.array(
        [u for v in range(topology.k) for u in topology.neighbors(v)],
        dtype=np.int64,
    )
    for _ in range(r):
        relaxed = key.copy()
        np.minimum.at(relaxed, dst, key[src] + base)
        if np.array_equal(relaxed, key):
            break
        key = relaxed
    dist = key // base
    owner = key % base
    # Jacobi sweeps stop at exactly r relaxations, but an unreachable node's
    # sentinel key still decodes to a large distance; enforce the radius.
    owner[dist > r] = infinity
    unassigned = np.flatnonzero(owner >= infinity)
    if unassigned.size:
        raise ParameterError(
            f"nodes {unassigned[:8].tolist()} have no MIS node within r={r} "
            "hops; the MIS is not maximal on G^r"
        )
    # Stable sort by owner groups each catchment with node IDs ascending.
    order = np.argsort(owner, kind="stable")
    owners_sorted = owner[order]
    boundaries = np.flatnonzero(np.diff(owners_sorted)) + 1
    samples_at = {
        int(owner[group[0]]): tuple(int(x) for x in group)
        for group in np.split(order, boundaries)
    }
    routing_rounds = int(dist.max())
    return GatherResult(
        owner=tuple(int(o) for o in owner),
        samples_at=samples_at,
        routing_rounds=routing_rounds,
    )
