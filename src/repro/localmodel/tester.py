"""The Section 6 LOCAL-model uniformity tester.

Each node holds one sample.  For a radius ``r``:

1. Luby's MIS runs on the power graph ``G^r`` (each ``G^r`` round costs
   ``r`` rounds of ``G``).
2. Every node routes its sample to the closest MIS node within ``r`` hops
   (``≤ r`` rounds; LOCAL messages are unbounded).
3. The MIS nodes act as the virtual nodes of the 0-round AND-rule tester
   (Theorem 1.1); the network decision is the AND of all outputs, with
   non-MIS nodes always accepting.

Radius economics: at most ``⌊2k/r⌋`` MIS nodes, each holding at least
``r/2`` samples — growing ``r`` trades rounds for per-virtual-node sample
mass until Theorem 1.1's construction turns feasible.
:meth:`LocalUniformityTester.choose_radius` finds that point by doubling,
mirroring the paper's closed-form radius (reported side by side by
benchmark E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.params import AndRuleParameters, and_rule_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.localmodel.gather import GatherResult, assign_catchments
from repro.localmodel.mis import luby_mis, verify_mis
from repro.rng import SeedLike, ensure_rng
from repro.simulator.graph import Topology


@dataclass(frozen=True)
class LocalTestReport:
    """Outcome and accounting of one LOCAL tester execution.

    Attributes
    ----------
    accepted:
        The network verdict (AND of all node outputs).
    radius:
        The gathering radius ``r`` used.
    mis_size:
        Number of virtual nodes (MIS of ``G^r``).
    min_catchment:
        Smallest sample pile at any MIS node (≥ r/2 by Section 6).
    rounds:
        Total LOCAL rounds charged:
        ``(MIS rounds on G^r) · r + routing rounds``.
    mis_rounds_on_power_graph:
        Rounds Luby's algorithm took on ``G^r`` (before the ×r charge).
    params:
        The Theorem 1.1 parameters run at the MIS nodes.
    """

    accepted: bool
    radius: int
    mis_size: int
    min_catchment: int
    rounds: int
    mis_rounds_on_power_graph: int
    params: AndRuleParameters


@dataclass(frozen=True)
class LocalPlan:
    """A prepared MIS + gathering structure, reusable across trials.

    The structural phases (power graph, Luby MIS, catchment routing) do
    not depend on the sample values, so experiments amortise them across
    Monte-Carlo trials; only the sampling and the 0-round decisions rerun.
    """

    radius: int
    mis_size: int
    min_catchment: int
    mis_rounds_on_power_graph: int
    routing_rounds: int
    gather: GatherResult
    params: AndRuleParameters

    @property
    def rounds(self) -> int:
        """Total LOCAL rounds: ``(MIS rounds on G^r) · r + routing``."""
        return self.mis_rounds_on_power_graph * self.radius + self.routing_rounds


@dataclass(frozen=True)
class LocalUniformityTester:
    """End-to-end Section 6 tester.

    Parameters
    ----------
    n:
        Domain size.
    eps:
        Distance parameter.
    p:
        Error budget (both sides).
    """

    n: int
    eps: float
    p: float = 1.0 / 3.0

    def plan(self, topology: Topology, r: int, rng: SeedLike = None) -> LocalPlan:
        """Run the structural phases (MIS + gather) at radius *r*.

        Raises
        ------
        InfeasibleParametersError
            If the MIS virtual nodes do not hold enough samples for the
            Theorem 1.1 construction at this radius (increase ``r``).
        """
        if r < 1:
            raise ParameterError(f"radius must be >= 1, got {r}")
        gen = ensure_rng(rng)
        radius = min(r, topology.k - 1) if topology.k > 1 else 1
        power = topology.power_graph(radius) if topology.k > 1 else topology
        mis, mis_rounds = luby_mis(power, gen)
        verify_mis(power, mis)
        gather = assign_catchments(topology, mis, radius)
        virtual = len(gather.samples_at)
        min_catchment = min(len(v) for v in gather.samples_at.values())
        params = and_rule_parameters(self.n, virtual, self.eps, self.p)
        if params.samples_per_node > min_catchment:
            raise InfeasibleParametersError(
                f"radius r={r} gives {virtual} virtual nodes holding as few "
                f"as {min_catchment} samples, but Theorem 1.1 needs "
                f"{params.samples_per_node} per virtual node — increase r"
            )
        return LocalPlan(
            radius=radius,
            mis_size=virtual,
            min_catchment=min_catchment,
            mis_rounds_on_power_graph=mis_rounds,
            routing_rounds=gather.routing_rounds,
            gather=gather,
            params=params,
        )

    def test_with_plan(
        self,
        plan: LocalPlan,
        distribution: DiscreteDistribution,
        rng: SeedLike = None,
    ) -> bool:
        """One fresh-sample decision over a prepared plan (True = accept)."""
        if distribution.n != self.n:
            raise ParameterError(
                f"tester built for n={self.n}, distribution has {distribution.n}"
            )
        gen = ensure_rng(rng)
        samples = distribution.sample(len(plan.gather.owner), gen)
        node_tester = plan.params.build_node_tester()
        accepted = True
        for owner in sorted(plan.gather.samples_at):
            pile = plan.gather.samples_at[owner]
            batch = samples[np.asarray(pile[: plan.params.samples_per_node])]
            if not node_tester.decide(batch):
                accepted = False
        return accepted

    def run(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        r: int,
        rng: SeedLike = None,
    ) -> LocalTestReport:
        """Execute the full protocol once at radius *r* (plan + decide)."""
        gen = ensure_rng(rng)
        plan = self.plan(topology, r, gen)
        accepted = self.test_with_plan(plan, distribution, gen)
        return LocalTestReport(
            accepted=accepted,
            radius=plan.radius,
            mis_size=plan.mis_size,
            min_catchment=plan.min_catchment,
            rounds=plan.rounds,
            mis_rounds_on_power_graph=plan.mis_rounds_on_power_graph,
            params=plan.params,
        )

    def choose_radius(
        self,
        topology: Topology,
        rng: SeedLike = None,
        start: int = 2,
    ) -> int:
        """Smallest power-of-two-ish radius at which the tester is feasible.

        Doubles ``r`` until a trial MIS/gather supports Theorem 1.1;
        raises if even ``r = k − 1`` (full gathering at one node) fails —
        which means the whole network lacks ``Θ(√n/ε²)`` samples.
        """
        gen = ensure_rng(rng)
        r = max(1, start)
        while r < 2 * topology.k:
            radius = min(r, topology.k - 1) if topology.k > 1 else 1
            try:
                power = (
                    topology.power_graph(radius) if topology.k > 1 else topology
                )
                mis, _ = luby_mis(power, gen)
                gather = assign_catchments(topology, mis, radius)
                virtual = len(gather.samples_at)
                min_catchment = min(len(v) for v in gather.samples_at.values())
                params = and_rule_parameters(self.n, virtual, self.eps, self.p)
                if params.samples_per_node <= min_catchment:
                    return radius
            except InfeasibleParametersError:
                pass
            if radius >= topology.k - 1:
                break
            r *= 2
        raise InfeasibleParametersError(
            f"no radius makes the LOCAL tester feasible on k={topology.k} "
            f"nodes at n={self.n}, eps={self.eps}, p={self.p}: the network "
            "holds too few samples in total"
        )

    def estimate_error(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        r: int,
        trials: int,
        rng: SeedLike = None,
    ) -> float:
        """Monte-Carlo error rate, amortising one plan across all trials.

        A fresh MIS per trial would only add independent randomness the
        0-round guarantee does not rely on; the structural plan is fixed
        and each trial draws fresh samples, matching the model.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        gen = ensure_rng(rng)
        plan = self.plan(topology, r, gen)
        errors = 0
        for _ in range(trials):
            accepted = self.test_with_plan(plan, distribution, gen)
            if accepted != is_uniform:
                errors += 1
        return errors / trials
