"""The Section 6 LOCAL-model uniformity tester.

Each node holds one sample.  For a radius ``r``:

1. Luby's MIS runs on the power graph ``G^r`` (each ``G^r`` round costs
   ``r`` rounds of ``G``).
2. Every node routes its sample to the closest MIS node within ``r`` hops
   (``≤ r`` rounds; LOCAL messages are unbounded).
3. The MIS nodes act as the virtual nodes of the 0-round AND-rule tester
   (Theorem 1.1); the network decision is the AND of all outputs, with
   non-MIS nodes always accepting.

Radius economics: at most ``⌊2k/r⌋`` MIS nodes, each holding at least
``r/2`` samples — growing ``r`` trades rounds for per-virtual-node sample
mass until Theorem 1.1's construction turns feasible.
:meth:`LocalUniformityTester.choose_radius` finds that point by doubling,
mirroring the paper's closed-form radius (reported side by side by
benchmark E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.params import AndRuleParameters, and_rule_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.experiments.runner import TrialRunner
from repro.localmodel.gather import GatherResult, assign_catchments
from repro.localmodel.mis import luby_mis, verify_mis
from repro.rng import SeedLike, ensure_rng
from repro.simulator.graph import Topology


@dataclass(frozen=True)
class LocalTestReport:
    """Outcome and accounting of one LOCAL tester execution.

    Attributes
    ----------
    accepted:
        The network verdict (AND of all node outputs).
    radius:
        The gathering radius ``r`` used.
    mis_size:
        Number of virtual nodes (MIS of ``G^r``).
    min_catchment:
        Smallest sample pile at any MIS node (≥ r/2 by Section 6).
    rounds:
        Total LOCAL rounds charged:
        ``(MIS rounds on G^r) · r + routing rounds``.
    mis_rounds_on_power_graph:
        Rounds Luby's algorithm took on ``G^r`` (before the ×r charge).
    params:
        The Theorem 1.1 parameters run at the MIS nodes.
    """

    accepted: bool
    radius: int
    mis_size: int
    min_catchment: int
    rounds: int
    mis_rounds_on_power_graph: int
    params: AndRuleParameters


@dataclass(frozen=True)
class LocalPlan:
    """A prepared MIS + gathering structure, reusable across trials.

    The structural phases (power graph, Luby MIS, catchment routing) do
    not depend on the sample values, so experiments amortise them across
    Monte-Carlo trials; only the sampling and the 0-round decisions rerun.
    """

    radius: int
    mis_size: int
    min_catchment: int
    mis_rounds_on_power_graph: int
    routing_rounds: int
    gather: GatherResult
    params: AndRuleParameters

    @property
    def rounds(self) -> int:
        """Total LOCAL rounds: ``(MIS rounds on G^r) · r + routing``."""
        return self.mis_rounds_on_power_graph * self.radius + self.routing_rounds


@dataclass(frozen=True)
class LocalUniformityTester:
    """End-to-end Section 6 tester.

    Parameters
    ----------
    n:
        Domain size.
    eps:
        Distance parameter.
    p:
        Error budget (both sides).
    """

    n: int
    eps: float
    p: float = 1.0 / 3.0

    def solve_for_layout(
        self, virtual: int, min_catchment: int, r: int
    ) -> AndRuleParameters:
        """Place the Theorem 1.1 parameters on a realised MIS structure.

        The one feasibility rule every route shares — the engine-backed
        :meth:`plan`, the doubling :meth:`choose_radius` search, and the
        trial plane's :meth:`~repro.localmodel.local_plane.LocalTrialRunner.build`
        — so they cannot drift apart.

        Raises
        ------
        InfeasibleParametersError
            If the virtual nodes do not hold enough samples for the
            Theorem 1.1 construction at this radius (increase ``r``).
        """
        params = and_rule_parameters(self.n, virtual, self.eps, self.p)
        if params.samples_per_node > min_catchment:
            raise InfeasibleParametersError(
                f"radius r={r} gives {virtual} virtual nodes holding as few "
                f"as {min_catchment} samples, but Theorem 1.1 needs "
                f"{params.samples_per_node} per virtual node — increase r"
            )
        return params

    def plan(self, topology: Topology, r: int, rng: SeedLike = None) -> LocalPlan:
        """Run the structural phases (MIS + gather) at radius *r*.

        Raises
        ------
        InfeasibleParametersError
            If the MIS virtual nodes do not hold enough samples for the
            Theorem 1.1 construction at this radius (increase ``r``).
        """
        if r < 1:
            raise ParameterError(f"radius must be >= 1, got {r}")
        gen = ensure_rng(rng)
        radius = min(r, topology.k - 1) if topology.k > 1 else 1
        power = topology.power_graph(radius) if topology.k > 1 else topology
        mis, mis_rounds = luby_mis(power, gen)
        verify_mis(power, mis)
        gather = assign_catchments(topology, mis, radius)
        virtual = len(gather.samples_at)
        min_catchment = min(len(v) for v in gather.samples_at.values())
        params = self.solve_for_layout(virtual, min_catchment, r)
        return LocalPlan(
            radius=radius,
            mis_size=virtual,
            min_catchment=min_catchment,
            mis_rounds_on_power_graph=mis_rounds,
            routing_rounds=gather.routing_rounds,
            gather=gather,
            params=params,
        )

    def test_with_plan(
        self,
        plan: LocalPlan,
        distribution: DiscreteDistribution,
        rng: SeedLike = None,
    ) -> bool:
        """One fresh-sample decision over a prepared plan (True = accept)."""
        if distribution.n != self.n:
            raise ParameterError(
                f"tester built for n={self.n}, distribution has {distribution.n}"
            )
        gen = ensure_rng(rng)
        samples = distribution.sample(len(plan.gather.owner), gen)
        node_tester = plan.params.build_node_tester()
        accepted = True
        for owner in sorted(plan.gather.samples_at):
            pile = plan.gather.samples_at[owner]
            batch = samples[np.asarray(pile[: plan.params.samples_per_node])]
            if not node_tester.decide(batch):
                accepted = False
        return accepted

    def run(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        r: int,
        rng: SeedLike = None,
    ) -> LocalTestReport:
        """Execute the full protocol once at radius *r* (plan + decide)."""
        gen = ensure_rng(rng)
        plan = self.plan(topology, r, gen)
        accepted = self.test_with_plan(plan, distribution, gen)
        return LocalTestReport(
            accepted=accepted,
            radius=plan.radius,
            mis_size=plan.mis_size,
            min_catchment=plan.min_catchment,
            rounds=plan.rounds,
            mis_rounds_on_power_graph=plan.mis_rounds_on_power_graph,
            params=plan.params,
        )

    def choose_radius(
        self,
        topology: Topology,
        rng: SeedLike = None,
        start: int = 2,
        fast_path: bool = False,
    ) -> int:
        """Smallest power-of-two-ish radius at which the tester is feasible.

        Doubles ``r`` until a trial MIS/gather supports Theorem 1.1;
        raises if even ``r = k − 1`` (full gathering at one node) fails —
        which means the whole network lacks ``Θ(√n/ε²)`` samples.

        Each probe is one full :meth:`plan` call (same structural code,
        same ``verify_mis`` cross-check, same rng consumption), so the
        search cannot diverge from the plan it recommends.  With
        ``fast_path=True`` (seed-like rng only) the probes instead replay
        the MIS structurally via
        :class:`~repro.localmodel.local_plane.LocalLayout`, sharing the
        per-``(radius, seed)`` layout cache with any subsequent
        fast-path error sweep — the returned radius is feasible by the
        same :meth:`solve_for_layout` rule, though the probe MIS coins
        are keyed per radius rather than drawn sequentially.
        """
        if fast_path:
            from repro.localmodel.local_plane import LocalLayout

            if rng is not None and not isinstance(rng, (int, np.integer)):
                raise ParameterError(
                    "fast_path needs a seed-like rng (None or int): the "
                    "layout cache replays per-radius keyed streams, not a "
                    "shared Generator"
                )
            base_seed = 0 if rng is None else int(rng)
        else:
            gen = ensure_rng(rng)
        r = max(1, start)
        while r < 2 * topology.k:
            radius = min(r, topology.k - 1) if topology.k > 1 else 1
            try:
                if fast_path:
                    layout = LocalLayout.build(topology, r, base_seed=base_seed)
                    self.solve_for_layout(
                        layout.mis_size, layout.min_catchment, r
                    )
                else:
                    self.plan(topology, r, gen)
                return radius
            except InfeasibleParametersError:
                pass
            if radius >= topology.k - 1:
                break
            r *= 2
        raise InfeasibleParametersError(
            f"no radius makes the LOCAL tester feasible on k={topology.k} "
            f"nodes at n={self.n}, eps={self.eps}, p={self.p}: the network "
            "holds too few samples in total"
        )

    def estimate_error(
        self,
        topology: Topology,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        r: int,
        trials: int,
        rng: SeedLike = None,
        workers: int = 1,
        fast_path: bool = False,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate, amortising one plan across all trials.

        A fresh MIS per trial would only add independent randomness the
        0-round guarantee does not rely on; the structural plan is fixed
        and each trial draws fresh samples, matching the model.

        With a seed-like ``rng`` (``None`` or an int) the MIS coins come
        from :func:`~repro.localmodel.local_plane.mis_generator` and the
        trials run on the chunk-keyed trial engine — ``fast_path=True``
        routes them through the vectorised
        :class:`~repro.localmodel.local_plane.LocalTrialRunner`
        (bit-identical flags; ``engine_check`` re-runs a prefix through
        the scalar tester and cross-checks the layout against a real
        engine MIS, raising ``SimulationError`` on divergence).  A
        shared ``Generator`` keeps the legacy sequential loop.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.localmodel.local_plane import (
                LocalTrialRunner,
                effective_radius,
                mis_generator,
            )

            base_seed = 0 if rng is None else int(rng)
            if fast_path:
                runner = LocalTrialRunner.build(
                    self, topology, r, base_seed=base_seed
                )
                return runner.error_rate(
                    distribution,
                    is_uniform,
                    trials,
                    workers=workers,
                    engine_check=engine_check,
                )
            plan = self.plan(
                topology,
                r,
                mis_generator(base_seed, effective_radius(topology, r)),
            )
            experiment = _LocalTrialExperiment(
                tester=self,
                plan=plan,
                distribution=distribution,
                is_uniform=is_uniform,
            )
            return TrialRunner(base_seed=base_seed).error_rate(
                experiment, trials, "local", topology.k, workers=workers
            ).rate
        if fast_path:
            raise ParameterError(
                "fast_path needs a seed-like rng (None or int): the trial "
                "plane replays chunk-keyed streams, not a shared Generator"
            )
        gen = ensure_rng(rng)
        plan = self.plan(topology, r, gen)
        errors = 0
        for _ in range(trials):
            accepted = self.test_with_plan(plan, distribution, gen)
            if accepted != is_uniform:
                errors += 1
        return errors / trials


@dataclass(frozen=True)
class _LocalTrialExperiment:
    """Picklable scalar trial: one fresh-sample decision over a fixed plan."""

    tester: LocalUniformityTester
    plan: LocalPlan
    distribution: DiscreteDistribution
    is_uniform: bool

    def __call__(self, rng: np.random.Generator) -> bool:
        accepted = self.tester.test_with_plan(self.plan, self.distribution, rng)
        return accepted != self.is_uniform
