"""LOCAL-model uniformity testing (Section 6 of the paper).

Strategy: find a maximal independent set of the power graph ``G^r`` with
Luby's algorithm (each MIS phase on ``G^r`` costs ``r`` rounds of ``G``),
route every node's sample to a nearby MIS node (≤ ``r`` rounds — LOCAL
messages are unbounded), and run the 0-round AND-rule tester of
Theorem 1.1 over the MIS nodes as virtual nodes.  Each MIS node collects at
least ``r/2`` samples (its ``r/2``-ball is exclusively its own), and there
are at most ``⌊2k/r⌋`` MIS nodes.

- :mod:`repro.localmodel.mis` — Luby's MIS as a message-passing program.
- :mod:`repro.localmodel.gather` — catchment assignment and sample routing.
- :mod:`repro.localmodel.tester` — the end-to-end Section 6 tester.
- :mod:`repro.localmodel.local_plane` — the vectorised Monte-Carlo trial
  plane (engine-free MIS layout replay + batched AND-rule verdicts).
"""

from repro.localmodel.gather import GatherResult, assign_catchments
from repro.localmodel.gather_protocol import (
    GatherProgram,
    ProtocolGatherResult,
    run_gather_protocol,
)
from repro.localmodel.local_plane import (
    LocalLayout,
    LocalLayoutCheck,
    LocalTrialRunner,
    LocalVerdictKernel,
)
from repro.localmodel.mis import LubyMISProgram, luby_mis, verify_mis
from repro.localmodel.tester import LocalPlan, LocalTestReport, LocalUniformityTester

__all__ = [
    "LubyMISProgram",
    "luby_mis",
    "verify_mis",
    "assign_catchments",
    "GatherResult",
    "GatherProgram",
    "ProtocolGatherResult",
    "run_gather_protocol",
    "LocalUniformityTester",
    "LocalTestReport",
    "LocalPlan",
    "LocalLayout",
    "LocalLayoutCheck",
    "LocalTrialRunner",
    "LocalVerdictKernel",
]
