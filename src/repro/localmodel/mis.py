"""Luby's maximal-independent-set algorithm as a message-passing program.

Classic Luby (the "random priorities" variant), phased in a fixed
three-round cycle so every undecided node stays in lock-step:

- **round 3t+1 (PRIORITY)** — every undecided node draws a fresh 63-bit
  priority and sends it to its undecided neighbours.
- **round 3t+2 (JOIN)** — a node whose priority is a strict local minimum
  joins the MIS, announces ``JOIN``, and halts.
- **round 3t+3 (LEAVE)** — nodes that heard a ``JOIN`` from a neighbour
  are dominated: they announce ``LEAVE`` to their remaining undecided
  neighbours and halt.  Survivors prune their undecided sets and start the
  next cycle.

``O(log k)`` phases suffice w.h.p.  The paper runs this on the power graph
``G^r`` — each ``G^r`` round costs ``r`` real rounds of ``G``, an
accounting the LOCAL tester applies when reporting round complexity.

Ties (probability ``< k²/2⁶³``) are broken by node ID, which preserves
independence/maximality unconditionally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.simulator.engine import SynchronousEngine
from repro.simulator.graph import Topology
from repro.simulator.message import Message
from repro.simulator.node import Context, NodeProgram
from repro.rng import SeedLike

_PRIORITY = "priority"
_JOIN = "join"
_LEAVE = "leave"


class LubyMISProgram(NodeProgram):
    """Per-node Luby MIS.  Output: ``True`` iff the node joined the MIS."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.undecided: Optional[Set[int]] = None
        self.my_priority: Optional[Tuple[int, int]] = None
        self.received: dict = {}

    # -- cycle steps --------------------------------------------------------

    def _send_priorities(self, ctx: Context) -> None:
        """PRIORITY step: decide immediately if isolated, else share."""
        assert self.undecided is not None
        if not self.undecided:
            ctx.halt(True)
            return
        value = int(ctx.rng.integers(0, 2**63 - 1))
        self.my_priority = (value, self.node_id)
        self.received = {}
        for u in self.undecided:
            ctx.send(u, value, bits=63, tag=_PRIORITY)
        ctx.request_wakeup(ctx.round + 1)

    def on_start(self, ctx: Context) -> None:
        self.undecided = set(ctx.neighbors)
        self._send_priorities(ctx)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        assert self.undecided is not None
        # The cycle position is determined by the message kinds present and
        # the node's own state; the wakeups keep every live node acting in
        # all three rounds of the cycle.
        priorities = [m for m in inbox if m.tag == _PRIORITY]
        joins = [m for m in inbox if m.tag == _JOIN]
        leaves = [m for m in inbox if m.tag == _LEAVE]

        if priorities:
            # JOIN step.
            for msg in priorities:
                self.received[msg.src] = (int(msg.payload), msg.src)
            missing = [u for u in self.undecided if u not in self.received]
            if missing:  # pragma: no cover - lock-step makes this impossible
                raise AssertionError(
                    f"node {self.node_id} missing priorities from {missing}"
                )
            assert self.my_priority is not None
            lowest = min(self.received[u] for u in self.undecided)
            if self.my_priority < lowest:
                for u in self.undecided:
                    ctx.send(u, None, bits=1, tag=_JOIN)
                ctx.halt(True)
                return
            ctx.request_wakeup(ctx.round + 1)
            return

        if joins or self.my_priority is not None:
            # LEAVE step.
            if joins:
                survivors = self.undecided - {m.src for m in joins}
                for u in survivors:
                    ctx.send(u, None, bits=1, tag=_LEAVE)
                ctx.halt(False)
                return
            self.my_priority = None
            ctx.request_wakeup(ctx.round + 1)
            return

        # PRIORITY step of the next cycle: prune leavers, go again.
        if leaves:
            self.undecided -= {m.src for m in leaves}
        self._send_priorities(ctx)


def luby_mis(topology: Topology, rng: SeedLike = None) -> Tuple[List[bool], int]:
    """Run Luby's MIS on *topology*; returns ``(membership, rounds)``.

    The round count is the engine's: three rounds per phase, ``O(log k)``
    phases w.h.p.
    """
    engine = SynchronousEngine(topology, bandwidth_bits=None, max_rounds=100_000)
    report = engine.run(lambda v: LubyMISProgram(v), rng)
    membership = [bool(o) for o in report.outputs]
    return membership, report.rounds


def verify_mis(topology: Topology, membership: Sequence[bool]) -> None:
    """Assert *membership* is a maximal independent set; raise otherwise.

    Vectorised over the edge arrays (one pass instead of ``O(k·deg)``
    Python loops — this runs on every plan's power graph), reporting the
    same first failure the per-node scan would: the smallest offending
    node, and for an adjacency violation its first MIS neighbour in
    adjacency order.
    """
    if len(membership) != topology.k:
        raise ParameterError("membership length must equal node count")
    member = np.asarray(membership, dtype=bool)
    src = np.array(
        [v for v in range(topology.k) for _ in topology.neighbors(v)],
        dtype=np.int64,
    )
    dst = np.array(
        [u for v in range(topology.k) for u in topology.neighbors(v)],
        dtype=np.int64,
    )
    # Independence: no edge joins two members.  Edges are listed by
    # (node, adjacency position), so the first offending index is exactly
    # the pair the scalar scan would hit first.
    adjacent = np.flatnonzero(member[src] & member[dst])
    first_adjacent = int(src[adjacent[0]]) if adjacent.size else topology.k
    # Maximality: every non-member has a member neighbour.
    dominated = np.zeros(topology.k, dtype=bool)
    if src.size:
        dominated[src[member[dst]]] = True
    undominated = np.flatnonzero(~member & ~dominated)
    first_undominated = int(undominated[0]) if undominated.size else topology.k
    if first_adjacent < first_undominated:
        v = first_adjacent
        u = int(dst[adjacent[0]])
        raise AssertionError(f"MIS nodes {v} and {u} are adjacent")
    if first_undominated < topology.k:
        raise AssertionError(
            f"node {first_undominated} is undominated (MIS not maximal)"
        )
