"""The gathering phase as a *real* LOCAL message-passing protocol.

:mod:`repro.localmodel.gather` computes catchments structurally (exact
same rule, zero cost) — good for fast Monte-Carlo.  This module runs the
same two phases as an actual protocol on the engine, so the LOCAL round
accounting is measured rather than charged:

1. **CLAIM** (≤ r rounds): multi-source flooding from the MIS nodes of
   the lexicographic ``(distance, owner-ID)`` label; each node adopts the
   best label heard and re-announces on improvement.  After the wave
   settles every node knows its owner *and* the neighbour it heard the
   best label from — its route toward the owner.
2. **ROUTE** (≤ r rounds): every node starts a bundle containing its own
   sample; each round a node forwards everything it holds to its
   route-parent (LOCAL: bundles are unbounded).  Bundles strictly
   decrease their distance-to-owner each hop, so after ``r`` rounds all
   samples sit at their owners.

The engine measures the actual rounds; the structural and protocol
versions must produce identical assignments (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ParameterError, SimulationError
from repro.rng import SeedLike
from repro.simulator.engine import EngineReport, SynchronousEngine
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology
from repro.simulator.message import Message
from repro.simulator.node import Context, NodeProgram

_CLAIM = "claim"
_ROUTE = "route"


@dataclass(frozen=True)
class GatherWarmStart:
    """Precomputed CLAIM-fixpoint state for one node.

    ``owner``/``dist`` are the node's final lexicographic
    ``(distance, owner-ID)`` label; ``route_parent`` the neighbour the
    protocol would have first heard it from.  A warm-started
    :class:`GatherProgram` skips the CLAIM wave and routes immediately.
    """

    owner: Optional[int]
    dist: Optional[int]
    route_parent: Optional[int]


def _claim_fixpoint(
    topology: Topology, mis: Sequence[bool], radius: int
) -> List[GatherWarmStart]:
    """The CLAIM wave's fixpoint, computed structurally.

    Multi-source layered BFS from the MIS nodes: a node at layer ``d``
    takes the smallest owner ID among its layer-``d−1`` neighbours (the
    lexicographic ``(dist, owner)`` minimum — the same relaxation as
    :func:`repro.localmodel.gather.assign_catchments`).  The route parent
    is the *smallest-ID* neighbour holding the label ``(d−1, owner)`` —
    under the engine's sender-sorted delivery order, that is exactly the
    neighbour whose announcement the protocol node adopts.  Labels stop
    propagating at distance ``radius``, matching the protocol's
    ``dist < radius`` re-announce gate.
    """
    k = topology.k
    dist: List[Optional[int]] = [None] * k
    owner: List[Optional[int]] = [None] * k
    frontier: List[int] = []
    for v in range(k):
        if mis[v]:
            dist[v] = 0
            owner[v] = v
            frontier.append(v)
    d = 0
    while frontier and d < radius:
        d += 1
        candidates: Dict[int, int] = {}
        for u in frontier:
            ou = owner[u]
            for w in topology.neighbors(u):
                if owner[w] is None:
                    prev = candidates.get(w)
                    if prev is None or ou < prev:
                        candidates[w] = ou
        frontier = []
        for w, o in candidates.items():
            dist[w] = d
            owner[w] = o
            frontier.append(w)
    views: List[GatherWarmStart] = []
    for v in range(k):
        parent: Optional[int] = None
        if owner[v] is not None and dist[v] is not None and dist[v] > 0:
            target_d, target_o = dist[v] - 1, owner[v]
            parent = min(
                u
                for u in topology.neighbors(v)
                if dist[u] == target_d and owner[u] == target_o
            )
        views.append(
            GatherWarmStart(owner=owner[v], dist=dist[v], route_parent=parent)
        )
    return views


class GatherProgram(NodeProgram):
    """Per-node program for the CLAIM + ROUTE phases.

    Parameters
    ----------
    node_id:
        This node's ID.
    is_mis:
        Whether the node is an MIS member (a gathering centre).
    sample:
        The node's own sample (its payload for the ROUTE phase).
    radius:
        The gathering radius ``r``; ROUTE runs exactly ``r`` rounds.
    warm_start:
        Optional precomputed CLAIM fixpoint (:class:`GatherWarmStart`);
        when given, the program starts routing at round 0.
    strict:
        With ``strict=True`` (default, the fault-free contract), a node
        still holding samples after ``r`` routing rounds raises
        :class:`~repro.exceptions.SimulationError` — on a reliable network
        that means the MIS/radius invariants are broken.  With
        ``strict=False`` (the timeout path for faulty networks), the node
        instead reports the undelivered bundle in its output and halts
        gracefully.

    Output: ``(owner, collected)`` — the owner this node routed to, and
    (for MIS nodes) the tuple of ``(origin, sample)`` pairs received.
    With ``strict=False`` the output is ``(owner, collected,
    undelivered)``, the last entry the tuple of ``(origin, sample)`` pairs
    the node failed to deliver before the deadline.
    """

    def __init__(
        self,
        node_id: int,
        is_mis: bool,
        sample: int,
        radius: int,
        warm_start: Optional[GatherWarmStart] = None,
        strict: bool = True,
    ) -> None:
        if radius < 1:
            raise ParameterError(f"radius must be >= 1, got {radius}")
        self.node_id = node_id
        self.is_mis = is_mis
        self.sample = sample
        self.radius = radius
        self.strict = strict
        # CLAIM state: best (distance, owner) label and the route neighbour.
        self.dist = 0 if is_mis else None
        self.owner = node_id if is_mis else None
        self.route_parent: Optional[int] = None
        # ROUTE state.
        self.phase = _CLAIM
        self.route_end: Optional[int] = None
        self.bundle: List[Tuple[int, int]] = [(node_id, sample)]
        self.collected: List[Tuple[int, int]] = []
        self._warm_start = warm_start
        if warm_start is not None:
            self.dist = warm_start.dist
            self.owner = warm_start.owner
            self.route_parent = warm_start.route_parent
            self.phase = _ROUTE

    def _label(self) -> Tuple[int, int]:
        assert self.dist is not None and self.owner is not None
        return (self.dist, self.owner)

    def _announce(self, ctx: Context) -> None:
        ctx.broadcast(self._label(), bits=64, tag=_CLAIM)

    def on_start(self, ctx: Context) -> None:
        if self._warm_start is not None:
            # CLAIM fixpoint preloaded: start routing immediately, with the
            # same round-relative dynamics as the cold run's ROUTE entry.
            if self.owner is None and self.strict:
                raise SimulationError(
                    f"node {self.node_id} has no MIS owner within r="
                    f"{self.radius}: the MIS is not maximal on G^r"
                )
            self.route_end = ctx.round + self.radius
            self._forward(ctx)
            ctx.request_wakeup(self.route_end)
            return
        if self.is_mis:
            self._announce(ctx)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if self.phase == _CLAIM:
            self._round_claim(ctx, inbox)
        else:
            self._round_route(ctx, inbox)

    def _round_claim(self, ctx: Context, inbox: List[Message]) -> None:
        improved = False
        for msg in inbox:
            if msg.tag != _CLAIM:
                continue
            cand_dist, cand_owner = msg.payload
            candidate = (cand_dist + 1, cand_owner)
            if self.dist is None or candidate < self._label():
                self.dist, self.owner = candidate
                self.route_parent = msg.src
                improved = True
        if improved and self.dist is not None and self.dist < self.radius:
            self._announce(ctx)
        if ctx.quiet_rounds >= 1:
            # Wave settled network-wide: start routing, counted locally.
            if self.owner is None and self.strict:
                raise SimulationError(
                    f"node {self.node_id} has no MIS owner within r="
                    f"{self.radius}: the MIS is not maximal on G^r"
                )
            self.phase = _ROUTE
            self.route_end = ctx.round + self.radius
            self._forward(ctx)
            # Forwarding empties the bundle; incoming bundles arrive as mail
            # (which wakes the node), so only the phase-end wake is needed.
            ctx.request_wakeup(self.route_end)

    def _forward(self, ctx: Context) -> None:
        if self.is_mis:
            # Owners absorb their own bundle.
            self.collected.extend(self.bundle)
            self.bundle = []
            return
        if self.bundle and self.route_parent is not None:
            # LOCAL model: unbounded messages, but account honestly
            # (~32 bits per (origin, sample) pair).
            ctx.send(
                self.route_parent,
                tuple(self.bundle),
                bits=32 * len(self.bundle),
                tag=_ROUTE,
            )
            self.bundle = []

    def _round_route(self, ctx: Context, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.tag == _ROUTE:
                self.bundle.extend(msg.payload)
        assert self.route_end is not None
        if ctx.round < self.route_end:
            self._forward(ctx)
            ctx.request_wakeup(self.route_end)
            return
        self._forward(ctx)
        if not self.is_mis and self.bundle:
            if self.strict:
                raise SimulationError(
                    f"node {self.node_id} still holds {len(self.bundle)} "
                    f"samples after r={self.radius} routing rounds"
                )
            # Timeout path: report what never made it instead of dying.
            ctx.halt(
                (self.owner, tuple(self.collected), tuple(self.bundle))
            )
            self.bundle = []
            return
        if self.strict:
            ctx.halt((self.owner, tuple(self.collected)))
        else:
            ctx.halt((self.owner, tuple(self.collected), ()))


@dataclass(frozen=True)
class ProtocolGatherResult:
    """Outcome of the message-passing gather.

    ``undelivered`` is only populated by non-strict runs: per-node tuples
    of ``(origin, sample)`` pairs stranded by the routing deadline (empty
    everywhere on a reliable network).
    """

    owner: Tuple[int, ...]
    samples_at: Dict[int, Tuple[Tuple[int, int], ...]]
    rounds: int
    report: EngineReport
    undelivered: Tuple[Tuple[Tuple[int, int], ...], ...] = ()


def run_gather_protocol(
    topology: Topology,
    mis: Sequence[bool],
    samples: Sequence[int],
    radius: int,
    rng: SeedLike = None,
    warm_start: bool = False,
    strict: bool = True,
    faults: Optional[FaultPlan] = None,
) -> ProtocolGatherResult:
    """Execute CLAIM + ROUTE over *topology* and return who got what.

    LOCAL model: no bandwidth cap (bundles carry many samples).
    ``warm_start=True`` preloads the CLAIM fixpoint (structurally
    computed) and runs only the ROUTE phase; assignments are identical
    (tested), but ``rounds`` then excludes the claim wave.

    ``strict=False`` switches every node to the timeout path: instead of
    raising when samples miss the ``r``-round routing deadline (which a
    ``faults`` plan can force), nodes report the stranded bundles in
    ``result.undelivered`` and the run completes gracefully.
    """
    if len(mis) != topology.k or len(samples) != topology.k:
        raise ParameterError("mis and samples must cover every node")
    engine = SynchronousEngine(
        topology,
        bandwidth_bits=None,
        max_rounds=50 * (radius + topology.diameter_upper_bound() + 10),
        deadlock_quiet_rounds=radius + 6,
        faults=faults,
    )
    views = _claim_fixpoint(topology, mis, radius) if warm_start else None
    report = engine.run(
        lambda v: GatherProgram(
            node_id=v,
            is_mis=bool(mis[v]),
            sample=int(samples[v]),
            radius=radius,
            warm_start=None if views is None else views[v],
            strict=strict,
        ),
        rng,
    )
    # Crashed nodes (fault plans only) never halt and leave a None output.
    owners = tuple(
        None if out is None else out[0] for out in report.outputs
    )
    samples_at = {
        v: report.outputs[v][1]
        for v in range(topology.k)
        if mis[v] and report.outputs[v] is not None
    }
    undelivered: Tuple[Tuple[Tuple[int, int], ...], ...] = ()
    if not strict:
        undelivered = tuple(
            () if out is None else out[2] for out in report.outputs
        )
    return ProtocolGatherResult(
        owner=owners,
        samples_at=samples_at,
        rounds=report.rounds,
        report=report,
        undelivered=undelivered,
    )
