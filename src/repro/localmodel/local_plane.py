"""The vectorised LOCAL trial plane: MIS layout replay + batched verdicts.

A Monte-Carlo error-rate sweep of the Section 6 tester runs the same
protocol thousands of times, varying only the sampled values.  But the
protocol's *control flow* never looks at a sample's value: the MIS of the
power graph ``G^r`` is a pure function of the topology and the per-node
priority coins, the catchment assignment is a pure function of the MIS,
and the AND-rule verdict reads only *which* slots land at which virtual
node.  Hence the whole structural phase — power graph, Luby MIS,
gathering — is fixed across trials, and a trial's verdict reduces to

1. draw only the ``U[0, 1)`` *driver* values behind ``sample`` (the half
   of inverse-CDF sampling that must touch the stream —
   :meth:`~repro.distributions.base.DiscreteDistribution.sample_uniform`),
2. gather each repetition's driver values (one ``np.take`` over the
   per-virtual-node slot lists — typically a small fraction of the
   ``k`` slots drawn per trial), sort them as raw IEEE bit patterns,
3. flag repetitions containing a repeat: two draws map to the same
   outcome iff no CDF boundary separates them, so sorted-adjacent pairs
   further apart than the largest CDF step can be discarded wholesale
   and only the rare survivors need an exact
   :meth:`~repro.distributions.base.DiscreteDistribution.index_quantiles`
   lookup,
4. AND across the ``m`` repetitions per virtual node (a node rejects iff
   **all** its repetitions saw a collision), then across virtual nodes
   (the network rejects iff **any** node rejects — Theorem 1.1).

The structural phase itself is taken off the engine too:

- :func:`power_adjacency` computes ``G^r`` with a frontier-bitset BFS
  (``r`` sweeps of word-wide ORs over the edge list) instead of ``k``
  Python BFS traversals.
- :func:`replay_luby_mis` re-derives the engine's
  :class:`~repro.localmodel.mis.LubyMISProgram` run in array-based
  lock-step: the same per-node keyed priority draws (``spawn`` children
  of the MIS generator, one 63-bit draw per undecided node per cycle),
  the same strict ``(value, id)`` local-minimum join rule, the same
  3-rounds-per-cycle accounting — bit-identical membership *and* round
  count per seed.
- catchments reuse :func:`repro.localmodel.gather.assign_catchments`
  (itself vectorised), so the fast and engine paths share one routing
  rule by construction.

Bit-identity contract: the batched kernel consumes the trial engine's
chunk-keyed streams exactly like the scalar ``test_with_plan``
experiment (one ``sample(k)``-worth of draws per trial, numpy streams
being prefix-stable under call splitting), under the same
``("local", k)`` labels — so fast-path and scalar trial ``t`` see the
*same sample values* and must produce the same verdict.  The MIS
randomness is keyed by :func:`mis_generator` on ``(base_seed, radius)``
so both routes prepare the *same plan*.  ``engine_check`` re-runs a
prefix of the trials through the scalar tester and cross-checks the
layout against a real :func:`~repro.localmodel.mis.luby_mis` engine run,
raising :class:`~repro.exceptions.SimulationError` on any divergence.
The engine remains the measurement of record for rounds and message
complexity; the trial plane only accelerates verdict statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.core.params import AndRuleParameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError, SimulationError
from repro.experiments.runner import TrialRunner
from repro.localmodel.gather import GatherResult, assign_catchments
from repro.localmodel.mis import luby_mis
from repro.rng import derive, ensure_rng, spawn
from repro.simulator.graph import Topology
from repro.zeroround.network import auto_batch, grouped_collision_flags

#: Sentinel larger than any drawn priority (draws are < 2**63 - 1).
_NO_PRIORITY = np.int64(2**63 - 1)


def mis_generator(base_seed: int, radius: int) -> np.random.Generator:
    """The MIS-phase generator both LOCAL routes derive per ``base_seed``.

    Keyed on the *effective* radius so every seed-like route — the scalar
    trial experiment, the fast path, the layout cache — prepares the same
    plan from the same coins.
    """
    return derive(base_seed, "local-mis", radius)


def effective_radius(topology: Topology, r: int) -> int:
    """The radius the tester actually gathers at: ``min(r, k − 1)``."""
    if r < 1:
        raise ParameterError(f"radius must be >= 1, got {r}")
    return min(r, topology.k - 1) if topology.k > 1 else 1


# ---------------------------------------------------------------------------
# Frontier-bitset power-graph BFS
# ---------------------------------------------------------------------------


def power_adjacency(topology: Topology, r: int) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edge arrays ``(src, dst)`` of the power graph ``G^r``.

    Frontier-array BFS over node bitsets: ``ball[v]`` holds the ≤ d ball
    of ``v`` as ``⌈k/64⌉`` words, and one sweep ORs every neighbour's
    ball into it (``np.bitwise_or.reduceat`` over the edge list), so the
    whole all-pairs bounded BFS costs ``r`` word-wide passes instead of
    ``k`` Python traversals.  Exact: after ``d`` sweeps ``ball[v]`` is
    precisely the distance-``≤ d`` ball.  Edges come out sorted by
    ``(src, dst)``; self-loops are excluded, matching
    :meth:`~repro.simulator.graph.Topology.power_graph`.
    """
    if r < 1:
        raise ParameterError(f"power must be >= 1, got {r}")
    k = topology.k
    words = (k + 63) // 64
    nodes = np.arange(k, dtype=np.int64)
    ball = np.zeros((k, words), dtype=np.uint64)
    ball[nodes, nodes >> 6] = np.left_shift(
        np.uint64(1), (nodes & 63).astype(np.uint64)
    )
    degrees = np.array([topology.degree(v) for v in range(k)], dtype=np.int64)
    if degrees.any():
        dst = np.concatenate(
            [np.asarray(topology.neighbors(v), dtype=np.int64) for v in range(k)]
        )
        indptr = np.concatenate(([0], np.cumsum(degrees)))
        starts = indptr[:-1][degrees > 0]
        grown = degrees > 0
        for _ in range(r):
            gathered = np.bitwise_or.reduceat(ball[dst], starts, axis=0)
            new = ball.copy()
            new[grown] |= gathered
            if np.array_equal(new, ball):
                break
            ball = new
    # Little-endian byte view keeps word bit b at flat position 64w + b.
    bits = np.unpackbits(
        ball.astype("<u8").view(np.uint8), axis=1, bitorder="little"
    )[:, :k].astype(bool)
    np.fill_diagonal(bits, False)
    src, dst = np.nonzero(bits)
    return src.astype(np.int64), dst.astype(np.int64)


# ---------------------------------------------------------------------------
# Array-based lock-step Luby replay
# ---------------------------------------------------------------------------


def replay_luby_mis(
    k: int,
    edges: Tuple[np.ndarray, np.ndarray],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, int]:
    """Replay :func:`~repro.localmodel.mis.luby_mis` without the engine.

    ``edges`` is the directed ``(src, dst)`` pair of the (power) graph the
    MIS runs on.  Bit-identical per seed to the engine run: node ``v``'s
    coins are child ``v`` of ``spawn(rng, k)`` — the same streams the
    engine's lazy per-node spawn materialises — and each cycle every
    still-undecided, non-isolated node draws one
    ``integers(0, 2**63 − 1)`` priority exactly as
    ``LubyMISProgram._send_priorities`` does.  The returned round count
    reproduces the engine's 3-rounds-per-cycle accounting, including the
    early-exit cases (no drawers left: ``3t``; everyone decided with no
    LEAVE traffic: ``3t + 2``; trailing LEAVE delivery: ``3t + 3``).

    The lock-step invariant making this exact: at cycle ``t`` a node's
    ``undecided`` set equals its neighbourhood intersected with the
    still-active set, so joins are strict ``(value, id)`` local minima
    among *active* neighbours and leavers are exactly the non-joining
    drawers with a joining neighbour.
    """
    src, dst = edges
    membership = np.zeros(k, dtype=bool)
    active = np.ones(k, dtype=bool)
    values = np.empty(k, dtype=np.int64)
    node_rngs: Optional[List[np.random.Generator]] = None
    ids = np.arange(k, dtype=np.int64)
    t = 0
    while True:
        es, ed = src[active[src] & active[dst]], dst[active[src] & active[dst]]
        has_active_neighbor = np.zeros(k, dtype=bool)
        has_active_neighbor[ed] = True
        # PRIORITY step (round 3t): isolated survivors join silently,
        # everyone else draws and announces.
        membership |= active & ~has_active_neighbor
        drawers = active & has_active_neighbor
        if not drawers.any():
            return membership, 3 * t
        if node_rngs is None:
            # Same child streams (and the same parent spawn-counter
            # advance) as the engine's lazy per-node spawn.
            node_rngs = spawn(rng, k)
        values.fill(_NO_PRIORITY)
        for v in np.flatnonzero(drawers):
            values[v] = int(node_rngs[v].integers(0, 2**63 - 1))
        # JOIN step (round 3t+1): strict (value, id) local minimum among
        # undecided neighbours (all of which are drawers — an active
        # neighbour of a drawer cannot be isolated).
        neighbor_min = np.full(k, _NO_PRIORITY, dtype=np.int64)
        np.minimum.at(neighbor_min, ed, values[es])
        tie = values[es] == neighbor_min[ed]
        neighbor_min_id = np.full(k, k, dtype=np.int64)
        np.minimum.at(neighbor_min_id, ed[tie], es[tie])
        joins = drawers & (
            (values < neighbor_min)
            | ((values == neighbor_min) & (ids < neighbor_min_id))
        )
        membership |= joins
        # LEAVE step (round 3t+2): non-joining drawers next to a joiner
        # are dominated and halt, telling their surviving neighbours.
        heard_join = np.zeros(k, dtype=bool)
        heard_join[ed[joins[es]]] = True
        leavers = drawers & ~joins & heard_join
        survivors = drawers & ~joins & ~heard_join
        if not survivors.any():
            # A LEAVE message is sent iff some leaver still has an
            # undecided (= non-joining drawer) neighbour; its delivery
            # round is charged even though every recipient has halted.
            leave_sent = bool(np.any(leavers[es] & ~joins[ed]))
            return membership, 3 * t + (3 if leave_sent else 2)
        active = survivors
        t += 1


# ---------------------------------------------------------------------------
# The structural layout, cached per (topology, radius, seed)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class LocalLayoutCheck:
    """Result of :meth:`LocalLayout.verify_layout`."""

    equivalent: bool
    mismatched_nodes: Tuple[int, ...] = ()


@dataclass(frozen=True, eq=False)
class LocalLayout:
    """The sample-independent structure of one LOCAL tester plan.

    Everything the Section 6 protocol fixes before a single sample is
    drawn: the MIS membership of ``G^r`` (with the engine's round
    count), and the catchment assignment routing every node's sample
    slot to its owning virtual node.  Built once per
    ``(topology, radius, base_seed)`` by :meth:`build` and cached on the
    topology's tree schedule; :meth:`verify_layout` cross-checks the
    replay against a real engine run on the same derived generator.
    """

    k: int
    radius: int
    base_seed: int
    membership: np.ndarray
    mis_rounds: int
    gather: GatherResult

    @property
    def mis_size(self) -> int:
        """Number of virtual nodes."""
        return len(self.gather.samples_at)

    @property
    def min_catchment(self) -> int:
        """Smallest sample pile at any virtual node."""
        return min(len(pile) for pile in self.gather.samples_at.values())

    @staticmethod
    def build(
        topology: Topology, r: int, base_seed: int = 0
    ) -> "LocalLayout":
        """Replay the structural phases at radius *r*, no engine.

        The MIS coins come from :func:`mis_generator` — the same derived
        generator the seed-like scalar route hands to
        :meth:`~repro.localmodel.tester.LocalUniformityTester.plan` — so
        the cached layout *is* that route's plan, bit for bit.  Cached
        per ``(radius, base_seed)`` on the schedule's ``aux`` dict,
        which is what lets a doubling radius search and the subsequent
        error sweep share every probe.
        """
        radius = effective_radius(topology, r)
        schedule = topology.tree_schedule()
        key = ("local_layout", radius, int(base_seed))
        cached = schedule.aux.get(key)
        if cached is not None:
            return cached
        with telemetry.span(
            "local_plane.layout", k=topology.k, radius=radius
        ) as span:
            edges = power_adjacency(topology, radius)
            membership, mis_rounds = replay_luby_mis(
                topology.k, edges, mis_generator(base_seed, radius)
            )
            gather = assign_catchments(
                topology, [bool(b) for b in membership], radius
            )
            layout = LocalLayout(
                k=topology.k,
                radius=radius,
                base_seed=int(base_seed),
                membership=membership,
                mis_rounds=mis_rounds,
                gather=gather,
            )
            span.count("mis_nodes", layout.mis_size)
            span.count("mis_rounds", mis_rounds)
        schedule.aux[key] = layout
        return layout

    def verify_layout(self, topology: Topology) -> LocalLayoutCheck:
        """Cross-check this layout against an actual engine MIS run.

        Re-derives the same MIS generator, runs the real
        :class:`~repro.localmodel.mis.LubyMISProgram` on
        ``topology.power_graph(radius)``, routes catchments from the
        engine's membership, and compares membership, round count and
        per-node owners.  A round-count mismatch is reported as node
        ``-1``.
        """
        if topology.k != self.k:
            raise ParameterError(
                f"layout built for k={self.k}, topology has {topology.k}"
            )
        power = (
            topology.power_graph(self.radius) if topology.k > 1 else topology
        )
        engine_mis, engine_rounds = luby_mis(
            power, mis_generator(self.base_seed, self.radius)
        )
        engine_gather = assign_catchments(topology, engine_mis, self.radius)
        mismatched = [
            v
            for v in range(self.k)
            if bool(self.membership[v]) != engine_mis[v]
            or self.gather.owner[v] != engine_gather.owner[v]
        ]
        if engine_rounds != self.mis_rounds:
            mismatched.append(-1)
        return LocalLayoutCheck(
            equivalent=not mismatched, mismatched_nodes=tuple(mismatched)
        )

    def slot_matrix(self, params: AndRuleParameters) -> np.ndarray:
        """Per-repetition sample-slot lists, ``(mis_size·m, s')`` int64.

        Row ``i·m + j`` holds the slots of virtual node ``i``'s (in
        ascending owner order, the order ``test_with_plan`` iterates)
        ``j``-th repetition — the first ``samples_per_node`` slots of its
        pile reshaped ``(m, s')`` exactly as
        :meth:`~repro.core.amplify.RepeatedAndTester.decide` splits its
        batch.
        """
        per = params.samples_per_node
        if per > self.min_catchment:
            raise ParameterError(
                f"layout catchments hold as few as {self.min_catchment} "
                f"samples, but the parameters need {per} per virtual node"
            )
        rows = [
            np.asarray(
                self.gather.samples_at[owner][:per], dtype=np.int64
            ).reshape(params.m, params.s_per_repetition)
            for owner in sorted(self.gather.samples_at)
        ]
        members = np.concatenate(rows, axis=0)
        members.setflags(write=False)
        return members


# ---------------------------------------------------------------------------
# Batched verdict kernel + trial runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class LocalVerdictKernel:
    """Batched experiment: Theorem 1.1 AND-rule trial error flags.

    ``(rng, count) -> flags`` where ``True`` means the verdict disagrees
    with ``is_uniform``.  Consumes exactly ``count`` trials' worth of
    ``sample(k)`` draws, so it is bit-identical to the scalar
    ``test_with_plan`` experiment on the same chunk stream.

    The trick that makes trials cheap: only the ``U[0, 1)`` *driver*
    values behind ``sample`` are drawn (``sample_uniform`` advances the
    generator identically), and the expensive inverse-CDF mapping is
    paid just where it matters.  Per batch the verdict is one ``take``
    gathering the slots the protocol reads, one bit-pattern sort per
    repetition (non-negative IEEE doubles order like their values), a
    gap filter — sorted-adjacent driver pairs at least ``max_bin_width``
    apart straddle a CDF boundary and cannot collide — and exact
    ``index_quantiles`` lookups on the few surviving pairs.  Then an
    ``all`` across each node's ``m`` copies (a node rejects iff every
    repetition saw a collision) and an ``any`` across nodes (the network
    rejects iff any node rejects).
    """

    distribution: DiscreteDistribution
    members: np.ndarray
    m: int
    total_samples: int
    is_uniform: bool

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        with telemetry.span("local_plane.draw", trials=count) as sp:
            u = self.distribution.sample_uniform(
                count * self.total_samples, rng
            )
            sp.count("samples", count * self.total_samples)
        with telemetry.span("local_plane.verdict", trials=count):
            accepted = self.accepts_uniform(
                u.reshape(count, self.total_samples)
            )
            return accepted != self.is_uniform

    def accepts_uniform(self, u: np.ndarray) -> np.ndarray:
        """AND-rule verdicts for a ``(trials, k)`` driver-draw batch."""
        count, s_per = u.shape[0], self.members.shape[1]
        gathered = np.take(u, self.members.reshape(-1), axis=1)
        piles = gathered.reshape(count, -1, s_per)
        collided = np.zeros(piles.shape[:2], dtype=bool)
        if s_per > 1:
            ordered = np.sort(piles.view(np.uint64), axis=-1).view(np.float64)
            gaps = np.diff(ordered, axis=-1)
            close = np.flatnonzero(
                (gaps < self.distribution.max_bin_width()).reshape(-1)
            )
            if close.size:
                pile = close // (s_per - 1)
                offset = close - pile * (s_per - 1)
                runs = ordered.reshape(-1, s_per)
                same = self.distribution.index_quantiles(
                    runs[pile, offset]
                ) == self.distribution.index_quantiles(runs[pile, offset + 1])
                collided.reshape(-1)[pile[same]] = True
        rejects = collided.reshape(count, -1, self.m).all(axis=2)
        return ~rejects.any(axis=1)


@dataclass(frozen=True, eq=False)
class LocalTrialRunner:
    """Vectorised Monte-Carlo trials for the Section 6 LOCAL tester.

    Wraps a tester, a cached :class:`LocalLayout` and the Theorem 1.1
    parameters solved at the layout's realised MIS size; trial verdicts
    are then one gather + one sort + two reductions per batch.
    ``build`` is the constructor.
    """

    tester: "LocalUniformityTester"
    topology: Topology
    layout: LocalLayout
    params: AndRuleParameters
    members: np.ndarray
    base_seed: int

    @staticmethod
    def build(
        tester: "LocalUniformityTester",
        topology: Topology,
        r: int,
        base_seed: int = 0,
    ) -> "LocalTrialRunner":
        """Extract (or reuse the cached) layout and place the parameters.

        Raises exactly when the engine-backed
        :meth:`~repro.localmodel.tester.LocalUniformityTester.plan`
        would: ``ParameterError`` for ``r < 1``,
        ``InfeasibleParametersError`` when the realised catchments are
        too small for Theorem 1.1 at this radius.
        """
        layout = LocalLayout.build(topology, r, base_seed=base_seed)
        params = tester.solve_for_layout(
            layout.mis_size, layout.min_catchment, r
        )
        return LocalTrialRunner(
            tester=tester,
            topology=topology,
            layout=layout,
            params=params,
            members=layout.slot_matrix(params),
            base_seed=int(base_seed),
        )

    @property
    def plan(self) -> "LocalPlan":
        """The :class:`LocalPlan` this runner replays, engine-shaped."""
        from repro.localmodel.tester import LocalPlan

        return LocalPlan(
            radius=self.layout.radius,
            mis_size=self.layout.mis_size,
            min_catchment=self.layout.min_catchment,
            mis_rounds_on_power_graph=self.layout.mis_rounds,
            routing_rounds=self.layout.gather.routing_rounds,
            gather=self.layout.gather,
            params=self.params,
        )

    # -- per-sample / per-seed APIs ------------------------------------

    def accepts(self, samples: np.ndarray) -> np.ndarray:
        """Verdicts for a ``(trials, k)`` sample batch."""
        flat = np.asarray(samples).reshape(-1, self.layout.k)
        collided = grouped_collision_flags(flat, self.members)
        rejects = collided.reshape(flat.shape[0], -1, self.params.m).all(axis=2)
        return ~rejects.any(axis=1)

    def verdicts_for_seeds(
        self, distribution: DiscreteDistribution, seeds
    ) -> List[bool]:
        """Per-seed verdicts matching ``test_with_plan(plan, d, rng=seed)``.

        Each seed's driver draws consume its generator exactly as the
        scalar path's ``sample(k)`` would (``ensure_rng(seed)`` then one
        ``sample_uniform(k)``), so verdict ``i`` is bit-identical to the
        scalar decision at ``seeds[i]`` over the shared plan.
        """
        kernel = LocalVerdictKernel(
            distribution=distribution,
            members=self.members,
            m=self.params.m,
            total_samples=self.layout.k,
            is_uniform=True,
        )
        drawn = np.stack(
            [
                distribution.sample_uniform(self.layout.k, ensure_rng(seed))
                for seed in seeds
            ]
        )
        return [bool(a) for a in kernel.accepts_uniform(drawn)]

    # -- trial-engine APIs ---------------------------------------------

    def run_flags(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> np.ndarray:
        """Per-trial error flags via the chunk-keyed trial engine.

        Bit-identical to the scalar route
        (:meth:`~repro.localmodel.tester.LocalUniformityTester.estimate_error`
        with ``fast_path=False`` and the same seed-like rng) — same
        ``("local", k)`` labels, same stream consumption.
        ``engine_check`` ∈ [0, 1] re-runs that fraction of the trials
        (at least one; a prefix of the same stream) through the scalar
        ``test_with_plan`` decision *and* cross-checks the layout
        against a real engine MIS run, raising
        :class:`SimulationError` on any divergence.
        """
        if not 0.0 <= engine_check <= 1.0:
            raise ParameterError(
                f"engine_check must be in [0, 1], got {engine_check}"
            )
        kernel = LocalVerdictKernel(
            distribution=distribution,
            members=self.members,
            m=self.params.m,
            total_samples=self.layout.k,
            is_uniform=is_uniform,
        )
        flags = TrialRunner(base_seed=self.base_seed).run_flags_batched(
            kernel,
            trials,
            "local",
            self.topology.k,
            batch=auto_batch(self.layout.k),
            workers=workers,
        )
        if engine_check > 0.0:
            checked = min(trials, max(1, int(round(engine_check * trials))))
            with telemetry.span(
                "local_plane.engine_check", trials=checked
            ) as sp:
                check = self.layout.verify_layout(self.topology)
                if not check.equivalent:
                    raise SimulationError(
                        f"local-plane layout diverges from the engine MIS "
                        f"at nodes {check.mismatched_nodes[:8]} — "
                        f"bit-identity contract broken"
                    )
                from repro.localmodel.tester import _LocalTrialExperiment

                experiment = _LocalTrialExperiment(
                    tester=self.tester,
                    plan=self.plan,
                    distribution=distribution,
                    is_uniform=is_uniform,
                )
                scalar_flags = TrialRunner(base_seed=self.base_seed).run_flags(
                    experiment, checked, "local", self.topology.k
                )
                sp.count("checked", checked)
                if not np.array_equal(scalar_flags, flags[:checked]):
                    bad = np.flatnonzero(scalar_flags != flags[:checked])
                    raise SimulationError(
                        f"local-plane verdicts diverge from the scalar "
                        f"tester on trials {bad[:8].tolist()} of {checked} "
                        f"checked — bit-identity contract broken"
                    )
        return flags

    def error_rate(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        workers: int = 1,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate over :meth:`run_flags`."""
        flags = self.run_flags(
            distribution,
            is_uniform,
            trials,
            workers=workers,
            engine_check=engine_check,
        )
        return float(flags.sum()) / trials
