"""Network decision rules for the 0-round model.

A decision rule maps the vector of per-node accept bits to the network's
verdict.  The paper studies two:

- the **AND rule** (the standard distributed-decision convention): the
  network accepts iff *every* node accepts — "some node raised an alarm"
  rejects.  Not amplification-friendly (Section 3.2.1).
- the **threshold rule**: fix ``T``; the network rejects iff at least ``T``
  nodes reject.  Amenable to Chernoff-style amplification (Section 3.2.2).

A majority rule (threshold at ``k/2``) is included for comparison sweeps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError


class DecisionRule(ABC):
    """Maps per-node accept votes to the network verdict."""

    @abstractmethod
    def decide(self, accepts: np.ndarray) -> bool:
        """Network verdict from a boolean accept vector (True = accept)."""

    @staticmethod
    def _validate(accepts: np.ndarray) -> np.ndarray:
        arr = np.asarray(accepts, dtype=bool)
        if arr.ndim != 1 or arr.size == 0:
            raise ParameterError("accept vector must be 1-D and non-empty")
        return arr


@dataclass(frozen=True)
class AndRule(DecisionRule):
    """Accept iff all nodes accept (reject if anyone raises an alarm)."""

    def decide(self, accepts: np.ndarray) -> bool:
        return bool(self._validate(accepts).all())


@dataclass(frozen=True)
class ThresholdRule(DecisionRule):
    """Reject iff at least ``threshold`` nodes reject.

    ``threshold = 1`` recovers the AND rule; ``threshold > k`` accepts
    everything (flagged as an error at decision time).
    """

    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ParameterError(f"threshold must be >= 1, got {self.threshold}")

    def decide(self, accepts: np.ndarray) -> bool:
        arr = self._validate(accepts)
        if self.threshold > arr.size:
            raise ParameterError(
                f"threshold {self.threshold} exceeds network size {arr.size}"
            )
        rejections = int((~arr).sum())
        return rejections < self.threshold


@dataclass(frozen=True)
class MajorityRule(DecisionRule):
    """Accept iff a strict majority of nodes accept (ties reject)."""

    def decide(self, accepts: np.ndarray) -> bool:
        arr = self._validate(accepts)
        return int(arr.sum()) * 2 > arr.size
