"""0-round distributed uniformity testing (Sections 3 and 4 of the paper).

In the 0-round model nodes never communicate: each examines its own samples
and outputs one bit, and a global *decision rule* maps the ``k`` bits to the
network's verdict.  This package provides:

- :mod:`repro.zeroround.decision` — the AND rule, the threshold rule, and a
  majority rule for comparison experiments.
- :mod:`repro.zeroround.network` — the k-node harness plus vectorised
  fast paths used by the statistical benchmarks.
- :mod:`repro.zeroround.and_tester` — Theorem 1.1's construction.
- :mod:`repro.zeroround.threshold_tester` — Theorem 1.2's construction.
- :mod:`repro.zeroround.asymmetric` — Section 4: per-node sampling costs,
  norm-based cost solvers for both decision rules, and a numeric check of
  Lemma 4.1.
"""

from repro.zeroround.and_tester import AndRuleNetworkTester
from repro.zeroround.asymmetric import (
    AsymmetricAndParameters,
    AsymmetricThresholdParameters,
    CostVector,
    asymmetric_and_parameters,
    asymmetric_threshold_parameters,
    lemma41_products,
)
from repro.zeroround.decision import (
    AndRule,
    DecisionRule,
    MajorityRule,
    ThresholdRule,
)
from repro.zeroround.network import (
    AndNetworkErrorKernel,
    CollisionTrialKernel,
    NetworkResult,
    ScalarCollisionTrial,
    ThresholdNetworkErrorKernel,
    ZeroRoundNetwork,
    and_rule_verdicts,
    auto_batch,
    collision_reject_flags,
    estimate_rejection_probability,
    repeated_collision_reject_flags,
    threshold_verdicts,
)
from repro.zeroround.threshold_tester import ThresholdNetworkTester

__all__ = [
    "DecisionRule",
    "AndRule",
    "ThresholdRule",
    "MajorityRule",
    "ZeroRoundNetwork",
    "NetworkResult",
    "collision_reject_flags",
    "repeated_collision_reject_flags",
    "and_rule_verdicts",
    "threshold_verdicts",
    "auto_batch",
    "estimate_rejection_probability",
    "CollisionTrialKernel",
    "ScalarCollisionTrial",
    "ThresholdNetworkErrorKernel",
    "AndNetworkErrorKernel",
    "AndRuleNetworkTester",
    "ThresholdNetworkTester",
    "CostVector",
    "AsymmetricThresholdParameters",
    "AsymmetricAndParameters",
    "asymmetric_threshold_parameters",
    "asymmetric_and_parameters",
    "lemma41_products",
]
