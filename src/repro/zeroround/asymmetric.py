"""Section 4 — 0-round testing with asymmetric per-sample costs.

Each node ``i`` pays ``c_i`` per sample; the objective is to minimise the
**maximum individual cost** ``C = max_i s_i·c_i``.  Writing ``T_i = 1/c_i``
for the inverse costs, the paper shows:

- **Threshold rule** (Section 4.2): give node ``i`` responsibility
  ``δ_i = C²T_i²/(2n)`` (i.e. ``s_i = C·T_i`` samples); the Chernoff window
  analysis goes through with ``Σ_i δ_i`` in place of ``kδ``, yielding
  ``C = Θ(√n/ε²)/‖T‖₂``.  The symmetric case has ``‖T‖₂ = √k``, recovering
  Theorem 1.2.
- **AND rule** (Section 4.1): node ``i`` runs AND-of-``m`` with
  ``δ_i = (C·T_i)^{2m}/((2n)^m·m^{2m})``; the completeness constraint
  ``Π(1−δ_i) = 1−p`` pins ``C = (ln 1/(1−p))^{1/(2m)}·√(2n)·m/‖T‖_{2m}``,
  and **Lemma 4.1** (proved by Lagrange multipliers + bordered Hessians)
  shows soundness is inherited from the symmetric case for free: under the
  completeness constraint, the acceptance probability of a far distribution
  is *maximised* at the symmetric point.

:func:`lemma41_products` exposes the two sides of Lemma 4.1 numerically so
the test suite can verify the extremality claim on random cost vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.amplify import RepeatedAndTester
from repro.core.collision import (
    CollisionGapTester,
    effective_delta,
    gamma_slack,
)
from repro.core.gap import CentralizedTester
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.zeroround.decision import AndRule, ThresholdRule
from repro.zeroround.network import ZeroRoundNetwork

#: How many multiplicative bumps of the budget C we try before declaring the
#: integer-rounded constraint system infeasible.
_MAX_BUDGET_BUMPS = 200
_BUDGET_BUMP = 1.05


@dataclass(frozen=True)
class CostVector:
    """Per-sample costs ``c_i > 0`` for the k nodes, with norm helpers.

    Examples
    --------
    >>> costs = CostVector.of([1.0, 1.0, 4.0])
    >>> round(costs.inverse_norm(2), 3)  # ||T||_2 with T = (1, 1, 0.25)
    1.436
    """

    costs: Tuple[float, ...]

    @staticmethod
    def of(costs: Sequence[float]) -> "CostVector":
        arr = tuple(float(c) for c in costs)
        if not arr:
            raise ParameterError("cost vector must be non-empty")
        if any(c <= 0 or not math.isfinite(c) for c in arr):
            raise ParameterError("all per-sample costs must be positive and finite")
        return CostVector(costs=arr)

    @staticmethod
    def symmetric(k: int, cost: float = 1.0) -> "CostVector":
        """All-equal costs — the degenerate case recovering Section 3."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return CostVector.of([cost] * k)

    @property
    def k(self) -> int:
        """Number of nodes."""
        return len(self.costs)

    @property
    def inverse(self) -> np.ndarray:
        """The inverse-cost vector ``T`` with ``T_i = 1/c_i``."""
        return 1.0 / np.asarray(self.costs, dtype=np.float64)

    def inverse_norm(self, order: float) -> float:
        """``‖T‖_order`` — the quantity the paper's costs depend on."""
        if order <= 0:
            raise ParameterError(f"norm order must be positive, got {order}")
        t = self.inverse
        return float((t**order).sum() ** (1.0 / order))


# ---------------------------------------------------------------------------
# Threshold rule (Section 4.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AsymmetricThresholdParameters:
    """Solved Section 4.2 instance.

    Attributes
    ----------
    n, eps, p:
        Problem parameters.
    costs:
        The cost vector.
    samples:
        Integer per-node sample counts ``s_i`` (0 = node abstains).
    deltas:
        Effective per-node ``δ_i`` after rounding.
    threshold:
        Alarm-count threshold ``T``.
    max_cost:
        ``max_i s_i·c_i`` — the objective value achieved.
    budget:
        The continuous budget ``C`` the solver converged to.
    gamma:
        Worst-case γ slack over participating nodes.
    """

    n: int
    eps: float
    p: float
    costs: CostVector
    samples: Tuple[int, ...]
    deltas: Tuple[float, ...]
    threshold: int
    max_cost: float
    budget: float
    gamma: float

    @property
    def total_delta(self) -> float:
        """``Σ_i δ_i`` — plays the role of ``kδ`` in Theorem 1.2."""
        return float(sum(self.deltas))

    def build_network(self) -> ZeroRoundNetwork:
        """One collision tester per participating node + threshold rule."""
        testers: List[Optional[CentralizedTester]] = []
        for s in self.samples:
            testers.append(CollisionGapTester(n=self.n, s=s) if s >= 2 else None)
        return ZeroRoundNetwork(testers=testers, rule=ThresholdRule(self.threshold))

    def rejection_count(self, distribution, rng=None) -> int:
        """Alarm count for one epoch, vectorised by sample-count groups.

        Identical in distribution to :meth:`build_network`'s object model
        (each node draws its own i.i.d. batch), but grouping nodes with the
        same ``s_i`` into one matrix makes 20k-node fleets instant.
        """
        from collections import Counter

        from repro.zeroround.network import collision_reject_flags

        groups = Counter(s for s in self.samples if s >= 2)
        alarms = 0
        for s, count in sorted(groups.items()):
            flags = collision_reject_flags(distribution, count, s, rng)
            alarms += int(flags.sum())
        return alarms

    def test(self, distribution, rng=None) -> bool:
        """One epoch's network verdict (True = accept), vectorised."""
        return self.rejection_count(distribution, rng) < self.threshold

    def test_many(self, distribution, trials: int, rng=None, batch: int = 4096):
        """Accept verdicts for *trials* epochs, trial-batched.

        Routes through :meth:`~repro.zeroround.network.ZeroRoundNetwork.run_many`,
        whose grouped-by-``s`` kernel keeps heterogeneous fleets with many
        distinct sample counts to a handful of numpy passes per batch.
        """
        return self.build_network().run_many(distribution, trials, rng, batch=batch)


def asymmetric_threshold_parameters(
    n: int,
    costs: CostVector,
    eps: float,
    p: float = 1.0 / 3.0,
    slack: float = 1.05,
) -> AsymmetricThresholdParameters:
    """Solve the Section 4.2 threshold construction for a cost vector.

    Starts from the paper's continuous optimum
    ``C = √(2n·Δ)/‖T‖₂`` (where ``Δ = Σδ_i`` is the same total-rejection
    budget as the symmetric solver's ``kδ``), rounds ``s_i = ⌊C·T_i⌋``, and
    bumps ``C`` up geometrically until the integer solution still satisfies
    the Chernoff window of Eq. (5).

    Raises
    ------
    InfeasibleParametersError
        If no bounded budget satisfies the window (``n`` too small, or all
        nodes priced out).
    """
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    big_l = math.log(1.0 / p)
    t_norm2 = costs.inverse_norm(2)
    inverse = costs.inverse

    # Required Σδ_i at a given γ (same window as the symmetric solver).
    def needed_total_delta(gamma: float) -> float:
        g = gamma * eps * eps
        return slack * ((math.sqrt(3.0 * big_l) + math.sqrt(2.0 * big_l * (1.0 + g))) / g) ** 2

    # Cap per-node samples at the last s whose gamma slack stays healthy:
    # past that point extra samples at one node *hurt* the provable gap
    # (Eq. 1 degrades), so a cheap node's surplus budget is simply unused.
    s_cap = 2
    while gamma_slack(n, s_cap + 1, eps) >= 0.3 or s_cap + 1 <= 4:
        s_cap += 1
        if s_cap * (s_cap - 1) >= n:  # delta ~ 1/2: never useful beyond
            break

    budget = math.sqrt(2.0 * n * needed_total_delta(0.5)) / t_norm2
    for _ in range(_MAX_BUDGET_BUMPS):
        raw = budget * inverse
        samples = np.minimum(np.floor(raw).astype(np.int64), s_cap)
        samples[samples < 2] = 0  # a node needs >= 2 samples to ever collide
        deltas = np.where(
            samples >= 2, samples * (samples - 1) / (2.0 * n), 0.0
        )
        total = float(deltas.sum())
        participating = samples[samples >= 2]
        if total > 0 and participating.size > 0:
            # Per-node gamma: eta_far sums each node's own proved gap.
            gamma_by_s = {
                int(s): gamma_slack(n, int(s), eps)
                for s in np.unique(participating)
            }
            gamma = min(gamma_by_s.values())
            eta_u = total
            gamma_vec = np.zeros(samples.size)
            for s_value, g in gamma_by_s.items():
                gamma_vec[samples == s_value] = g
            eta_far = float((deltas * (1.0 + gamma_vec * eps * eps)).sum())
            t_lo = eta_u + math.sqrt(3.0 * big_l * eta_u)
            t_hi = eta_far - math.sqrt(2.0 * big_l * eta_far)
            threshold = int(math.ceil((t_lo + t_hi) / 2.0))
            if gamma > 0 and t_lo <= threshold <= t_hi:
                cost_arr = np.asarray(costs.costs)
                return AsymmetricThresholdParameters(
                    n=n,
                    eps=eps,
                    p=p,
                    costs=costs,
                    samples=tuple(int(s) for s in samples),
                    deltas=tuple(float(d) for d in deltas),
                    threshold=threshold,
                    max_cost=float((samples * cost_arr).max()),
                    budget=budget,
                    gamma=gamma,
                )
        budget *= _BUDGET_BUMP
    raise InfeasibleParametersError(
        f"no feasible asymmetric threshold solution at n={n}, eps={eps}, "
        f"p={p} for the given cost vector (try larger n or more nodes)"
    )


# ---------------------------------------------------------------------------
# AND rule (Section 4.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AsymmetricAndParameters:
    """Solved Section 4.1 instance.

    Node ``i`` runs AND-of-``m`` repetitions of a collision tester with
    ``samples_per_repetition[i]`` samples each (0 = abstain).
    """

    n: int
    eps: float
    p: float
    costs: CostVector
    m: int
    samples_per_repetition: Tuple[int, ...]
    node_deltas: Tuple[float, ...]
    max_cost: float
    budget: float
    gamma: float

    @property
    def samples(self) -> Tuple[int, ...]:
        """Total per-node samples ``m·s_i``."""
        return tuple(self.m * s for s in self.samples_per_repetition)

    def build_network(self) -> ZeroRoundNetwork:
        """One AND-of-m tester per participating node + AND rule."""
        testers: List[Optional[CentralizedTester]] = []
        for s in self.samples_per_repetition:
            if s >= 2:
                base = CollisionGapTester(n=self.n, s=s)
                testers.append(RepeatedAndTester(base=base, m=self.m))
            else:
                testers.append(None)
        return ZeroRoundNetwork(testers=testers, rule=AndRule())


def asymmetric_and_parameters(
    n: int,
    costs: CostVector,
    eps: float,
    p: float = 1.0 / 3.0,
) -> AsymmetricAndParameters:
    """Solve the Section 4.1 AND-rule construction for a cost vector.

    Follows the paper: all nodes share the repetition count ``m`` and the
    per-repetition gap ``α = 1+γε²``; the budget starts at the closed form
    ``C = (ln 1/(1−p))^{1/(2m)}·√(2n)·m/‖T‖_{2m}`` and is bumped until the
    integer-rounded solution satisfies both the completeness product
    ``Π(1−δ_i) ≥ 1−p`` (automatic after rounding down) and the soundness
    product ``Π(1−α^m·δ_i) ≤ p`` (checked directly — this is the quantity
    Lemma 4.1 bounds by the symmetric case).
    """
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2), got {eps}")
    if not 0.0 < p < 1.0:
        raise ParameterError(f"p must be in (0, 1), got {p}")
    inverse = costs.inverse
    ln_complete = math.log(1.0 / (1.0 - p))

    for m in range(1, 61):
        norm_2m = costs.inverse_norm(2 * m)
        budget = (ln_complete ** (1.0 / (2 * m))) * math.sqrt(2.0 * n) * m / norm_2m
        for _ in range(_MAX_BUDGET_BUMPS):
            per_rep = np.floor(budget * inverse / m).astype(np.int64)
            per_rep[per_rep < 2] = 0
            rep_deltas = np.where(
                per_rep >= 2, per_rep * (per_rep - 1) / (2.0 * n), 0.0
            )
            node_deltas = rep_deltas**m
            complete = float(np.prod(1.0 - node_deltas))
            active = per_rep[per_rep >= 2]
            if active.size == 0:
                budget *= _BUDGET_BUMP
                continue
            gamma = min(gamma_slack(n, int(s), eps) for s in np.unique(active))
            if gamma <= 0:
                budget *= _BUDGET_BUMP
                continue
            alpha = 1.0 + gamma * eps * eps
            far_rejects = np.minimum((alpha * rep_deltas) ** m, 1.0)
            sound = float(np.prod(1.0 - far_rejects))
            if complete >= 1.0 - p and sound <= p:
                cost_arr = np.asarray(costs.costs)
                return AsymmetricAndParameters(
                    n=n,
                    eps=eps,
                    p=p,
                    costs=costs,
                    m=m,
                    samples_per_repetition=tuple(int(s) for s in per_rep),
                    node_deltas=tuple(float(d) for d in node_deltas),
                    max_cost=float((m * per_rep * cost_arr).max()),
                    budget=budget,
                    gamma=gamma,
                )
            if complete < 1.0 - p:
                # Rounding cannot cause this (floors only shrink deltas), so
                # the budget overshot so far that completeness broke: no
                # larger budget will help at this m.
                break
            budget *= _BUDGET_BUMP
    raise InfeasibleParametersError(
        f"no feasible asymmetric AND solution at n={n}, eps={eps}, p={p} "
        "for the given cost vector (try larger n)"
    )


# ---------------------------------------------------------------------------
# Lemma 4.1 — numeric verification helper
# ---------------------------------------------------------------------------


def lemma41_products(x: Sequence[float], a: float) -> Tuple[float, float]:
    """Both sides of Lemma 4.1 for a concrete vector.

    Given ``X ∈ [0, 1)ᵏ`` and a gap ``a > 1``, returns
    ``(g(X), g(Y))`` where ``g(Z) = Π(1 − a·z_i)``, ``Y`` is the symmetric
    vector with the same completeness product ``c = Π(1 − x_i)``
    (``y_i = 1 − c^{1/k}``).  Lemma 4.1 asserts ``g(X) ≤ g(Y)`` whenever
    ``a < 1/(1−c)`` — the soundness of the asymmetric construction is at
    least as good as the symmetric one's.
    """
    arr = np.asarray(list(x), dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ParameterError("x must be a non-empty vector")
    if np.any(arr < 0) or np.any(arr >= 1):
        raise ParameterError("x entries must lie in [0, 1)")
    if a <= 1.0:
        raise ParameterError(f"a must exceed 1, got {a}")
    c = float(np.prod(1.0 - arr))
    if a >= 1.0 / (1.0 - c):
        raise ParameterError(
            f"Lemma 4.1 requires a < 1/(1-c) = {1.0 / (1.0 - c):.4g}, got {a}"
        )
    d = 1.0 - c ** (1.0 / arr.size)
    g_x = float(np.prod(1.0 - a * arr))
    g_y = float((1.0 - a * d) ** arr.size)
    return g_x, g_y
