"""Theorem 1.2 — the 0-round tester under the threshold decision rule.

Every node runs a single collision tester ``A_δ`` with
``δ = Θ(1/(ε⁴k))``; the network counts alarms and rejects iff at least
``T = Θ(1/ε⁴)`` nodes reject.  Because the per-node signals are independent
Bernoulli bits, Chernoff concentration separates the uniform expectation
``η(U) ≤ kδ`` from the far expectation ``η(μ) ≥ (1+γε²)kδ`` (Eq. 5), giving
constant network error with only ``s = Θ(√(n/k)/ε²)`` samples per node —
a *full* ``√k`` saving over the single-node cost, versus the AND rule's
``k^{Θ(ε²)}`` dent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.params import ThresholdParameters, threshold_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.zeroround.decision import ThresholdRule
from repro.zeroround.network import (
    ThresholdNetworkErrorKernel,
    ZeroRoundNetwork,
    auto_batch,
    collision_reject_flags,
    threshold_verdicts,
)


@dataclass(frozen=True)
class ThresholdNetworkTester:
    """End-to-end Theorem 1.2 tester for a k-node network.

    Examples
    --------
    >>> tester = ThresholdNetworkTester.solve(n=50_000, k=3000, eps=0.9)
    >>> tester.params.threshold >= 1
    True
    """

    params: ThresholdParameters

    @staticmethod
    def solve(
        n: int, k: int, eps: float, p: float = 1.0 / 3.0, slack: float = 1.05
    ) -> "ThresholdNetworkTester":
        """Choose Theorem 1.2 parameters for ``(n, k, ε, p)`` and build."""
        return ThresholdNetworkTester(params=threshold_parameters(n, k, eps, p, slack))

    @property
    def samples_per_node(self) -> int:
        """Per-node sample cost (the theorem's headline quantity)."""
        return self.params.s

    def as_network(self) -> ZeroRoundNetwork:
        """The object-model network (one ``A_δ`` per node + threshold rule)."""
        node = self.params.build_node_tester()
        return ZeroRoundNetwork(
            testers=[node] * self.params.k,
            rule=ThresholdRule(self.params.threshold),
        )

    def rejection_count(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> int:
        """Number of alarms ``R`` in one network execution."""
        if distribution.n != self.params.n:
            raise ParameterError(
                f"tester calibrated for n={self.params.n}, "
                f"distribution has n={distribution.n}"
            )
        flags = collision_reject_flags(distribution, self.params.k, self.params.s, rng)
        return int(flags.sum())

    def test(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> bool:
        """One network execution; ``True`` = network says uniform."""
        return self.rejection_count(distribution, rng) < self.params.threshold

    def test_many(
        self,
        distribution: DiscreteDistribution,
        trials: int,
        rng: SeedLike = None,
        batch: Optional[int] = None,
    ) -> np.ndarray:
        """Accept verdicts of *trials* network executions, trial-batched.

        Bit-identical to *trials* sequential :meth:`test` calls on the same
        generator; the batch size is auto-capped so one sample matrix stays
        within the kernel memory budget.
        """
        p = self.params
        if batch is None:
            batch = auto_batch(p.k * p.s)
        gen = ensure_rng(rng)
        out = np.empty(trials, dtype=bool)
        pos = 0
        while pos < trials:
            m = min(batch, trials - pos)
            out[pos : pos + m] = threshold_verdicts(
                distribution, p.k, p.s, p.threshold, m, gen
            )
            pos += m
        return out

    def estimate_error(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
        batch: Optional[int] = None,
        workers: int = 1,
    ) -> float:
        """Monte-Carlo error rate over *trials* network executions.

        Seed-like ``rng`` routes through the batched trial engine
        (reproducible for any ``batch``/``workers``); a ``Generator``
        parent falls back to the sequential single-stream path.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        p = self.params
        if batch is None:
            batch = auto_batch(p.k * p.s)
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.experiments.runner import TrialRunner

            kernel = ThresholdNetworkErrorKernel(
                distribution, p.k, p.s, p.threshold, is_uniform
            )
            est = TrialRunner(base_seed=0 if rng is None else int(rng)).error_rate_batched(
                kernel, trials, "threshold_rule", p.k, batch=batch, workers=workers
            )
            return est.rate
        gen = ensure_rng(rng)
        errors = int((self.test_many(distribution, trials, gen, batch) != is_uniform).sum())
        return errors / trials
