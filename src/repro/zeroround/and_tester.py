"""Theorem 1.1 — the 0-round tester under the AND decision rule.

Construction recap: each node runs ``m`` independent copies of the
single-collision tester ``A_δ'`` and rejects iff all ``m`` reject; the
network rejects iff any node rejects.  The parameters come from
:func:`repro.core.params.and_rule_parameters`, which solves the exact
finite-``k`` inequalities (Eq. 4 of the paper).

The headline cost is ``s = Θ((C_p/ε²)·√(n / k^{Θ(ε²/C_p)}))`` samples per
node: the network size ``k`` only helps through a tiny exponent — the price
of the amplification-unfriendly AND rule, and the reason Theorem 1.2's
threshold rule is the better deal (benchmark E3 measures the difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.params import AndRuleParameters, and_rule_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.zeroround.decision import AndRule
from repro.zeroround.network import (
    AndNetworkErrorKernel,
    NetworkResult,
    ZeroRoundNetwork,
    and_rule_verdicts,
    auto_batch,
    repeated_collision_reject_flags,
)


@dataclass(frozen=True)
class AndRuleNetworkTester:
    """End-to-end Theorem 1.1 tester for a k-node network.

    Build with :meth:`solve` (which chooses all parameters) or directly from
    an :class:`~repro.core.params.AndRuleParameters`.

    Examples
    --------
    >>> tester = AndRuleNetworkTester.solve(n=20_000, k=16, eps=0.9)
    >>> tester.params.samples_per_node <= 20_000
    True
    """

    params: AndRuleParameters

    @staticmethod
    def solve(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> "AndRuleNetworkTester":
        """Choose Theorem 1.1 parameters for ``(n, k, ε, p)`` and build."""
        return AndRuleNetworkTester(params=and_rule_parameters(n, k, eps, p))

    @property
    def samples_per_node(self) -> int:
        """Per-node sample cost (the theorem's headline quantity)."""
        return self.params.samples_per_node

    def as_network(self) -> ZeroRoundNetwork:
        """The object-model network (one RepeatedAndTester per node)."""
        node = self.params.build_node_tester()
        return ZeroRoundNetwork(testers=[node] * self.params.k, rule=AndRule())

    def test(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> bool:
        """One network execution; ``True`` = network says uniform.

        Uses the vectorised kernel — decisions are distributed identically
        to :meth:`as_network`'s object model.
        """
        if distribution.n != self.params.n:
            raise ParameterError(
                f"tester calibrated for n={self.params.n}, "
                f"distribution has n={distribution.n}"
            )
        rejects = repeated_collision_reject_flags(
            distribution,
            k=self.params.k,
            m=self.params.m,
            s=self.params.s_per_repetition,
            rng=rng,
        )
        return not bool(rejects.any())

    def test_many(
        self,
        distribution: DiscreteDistribution,
        trials: int,
        rng: SeedLike = None,
        batch: Optional[int] = None,
    ) -> np.ndarray:
        """Accept verdicts of *trials* network executions, trial-batched.

        Bit-identical to *trials* sequential :meth:`test` calls on the same
        generator; the batch size is auto-capped so one sample matrix stays
        within the kernel memory budget.
        """
        p = self.params
        if batch is None:
            batch = auto_batch(p.k * p.m * p.s_per_repetition)
        gen = ensure_rng(rng)
        out = np.empty(trials, dtype=bool)
        pos = 0
        while pos < trials:
            m = min(batch, trials - pos)
            out[pos : pos + m] = and_rule_verdicts(
                distribution, p.k, p.m, p.s_per_repetition, m, gen
            )
            pos += m
        return out

    def estimate_error(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
        batch: Optional[int] = None,
        workers: int = 1,
    ) -> float:
        """Monte-Carlo error rate over *trials* network executions.

        ``is_uniform`` selects which verdict counts as an error (rejecting
        uniform vs accepting a far distribution).  Seed-like ``rng`` routes
        through the batched trial engine (reproducible for any ``batch`` /
        ``workers``); a ``Generator`` parent falls back to the sequential
        single-stream path.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        p = self.params
        if batch is None:
            batch = auto_batch(p.k * p.m * p.s_per_repetition)
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.experiments.runner import TrialRunner

            kernel = AndNetworkErrorKernel(
                distribution, p.k, p.m, p.s_per_repetition, is_uniform
            )
            est = TrialRunner(base_seed=0 if rng is None else int(rng)).error_rate_batched(
                kernel, trials, "and_rule", p.k, batch=batch, workers=workers
            )
            return est.rate
        gen = ensure_rng(rng)
        errors = int((self.test_many(distribution, trials, gen, batch) != is_uniform).sum())
        return errors / trials
