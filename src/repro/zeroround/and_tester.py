"""Theorem 1.1 — the 0-round tester under the AND decision rule.

Construction recap: each node runs ``m`` independent copies of the
single-collision tester ``A_δ'`` and rejects iff all ``m`` reject; the
network rejects iff any node rejects.  The parameters come from
:func:`repro.core.params.and_rule_parameters`, which solves the exact
finite-``k`` inequalities (Eq. 4 of the paper).

The headline cost is ``s = Θ((C_p/ε²)·√(n / k^{Θ(ε²/C_p)}))`` samples per
node: the network size ``k`` only helps through a tiny exponent — the price
of the amplification-unfriendly AND rule, and the reason Theorem 1.2's
threshold rule is the better deal (benchmark E3 measures the difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import AndRuleParameters, and_rule_parameters
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.zeroround.decision import AndRule
from repro.zeroround.network import (
    NetworkResult,
    ZeroRoundNetwork,
    repeated_collision_reject_flags,
)


@dataclass(frozen=True)
class AndRuleNetworkTester:
    """End-to-end Theorem 1.1 tester for a k-node network.

    Build with :meth:`solve` (which chooses all parameters) or directly from
    an :class:`~repro.core.params.AndRuleParameters`.

    Examples
    --------
    >>> tester = AndRuleNetworkTester.solve(n=20_000, k=16, eps=0.9)
    >>> tester.params.samples_per_node <= 20_000
    True
    """

    params: AndRuleParameters

    @staticmethod
    def solve(n: int, k: int, eps: float, p: float = 1.0 / 3.0) -> "AndRuleNetworkTester":
        """Choose Theorem 1.1 parameters for ``(n, k, ε, p)`` and build."""
        return AndRuleNetworkTester(params=and_rule_parameters(n, k, eps, p))

    @property
    def samples_per_node(self) -> int:
        """Per-node sample cost (the theorem's headline quantity)."""
        return self.params.samples_per_node

    def as_network(self) -> ZeroRoundNetwork:
        """The object-model network (one RepeatedAndTester per node)."""
        node = self.params.build_node_tester()
        return ZeroRoundNetwork(testers=[node] * self.params.k, rule=AndRule())

    def test(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> bool:
        """One network execution; ``True`` = network says uniform.

        Uses the vectorised kernel — decisions are distributed identically
        to :meth:`as_network`'s object model.
        """
        if distribution.n != self.params.n:
            raise ParameterError(
                f"tester calibrated for n={self.params.n}, "
                f"distribution has n={distribution.n}"
            )
        rejects = repeated_collision_reject_flags(
            distribution,
            k=self.params.k,
            m=self.params.m,
            s=self.params.s_per_repetition,
            rng=rng,
        )
        return not bool(rejects.any())

    def estimate_error(
        self,
        distribution: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
    ) -> float:
        """Monte-Carlo error rate over *trials* network executions.

        ``is_uniform`` selects which verdict counts as an error (rejecting
        uniform vs accepting a far distribution).
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        gen = ensure_rng(rng)
        errors = 0
        for _ in range(trials):
            accepted = self.test(distribution, gen)
            if accepted != is_uniform:
                errors += 1
        return errors / trials
