"""The k-node 0-round harness and its vectorised fast paths.

Three ways to run a 0-round network:

1. :class:`ZeroRoundNetwork.run` — the honest object model: one
   :class:`~repro.core.gap.CentralizedTester` per node, a
   :class:`~repro.zeroround.decision.DecisionRule`, one trial per call.
2. :class:`ZeroRoundNetwork.run_many` — the trial-batched path: draws the
   samples for a whole batch of network executions in one matrix call and
   vectorises the per-node decisions.  Homogeneous networks collapse to a
   single collision kernel; heterogeneous (Section 4 asymmetric) networks
   are grouped by tester signature.  **Bit-identical** to calling
   :meth:`~ZeroRoundNetwork.run` in a loop with the same generator (a
   property the tests pin), because both consume the generator stream in
   node order and numpy streams are prefix-stable under call splitting.
3. Flat kernels — :func:`collision_reject_flags`,
   :func:`repeated_collision_reject_flags`, and the trial-batched
   :func:`threshold_verdicts` / :func:`and_rule_verdicts` — for the
   statistical benchmarks that need tens of thousands of network trials.

The frozen-dataclass experiment wrappers at the bottom adapt the kernels to
the ``(rng, count) -> bool[count]`` batched-experiment interface of
:class:`repro.experiments.runner.TrialRunner`; being module-level and
picklable, they also work on the engine's multi-process path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.amplify import RepeatedAndTester
from repro.core.collision import CollisionGapTester
from repro.core.gap import CentralizedTester
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.zeroround.decision import AndRule, DecisionRule, MajorityRule, ThresholdRule


@dataclass(frozen=True)
class NetworkResult:
    """Outcome of one 0-round network execution.

    Attributes
    ----------
    accepted:
        The network's verdict under the decision rule.
    accepts:
        Per-node accept bits, index-aligned with the node list.
    samples_per_node:
        Samples each node consumed in this execution.
    """

    accepted: bool
    accepts: np.ndarray
    samples_per_node: np.ndarray

    @property
    def rejection_count(self) -> int:
        """Number of nodes that raised an alarm."""
        return int((~self.accepts).sum())

    @property
    def total_samples(self) -> int:
        """Network-wide sample count."""
        return int(self.samples_per_node.sum())


@dataclass
class ZeroRoundNetwork:
    """A network of non-communicating testers plus a decision rule.

    Parameters
    ----------
    testers:
        One single-node tester per network node.  A ``None`` entry models a
        node that abstains (always accepts) — used by the asymmetric
        constructions when a node's budget is too small to test at all.
    rule:
        The network decision rule.
    """

    testers: Sequence[Optional[CentralizedTester]]
    rule: DecisionRule

    def __post_init__(self) -> None:
        if not self.testers:
            raise ParameterError("network must have at least one node")

    @property
    def k(self) -> int:
        """Number of network nodes."""
        return len(self.testers)

    @property
    def total_samples_per_trial(self) -> int:
        """Samples the whole network consumes in one execution."""
        return sum(t.samples_required for t in self.testers if t is not None)

    def run(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> NetworkResult:
        """Execute one trial: draw fresh per-node samples and decide.

        Nodes draw disjoint consecutive segments of one master stream, in
        node-index order.  The segments are i.i.d., so each node's samples
        are private and independent exactly as in the paper's model — and
        the consumption order makes a loop of ``run`` calls bit-identical
        to one :meth:`run_many` call with the same generator.
        """
        gen = ensure_rng(rng)
        accepts = np.ones(self.k, dtype=bool)
        samples_used = np.zeros(self.k, dtype=np.int64)
        for i, tester in enumerate(self.testers):
            if tester is None:
                continue
            s = tester.samples_required
            batch = distribution.sample(s, gen)
            accepts[i] = tester.decide(batch)
            samples_used[i] = s
        return NetworkResult(
            accepted=self.rule.decide(accepts),
            accepts=accepts,
            samples_per_node=samples_used,
        )

    # -- trial-batched execution ---------------------------------------

    def run_many(
        self,
        distribution: DiscreteDistribution,
        trials: int,
        rng: SeedLike = None,
        batch: int = 4096,
    ) -> np.ndarray:
        """Accept verdicts of *trials* independent network executions.

        Draws each batch of executions as a single ``(batch, total_s)``
        sample matrix and vectorises the per-node decisions: collision and
        AND-of-m testers go through the sort-based collision kernel, grouped
        by tester signature so heterogeneous (Section 4) networks with many
        distinct sample counts still take a handful of numpy passes.
        Unknown tester types and decision rules fall back to per-trial
        object calls on the same samples, preserving bit-for-bit equality
        with :meth:`run`.

        Returns
        -------
        numpy.ndarray
            Boolean vector of length *trials*; ``True`` = network accepts.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        gen = ensure_rng(rng)
        groups, generic, offsets = self._decision_plan()
        total_s = self.total_samples_per_trial
        verdicts = np.empty(trials, dtype=bool)
        pos = 0
        while pos < trials:
            m = min(batch, trials - pos)
            matrix = distribution.sample(m * total_s, gen).reshape(m, total_s)
            accepts = np.ones((m, self.k), dtype=bool)
            for s, reps, nodes in groups:
                cols = np.concatenate(
                    [np.arange(offsets[i], offsets[i] + reps * s) for i in nodes]
                )
                sub = matrix[:, cols].reshape(m, len(nodes), reps, s)
                collide = _last_axis_has_collision(sub)
                # AND-of-m: a node rejects iff every repetition collided.
                accepts[:, nodes] = ~collide.all(axis=2)
            for i in generic:
                tester = self.testers[i]
                lo = offsets[i]
                hi = lo + tester.samples_required
                for t in range(m):
                    accepts[t, i] = tester.decide(matrix[t, lo:hi])
            verdicts[pos : pos + m] = self._rule_verdicts(accepts)
            pos += m
        return verdicts

    def _decision_plan(self):
        """Group nodes by vectorisable tester signature.

        Returns ``(groups, generic, offsets)`` where each group is
        ``(s, reps, node_index_array)`` — a plain collision tester is the
        ``reps = 1`` case of AND-of-m — ``generic`` lists nodes whose tester
        type has no kernel, and ``offsets[i]`` is node *i*'s first column in
        the per-trial sample matrix.
        """
        offsets = np.zeros(self.k, dtype=np.int64)
        by_signature = {}
        generic: List[int] = []
        col = 0
        for i, tester in enumerate(self.testers):
            offsets[i] = col
            if tester is None:
                continue
            col += tester.samples_required
            if isinstance(tester, CollisionGapTester):
                by_signature.setdefault((tester.s, 1), []).append(i)
            elif isinstance(tester, RepeatedAndTester) and isinstance(
                tester.base, CollisionGapTester
            ):
                by_signature.setdefault((tester.base.s, tester.m), []).append(i)
            else:
                generic.append(i)
        groups = [
            (s, reps, np.asarray(nodes, dtype=np.int64))
            for (s, reps), nodes in by_signature.items()
        ]
        return groups, generic, offsets

    def _rule_verdicts(self, accepts: np.ndarray) -> np.ndarray:
        """Vectorised decision rule over a ``(trials, k)`` accept matrix."""
        rejections = (~accepts).sum(axis=1)
        if isinstance(self.rule, AndRule):
            return rejections == 0
        if isinstance(self.rule, ThresholdRule):
            if self.rule.threshold > accepts.shape[1]:
                raise ParameterError(
                    f"threshold {self.rule.threshold} exceeds network size "
                    f"{accepts.shape[1]}"
                )
            return rejections < self.rule.threshold
        if isinstance(self.rule, MajorityRule):
            return accepts.sum(axis=1) * 2 > accepts.shape[1]
        return np.fromiter(
            (self.rule.decide(row) for row in accepts),
            dtype=bool,
            count=accepts.shape[0],
        )


# ---------------------------------------------------------------------------
# Vectorised kernels for the homogeneous case
# ---------------------------------------------------------------------------


def _rows_have_collision(matrix: np.ndarray) -> np.ndarray:
    """Boolean per-row flag: does the row contain a repeated value?

    Sort-based: ``O(rows · s log s)`` and fully vectorised.
    """
    if matrix.ndim != 2:
        raise ParameterError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
    return _last_axis_has_collision(matrix)


def _last_axis_has_collision(tensor: np.ndarray) -> np.ndarray:
    """Collision flag along the last axis of an n-D sample tensor."""
    if tensor.shape[-1] < 2:
        return np.zeros(tensor.shape[:-1], dtype=bool)
    ordered = np.sort(tensor, axis=-1)
    return (np.diff(ordered, axis=-1) == 0).any(axis=-1)


def grouped_collision_flags(samples: np.ndarray, members: np.ndarray) -> np.ndarray:
    """Per-group collision flags for arbitrary index groups of equal size.

    ``samples`` has shape ``(..., total)`` (typically ``(trials, total)``)
    and ``members`` is an integer ``(groups, size)`` array of column
    indices into the last axis; the result has shape ``(..., groups)``
    with ``True`` where a group's gathered values contain a repeat.

    This is the gather-then-sort generalisation of the contiguous-slice
    kernels above: the CONGEST trial plane uses it with ``members`` =
    a :class:`~repro.congest.trial_plane.PackagingLayout`'s per-package
    token-slot lists, which need not be contiguous in sample order.
    """
    members = np.asarray(members)
    if members.ndim != 2:
        raise ParameterError(
            f"members must be a (groups, size) index array, got shape "
            f"{members.shape}"
        )
    samples = np.asarray(samples)
    if members.size == 0:
        return np.zeros(samples.shape[:-1] + (members.shape[0],), dtype=bool)
    return _last_axis_has_collision(samples[..., members])


def collision_reject_flags(
    distribution: DiscreteDistribution,
    k: int,
    s: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Reject flags for ``k`` nodes each running ``A_δ`` with ``s`` samples.

    Equivalent to ``k`` independent
    :class:`~repro.core.collision.CollisionGapTester` nodes; returns a
    boolean vector where ``True`` means *reject* (a collision was seen).
    """
    if k < 1 or s < 1:
        raise ParameterError(f"need k >= 1 and s >= 1, got {(k, s)}")
    samples = distribution.sample_matrix(k, s, rng)
    return _rows_have_collision(samples)


def repeated_collision_reject_flags(
    distribution: DiscreteDistribution,
    k: int,
    m: int,
    s: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Reject flags for ``k`` nodes each running AND-of-``m`` repetitions.

    Node *i* rejects iff **all** of its ``m`` independent ``s``-sample
    batches contain a collision (the Theorem 1.1 node behaviour).
    """
    if k < 1 or m < 1 or s < 1:
        raise ParameterError(f"need k, m, s >= 1, got {(k, m, s)}")
    samples = distribution.sample_matrix(k * m, s, rng)
    per_batch = _rows_have_collision(samples).reshape(k, m)
    return per_batch.all(axis=1)


# ---------------------------------------------------------------------------
# Trial-batched kernels: many whole-network executions per numpy call
# ---------------------------------------------------------------------------


def threshold_verdicts(
    distribution: DiscreteDistribution,
    k: int,
    s: int,
    threshold: int,
    trials: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Accept verdicts of *trials* Theorem 1.2 network executions.

    One ``(trials·k, s)`` sample matrix, one collision pass, one alarm
    count per trial.  Bit-identical to *trials* sequential
    :func:`collision_reject_flags` calls on the same generator.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if k < 1 or s < 1:
        raise ParameterError(f"need k >= 1 and s >= 1, got {(k, s)}")
    if not 1 <= threshold <= k:
        raise ParameterError(f"threshold must be in [1, {k}], got {threshold}")
    samples = distribution.sample_matrix(trials * k, s, rng)
    alarms = _rows_have_collision(samples).reshape(trials, k).sum(axis=1)
    return alarms < threshold


def and_rule_verdicts(
    distribution: DiscreteDistribution,
    k: int,
    m: int,
    s: int,
    trials: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Accept verdicts of *trials* Theorem 1.1 network executions.

    Each trial: ``k`` nodes run AND-of-``m`` collision testers; the network
    accepts iff no node rejects.  Bit-identical to *trials* sequential
    :func:`repeated_collision_reject_flags` calls on the same generator.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if k < 1 or m < 1 or s < 1:
        raise ParameterError(f"need k, m, s >= 1, got {(k, m, s)}")
    samples = distribution.sample_matrix(trials * k * m, s, rng)
    per_batch = _rows_have_collision(samples).reshape(trials, k, m)
    node_rejects = per_batch.all(axis=2)
    return ~node_rejects.any(axis=1)


#: Element-count cap for one trial-batched sample matrix (~128 MiB of
#: int64).  Batched experiments built on the kernels auto-size ``batch``
#: so ``batch · k · m · s`` stays below this.
MATRIX_ELEMENT_CAP = 1 << 24


def auto_batch(elements_per_trial: int, cap: int = MATRIX_ELEMENT_CAP) -> int:
    """Largest trial batch whose sample matrix stays under *cap* elements."""
    if elements_per_trial < 1:
        raise ParameterError(
            f"elements_per_trial must be >= 1, got {elements_per_trial}"
        )
    return max(1, cap // elements_per_trial)


# ---------------------------------------------------------------------------
# Picklable batched-experiment adapters for the trial engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CollisionTrialKernel:
    """Batched experiment: one ``A_δ`` node per trial; ``True`` = reject.

    The E1 workload: ``(rng, count) -> collision flags of count trials``.
    Its scalar counterpart (one ``sample(s)`` + collision check per call)
    consumes the generator identically, so the engine's serial and batched
    paths agree bit-for-bit.
    """

    distribution: DiscreteDistribution
    s: int

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return collision_reject_flags(self.distribution, count, self.s, rng)


@dataclass(frozen=True)
class ScalarCollisionTrial:
    """Scalar twin of :class:`CollisionTrialKernel` (``rng -> bool``)."""

    distribution: DiscreteDistribution
    s: int

    def __call__(self, rng: np.random.Generator) -> bool:
        from repro.core.collision import has_collision

        return bool(has_collision(self.distribution.sample(self.s, rng)))


@dataclass(frozen=True)
class ThresholdNetworkErrorKernel:
    """Batched experiment: Theorem 1.2 network error flags.

    ``True`` = the network verdict disagrees with ``is_uniform``.
    """

    distribution: DiscreteDistribution
    k: int
    s: int
    threshold: int
    is_uniform: bool

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        accepted = threshold_verdicts(
            self.distribution, self.k, self.s, self.threshold, count, rng
        )
        return accepted != self.is_uniform


@dataclass(frozen=True)
class AndNetworkErrorKernel:
    """Batched experiment: Theorem 1.1 network error flags."""

    distribution: DiscreteDistribution
    k: int
    m: int
    s: int
    is_uniform: bool

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        accepted = and_rule_verdicts(
            self.distribution, self.k, self.m, self.s, count, rng
        )
        return accepted != self.is_uniform


def estimate_rejection_probability(
    distribution: DiscreteDistribution,
    s: int,
    trials: int,
    rng: SeedLike = None,
    batch: int = 4096,
    workers: int = 1,
) -> float:
    """Monte-Carlo estimate of ``Pr[A_δ rejects]`` on *distribution*.

    Runs the single-collision tester *trials* times in vectorised batches.
    Seed-like ``rng`` (``None`` or ``int``) routes through the trial engine
    — chunk-keyed streams, reproducible for any ``batch``/``workers`` — and
    supports multi-process execution.  A ``Generator`` parent falls back to
    sequential single-stream batching (legacy behaviour).  Used by the E1
    benchmark and the empirical sample-complexity search.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if rng is None or isinstance(rng, (int, np.integer)):
        from repro.experiments.runner import TrialRunner

        kernel = CollisionTrialKernel(distribution, s)
        est = TrialRunner(base_seed=0 if rng is None else int(rng)).error_rate_batched(
            kernel, trials, "rejection", s, batch=batch, workers=workers
        )
        return est.rate
    gen = ensure_rng(rng)
    rejected = 0
    remaining = trials
    while remaining > 0:
        chunk = min(batch, remaining)
        rejected += int(collision_reject_flags(distribution, chunk, s, gen).sum())
        remaining -= chunk
    return rejected / trials
