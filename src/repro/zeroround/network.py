"""The k-node 0-round harness and its vectorised fast paths.

Two ways to run a 0-round network:

1. :class:`ZeroRoundNetwork` — the honest object model: one
   :class:`~repro.core.gap.CentralizedTester` per node, per-node sample
   oracles, a :class:`~repro.zeroround.decision.DecisionRule`.  Use this
   when nodes are heterogeneous (the Section 4 asymmetric setting) or when
   an experiment needs per-node accounting.
2. :func:`collision_reject_flags` / :func:`repeated_collision_reject_flags`
   — flat numpy kernels for the homogeneous case, used by the statistical
   benchmarks that need tens of thousands of network trials.  They produce
   *identical* decisions to the object model (a property the tests check),
   just ~100× faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.gap import CentralizedTester
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng, spawn
from repro.zeroround.decision import DecisionRule


@dataclass(frozen=True)
class NetworkResult:
    """Outcome of one 0-round network execution.

    Attributes
    ----------
    accepted:
        The network's verdict under the decision rule.
    accepts:
        Per-node accept bits, index-aligned with the node list.
    samples_per_node:
        Samples each node consumed in this execution.
    """

    accepted: bool
    accepts: np.ndarray
    samples_per_node: np.ndarray

    @property
    def rejection_count(self) -> int:
        """Number of nodes that raised an alarm."""
        return int((~self.accepts).sum())

    @property
    def total_samples(self) -> int:
        """Network-wide sample count."""
        return int(self.samples_per_node.sum())


@dataclass
class ZeroRoundNetwork:
    """A network of non-communicating testers plus a decision rule.

    Parameters
    ----------
    testers:
        One single-node tester per network node.  A ``None`` entry models a
        node that abstains (always accepts) — used by the asymmetric
        constructions when a node's budget is too small to test at all.
    rule:
        The network decision rule.
    """

    testers: Sequence[Optional[CentralizedTester]]
    rule: DecisionRule

    def __post_init__(self) -> None:
        if not self.testers:
            raise ParameterError("network must have at least one node")

    @property
    def k(self) -> int:
        """Number of network nodes."""
        return len(self.testers)

    def run(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> NetworkResult:
        """Execute one trial: draw fresh per-node samples and decide.

        Each node gets an independent child generator (private coins /
        private samples), exactly matching the paper's model.
        """
        gen = ensure_rng(rng)
        node_rngs = spawn(gen, self.k)
        accepts = np.ones(self.k, dtype=bool)
        samples_used = np.zeros(self.k, dtype=np.int64)
        for i, tester in enumerate(self.testers):
            if tester is None:
                continue
            s = tester.samples_required
            batch = distribution.sample(s, node_rngs[i])
            accepts[i] = tester.decide(batch)
            samples_used[i] = s
        return NetworkResult(
            accepted=self.rule.decide(accepts),
            accepts=accepts,
            samples_per_node=samples_used,
        )


# ---------------------------------------------------------------------------
# Vectorised kernels for the homogeneous case
# ---------------------------------------------------------------------------


def _rows_have_collision(matrix: np.ndarray) -> np.ndarray:
    """Boolean per-row flag: does the row contain a repeated value?

    Sort-based: ``O(rows · s log s)`` and fully vectorised.
    """
    if matrix.ndim != 2:
        raise ParameterError(f"expected a 2-D sample matrix, got shape {matrix.shape}")
    if matrix.shape[1] < 2:
        return np.zeros(matrix.shape[0], dtype=bool)
    ordered = np.sort(matrix, axis=1)
    return (np.diff(ordered, axis=1) == 0).any(axis=1)


def collision_reject_flags(
    distribution: DiscreteDistribution,
    k: int,
    s: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Reject flags for ``k`` nodes each running ``A_δ`` with ``s`` samples.

    Equivalent to ``k`` independent
    :class:`~repro.core.collision.CollisionGapTester` nodes; returns a
    boolean vector where ``True`` means *reject* (a collision was seen).
    """
    if k < 1 or s < 1:
        raise ParameterError(f"need k >= 1 and s >= 1, got {(k, s)}")
    samples = distribution.sample_matrix(k, s, rng)
    return _rows_have_collision(samples)


def repeated_collision_reject_flags(
    distribution: DiscreteDistribution,
    k: int,
    m: int,
    s: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Reject flags for ``k`` nodes each running AND-of-``m`` repetitions.

    Node *i* rejects iff **all** of its ``m`` independent ``s``-sample
    batches contain a collision (the Theorem 1.1 node behaviour).
    """
    if k < 1 or m < 1 or s < 1:
        raise ParameterError(f"need k, m, s >= 1, got {(k, m, s)}")
    samples = distribution.sample_matrix(k * m, s, rng)
    per_batch = _rows_have_collision(samples).reshape(k, m)
    return per_batch.all(axis=1)


def estimate_rejection_probability(
    distribution: DiscreteDistribution,
    s: int,
    trials: int,
    rng: SeedLike = None,
    batch: int = 4096,
) -> float:
    """Monte-Carlo estimate of ``Pr[A_δ rejects]`` on *distribution*.

    Runs the single-collision tester *trials* times in vectorised batches.
    Used by the E1 benchmark and the empirical sample-complexity search.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    gen = ensure_rng(rng)
    rejected = 0
    remaining = trials
    while remaining > 0:
        chunk = min(batch, remaining)
        rejected += int(collision_reject_flags(distribution, chunk, s, gen).sum())
        remaining -= chunk
    return rejected / trials
