"""The tracer: nested spans, counters, and JSONL trace emission.

A :class:`Tracer` turns one process-level run into a stream of *events*:

- one ``manifest`` event (:class:`RunManifest`) identifying the run —
  seed, solved parameters, topology, execution route, library versions —
  so a benchmark number can always be traced back to what produced it;
- ``manifest_update`` events merging late-bound facts (e.g. the solved
  ``τ`` only known after the parameter solver ran) into the manifest;
- one ``span`` event per completed :class:`Span` — name, wall-clock
  seconds, free-form attributes, and integer counters — with parent
  links forming the span tree that ``repro report`` renders.

Zero overhead when disabled
---------------------------
Instrumented code never checks a flag: it calls :func:`span` (or
:func:`record_span` / :func:`annotate`) unconditionally.  When no tracer
is active those return a shared :data:`NULL_SPAN` whose every method is
a no-op — the cost is one function call per *phase* (not per round or
per trial), which the bench regression gate pins to the noise floor.
Tracing never draws randomness and never branches the traced code, so
enabling it cannot change any computed result (the bit-identity tests
in ``tests/telemetry`` pin this for the engine, trial-plane and
fault-plane routes).

Worker processes spawned by the trial engine inherit no tracer — their
chunks simply do not appear in the trace; the parent's enclosing span
still accounts the wall time.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from repro.exceptions import ParameterError

#: Trace stream schema identifier, bumped on breaking format changes.
TRACE_SCHEMA = "repro-trace/v1"
#: Manifest schema identifier.
MANIFEST_SCHEMA = "repro-manifest/v1"

#: Execution routes a manifest may declare.  ``engine-cold`` is the full
#: protocol (the measurement of record), ``engine-warm`` the cached
#: tree-schedule start, ``trial-plane`` / ``fault-plane`` / ``smp-plane``
#: the vectorised replays, ``zero-round`` the simulator-free testers,
#: ``solve`` a parameter-only run with no execution, ``mixed`` a run
#: touching several routes.
ROUTES = (
    "engine-cold",
    "engine-warm",
    "trial-plane",
    "fault-plane",
    "smp-plane",
    "zero-round",
    "solve",
    "mixed",
)


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / tuples into plain JSON-serialisable types."""
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    return str(value)


class Span:
    """One live span: a named, timed scope with attributes and counters.

    Use as a context manager (via :func:`span`); mutate through
    :meth:`set` (attributes) and :meth:`count` (additive integer/float
    counters).  The span event is emitted when the scope exits.
    """

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs",
                 "counters", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, Union[int, float]] = {}
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) free-form attributes."""
        self.attrs.update(attrs)
        return self

    def count(self, name: str, value: Union[int, float] = 1) -> "Span":
        """Add *value* to the counter *name* (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        seconds = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self, seconds)


class _NullSpan:
    """Shared no-op span returned whenever tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def count(self, name: str, value: Union[int, float] = 1) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span.
NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to tie a run's outputs back to its inputs.

    ``parameters`` holds the problem parameters as given (``n``, ``k``,
    ``eps``, ``p``, …); solver outputs arrive later through
    :func:`annotate` as ``manifest_update`` events, so a crash mid-run
    still leaves a valid manifest at the head of the trace.
    """

    command: str
    route: str
    seed: Optional[int] = None
    argv: tuple = ()
    parameters: Dict[str, Any] = field(default_factory=dict)
    topology: Optional[Dict[str, Any]] = None

    def as_event(self) -> Dict[str, Any]:
        return {
            "event": "manifest",
            "schema": MANIFEST_SCHEMA,
            "trace_schema": TRACE_SCHEMA,
            "command": self.command,
            "route": self.route,
            "seed": self.seed,
            "argv": list(self.argv),
            "parameters": _jsonable(self.parameters),
            "topology": _jsonable(self.topology),
            "versions": library_versions(),
            "created_unix": time.time(),
        }


def library_versions() -> Dict[str, str]:
    """Versions of the libraries that determine a run's bit stream."""
    import numpy

    from repro import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro_version,
    }


_MANIFEST_REQUIRED = {
    "schema": str,
    "trace_schema": str,
    "command": str,
    "route": str,
    "argv": list,
    "parameters": dict,
    "versions": dict,
    "created_unix": (int, float),
}


def validate_manifest(data: Dict[str, Any]) -> None:
    """Check a manifest event against the schema; raise on any defect.

    Used by ``repro report`` and the telemetry tests; raises
    :class:`~repro.exceptions.ParameterError` naming every violation at
    once so a malformed trace is diagnosable in one pass.
    """
    problems: List[str] = []
    for key, types in _MANIFEST_REQUIRED.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {types}"
            )
    if data.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(
            f"unknown manifest schema {data.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    if "route" in data and data["route"] not in ROUTES:
        problems.append(
            f"route {data['route']!r} not one of {ROUTES}"
        )
    seed = data.get("seed")
    if seed is not None and not isinstance(seed, int):
        problems.append(f"seed must be an int or null, got {seed!r}")
    versions = data.get("versions")
    if isinstance(versions, dict):
        for lib in ("python", "numpy", "repro"):
            if lib not in versions:
                problems.append(f"versions missing {lib!r}")
    if problems:
        raise ParameterError(
            "invalid run manifest: " + "; ".join(problems)
        )


class Tracer:
    """Collects span/manifest events and writes them as JSONL.

    Parameters
    ----------
    sink:
        A path (string or ``os.PathLike``) opened for writing, an open
        text file object, or ``None`` to keep events in memory only
        (:attr:`events`) — the form the tests use.
    """

    def __init__(self, sink: Union[None, str, "Any", IO[str]] = None) -> None:
        self.events: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._owns_file = False
        self._file: Optional[IO[str]] = None
        if sink is None:
            pass
        elif hasattr(sink, "write"):
            self._file = sink
        else:
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True

    # -- event plumbing -------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, sort_keys=True) + "\n")
            self._file.flush()

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span, seconds: float) -> None:
        # Tolerate exception-unwound stacks: pop through to this span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._emit({
            "event": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "seconds": seconds,
            "attrs": _jsonable(span.attrs),
            "counters": _jsonable(span.counters),
        })

    # -- public API -----------------------------------------------------

    @property
    def current_id(self) -> Optional[int]:
        return self._stack[-1].span_id if self._stack else None

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new child span of the innermost live span."""
        span_id = self._next_id
        self._next_id += 1
        return Span(self, span_id, self.current_id, name, dict(attrs))

    def record_span(
        self,
        name: str,
        seconds: float,
        attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[Dict[str, Union[int, float]]] = None,
    ) -> None:
        """Emit a pre-timed span (no live scope) under the current span.

        Used for spans whose duration was measured externally — e.g. the
        engine's per-phase segments, timed inside one loop and emitted
        after the fact.
        """
        span_id = self._next_id
        self._next_id += 1
        self._emit({
            "event": "span",
            "id": span_id,
            "parent": self.current_id,
            "name": name,
            "seconds": seconds,
            "attrs": _jsonable(attrs or {}),
            "counters": _jsonable(counters or {}),
        })

    def set_manifest(self, manifest: RunManifest) -> None:
        """Write the run manifest event (once, at trace start)."""
        self._emit(manifest.as_event())

    def annotate(self, **fields: Any) -> None:
        """Merge late-bound facts (solver outputs, …) into the manifest."""
        self._emit({
            "event": "manifest_update",
            "fields": _jsonable(fields),
        })

    def close(self) -> None:
        """Flush and close an owned file sink (idempotent)."""
        if self._file is not None and self._owns_file:
            self._file.close()
            self._file = None


# ---------------------------------------------------------------------------
# Module-level activation — the zero-overhead dispatch point
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def activate(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    """Disable tracing (instrumented code reverts to no-ops)."""
    global _ACTIVE
    _ACTIVE = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def enabled() -> bool:
    """Whether a tracer is active (cheap guard for non-trivial capture)."""
    return _ACTIVE is not None


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """Open a span on the active tracer, or return the shared no-op."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, **attrs)


def record_span(
    name: str,
    seconds: float,
    attrs: Optional[Dict[str, Any]] = None,
    counters: Optional[Dict[str, Union[int, float]]] = None,
) -> None:
    """Emit a pre-timed span on the active tracer (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.record_span(name, seconds, attrs, counters)


def annotate(**fields: Any) -> None:
    """Merge fields into the active trace's manifest (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.annotate(**fields)


class tracing:
    """Context manager: activate a tracer for a scope, then restore.

    >>> with tracing(Tracer()) as tracer:   # doctest: +SKIP
    ...     run_workload()
    ... # tracer.events now holds the trace
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        activate(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous
