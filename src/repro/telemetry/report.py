"""Trace loading and summarisation for ``repro report``.

Parses a JSONL trace written by :class:`~repro.telemetry.tracer.Tracer`
back into a manifest plus a span tree, and renders the three summaries
the CLI prints: the span tree (wall time, per-span counters), the hot
phases ranked by *self* time (span time minus child time — the part a
phase actually spent itself), and the counter totals aggregated by span
name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ParameterError
from repro.telemetry.tracer import validate_manifest


@dataclass
class SpanNode:
    """One span re-hydrated from the trace, with resolved children."""

    span_id: int
    parent_id: Optional[int]
    name: str
    seconds: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall time not accounted to any child span."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))


@dataclass
class Trace:
    """A parsed trace: validated manifest + span forest."""

    manifest: Dict[str, Any]
    roots: List[SpanNode]
    spans: List[SpanNode]

    def walk(self):
        """Yield ``(depth, node)`` over the forest in emission order."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))


def load_trace(path: str) -> Trace:
    """Parse and validate a JSONL trace file.

    Raises :class:`~repro.exceptions.ParameterError` on malformed JSON,
    a missing or invalid manifest, or dangling span parent references —
    the same exit-2 surface as every other bad CLI input.
    """
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ParameterError(
                        f"{path}:{lineno}: invalid JSON in trace: {exc}"
                    ) from exc
                if not isinstance(event, dict) or "event" not in event:
                    raise ParameterError(
                        f"{path}:{lineno}: trace lines must be objects "
                        f"with an 'event' field"
                    )
                events.append(event)
    except OSError as exc:
        raise ParameterError(f"cannot read trace {path}: {exc}") from exc

    manifests = [e for e in events if e["event"] == "manifest"]
    if not manifests:
        raise ParameterError(f"{path}: trace has no manifest event")
    if len(manifests) > 1:
        raise ParameterError(
            f"{path}: trace has {len(manifests)} manifest events, expected 1"
        )
    manifest = dict(manifests[0])
    validate_manifest(manifest)
    for event in events:
        if event["event"] == "manifest_update":
            fields = event.get("fields")
            if not isinstance(fields, dict):
                raise ParameterError(
                    f"{path}: manifest_update without a fields object"
                )
            for key, value in fields.items():
                if (
                    key in manifest
                    and isinstance(manifest[key], dict)
                    and isinstance(value, dict)
                ):
                    manifest[key].update(value)
                else:
                    manifest[key] = value

    nodes: Dict[int, SpanNode] = {}
    order: List[SpanNode] = []
    for event in events:
        if event["event"] != "span":
            continue
        for key in ("id", "name", "seconds"):
            if key not in event:
                raise ParameterError(
                    f"{path}: span event missing field {key!r}"
                )
        node = SpanNode(
            span_id=int(event["id"]),
            parent_id=event.get("parent"),
            name=str(event["name"]),
            seconds=float(event["seconds"]),
            attrs=dict(event.get("attrs") or {}),
            counters={
                str(k): float(v)
                for k, v in (event.get("counters") or {}).items()
            },
        )
        if node.span_id in nodes:
            raise ParameterError(
                f"{path}: duplicate span id {node.span_id}"
            )
        nodes[node.span_id] = node
        order.append(node)

    roots: List[SpanNode] = []
    for node in order:
        if node.parent_id is None:
            roots.append(node)
        else:
            parent = nodes.get(int(node.parent_id))
            if parent is None:
                raise ParameterError(
                    f"{path}: span {node.span_id} references unknown "
                    f"parent {node.parent_id}"
                )
            parent.children.append(node)
    return Trace(manifest=manifest, roots=roots, spans=order)


def phase_totals(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: calls, total seconds, total self seconds."""
    totals: Dict[str, Dict[str, float]] = {}
    for node in trace.spans:
        entry = totals.setdefault(
            node.name, {"calls": 0, "seconds": 0.0, "self_seconds": 0.0}
        )
        entry["calls"] += 1
        entry["seconds"] += node.seconds
        entry["self_seconds"] += node.self_seconds
    return totals


def span_seconds_fields(events: List[Dict[str, Any]]) -> Dict[str, float]:
    """Aggregate raw span events into bench-payload ``*_seconds`` fields.

    Takes a tracer's in-memory event list (:attr:`Tracer.events`) and
    sums wall time by span name, flattening dots to underscores and
    appending ``_seconds`` — the field shape ``tools/bench_compare.py``
    collects.  The bench scripts embed this as each payload's
    ``trace_phases`` block.
    """
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("event") != "span":
            continue
        key = str(event["name"]).replace(".", "_") + "_seconds"
        totals[key] = totals.get(key, 0.0) + float(event["seconds"])
    return totals


def counter_totals(trace: Trace) -> Dict[str, float]:
    """Sum every counter across all spans, keyed ``span_name.counter``."""
    totals: Dict[str, float] = {}
    for node in trace.spans:
        for name, value in node.counters.items():
            key = f"{node.name}.{name}"
            totals[key] = totals.get(key, 0.0) + value
    return totals


def _format_attrs(attrs: Dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attrs[k]}" for k in sorted(attrs)[:limit]]
    if len(attrs) > limit:
        parts.append("…")
    return " {" + ", ".join(parts) + "}"


def render_report(trace: Trace, max_hot: int = 12) -> str:
    """Render the full ``repro report`` text for a parsed trace."""
    manifest = trace.manifest
    lines: List[str] = []
    lines.append("run manifest")
    lines.append(f"  command : {manifest.get('command')}")
    lines.append(f"  route   : {manifest.get('route')}")
    lines.append(f"  seed    : {manifest.get('seed')}")
    parameters = manifest.get("parameters") or {}
    if parameters:
        rendered = ", ".join(
            f"{k}={parameters[k]}" for k in sorted(parameters)
        )
        lines.append(f"  params  : {rendered}")
    topology = manifest.get("topology")
    if topology:
        rendered = ", ".join(f"{k}={topology[k]}" for k in sorted(topology))
        lines.append(f"  topology: {rendered}")
    versions = manifest.get("versions") or {}
    if versions:
        rendered = ", ".join(f"{k} {versions[k]}" for k in sorted(versions))
        lines.append(f"  versions: {rendered}")

    lines.append("")
    lines.append(f"span tree ({len(trace.spans)} spans)")
    for depth, node in trace.walk():
        indent = "  " * (depth + 1)
        counters = ""
        if node.counters:
            counters = "  [" + ", ".join(
                f"{k}={node.counters[k]:g}" for k in sorted(node.counters)
            ) + "]"
        lines.append(
            f"{indent}{node.name:<28} {node.seconds * 1000:10.3f} ms"
            f"{_format_attrs(node.attrs)}{counters}"
        )

    lines.append("")
    lines.append("hot phases (by self time)")
    totals = phase_totals(trace)
    ranked = sorted(
        totals.items(), key=lambda item: item[1]["self_seconds"], reverse=True
    )
    for name, entry in ranked[:max_hot]:
        lines.append(
            f"  {name:<28} {entry['self_seconds'] * 1000:10.3f} ms self"
            f" / {entry['seconds'] * 1000:10.3f} ms total"
            f"  ({int(entry['calls'])} call"
            f"{'s' if entry['calls'] != 1 else ''})"
        )

    counters = counter_totals(trace)
    if counters:
        lines.append("")
        lines.append("counter totals")
        for key in sorted(counters):
            lines.append(f"  {key:<40} {counters[key]:g}")
    return "\n".join(lines)
