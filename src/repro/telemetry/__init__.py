"""Structured telemetry: spans, counters, and run manifests.

The public surface instrumented code uses::

    from repro import telemetry

    with telemetry.span("engine.run", topology="star") as sp:
        ...
        sp.count("rounds", report.rounds)

When no tracer is active (the default), :func:`span` returns a shared
no-op and the instrumentation costs one function call per phase — the
tracing-off path is bit-identical to uninstrumented code and gated
against the bench noise floor by ``tools/bench_compare.py``.

Activate with :func:`activate`/:class:`tracing` (the CLI's ``--trace
PATH`` does this), read traces back with
:func:`~repro.telemetry.report.load_trace`, and summarise them with
``repro report PATH``.
"""

from repro.telemetry.tracer import (
    MANIFEST_SCHEMA,
    NULL_SPAN,
    ROUTES,
    TRACE_SCHEMA,
    RunManifest,
    Span,
    Tracer,
    activate,
    annotate,
    deactivate,
    enabled,
    get_tracer,
    library_versions,
    record_span,
    span,
    tracing,
    validate_manifest,
)
from repro.telemetry.report import (
    SpanNode,
    Trace,
    counter_totals,
    load_trace,
    phase_totals,
    render_report,
    span_seconds_fields,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "NULL_SPAN",
    "ROUTES",
    "TRACE_SCHEMA",
    "RunManifest",
    "Span",
    "SpanNode",
    "Trace",
    "Tracer",
    "activate",
    "annotate",
    "counter_totals",
    "deactivate",
    "enabled",
    "get_tracer",
    "library_versions",
    "load_trace",
    "phase_totals",
    "record_span",
    "render_report",
    "span",
    "span_seconds_fields",
    "tracing",
    "validate_manifest",
]
