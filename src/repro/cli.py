"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve-threshold``
    Solve the Theorem 1.2 construction at (n, k, eps, p) and print the
    parameters plus (optionally) a measured error estimate.
``solve-and``
    Same for the Theorem 1.1 AND-rule construction.
``solve-congest``
    Choose the Theorem 1.4 package size τ and print predicted rounds for
    a given diameter.
``robustness``
    Sweep the hardened Theorem 1.4 tester over a (drop × crash) fault
    grid, by default through the vectorized fault-plane replay with an
    engine cross-check subset.
``local``
    Run the Section 6 LOCAL tester (Luby MIS on ``G^r`` + AND rule) and
    measure its error rate, by default through the vectorized local
    trial plane with an optional engine cross-check.
``smp``
    Run the Section 7 SMP Equality protocols (Lemma 7.3 torus chunks and
    the Theorem 7.1 BCG reduction) on a random input pair and measure
    their referee error rates, by default through the vectorized SMP
    trial plane with an optional scalar cross-check.
``demo``
    Run a quick end-to-end demonstration: threshold network on uniform vs
    a certified ε-far distribution.
``bounds``
    Print every closed-form theorem curve at (n, k, eps).
``report``
    Summarize a ``--trace`` JSONL file: run manifest, span tree, hot
    phases, counter totals.

All commands accept ``--seed`` for reproducibility and ``--trace PATH``
to write a structured telemetry trace (see ``docs/observability.md``),
and print plain-ASCII tables (no extra dependencies).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import telemetry
from repro.core import and_rule_parameters, threshold_parameters
from repro.core import bounds as bounds_mod
from repro.core.params import threshold_parameters_exact
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError, ReproError
from repro.experiments import Table
from repro.zeroround import ThresholdNetworkTester

#: Minimum network size each named benchmark topology can be built at
#: (mirrors the :class:`~repro.simulator.graph.Topology` constructors).
_TOPOLOGY_MIN_K = {"star": 2, "ring": 3, "grid": 1}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, required=True, help="domain size")
    parser.add_argument("--k", type=int, required=True, help="network size")
    parser.add_argument("--eps", type=float, default=0.9, help="L1 distance parameter")
    parser.add_argument("--p", type=float, default=1 / 3, help="error budget")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="write a JSONL telemetry trace (spans, "
                             "counters, run manifest) to PATH")


def _validate_common(args: argparse.Namespace) -> None:
    """Reject out-of-range problem parameters before any solver runs.

    ``eps`` is an L1 distance between distributions, so ``(0, 2]`` is the
    meaningful range; ``p`` is a two-sided error budget, open at both ends
    (0 demands certainty, 1 permits anything).  ``n`` needs at least two
    elements to have a non-uniform distribution; ``k`` at least one node.
    Catching these here gives a clear
    :class:`~repro.exceptions.ParameterError` instead of a downstream
    numpy or math-domain error deep in a solver.
    """
    n = getattr(args, "n", None)
    if n is not None and n < 2:
        raise ParameterError(
            f"--n must be >= 2 (a domain with at least two elements), "
            f"got {n}"
        )
    k = getattr(args, "k", None)
    if k is not None and k < 1:
        raise ParameterError(
            f"--k must be >= 1 (a network needs at least one node), "
            f"got {k}"
        )
    eps = getattr(args, "eps", None)
    if eps is not None and not 0.0 < eps <= 2.0:
        raise ParameterError(
            f"--eps must be in (0, 2] (an L1 distance), got {eps}"
        )
    p = getattr(args, "p", None)
    if p is not None and not 0.0 < p < 1.0:
        raise ParameterError(
            f"--p must be in (0, 1) (an error probability), got {p}"
        )
    # Topology minima only bind when the command will actually build the
    # topology: robustness always does, solve-congest only with --trials.
    topology = getattr(args, "topology", None)
    if (
        topology is not None
        and k is not None
        and (args.command == "robustness" or getattr(args, "trials", 0))
    ):
        minimum = _TOPOLOGY_MIN_K.get(topology, 1)
        if k < minimum:
            raise ParameterError(
                f"--topology {topology} needs k >= {minimum}, got {k}"
            )


def _cmd_solve_threshold(args: argparse.Namespace) -> int:
    solver = threshold_parameters_exact if args.exact else threshold_parameters
    params = solver(args.n, args.k, args.eps, args.p)
    telemetry.annotate(
        solved={"samples_per_node": params.s, "threshold": params.threshold}
    )
    table = Table(["parameter", "value"], title="Theorem 1.2 (threshold rule)")
    table.add_row(["samples per node s", params.s])
    table.add_row(["per-node delta", f"{params.delta:.5g}"])
    table.add_row(["alarm threshold T", params.threshold])
    table.add_row(["gamma slack (Eq. 1)", f"{params.gamma:.3f}"])
    table.add_row(["E[alarms | uniform] <=", f"{params.eta_uniform:.2f}"])
    table.add_row(["E[alarms | far] >=", f"{params.eta_far:.2f}"])
    table.add_row(
        ["centralized cost (1 node)",
         int(bounds_mod.centralized_sample_complexity(args.n, args.eps))]
    )
    print(table.render())
    if args.trials:
        tester = ThresholdNetworkTester(params=params)
        u = uniform(args.n)
        far = far_family("paninski", args.n, min(args.eps, 1.0), rng=args.seed)
        err_u = tester.estimate_error(u, True, args.trials, rng=args.seed + 1)
        err_f = tester.estimate_error(far, False, args.trials, rng=args.seed + 2)
        print(f"\nmeasured over {args.trials} trials: "
              f"err(uniform)={err_u:.3f}, err(far)={err_f:.3f}")
    return 0


def _cmd_solve_and(args: argparse.Namespace) -> int:
    params = and_rule_parameters(args.n, args.k, args.eps, args.p)
    table = Table(["parameter", "value"], title="Theorem 1.1 (AND rule)")
    table.add_row(["repetitions m", params.m])
    table.add_row(["samples per repetition", params.s_per_repetition])
    table.add_row(["samples per node", params.samples_per_node])
    table.add_row(["per-node uniform-reject budget", f"{params.delta_node:.5g}"])
    table.add_row(["network error (uniform) <=", f"{params.network_error_uniform:.3f}"])
    table.add_row(["network error (far) <=", f"{params.network_error_far:.3f}"])
    print(table.render())
    return 0


def _cmd_solve_congest(args: argparse.Namespace) -> int:
    from repro.congest import CongestUniformityTester, congest_parameters

    if args.trials is not None and args.trials <= 0:
        raise ParameterError(
            f"--trials must be a positive trial count, got {args.trials}"
        )
    params = congest_parameters(
        args.n, args.k, args.eps, args.p, args.samples_per_node
    )
    telemetry.annotate(
        solved={
            "tau": params.tau,
            "expected_virtual_nodes": params.expected_virtual_nodes,
        }
    )
    table = Table(["parameter", "value"], title="Theorem 1.4 (CONGEST)")
    table.add_row(["samples per node", params.samples_per_node])
    table.add_row(["package size tau", params.tau])
    table.add_row(["expected virtual nodes", params.expected_virtual_nodes])
    table.add_row(["alarm prob (uniform) <=", f"{params.alarm_prob_uniform:.4f}"])
    table.add_row(["alarm prob (far) >=", f"{params.alarm_prob_far:.4f}"])
    table.add_row(
        [f"predicted rounds at D={args.diameter}",
         int(params.predicted_rounds(args.diameter))]
    )
    print(table.render())
    if args.trials:
        from repro.experiments import make_topology

        tester = CongestUniformityTester(params=params)
        topo = make_topology(args.topology, args.k)
        u = uniform(args.n)
        far = far_family("paninski", args.n, min(args.eps, 1.0), rng=args.seed)
        err_u = tester.estimate_error(
            topo, u, True, args.trials, rng=args.seed + 1,
            fast_path=args.fast_path,
        )
        err_f = tester.estimate_error(
            topo, far, False, args.trials, rng=args.seed + 2,
            fast_path=args.fast_path,
        )
        path = "trial plane" if args.fast_path else "engine"
        print(f"\nmeasured over {args.trials} trials on {args.topology} "
              f"({path}): err(uniform)={err_u:.3f}, err(far)={err_f:.3f}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments import robustness_sweep

    if args.trials <= 0:
        raise ParameterError(
            f"--trials must be a positive trial count, got {args.trials}"
        )
    if not 0.0 <= args.engine_check <= 1.0:
        raise ParameterError(
            f"--engine-check must be in [0, 1], got {args.engine_check}"
        )
    for drop in args.drop_probs:
        if not 0.0 <= drop <= 1.0:
            raise ParameterError(
                f"--drop-probs entries must be in [0, 1], got {drop}"
            )
    for frac in args.crash_fractions:
        if not 0.0 <= frac < 1.0:
            raise ParameterError(
                f"--crash-fractions entries must be in [0, 1), got {frac}"
            )
    points = robustness_sweep(
        args.n,
        args.k,
        args.eps,
        p=args.p,
        samples_per_node=args.samples_per_node,
        topology=args.topology,
        drop_probs=tuple(args.drop_probs),
        crash_fractions=tuple(args.crash_fractions),
        trials=args.trials,
        base_seed=args.seed,
        fast_path=args.fast_path,
        engine_check=args.engine_check,
    )
    path = "fault plane" if args.fast_path else "engine"
    table = Table(
        ["drop", "crash", "err(unif)", "err(far)", "missing", "shortfall",
         "unheard", "agree", "engine trials"],
        title=f"Robustness: {args.topology}(k={args.k}) n={args.n} "
              f"eps={args.eps} trials={args.trials} [{path}]",
    )
    for pt in points:
        table.add_row([
            f"{pt.drop_prob:.2f}",
            f"{pt.crash_fraction:.2f}",
            f"{pt.error_uniform:.2f}",
            f"{pt.error_far:.2f}",
            f"{pt.mean_missing_subtrees:.1f}",
            f"{pt.mean_shortfall:.1f}",
            f"{pt.mean_unheard:.1f}",
            f"{pt.mean_agreement:.2f}",
            pt.engine_trials,
        ])
    print(table.render())
    return 0


def _cmd_local(args: argparse.Namespace) -> int:
    from repro.experiments import make_topology
    from repro.localmodel import LocalUniformityTester

    if args.trials < 1:
        raise ParameterError(
            f"--trials must be >= 1, got {args.trials}"
        )
    if args.radius is not None and args.radius < 1:
        raise ParameterError(
            f"--radius must be >= 1, got {args.radius}"
        )
    if not 0.0 <= args.engine_check <= 1.0:
        raise ParameterError(
            f"--engine-check must be in [0, 1], got {args.engine_check}"
        )
    tester = LocalUniformityTester(n=args.n, eps=args.eps, p=args.p)
    topo = make_topology(args.topology, args.k)
    radius = args.radius
    if radius is None:
        radius = tester.choose_radius(
            topo, rng=args.seed, fast_path=args.fast_path
        )
    # Show the exact plan the uniform sweep (seed + 1) will replay; on the
    # fast path this also pre-populates the layout cache it uses.
    from repro.localmodel.local_plane import (
        LocalTrialRunner,
        effective_radius,
        mis_generator,
    )

    if args.fast_path:
        plan = LocalTrialRunner.build(
            tester, topo, radius, base_seed=args.seed + 1
        ).plan
    else:
        plan = tester.plan(
            topo,
            radius,
            mis_generator(args.seed + 1, effective_radius(topo, radius)),
        )
    telemetry.annotate(
        solved={
            "radius": plan.radius,
            "mis_size": plan.mis_size,
            "samples_per_node": plan.params.samples_per_node,
        }
    )
    table = Table(
        ["parameter", "value"],
        title=f"Section 6 LOCAL tester: {args.topology}(k={args.k})",
    )
    table.add_row(["radius r", plan.radius])
    table.add_row(["MIS virtual nodes", plan.mis_size])
    table.add_row(["min catchment", plan.min_catchment])
    table.add_row(["samples per virtual node", plan.params.samples_per_node])
    table.add_row(["repetitions m", plan.params.m])
    table.add_row(["LOCAL rounds", plan.rounds])
    print(table.render())
    u = uniform(args.n)
    far = far_family("paninski", args.n, min(args.eps, 1.0), rng=args.seed)
    err_u = tester.estimate_error(
        topo, u, True, radius, args.trials, rng=args.seed + 1,
        fast_path=args.fast_path, engine_check=args.engine_check,
    )
    err_f = tester.estimate_error(
        topo, far, False, radius, args.trials, rng=args.seed + 2,
        fast_path=args.fast_path, engine_check=args.engine_check,
    )
    path = "local plane" if args.fast_path else "scalar tester"
    print(f"\nmeasured over {args.trials} trials on {args.topology} "
          f"({path}): err(uniform)={err_u:.3f}, err(far)={err_f:.3f}")
    return 0


def _cmd_smp(args: argparse.Namespace) -> int:
    from repro.core.collision import CollisionGapTester
    from repro.rng import ensure_rng
    from repro.smp import (
        BCGMapping,
        EqualityProtocol,
        TesterBasedEqualityProtocol,
    )

    if args.trials < 1:
        raise ParameterError(f"--trials must be >= 1, got {args.trials}")
    if args.n_bits < 1:
        raise ParameterError(f"--n-bits must be >= 1, got {args.n_bits}")
    if not 0.0 < args.delta < 1.0:
        raise ParameterError(f"--delta must be in (0, 1), got {args.delta}")
    if args.tau <= 1.0:
        raise ParameterError(f"--tau must exceed 1, got {args.tau}")
    if not 0.0 <= args.engine_check <= 1.0:
        raise ParameterError(
            f"--engine-check must be in [0, 1], got {args.engine_check}"
        )
    torus = EqualityProtocol.build(args.n_bits, delta=args.delta, tau=args.tau)
    mapping = BCGMapping(code=torus.code)
    tester = CollisionGapTester.from_delta(mapping.domain_size, args.delta)
    bcg = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
    telemetry.annotate(
        solved={
            "codeword_bits": torus.code.codeword_bits,
            "torus_side": torus.side,
            "tester_samples": tester.samples_required,
        }
    )
    table = Table(
        ["parameter", "value"],
        title=f"Section 7 SMP protocols ({args.n_bits}-bit inputs)",
    )
    table.add_row(["codeword bits m'", torus.code.codeword_bits])
    table.add_row(
        ["code relative distance", f"{torus.code.relative_distance:.4f}"]
    )
    table.add_row(["torus side L", torus.side])
    table.add_row(["torus chunk t", torus.chunk_length])
    table.add_row(["torus bits/player", torus.communication_bits])
    table.add_row(
        ["torus rejection bound", f"{torus.rejection_probability_bound:.4f}"]
    )
    table.add_row(["BCG domain 2m'", mapping.domain_size])
    table.add_row(["BCG tester samples q", tester.samples_required])
    table.add_row(["BCG bits/player", bcg.communication_bits])
    print(table.render())
    # One random input pair per seed: y differs from x in a single bit —
    # the hardest unequal instance for a distance-based protocol.
    gen = ensure_rng(args.seed)
    x = gen.integers(0, 2, size=args.n_bits)
    y = x.copy()
    y[0] ^= 1
    sweeps = [
        ("torus", "x = y", torus, x, x, 1),
        ("torus", "x != y", torus, x, y, 2),
        ("BCG", "x = y", bcg, x, x, 3),
        ("BCG", "x != y", bcg, x, y, 4),
    ]
    path = "smp plane" if args.fast_path else "scalar protocol"
    results = Table(
        ["protocol", "inputs", "error rate"],
        title=f"measured over {args.trials} trials ({path})",
    )
    for name, inputs, protocol, a, b, offset in sweeps:
        err = protocol.estimate_error(
            a, b, args.trials, rng=args.seed + offset,
            fast_path=args.fast_path, engine_check=args.engine_check,
        )
        results.add_row([name, inputs, f"{err:.3f}"])
    print(results.render())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    tester = ThresholdNetworkTester.solve(args.n, args.k, args.eps, args.p)
    u = uniform(args.n)
    far = far_family("paninski", args.n, min(args.eps, 1.0), rng=args.seed)
    table = Table(
        ["distribution", "alarms", "threshold", "verdict"],
        title=f"Demo: k={args.k} nodes x {tester.samples_per_node} samples",
    )
    for name, dist, seed in [("uniform", u, 1), (f"{args.eps}-far", far, 2)]:
        alarms = tester.rejection_count(dist, rng=args.seed + seed)
        verdict = "accept" if alarms < tester.params.threshold else "reject"
        table.add_row([name, alarms, tester.params.threshold, verdict])
    print(table.render())
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    n, k, eps = args.n, args.k, args.eps
    table = Table(["theorem", "quantity", "value"],
                  title=f"Closed-form curves at n={n}, k={k}, eps={eps}")
    table.add_row(["centralized [21]", "samples",
                   round(bounds_mod.centralized_sample_complexity(n, eps), 1)])
    table.add_row(["Thm 1.1 (AND)", "samples/node",
                   round(bounds_mod.and_rule_samples(n, k, eps), 1)])
    table.add_row(["Thm 1.2 (threshold)", "samples/node",
                   round(bounds_mod.threshold_rule_samples(n, k, eps), 1)])
    table.add_row(["Thm 1.2", "threshold T",
                   round(bounds_mod.threshold_value(eps), 1)])
    table.add_row(["Thm 1.4 (CONGEST)", "tau",
                   round(bounds_mod.congest_package_size(n, k, eps), 1)])
    table.add_row(["Thm 1.3 (lower bound)", "samples/node",
                   round(bounds_mod.zero_round_lower_bound(n, k), 1)])
    print(table.render())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    trace = telemetry.load_trace(args.path)
    print(telemetry.render_report(trace))
    return 0


def _route_for(args: argparse.Namespace) -> str:
    """The execution route a command will take, for the run manifest."""
    command = args.command
    if command == "robustness":
        return "fault-plane" if args.fast_path else "engine-cold"
    if command == "solve-congest":
        if not args.trials:
            return "solve"
        return "trial-plane" if args.fast_path else "engine-warm"
    if command == "local":
        return "trial-plane" if args.fast_path else "engine-cold"
    if command == "smp":
        return "smp-plane" if args.fast_path else "engine-cold"
    if command == "demo":
        return "zero-round"
    if command == "solve-threshold" and args.trials:
        return "zero-round"
    return "solve"


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed uniformity testing (PODC 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve-threshold", help="solve Theorem 1.2 parameters")
    _add_common(p)
    p.add_argument("--exact", action="store_true",
                   help="use exact binomial tails instead of the Eq. (5) window")
    p.add_argument("--trials", type=int, default=0,
                   help="also measure error over this many network trials")
    p.set_defaults(func=_cmd_solve_threshold)

    p = sub.add_parser("solve-and", help="solve Theorem 1.1 parameters")
    _add_common(p)
    p.set_defaults(func=_cmd_solve_and)

    p = sub.add_parser("solve-congest", help="solve Theorem 1.4 parameters")
    _add_common(p)
    p.add_argument("--diameter", type=int, default=10,
                   help="network diameter for the round prediction")
    p.add_argument("--samples-per-node", type=int, default=1,
                   help="initial samples (tokens) per node")
    p.add_argument("--trials", type=int, default=None,
                   help="also measure error over this many protocol trials")
    p.add_argument("--topology", choices=("star", "ring", "grid"),
                   default="star",
                   help="topology for the --trials measurement")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast-path", dest="fast_path", action="store_true",
                      default=True,
                      help="estimate via the vectorised trial plane "
                           "(default; bit-identical to the engine)")
    path.add_argument("--engine", dest="fast_path", action="store_false",
                      help="estimate via full per-trial engine runs")
    p.set_defaults(func=_cmd_solve_congest)

    p = sub.add_parser(
        "robustness",
        help="sweep the hardened Theorem 1.4 tester over a fault grid",
    )
    _add_common(p)
    p.add_argument("--samples-per-node", type=int, default=1,
                   help="initial samples (tokens) per node")
    p.add_argument("--topology", choices=("star", "ring", "grid"),
                   default="star", help="benchmark topology")
    p.add_argument("--trials", type=int, default=10,
                   help="Monte-Carlo trials per grid point")
    p.add_argument("--drop-probs", type=float, nargs="+",
                   default=[0.0, 0.05],
                   help="message-drop probabilities to sweep")
    p.add_argument("--crash-fractions", type=float, nargs="+",
                   default=[0.0],
                   help="crash-stop fractions of the non-root nodes")
    p.add_argument("--engine-check", type=float, default=1 / 3,
                   help="fraction of trials per point re-run through the "
                        "engine to cross-check the replay (fast path only)")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast-path", dest="fast_path", action="store_true",
                      default=True,
                      help="replay the grid through the vectorised fault "
                           "plane (default; bit-identical to the engine)")
    path.add_argument("--engine", dest="fast_path", action="store_false",
                      help="run every trial through the full engine")
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser(
        "local",
        help="run the Section 6 LOCAL tester and measure its error rate",
    )
    _add_common(p)
    p.add_argument("--topology", choices=("star", "ring", "grid"),
                   default="ring", help="benchmark topology")
    p.add_argument("--radius", type=int, default=None,
                   help="gathering radius r (default: doubling search)")
    p.add_argument("--trials", type=int, default=100,
                   help="Monte-Carlo trials per distribution")
    p.add_argument("--engine-check", type=float, default=0.0,
                   help="fraction of trials re-run through the scalar "
                        "tester plus an engine MIS cross-check "
                        "(fast path only)")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast-path", dest="fast_path", action="store_true",
                      default=True,
                      help="estimate via the vectorised local trial plane "
                           "(default; bit-identical to the scalar tester)")
    path.add_argument("--engine", dest="fast_path", action="store_false",
                      help="estimate via per-trial scalar decisions over "
                           "an engine-built plan")
    p.set_defaults(func=_cmd_local)

    p = sub.add_parser(
        "smp",
        help="run the Section 7 SMP Equality protocols and measure error",
    )
    p.add_argument("--n-bits", type=int, default=256,
                   help="input length in bits")
    p.add_argument("--trials", type=int, default=200,
                   help="Monte-Carlo trials per input pair")
    p.add_argument("--delta", type=float, default=0.05,
                   help="completeness budget delta")
    p.add_argument("--tau", type=float, default=2.0,
                   help="soundness multiplier tau")
    p.add_argument("--seed", type=int, default=0, help="base RNG seed")
    p.add_argument("--trace", type=str, default=None, metavar="PATH",
                   help="write a JSONL telemetry trace (spans, "
                        "counters, run manifest) to PATH")
    p.add_argument("--engine-check", type=float, default=0.0,
                   help="fraction of trials re-run through the scalar "
                        "protocol to cross-check the plane "
                        "(fast path only)")
    path = p.add_mutually_exclusive_group()
    path.add_argument("--fast-path", dest="fast_path", action="store_true",
                      default=True,
                      help="estimate via the vectorised SMP trial plane "
                           "(default; bit-identical to the scalar run)")
    path.add_argument("--engine", dest="fast_path", action="store_false",
                      help="estimate via full per-trial scalar executions")
    p.set_defaults(func=_cmd_smp)

    p = sub.add_parser("demo", help="run the threshold tester once")
    _add_common(p)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("bounds", help="print every closed-form theorem curve")
    _add_common(p)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser(
        "report",
        help="summarize a telemetry trace written with --trace",
    )
    p.add_argument("path", help="JSONL trace file to summarize")
    p.set_defaults(func=_cmd_report)
    return parser


def _start_trace(
    args: argparse.Namespace, argv: Optional[List[str]]
) -> telemetry.Tracer:
    """Open the ``--trace`` sink and write the run manifest."""
    tracer = telemetry.activate(telemetry.Tracer(args.trace))
    parameters = {
        key: getattr(args, key)
        for key in ("n", "k", "eps", "p", "samples_per_node", "trials",
                    "radius", "n_bits", "delta", "tau")
        if getattr(args, key, None) is not None
    }
    topology = None
    if getattr(args, "topology", None) is not None:
        topology = {"name": args.topology, "k": args.k}
    tracer.set_manifest(
        telemetry.RunManifest(
            command=args.command,
            route=_route_for(args),
            seed=getattr(args, "seed", None),
            argv=tuple(argv if argv is not None else sys.argv[1:]),
            parameters=parameters,
            topology=topology,
        )
    )
    return tracer


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    tracer = None
    try:
        _validate_common(args)
        if getattr(args, "trace", None):
            tracer = _start_trace(args, argv)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Report output is made for piping (`repro report ... | head`);
        # a closed pipe is the reader's choice, not an error.  Detach
        # stdout so the interpreter's shutdown flush doesn't raise too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if tracer is not None:
            telemetry.deactivate()
            tracer.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
