"""Messages and bit accounting.

CONGEST's defining constraint is the per-edge, per-round bandwidth of
``O(log n)`` bits.  To *enforce* (not just assume) it, every message carries
an explicit bit size declared by the sender; the engine rejects messages
over the configured budget.  Helpers compute honest sizes for the payloads
the paper's protocols send: domain elements (``⌈log₂ n⌉`` bits), counters,
and small tuples.
"""

from __future__ import annotations

import math
from typing import Any, NamedTuple

from repro.exceptions import ParameterError


def bits_for_domain(n: int) -> int:
    """Bits to name one element of a size-*n* domain: ``⌈log₂ n⌉`` (min 1)."""
    if n < 1:
        raise ParameterError(f"domain size must be >= 1, got {n}")
    return max(1, math.ceil(math.log2(n)))


def bits_for_int(value: int) -> int:
    """Bits to transmit a non-negative integer: ``⌈log₂(value+1)⌉`` (min 1)."""
    if value < 0:
        raise ParameterError(f"value must be >= 0, got {value}")
    return max(1, value.bit_length())


class _MessageFields(NamedTuple):
    src: int
    dst: int
    payload: Any
    bits: int
    tag: str = ""


class Message(_MessageFields):
    """One message in flight.

    A plain tuple subclass rather than a dataclass: protocols construct one
    of these per edge per round, so construction cost is squarely on the
    engine's hot path (a tuple build is ~2× cheaper than dataclass
    ``__init__`` + ``__post_init__``).  Immutability comes from the tuple.

    Attributes
    ----------
    src, dst:
        Endpoint node IDs; must be graph neighbours (engine-enforced).
    payload:
        Arbitrary Python value; the simulation treats it opaquely.
    bits:
        Declared size.  The engine enforces ``bits <= bandwidth`` in
        CONGEST mode and aggregates totals for the reports.
    tag:
        Optional protocol-phase label, for traces and debugging.
    """

    __slots__ = ()

    def __new__(cls, src: int, dst: int, payload: Any, bits: int, tag: str = ""):
        if bits < 0:
            raise ParameterError(f"message bits must be >= 0, got {bits}")
        return tuple.__new__(cls, (src, dst, payload, bits, tag))
