"""Synchronous message-passing network simulator (LOCAL / CONGEST).

The paper's multi-round testers live in the classical synchronous models:
in each round every node may send one message per incident edge, receive the
messages sent to it, and compute.  **CONGEST** caps messages at
``O(log n)`` bits per edge per round; **LOCAL** does not.  This package
simulates both, *measuring* rounds, messages, and bits so the theorem
round-complexity bounds become empirical observables:

- :mod:`repro.simulator.graph` — topologies with exact diameters.
- :mod:`repro.simulator.message` — messages and bit accounting.
- :mod:`repro.simulator.node` — the node-program API and execution context.
- :mod:`repro.simulator.engine` — the round engine with CONGEST bandwidth
  enforcement and deadlock detection.
- :mod:`repro.simulator.faults` — deterministic fault injection: seeded
  message drops, delivery delays, and crash-stop schedules.
- :mod:`repro.simulator.primitives` — reusable protocols: max-ID flooding
  (leader election + BFS tree), convergecast aggregation, broadcast.
"""

from repro.simulator.engine import (
    DEFAULT_DEADLOCK_QUIET_ROUNDS,
    EngineReport,
    RoundStats,
    SynchronousEngine,
)
from repro.simulator.faults import DelayDistribution, FaultPlan
from repro.simulator.graph import Topology, TreeSchedule
from repro.simulator.message import Message, bits_for_domain, bits_for_int
from repro.simulator.node import Context, NodeProgram
from repro.simulator.primitives import (
    BroadcastProgram,
    ConvergecastSumProgram,
    FloodMaxProgram,
)

__all__ = [
    "Topology",
    "TreeSchedule",
    "DEFAULT_DEADLOCK_QUIET_ROUNDS",
    "Message",
    "bits_for_domain",
    "bits_for_int",
    "NodeProgram",
    "Context",
    "SynchronousEngine",
    "EngineReport",
    "RoundStats",
    "FaultPlan",
    "DelayDistribution",
    "FloodMaxProgram",
    "ConvergecastSumProgram",
    "BroadcastProgram",
]
