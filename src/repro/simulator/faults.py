"""Deterministic fault injection for the synchronous engine.

The engine models a perfect network by default; a :class:`FaultPlan` makes
it imperfect in three seeded, bit-reproducible ways:

- **message drops** — each delivery is lost independently with a per-edge
  probability (a global default plus per-edge overrides);
- **message delays** — each surviving delivery is deferred by extra rounds
  drawn from a fixed :class:`DelayDistribution`;
- **crash-stop failures** — a scheduled node dies at a given round and
  never acts again (its in-flight messages still deliver; messages
  addressed to it afterwards are dropped).

Determinism contract
--------------------
Every random decision is a pure function of ``(seed, edge, round, index)``
— the plan's own private stream, derived with a SplitMix64-style integer
hash completely independent of the engine's node RNGs and of message
processing order.  Consequences:

- the same plan replayed over the same protocol produces bit-identical
  :class:`~repro.simulator.engine.EngineReport` results, across runs and
  across warm/cold protocol starts;
- :meth:`FaultPlan.none` (or passing no plan) leaves the engine's fast
  path untouched — the run is bit-identical to a fault-free engine;
- two plans differing only in ``seed`` give independent fault draws.

``index`` disambiguates multiple same-edge messages in one LOCAL-model
round (CONGEST permits only one); it is the message's occurrence number
on that directed edge in that delivery round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.exceptions import ParameterError

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
# Salts separating the drop draw from the delay draw at one key.
_SALT_DROP = 0xD1B54A32D192ED03
_SALT_DELAY = 0x8BB84B93962EACC9


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a bijective avalanche on 64-bit words."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def _uniform(seed: int, src: int, dst: int, round_: int, index: int, salt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the full tuple."""
    acc = _mix64(seed ^ salt)
    acc = _mix64(acc + ((src + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((dst + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((round_ + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((index + 1) * _GOLDEN & _MASK64))
    return (acc >> 11) / float(1 << 53)


@dataclass(frozen=True)
class DelayDistribution:
    """A fixed distribution over extra delivery delays (in rounds).

    ``outcomes`` maps each extra-delay value to its probability; the
    probabilities must sum to 1 (within float tolerance) and a zero-delay
    outcome is implied by any missing mass.  Example: 80 % on-time, 15 %
    one round late, 5 % three rounds late::

        DelayDistribution(((1, 0.15), (3, 0.05)))
    """

    outcomes: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        total = 0.0
        for delay, prob in self.outcomes:
            if delay < 1:
                raise ParameterError(
                    f"delay outcomes must be >= 1 round, got {delay}"
                )
            if not 0.0 <= prob <= 1.0:
                raise ParameterError(f"delay probability {prob} outside [0, 1]")
            total += prob
        if total > 1.0 + 1e-9:
            raise ParameterError(
                f"delay probabilities sum to {total}, must be <= 1"
            )

    def sample(self, u: float) -> int:
        """Map a uniform draw to an extra delay via the fixed CDF order."""
        acc = 0.0
        for delay, prob in self.outcomes:
            acc += prob
            if u < acc:
                return delay
        return 0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of network faults.

    Parameters
    ----------
    seed:
        Root of the plan's private fault stream.  Two plans with the same
        faults but different seeds produce independent drop/delay draws.
    drop_prob:
        Default i.i.d. per-delivery drop probability for every directed
        edge.
    edge_drop:
        Per-directed-edge ``(src, dst) -> probability`` overrides.
    delay:
        Optional :class:`DelayDistribution` applied to every surviving
        delivery.
    crashes:
        Crash-stop schedule ``node -> round``: the node acts normally in
        rounds before its crash round and never again from it on
        (``on_start`` counts as round 0).
    """

    seed: int = 0
    drop_prob: float = 0.0
    edge_drop: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    delay: Optional[DelayDistribution] = None
    crashes: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ParameterError(
                f"drop_prob must be in [0, 1], got {self.drop_prob}"
            )
        for edge, prob in self.edge_drop.items():
            if not 0.0 <= prob <= 1.0:
                raise ParameterError(
                    f"edge_drop[{edge}] = {prob} outside [0, 1]"
                )
        for node, round_ in self.crashes.items():
            if round_ < 0:
                raise ParameterError(
                    f"crash round for node {node} must be >= 0, got {round_}"
                )

    @staticmethod
    def none() -> "FaultPlan":
        """The null plan: injecting it is bit-identical to no plan at all."""
        return FaultPlan()

    @property
    def is_null(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            self.drop_prob == 0.0
            and not any(p > 0.0 for p in self.edge_drop.values())
            and (self.delay is None or not self.delay.outcomes)
            and not self.crashes
        )

    def drop_probability(self, src: int, dst: int) -> float:
        """Effective drop probability on the directed edge ``src -> dst``."""
        return self.edge_drop.get((src, dst), self.drop_prob)

    def should_drop(self, src: int, dst: int, round_: int, index: int = 0) -> bool:
        """Whether the delivery keyed by ``(edge, round, index)`` is lost."""
        prob = self.drop_probability(src, dst)
        if prob <= 0.0:
            return False
        return _uniform(self.seed, src, dst, round_, index, _SALT_DROP) < prob

    def delay_rounds(self, src: int, dst: int, round_: int, index: int = 0) -> int:
        """Extra delivery delay (0 = on time) for the keyed delivery."""
        if self.delay is None or not self.delay.outcomes:
            return 0
        return self.delay.sample(
            _uniform(self.seed, src, dst, round_, index, _SALT_DELAY)
        )

    def crash_schedule(self) -> Dict[int, Tuple[int, ...]]:
        """The crash schedule grouped by round: ``round -> (nodes...)``."""
        by_round: Dict[int, list] = {}
        for node in sorted(self.crashes):
            by_round.setdefault(self.crashes[node], []).append(node)
        return {r: tuple(vs) for r, vs in by_round.items()}
