"""Deterministic fault injection for the synchronous engine.

The engine models a perfect network by default; a :class:`FaultPlan` makes
it imperfect in three seeded, bit-reproducible ways:

- **message drops** — each delivery is lost independently with a per-edge
  probability (a global default plus per-edge overrides);
- **message delays** — each surviving delivery is deferred by extra rounds
  drawn from a fixed :class:`DelayDistribution`;
- **crash-stop failures** — a scheduled node dies at a given round and
  never acts again (its in-flight messages still deliver; messages
  addressed to it afterwards are dropped).

Determinism contract
--------------------
Every random decision is a pure function of ``(seed, edge, round, index)``
— the plan's own private stream, derived with a SplitMix64-style integer
hash completely independent of the engine's node RNGs and of message
processing order.  Consequences:

- the same plan replayed over the same protocol produces bit-identical
  :class:`~repro.simulator.engine.EngineReport` results, across runs and
  across warm/cold protocol starts;
- :meth:`FaultPlan.none` (or passing no plan) leaves the engine's fast
  path untouched — the run is bit-identical to a fault-free engine;
- two plans differing only in ``seed`` give independent fault draws.

``index`` disambiguates multiple same-edge messages in one LOCAL-model
round (CONGEST permits only one); it is the message's occurrence number
on that directed edge in that delivery round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ParameterError

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
# Salts separating the drop draw from the delay draw at one key.
_SALT_DROP = 0xD1B54A32D192ED03
_SALT_DELAY = 0x8BB84B93962EACC9


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a bijective avalanche on 64-bit words."""
    x &= _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def _uniform(seed: int, src: int, dst: int, round_: int, index: int, salt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the full tuple."""
    acc = _mix64(seed ^ salt)
    acc = _mix64(acc + ((src + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((dst + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((round_ + 1) * _GOLDEN & _MASK64))
    acc = _mix64(acc + ((index + 1) * _GOLDEN & _MASK64))
    return (acc >> 11) / float(1 << 53)


_U64 = np.uint64


def mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64`: the SplitMix64 finaliser over uint64
    arrays, bit-identical per element to the scalar kernel (numpy uint64
    arithmetic wraps mod 2^64 exactly like the masked Python ints)."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):  # mod-2^64 wrap is the algorithm
        x = x ^ (x >> _U64(30))
        x = x * _U64(_MIX1)
        x = x ^ (x >> _U64(27))
        x = x * _U64(_MIX2)
        x = x ^ (x >> _U64(31))
    return x


def uniform_array(
    seed: "int | np.ndarray",
    src: "int | np.ndarray",
    dst: "int | np.ndarray",
    round_: "int | np.ndarray",
    index: "int | np.ndarray",
    salt: int,
) -> np.ndarray:
    """Vectorized :func:`_uniform`: keyed uniforms over broadcast arrays.

    Each output element equals ``_uniform(seed, src, dst, round, index,
    salt)`` at the broadcast position bit for bit — the mantissa path
    ``(acc >> 11) / 2^53`` is exact in float64 — so a whole trial
    batch's drop/delay decisions come from one vectorized pass.
    """
    if isinstance(seed, int):
        seed = seed & _MASK64
    acc = mix64_array(np.asarray(seed, dtype=np.uint64) ^ _U64(salt))
    tmp: Optional[np.ndarray] = None
    with np.errstate(over="ignore"):  # mod-2^64 wrap is the algorithm
        for part in (src, dst, round_, index):
            word = (np.asarray(part).astype(np.uint64) + _U64(1)) * _U64(_GOLDEN)
            # `acc` is a private accumulator, so once it has reached the
            # full broadcast shape the finaliser runs in place — same
            # arithmetic as mix64_array, minus the temporaries (this is
            # the hot path of whole-sweep drop draws).
            if (
                acc.shape != ()
                and np.broadcast_shapes(acc.shape, word.shape) == acc.shape
            ):
                np.add(acc, word, out=acc)
            else:
                acc = acc + word
                tmp = None
            if acc.shape == ():
                acc = mix64_array(acc)
                continue
            if tmp is None:
                tmp = np.empty_like(acc)
            np.right_shift(acc, _U64(30), out=tmp)
            np.bitwise_xor(acc, tmp, out=acc)
            np.multiply(acc, _U64(_MIX1), out=acc)
            np.right_shift(acc, _U64(27), out=tmp)
            np.bitwise_xor(acc, tmp, out=acc)
            np.multiply(acc, _U64(_MIX2), out=acc)
            np.right_shift(acc, _U64(31), out=tmp)
            np.bitwise_xor(acc, tmp, out=acc)
        if isinstance(acc, np.ndarray) and acc.shape != ():
            np.right_shift(acc, _U64(11), out=acc)
            out = acc.astype(np.float64)
            # Dividing by 2^53 only shifts the exponent — exact,
            # bit-identical to the scalar kernel's `/ float(1 << 53)`.
            np.multiply(out, 2.0 ** -53, out=out)
            return out
        return (acc >> _U64(11)).astype(np.float64) / float(1 << 53)


@dataclass(frozen=True)
class DelayDistribution:
    """A fixed distribution over extra delivery delays (in rounds).

    ``outcomes`` maps each extra-delay value to its probability; the
    probabilities must sum to 1 (within float tolerance) and a zero-delay
    outcome is implied by any missing mass.  Example: 80 % on-time, 15 %
    one round late, 5 % three rounds late::

        DelayDistribution(((1, 0.15), (3, 0.05)))
    """

    outcomes: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        total = 0.0
        for delay, prob in self.outcomes:
            if delay < 1:
                raise ParameterError(
                    f"delay outcomes must be >= 1 round, got {delay}"
                )
            if not 0.0 <= prob <= 1.0:
                raise ParameterError(f"delay probability {prob} outside [0, 1]")
            total += prob
        if total > 1.0 + 1e-9:
            raise ParameterError(
                f"delay probabilities sum to {total}, must be <= 1"
            )

    def sample(self, u: float) -> int:
        """Map a uniform draw to an extra delay via the fixed CDF order."""
        acc = 0.0
        for delay, prob in self.outcomes:
            acc += prob
            if u < acc:
                return delay
        return 0

    def sample_array(self, u: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample`, bit-identical per element.

        ``np.cumsum`` accumulates the outcome probabilities in the same
        sequential order (and rounding) as the scalar loop, and
        ``side='right'`` reproduces its strict ``u < acc`` comparison.
        """
        u = np.asarray(u, dtype=np.float64)
        if not self.outcomes:
            return np.zeros(u.shape, dtype=np.int64)
        delays = np.array(
            [d for d, _ in self.outcomes] + [0], dtype=np.int64
        )
        cdf = np.cumsum([p for _, p in self.outcomes])
        return delays[np.searchsorted(cdf, u, side="right")]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of network faults.

    Parameters
    ----------
    seed:
        Root of the plan's private fault stream.  Two plans with the same
        faults but different seeds produce independent drop/delay draws.
    drop_prob:
        Default i.i.d. per-delivery drop probability for every directed
        edge.
    edge_drop:
        Per-directed-edge ``(src, dst) -> probability`` overrides.
    delay:
        Optional :class:`DelayDistribution` applied to every surviving
        delivery.
    crashes:
        Crash-stop schedule ``node -> round``: the node acts normally in
        rounds before its crash round and never again from it on
        (``on_start`` counts as round 0).
    """

    seed: int = 0
    drop_prob: float = 0.0
    edge_drop: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    delay: Optional[DelayDistribution] = None
    crashes: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ParameterError(
                f"drop_prob must be in [0, 1], got {self.drop_prob}"
            )
        for edge, prob in self.edge_drop.items():
            if not 0.0 <= prob <= 1.0:
                raise ParameterError(
                    f"edge_drop[{edge}] = {prob} outside [0, 1]"
                )
        for node, round_ in self.crashes.items():
            if round_ < 0:
                raise ParameterError(
                    f"crash round for node {node} must be >= 0, got {round_}"
                )

    @staticmethod
    def none() -> "FaultPlan":
        """The null plan: injecting it is bit-identical to no plan at all."""
        return FaultPlan()

    @property
    def is_null(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            self.drop_prob == 0.0
            and not any(p > 0.0 for p in self.edge_drop.values())
            and (self.delay is None or not self.delay.outcomes)
            and not self.crashes
        )

    def drop_probability(self, src: int, dst: int) -> float:
        """Effective drop probability on the directed edge ``src -> dst``."""
        return self.edge_drop.get((src, dst), self.drop_prob)

    def should_drop(self, src: int, dst: int, round_: int, index: int = 0) -> bool:
        """Whether the delivery keyed by ``(edge, round, index)`` is lost."""
        prob = self.drop_probability(src, dst)
        if prob <= 0.0:
            return False
        return _uniform(self.seed, src, dst, round_, index, _SALT_DROP) < prob

    def delay_rounds(self, src: int, dst: int, round_: int, index: int = 0) -> int:
        """Extra delivery delay (0 = on time) for the keyed delivery."""
        if self.delay is None or not self.delay.outcomes:
            return 0
        return self.delay.sample(
            _uniform(self.seed, src, dst, round_, index, _SALT_DELAY)
        )

    # -- vectorized counterparts (used by the CONGEST fault plane) ---------

    def drop_probability_array(
        self, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """Broadcast :meth:`drop_probability` over directed-edge arrays."""
        src = np.asarray(src)
        dst = np.asarray(dst)
        prob = np.full(np.broadcast(src, dst).shape, float(self.drop_prob))
        for (s, d), p in self.edge_drop.items():
            prob[(src == s) & (dst == d)] = float(p)
        return prob

    def drop_flags(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        round_: "int | np.ndarray",
        index: "int | np.ndarray" = 0,
    ) -> np.ndarray:
        """Vectorized :meth:`should_drop` over broadcast key arrays.

        Bit-identical per element: the keyed uniform comes from
        :func:`uniform_array` and the ``prob <= 0`` short-circuit is
        reproduced as a mask, so a zero-probability edge never consults
        its draw (exactly like the scalar early return).
        """
        prob = self.drop_probability_array(src, dst)
        u = uniform_array(self.seed, src, dst, round_, index, _SALT_DROP)
        return (prob > 0.0) & (u < prob)

    def delay_rounds_array(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        round_: "int | np.ndarray",
        index: "int | np.ndarray" = 0,
    ) -> np.ndarray:
        """Vectorized :meth:`delay_rounds` over broadcast key arrays."""
        if self.delay is None or not self.delay.outcomes:
            shape = np.broadcast(
                np.asarray(src), np.asarray(dst), np.asarray(round_)
            ).shape
            return np.zeros(shape, dtype=np.int64)
        u = uniform_array(self.seed, src, dst, round_, index, _SALT_DELAY)
        return self.delay.sample_array(u)

    def crash_schedule(self) -> Dict[int, Tuple[int, ...]]:
        """The crash schedule grouped by round: ``round -> (nodes...)``."""
        by_round: Dict[int, list] = {}
        for node in sorted(self.crashes):
            by_round.setdefault(self.crashes[node], []).append(node)
        return {r: tuple(vs) for r, vs in by_round.items()}
