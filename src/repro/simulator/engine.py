"""The synchronous round engine.

Executes a :class:`~repro.simulator.node.NodeProgram` per node over a
:class:`~repro.simulator.graph.Topology` in lock-step rounds:

1. deliver the messages sent last round,
2. invoke every non-halted node's ``on_round``,
3. collect and validate the new outgoing messages.

**CONGEST enforcement**: with a finite ``bandwidth_bits``, the engine
rejects (raises, not truncates) any message over budget, and also rejects
two messages from the same node along the same edge in one round — the
model allows one message per directed edge per round.

The engine's :class:`EngineReport` carries the measured quantities the
benchmarks compare with the theorems: total rounds, message count, total
bits, and the maximum bits ever sent over a single edge in a round.

The inner loop is written for throughput: per-node inboxes are
preallocated once and recycled across rounds (no per-round dict churn),
the live-node ordering is maintained incrementally instead of re-sorted
every round, and per-round message/bit totals are computed once during
delivery and shared between the report totals and the optional trace.

**Fault injection**: an optional :class:`~repro.simulator.faults.FaultPlan`
is applied at delivery time — per-edge message drops, fixed delay
distributions, and crash-stop schedules — with drop/delay/crash counts
surfaced in the report.  The plan draws from its own stream keyed by
``(seed, edge, round)``, so a run with ``FaultPlan.none()`` (or no plan)
is bit-identical to the fault-free engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro import telemetry
from repro.exceptions import BandwidthExceededError, SimulationError
from repro.rng import SeedLike, ensure_rng, spawn_lazy
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology
from repro.simulator.message import Message
from repro.simulator.node import Context, NodeProgram

#: Default number of consecutive globally-silent rounds with live nodes
#: after which the engine declares the protocol deadlocked.  Phase-advancing
#: protocols act on the first or second quiet round; three in a row means
#: nobody ever will.  Protocols with longer intentional silences (e.g. the
#: token-forwarding phase, quiet for up to ``τ`` rounds) pass a larger
#: ``deadlock_quiet_rounds`` to the engine constructor.
DEFAULT_DEADLOCK_QUIET_ROUNDS = 3


@dataclass(frozen=True)
class RoundStats:
    """One round's activity, recorded when tracing is enabled.

    ``quiet`` marks globally silent rounds — the phase boundaries of the
    flooding-based protocols.  The fault counters are zero unless the
    engine ran with a :class:`~repro.simulator.faults.FaultPlan`.
    """

    round: int
    messages: int
    bits: int
    active_nodes: int
    quiet: bool
    drops: int = 0
    delays: int = 0
    crashes: int = 0


@dataclass
class EngineReport:
    """Measured execution statistics of one protocol run.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed (including quiet ones).
    messages:
        Total messages delivered.
    total_bits:
        Sum of declared message sizes.
    max_edge_bits_per_round:
        The largest single-message size observed — in CONGEST mode this is
        certified ≤ the bandwidth.
    outputs:
        Final per-node outputs, indexed by node ID.
    halted:
        Whether every node terminated — halted voluntarily or (under a
        fault plan) crashed.  ``False`` means the run stopped at
        ``max_rounds``.
    trace:
        Per-round :class:`RoundStats` when the engine was constructed with
        ``record_trace=True``; empty otherwise.
    drops:
        Messages lost to the fault plan (including messages addressed to
        already-crashed nodes).
    delays:
        Messages the fault plan deferred past their natural delivery round.
    crashes:
        Nodes killed by the fault plan's crash-stop schedule.
    """

    rounds: int
    messages: int
    total_bits: int
    max_edge_bits_per_round: int
    outputs: List[Any]
    halted: bool
    trace: List[RoundStats] = field(default_factory=list)
    drops: int = 0
    delays: int = 0
    crashes: int = 0


class SynchronousEngine:
    """Runs node programs over a topology in synchronous rounds.

    Parameters
    ----------
    topology:
        The network graph.
    bandwidth_bits:
        Per-edge per-round bit budget (CONGEST).  ``None`` = LOCAL model
        (unbounded messages).
    max_rounds:
        Hard stop; exceeding it returns a report with ``halted=False``.
    record_trace:
        Record per-round :class:`RoundStats` in the report.
    deadlock_quiet_rounds:
        Consecutive globally-silent rounds (with live nodes) tolerated
        before raising :class:`~repro.exceptions.SimulationError`.
        Protocols with timer-driven silent stretches (token forwarding,
        bounded-radius gather) should pass their longest legal silence
        plus slack.  Quiet rounds during which some live node holds a
        scheduled wakeup — or a fault-delayed message is still in flight
        — are exempt: sleeping through idle waits is legal, not deadlock.
    faults:
        Optional :class:`~repro.simulator.faults.FaultPlan` applied at
        delivery time.  ``None`` or a null plan keeps the fault-free fast
        path, bit-identical to an engine without the parameter.
    phase_names:
        Names for the protocol's phases, used only when a telemetry
        tracer is active.  The flooding protocols separate phases with
        globally-quiet rounds; the engine segments its round log at
        those boundaries and emits one ``engine.phase.<name>`` span per
        segment.  When the segment count does not match (early halt,
        faults), generic ``phase1…phaseN`` names are used instead.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 1_000_000,
        record_trace: bool = False,
        deadlock_quiet_rounds: int = DEFAULT_DEADLOCK_QUIET_ROUNDS,
        faults: Optional[FaultPlan] = None,
        phase_names: Optional[Sequence[str]] = None,
    ) -> None:
        if bandwidth_bits is not None and bandwidth_bits < 1:
            raise SimulationError(
                f"bandwidth must be >= 1 bit, got {bandwidth_bits}"
            )
        if max_rounds < 1:
            raise SimulationError(f"max_rounds must be >= 1, got {max_rounds}")
        if deadlock_quiet_rounds < 1:
            raise SimulationError(
                f"deadlock_quiet_rounds must be >= 1, got {deadlock_quiet_rounds}"
            )
        self.topology = topology
        self.bandwidth_bits = bandwidth_bits
        self.max_rounds = max_rounds
        self.record_trace = record_trace
        self.deadlock_quiet_rounds = deadlock_quiet_rounds
        if faults is not None:
            for node in faults.crashes:
                if not 0 <= node < topology.k:
                    raise SimulationError(
                        f"crash schedule names node {node}, outside the "
                        f"topology's range [0, {topology.k})"
                    )
        # A null plan takes the fault-free fast path: delivery then runs
        # the exact pre-fault inner loop, bit-identical to no plan at all.
        self.faults = None if faults is None or faults.is_null else faults
        self.phase_names = tuple(phase_names) if phase_names else ()

    def run(
        self,
        program_factory: Callable[[int], NodeProgram],
        rng: SeedLike = None,
    ) -> EngineReport:
        """Execute until every node halts (or ``max_rounds``).

        Parameters
        ----------
        program_factory:
            Called once per node ID to create that node's program instance.
        rng:
            Seed or generator; each node receives an independent child
            generator (private coins), materialised lazily on first use.
        """
        if not telemetry.enabled():
            return self._run(program_factory, rng, None)
        with telemetry.span(
            "engine.run",
            nodes=self.topology.k,
            bandwidth_bits=self.bandwidth_bits,
        ) as sp:
            # Per-round (stats, elapsed) rows captured only under tracing;
            # the run itself is bit-identical either way — telemetry never
            # touches the RNG or the control flow.
            phase_rows: List[tuple] = []
            report = self._run(program_factory, rng, phase_rows)
            sp.set(halted=report.halted)
            sp.count("rounds", report.rounds)
            sp.count("messages", report.messages)
            sp.count("bits", report.total_bits)
            if report.drops:
                sp.count("drops", report.drops)
            if report.delays:
                sp.count("delays", report.delays)
            if report.crashes:
                sp.count("crashes", report.crashes)
            self._emit_phase_spans(phase_rows)
            return report

    def _emit_phase_spans(self, phase_rows: List[tuple]) -> None:
        """Segment the round log at quiet boundaries into phase spans.

        A phase ends with the globally-quiet round(s) that let every node
        observe the phase boundary, so quiet rounds are accounted to the
        phase they terminate and a new segment opens at the first busy
        round after silence.
        """
        if not phase_rows:
            return
        segments: List[List[tuple]] = [[]]
        prev_quiet = False
        for row in phase_rows:
            quiet = row[1]
            if prev_quiet and not quiet:
                segments.append([])
            segments[-1].append(row)
            prev_quiet = quiet
        names = self.phase_names
        if len(names) != len(segments):
            names = tuple(f"phase{i + 1}" for i in range(len(segments)))
        for name, rows in zip(names, segments):
            counters = {
                "rounds": len(rows),
                "messages": sum(r[2] for r in rows),
                "bits": sum(r[3] for r in rows),
            }
            drops = sum(r[4] for r in rows)
            delays = sum(r[5] for r in rows)
            crashes = sum(r[6] for r in rows)
            if drops:
                counters["drops"] = drops
            if delays:
                counters["delays"] = delays
            if crashes:
                counters["crashes"] = crashes
            telemetry.record_span(
                f"engine.phase.{name}",
                seconds=sum(r[7] for r in rows),
                attrs={"first_round": rows[0][0], "last_round": rows[-1][0]},
                counters=counters,
            )

    def _run(
        self,
        program_factory: Callable[[int], NodeProgram],
        rng: SeedLike,
        phase_rows: Optional[List[tuple]],
    ) -> EngineReport:
        topo = self.topology
        k = topo.k
        gen = ensure_rng(rng)
        rng_factories = spawn_lazy(gen, k)
        programs = [program_factory(v) for v in range(k)]
        contexts = [
            Context(
                node_id=v,
                neighbors=topo.neighbors(v),
                rng_factory=rng_factories[v],
            )
            for v in range(k)
        ]

        alive = [True] * k
        live_count = k
        # Sorted snapshot of the live nodes; compacted lazily when nodes
        # have halted since the last quiet-round sweep.
        live_order = list(range(k))
        live_stale = False
        pending_wakes: Dict[int, List[int]] = {}
        # Wake accounting.  ``wake_round[v]`` is the authoritative round v
        # is scheduled to wake at (None = no pending wake): it is cleared
        # whenever v runs — a wake must be re-requested by the run it woke
        # (clear-and-rearm) — so a node woken early by mail does not keep a
        # stale timer.  ``appended_for[v]`` tracks the round list v
        # physically sits in, so re-arming to the same round never appends
        # a duplicate entry; entries whose owner re-armed elsewhere are
        # skipped when their round's list is popped.
        wake_round: List[Optional[int]] = [None] * k
        appended_for: List[Optional[int]] = [None] * k

        faults = self.faults
        crash_schedule: Dict[int, tuple] = (
            faults.crash_schedule() if faults is not None else {}
        )
        crashed = [False] * k
        delayed: Dict[int, List[Message]] = {}
        drops = 0
        delays = 0
        crashes = 0
        for v in crash_schedule.pop(0, ()):
            # Crash-stop at round 0: the node never even starts.
            alive[v] = False
            crashed[v] = True
            live_count -= 1
            live_stale = True
            crashes += 1

        for v, prog in enumerate(programs):
            if crashed[v]:
                continue
            ctx = contexts[v]
            prog.on_start(ctx)
            if ctx._halted:
                alive[v] = False
                live_count -= 1
                live_stale = True
            elif ctx._wake_at is not None:
                wake_round[v] = ctx._wake_at
                appended_for[v] = ctx._wake_at
                pending_wakes.setdefault(ctx._wake_at, []).append(v)
        in_flight = self._collect(
            contexts, (v for v in range(k) if not crashed[v])
        )

        # Recycled per-node inboxes: `touched` lists the nodes whose inbox
        # is non-empty this round (appended exactly once, on first message).
        inboxes: List[List[Message]] = [[] for _ in range(k)]
        touched: List[int] = []

        rounds = 0
        messages = 0
        total_bits = 0
        max_edge_bits = 0
        quiet_streak = 0
        trace: List[RoundStats] = []
        record_trace = self.record_trace
        deadlock_limit = self.deadlock_quiet_rounds
        max_rounds = self.max_rounds
        phase_clock = time.perf_counter() if phase_rows is not None else 0.0

        while rounds < max_rounds:
            if live_count == 0 and not in_flight and not delayed:
                return EngineReport(
                    rounds=rounds,
                    messages=messages,
                    total_bits=total_bits,
                    max_edge_bits_per_round=max_edge_bits,
                    outputs=[ctx.output for ctx in contexts],
                    halted=True,
                    trace=trace,
                    drops=drops,
                    delays=delays,
                    crashes=crashes,
                )
            rounds += 1
            round_drops = 0
            round_delays = 0
            round_crashes = 0
            if faults is None:
                deliver = in_flight
            else:
                # Crash-stop before delivery: a node dying at round r
                # neither receives nor acts at r, but its own messages
                # already in flight still arrive.
                for v in crash_schedule.pop(rounds, ()):
                    if alive[v]:
                        alive[v] = False
                        crashed[v] = True
                        live_count -= 1
                        live_stale = True
                        wake_round[v] = None
                        round_crashes += 1
                crashes += round_crashes
                deliver = delayed.pop(rounds, [])
                if in_flight:
                    # Occurrence index per directed edge keeps the fault
                    # draw well-defined for multi-message LOCAL edges.
                    edge_seen: Dict[Any, int] = {}
                    for msg in in_flight:
                        src, dst = msg[0], msg[1]
                        key = (src, dst)
                        idx = edge_seen.get(key, 0)
                        edge_seen[key] = idx + 1
                        if crashed[dst] or faults.should_drop(
                            src, dst, rounds, idx
                        ):
                            round_drops += 1
                            continue
                        extra = faults.delay_rounds(src, dst, rounds, idx)
                        if extra > 0:
                            delayed.setdefault(rounds + extra, []).append(msg)
                            round_delays += 1
                        else:
                            deliver.append(msg)
                drops += round_drops
                delays += round_delays
            round_messages = len(deliver)
            round_bits = 0
            if round_messages:
                for msg in deliver:
                    # Tuple indexing: msg[1] is .dst, msg[3] is .bits.
                    box = inboxes[msg[1]]
                    if not box:
                        touched.append(msg[1])
                    box.append(msg)
                    bits = msg[3]
                    round_bits += bits
                    if bits > max_edge_bits:
                        max_edge_bits = bits
                messages += round_messages
                total_bits += round_bits
                quiet_streak = 0
            else:
                quiet_streak += 1
                if quiet_streak >= deadlock_limit and not delayed:
                    # Sleeping toward a scheduled wakeup is legal silence,
                    # not deadlock: only raise when no live node has a
                    # pending wake (this round's wakes have not fired yet
                    # at this point) and no delayed mail is due.
                    has_wake = any(
                        r >= rounds
                        and any(alive[v] and wake_round[v] == r for v in vs)
                        for r, vs in pending_wakes.items()
                    )
                    if not has_wake:
                        live_nodes = [v for v in range(k) if alive[v]]
                        sample = live_nodes[:8]
                        raise SimulationError(
                            f"deadlock: {quiet_streak} silent rounds with live "
                            f"nodes {sample}{'...' if len(live_nodes) > 8 else ''} "
                            f"at round {rounds}"
                        )
            # Scheduling contract: a node runs when it has mail, after a
            # globally quiet round (phase transitions), or at a wakeup it
            # requested.  Anything else would be a spurious no-op call.
            due = pending_wakes.pop(rounds, None)
            if due is not None:
                # The physical entries are consumed; entries whose owner
                # re-armed to a different round (or halted) are stale.
                fired = []
                for v in due:
                    appended_for[v] = None
                    if wake_round[v] == rounds:
                        fired.append(v)
                due = fired
            if quiet_streak > 0:
                if live_stale:
                    live_order = [v for v in live_order if alive[v]]
                    live_stale = False
                active = live_order
            elif due:
                due_set = set(touched)
                due_set.update(due)
                active = sorted(v for v in due_set if alive[v])
            else:
                # `touched` holds unique dst IDs in delivery order.
                active = sorted(v for v in touched if alive[v])
            for v in active:
                ctx = contexts[v]
                # Clear-and-rearm: any run consumes the node's pending
                # wake; on_round must re-request to keep a future timer.
                ctx._wake_at = None
                wake_round[v] = None
                ctx.round = rounds
                ctx.quiet_rounds = quiet_streak
                programs[v].on_round(ctx, inboxes[v])
                if ctx._halted:
                    alive[v] = False
                    live_count -= 1
                    live_stale = True
                else:
                    target = ctx._wake_at
                    if target is not None and target > rounds:
                        wake_round[v] = target
                        if appended_for[v] != target:
                            appended_for[v] = target
                            pending_wakes.setdefault(target, []).append(v)
            if record_trace:
                trace.append(
                    RoundStats(
                        round=rounds,
                        messages=round_messages,
                        bits=round_bits,
                        active_nodes=len(active),
                        quiet=quiet_streak > 0,
                        drops=round_drops,
                        delays=round_delays,
                        crashes=round_crashes,
                    )
                )
            if phase_rows is not None:
                now = time.perf_counter()
                phase_rows.append((
                    rounds, quiet_streak > 0, round_messages, round_bits,
                    round_drops, round_delays, round_crashes,
                    now - phase_clock,
                ))
                phase_clock = now
            in_flight = self._collect(contexts, active)
            for v in touched:
                inboxes[v].clear()
            touched.clear()

        return EngineReport(
            rounds=rounds,
            messages=messages,
            total_bits=total_bits,
            max_edge_bits_per_round=max_edge_bits,
            outputs=[ctx.output for ctx in contexts],
            halted=all(
                ctx.halted or crashed[v] for v, ctx in enumerate(contexts)
            ),
            trace=trace,
            drops=drops,
            delays=delays,
            crashes=crashes,
        )

    def _collect(
        self, contexts: List[Context], order: Iterable[int]
    ) -> List[Message]:
        """Drain the outboxes of nodes in *order*, enforcing CONGEST limits."""
        out: List[Message] = []
        bandwidth = self.bandwidth_bits
        for v in order:
            ctx = contexts[v]
            outbox = ctx._outbox
            if not outbox:
                continue
            if bandwidth is not None:
                seen_edges = set()
                for msg in outbox:
                    if msg.bits > bandwidth:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent {msg.bits} bits to "
                            f"{msg.dst} (budget {bandwidth}) "
                            f"[tag={msg.tag!r}]"
                        )
                    if msg.dst in seen_edges:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent two messages to {msg.dst} "
                            f"in one round [tag={msg.tag!r}]"
                        )
                    seen_edges.add(msg.dst)
            out.extend(outbox)
            ctx._outbox = []
        return out
