"""The synchronous round engine.

Executes a :class:`~repro.simulator.node.NodeProgram` per node over a
:class:`~repro.simulator.graph.Topology` in lock-step rounds:

1. deliver the messages sent last round,
2. invoke every non-halted node's ``on_round``,
3. collect and validate the new outgoing messages.

**CONGEST enforcement**: with a finite ``bandwidth_bits``, the engine
rejects (raises, not truncates) any message over budget, and also rejects
two messages from the same node along the same edge in one round — the
model allows one message per directed edge per round.

The engine's :class:`EngineReport` carries the measured quantities the
benchmarks compare with the theorems: total rounds, message count, total
bits, and the maximum bits ever sent over a single edge in a round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import BandwidthExceededError, SimulationError
from repro.rng import SeedLike, ensure_rng, spawn
from repro.simulator.graph import Topology
from repro.simulator.message import Message
from repro.simulator.node import Context, NodeProgram

#: After this many consecutive globally-silent rounds with live nodes, the
#: engine declares the protocol deadlocked.  Phase-advancing protocols act
#: on the first or second quiet round; three in a row means nobody ever will.
_DEADLOCK_QUIET_ROUNDS = 3


@dataclass(frozen=True)
class RoundStats:
    """One round's activity, recorded when tracing is enabled.

    ``quiet`` marks globally silent rounds — the phase boundaries of the
    flooding-based protocols.
    """

    round: int
    messages: int
    bits: int
    active_nodes: int
    quiet: bool


@dataclass
class EngineReport:
    """Measured execution statistics of one protocol run.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed (including quiet ones).
    messages:
        Total messages delivered.
    total_bits:
        Sum of declared message sizes.
    max_edge_bits_per_round:
        The largest single-message size observed — in CONGEST mode this is
        certified ≤ the bandwidth.
    outputs:
        Final per-node outputs, indexed by node ID.
    halted:
        Whether every node halted (False = stopped at ``max_rounds``).
    trace:
        Per-round :class:`RoundStats` when the engine was constructed with
        ``record_trace=True``; empty otherwise.
    """

    rounds: int
    messages: int
    total_bits: int
    max_edge_bits_per_round: int
    outputs: List[Any]
    halted: bool
    trace: List[RoundStats] = field(default_factory=list)


class SynchronousEngine:
    """Runs node programs over a topology in synchronous rounds.

    Parameters
    ----------
    topology:
        The network graph.
    bandwidth_bits:
        Per-edge per-round bit budget (CONGEST).  ``None`` = LOCAL model
        (unbounded messages).
    max_rounds:
        Hard stop; exceeding it returns a report with ``halted=False``.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 1_000_000,
        record_trace: bool = False,
    ) -> None:
        if bandwidth_bits is not None and bandwidth_bits < 1:
            raise SimulationError(
                f"bandwidth must be >= 1 bit, got {bandwidth_bits}"
            )
        if max_rounds < 1:
            raise SimulationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.topology = topology
        self.bandwidth_bits = bandwidth_bits
        self.max_rounds = max_rounds
        self.record_trace = record_trace

    def run(
        self,
        program_factory: Callable[[int], NodeProgram],
        rng: SeedLike = None,
    ) -> EngineReport:
        """Execute until every node halts (or ``max_rounds``).

        Parameters
        ----------
        program_factory:
            Called once per node ID to create that node's program instance.
        rng:
            Seed or generator; each node receives an independent child
            generator (private coins).
        """
        topo = self.topology
        gen = ensure_rng(rng)
        node_rngs = spawn(gen, topo.k)
        programs = [program_factory(v) for v in range(topo.k)]
        contexts = [
            Context(node_id=v, neighbors=topo.neighbors(v), rng=node_rngs[v])
            for v in range(topo.k)
        ]

        live: set = set(range(topo.k))
        pending_wakes: Dict[int, List[int]] = {}

        def note_halt_and_wake(v: int) -> None:
            ctx = contexts[v]
            if ctx.halted:
                live.discard(v)
            elif ctx._wake_at is not None:
                pending_wakes.setdefault(ctx._wake_at, []).append(v)

        for v, prog in enumerate(programs):
            prog.on_start(contexts[v])
            note_halt_and_wake(v)
        in_flight = self._collect(contexts)

        rounds = 0
        messages = 0
        total_bits = 0
        max_edge_bits = 0
        quiet_streak = 0
        trace: List[RoundStats] = []

        while rounds < self.max_rounds:
            if not live and not in_flight:
                return EngineReport(
                    rounds=rounds,
                    messages=messages,
                    total_bits=total_bits,
                    max_edge_bits_per_round=max_edge_bits,
                    outputs=[ctx.output for ctx in contexts],
                    halted=True,
                    trace=trace,
                )
            rounds += 1
            inboxes: Dict[int, List[Message]] = {}
            for msg in in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
                messages += 1
                total_bits += msg.bits
                max_edge_bits = max(max_edge_bits, msg.bits)
            if in_flight:
                quiet_streak = 0
            else:
                quiet_streak += 1
                if quiet_streak >= _DEADLOCK_QUIET_ROUNDS:
                    sample = sorted(live)[:8]
                    raise SimulationError(
                        f"deadlock: {quiet_streak} silent rounds with live "
                        f"nodes {sample}{'...' if len(live) > 8 else ''} "
                        f"at round {rounds}"
                    )
            # Scheduling contract: a node runs when it has mail, after a
            # globally quiet round (phase transitions), or at a wakeup it
            # requested.  Anything else would be a spurious no-op call.
            due = pending_wakes.pop(rounds, [])
            if quiet_streak > 0:
                active = sorted(live)
            else:
                active = sorted(set(inboxes).union(due).intersection(live))
            for v in active:
                ctx = contexts[v]
                if ctx._wake_at is not None and ctx._wake_at <= rounds:
                    ctx._wake_at = None
                ctx.round = rounds
                ctx.quiet_rounds = quiet_streak
                programs[v].on_round(ctx, inboxes.get(v, []))
                note_halt_and_wake(v)
            if self.record_trace:
                trace.append(
                    RoundStats(
                        round=rounds,
                        messages=sum(len(ms) for ms in inboxes.values()),
                        bits=sum(m.bits for ms in inboxes.values() for m in ms),
                        active_nodes=len(active),
                        quiet=quiet_streak > 0,
                    )
                )
            in_flight = self._collect([contexts[v] for v in active])

        return EngineReport(
            rounds=rounds,
            messages=messages,
            total_bits=total_bits,
            max_edge_bits_per_round=max_edge_bits,
            outputs=[ctx.output for ctx in contexts],
            halted=all(ctx.halted for ctx in contexts),
            trace=trace,
        )

    def _collect(self, contexts: Sequence[Context]) -> List[Message]:
        """Drain all outboxes, enforcing the CONGEST constraints."""
        out: List[Message] = []
        for ctx in contexts:
            seen_edges = set()
            for msg in ctx._drain_outbox():
                if self.bandwidth_bits is not None:
                    if msg.bits > self.bandwidth_bits:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent {msg.bits} bits to "
                            f"{msg.dst} (budget {self.bandwidth_bits}) "
                            f"[tag={msg.tag!r}]"
                        )
                    if msg.dst in seen_edges:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent two messages to {msg.dst} "
                            f"in one round [tag={msg.tag!r}]"
                        )
                    seen_edges.add(msg.dst)
                out.append(msg)
        return out
