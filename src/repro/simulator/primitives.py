"""Reusable distributed primitives: flooding, convergecast, broadcast.

These are the O(D)-round building blocks Section 5 composes: the network
first agrees on a leader (maximum ID) and a BFS tree rooted there by
**max-ID flooding**, then moves data up (**convergecast**) and decisions
down (**broadcast**) the tree.  Each primitive is a standalone
:class:`~repro.simulator.node.NodeProgram` with its own tests; the CONGEST
uniformity tester embeds the same logic in its phase machine.

All messages fit in ``O(log k)`` bits, certified by the engine's CONGEST
enforcement in the tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulator.message import Message, bits_for_int
from repro.simulator.node import Context, NodeProgram


class FloodMaxProgram(NodeProgram):
    """Leader election + BFS tree by max-ID flooding.

    Every node repeatedly shares the best (largest) root ID it knows and
    its distance from it; updates adopt the sender as parent.  The wave
    stabilises after ``D + 1`` rounds; nodes detect stability via a
    globally quiet round and halt with output
    ``(leader_id, distance, parent)`` (parent is ``None`` at the leader).

    Message size: ``2⌈log₂ k⌉`` bits (an ID and a distance).
    """

    def __init__(self, node_id: int, k: int) -> None:
        self.node_id = node_id
        self.k = k
        self.best = node_id
        self.dist = 0
        self.parent: Optional[int] = None

    def _bits(self) -> int:
        return 2 * bits_for_int(self.k)

    def _announce(self, ctx: Context) -> None:
        ctx.broadcast((self.best, self.dist), bits=self._bits(), tag="flood")

    def on_start(self, ctx: Context) -> None:
        self._announce(ctx)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        changed = False
        for msg in inbox:
            cand_best, cand_dist = msg.payload
            if cand_best > self.best or (
                cand_best == self.best and cand_dist + 1 < self.dist
            ):
                self.best = cand_best
                self.dist = cand_dist + 1
                self.parent = msg.src
                changed = True
        if changed:
            self._announce(ctx)
        elif ctx.quiet_rounds >= 1:
            ctx.halt((self.best, self.dist, self.parent))


class ConvergecastSumProgram(NodeProgram):
    """Sum per-node values up a known tree; the root outputs the total.

    Construction requires the tree structure (parent and children per
    node), typically obtained from a prior :class:`FloodMaxProgram` run or
    :meth:`Topology.bfs_tree`.  Leaves send immediately; internal nodes
    forward once all children reported.  Completes in ``height(T)`` rounds.

    Every node outputs its subtree sum; the root's output is the total.
    """

    def __init__(
        self,
        node_id: int,
        value: int,
        parent: Optional[int],
        children: Sequence[int],
        max_total: int,
    ) -> None:
        self.node_id = node_id
        self.value = int(value)
        self.parent = parent
        self.waiting = set(children)
        self.acc = int(value)
        self.max_total = max_total

    def _finish(self, ctx: Context) -> None:
        if self.parent is not None:
            ctx.send(
                self.parent,
                self.acc,
                bits=bits_for_int(self.max_total),
                tag="converge",
            )
        ctx.halt(self.acc)

    def on_start(self, ctx: Context) -> None:
        # on_start cannot halt usefully before round 1; defer to on_round.
        pass

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        for msg in inbox:
            if msg.src in self.waiting:
                self.waiting.discard(msg.src)
                self.acc += int(msg.payload)
        if not self.waiting:
            self._finish(ctx)


class BroadcastProgram(NodeProgram):
    """Flood a value from a root to every node (not tree-restricted).

    Each node forwards the value once, the first round it hears it;
    completes in ``ecc(root)`` rounds.  All nodes output the value.
    """

    def __init__(self, node_id: int, root: int, value: Any, value_bits: int) -> None:
        self.node_id = node_id
        self.root = root
        self.value = value if node_id == root else None
        self.value_bits = value_bits
        self.sent = False

    def on_start(self, ctx: Context) -> None:
        if self.node_id == self.root:
            ctx.broadcast(self.value, bits=self.value_bits, tag="bcast")
            self.sent = True
            ctx.halt(self.value)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if self.value is None:
            for msg in inbox:
                self.value = msg.payload
                break
        if self.value is not None and not self.sent:
            ctx.broadcast(self.value, bits=self.value_bits, tag="bcast")
            self.sent = True
            ctx.halt(self.value)


def children_from_parents(
    parents: Sequence[Optional[int]],
) -> List[List[int]]:
    """Invert parent pointers into per-node children lists."""
    children: List[List[int]] = [[] for _ in parents]
    for v, parent in enumerate(parents):
        if parent is not None:
            children[parent].append(v)
    return children
