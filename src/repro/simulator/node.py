"""The node-program API.

A protocol is a :class:`NodeProgram`: per-node state plus an ``on_round``
callback the engine invokes every synchronous round with the node's inbox.
The :class:`Context` passed alongside exposes exactly what the LOCAL /
CONGEST models grant a node — its ID, its neighbour list, private
randomness, the round number, and a ``send`` primitive — and nothing else
(no global state, no topology beyond the neighbourhood).

Programs signal completion per-node via :meth:`Context.halt`; the engine
stops when everyone has halted.  The one extra observable is
``quiet_rounds``: how many consecutive *globally silent* rounds preceded
this one.  Protocols built from flooding phases use it to advance phases
without knowing the diameter — the same "wait until the wave settles"
device the paper's token-packaging protocol relies on (its round count is
``O(D + τ)`` with ``D`` unknown to the nodes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.simulator.message import Message


class Context:
    """Per-node view of the network, handed to ``on_round``.

    Protocol code must treat this as its *only* window into the world.
    Inbox lists passed to ``on_round`` are engine-owned scratch buffers,
    valid only for the duration of that call — programs must copy any
    messages they want to keep.
    """

    __slots__ = (
        "node_id",
        "neighbors",
        "round",
        "quiet_rounds",
        "_neighbor_set",
        "_outbox",
        "_halted",
        "_output",
        "_wake_at",
        "_rng",
        "_rng_factory",
    )

    def __init__(
        self,
        node_id: int,
        neighbors: Tuple[int, ...],
        rng: Optional[np.random.Generator] = None,
        rng_factory: Optional[Callable[[], np.random.Generator]] = None,
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.round = 0
        self.quiet_rounds = 0
        self._neighbor_set = frozenset(neighbors)
        self._outbox: List[Message] = []
        self._halted = False
        self._output: Any = None
        self._wake_at: Optional[int] = None
        self._rng = rng
        self._rng_factory = rng_factory

    @property
    def rng(self) -> np.random.Generator:
        """This node's private-coin generator.

        Constructed on first access when the context was given a factory
        (the engine's lazy-spawn path): generator construction is costly
        and most protocol nodes never draw randomness.  The stream is
        identical either way.
        """
        gen = self._rng
        if gen is None:
            if self._rng_factory is None:
                raise SimulationError(
                    f"node {self.node_id} has no randomness source"
                )
            gen = self._rng_factory()
            self._rng = gen
        return gen

    def send(self, to: int, payload: Any, bits: int, tag: str = "") -> None:
        """Queue a message to neighbour *to* for delivery next round."""
        if self._halted:
            raise SimulationError(f"node {self.node_id} sent after halting")
        if to not in self._neighbor_set:
            raise SimulationError(
                f"node {self.node_id} tried to message non-neighbour {to}"
            )
        self._outbox.append(
            Message(src=self.node_id, dst=to, payload=payload, bits=bits, tag=tag)
        )

    def request_wakeup(self, round_number: int) -> None:
        """Ask the engine to invoke ``on_round`` at *round_number* even if
        this node's inbox is empty then.

        The engine always invokes ``on_round`` when the inbox is non-empty
        or after a globally quiet round; wakeups cover the remaining case —
        timer-driven behaviour such as the token-forwarding phase, which
        must act every round for exactly ``τ`` rounds.

        Wakeups are *consumed by running*: whenever the node runs — at the
        requested round, woken early by mail, or swept in after a quiet
        round — its pending wake is cleared, and ``on_round`` must call
        :meth:`request_wakeup` again to keep a future timer armed
        (clear-and-rearm).  Requests for the current or a past round are
        ignored by the engine.
        """
        if self._wake_at is None or round_number < self._wake_at:
            self._wake_at = round_number

    def broadcast(self, payload: Any, bits: int, tag: str = "") -> None:
        """Send the same message to every neighbour (one per edge)."""
        for u in self.neighbors:
            self.send(u, payload, bits, tag)

    def halt(self, output: Any = None) -> None:
        """Mark this node finished; ``output`` becomes its final output."""
        self._halted = True
        if output is not None:
            self._output = output

    def set_output(self, output: Any) -> None:
        """Record the node's output without halting."""
        self._output = output

    @property
    def halted(self) -> bool:
        """Whether this node has finished."""
        return self._halted

    @property
    def output(self) -> Any:
        """The node's current output value."""
        return self._output

    def _drain_outbox(self) -> List[Message]:
        out, self._outbox = self._outbox, []
        return out


class NodeProgram(ABC):
    """Behaviour of one node.  The engine instantiates one per node.

    Subclasses hold per-node state as instance attributes; the engine
    creates instances via the factory passed to it, so two nodes never
    share state.
    """

    def on_start(self, ctx: Context) -> None:
        """Round-0 hook, before any messages exist.  Default: no-op."""

    @abstractmethod
    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        """Handle this round's inbox; send messages / update state / halt."""
