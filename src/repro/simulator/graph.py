"""Network topologies with exact structural metadata.

A :class:`Topology` is an immutable undirected connected graph on nodes
``0..k-1`` with adjacency lists, plus the structural queries protocols and
benchmarks need: diameter, BFS layers/trees, and power graphs (``G^r``, used
by the LOCAL-model MIS).  Construction goes through ``networkx`` for the
random families but the stored representation is plain tuples, so protocol
code never touches networkx objects.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng


class TreeSchedule:
    """The max-ID flooding fixpoint of a topology, precomputed.

    The paper's token-packaging protocol (Section 5) first elects the
    max-ID node as leader and builds a BFS tree by flooding.  Under the
    engine's deterministic delivery order (messages arrive sorted by
    sender ID), the elected tree is a pure function of the topology:

    - the root is node ``k − 1`` (the maximum ID);
    - ``dist(v)`` is the BFS hop distance from the root — node *v* first
      hears the winning ID in round ``dist(v)`` and never improves on it;
    - ``parent(v)`` is the *smallest-ID* neighbour of *v* at distance
      ``dist(v) − 1`` — the first winning announcement in *v*'s inbox.

    Warm-started protocol runs load this schedule instead of re-running
    the FLOOD/CHILD/COUNT phases; ``verify_warm_start`` in
    :mod:`repro.congest.token_packaging` cross-checks the equivalence
    against the real protocol.

    Instances are cheap to pickle (they ride along with the
    :class:`Topology` into trial-runner worker processes).
    """

    __slots__ = ("root", "dist", "parent", "children", "height", "postorder",
                 "_counts_cache", "aux")

    def __init__(self, topology: "Topology") -> None:
        k = topology.k
        self.root: int = k - 1
        dist = topology.bfs_distances(self.root)
        self.dist: Tuple[int, ...] = tuple(int(d) for d in dist)
        parent: List[Optional[int]] = [None] * k
        children: List[List[int]] = [[] for _ in range(k)]
        for v in range(k):
            if v == self.root:
                continue
            target = self.dist[v] - 1
            p = min(u for u in topology.neighbors(v) if self.dist[u] == target)
            parent[v] = p
            children[p].append(v)
        self.parent: Tuple[Optional[int], ...] = tuple(parent)
        self.children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(ch)) for ch in children
        )
        self.height: int = max(self.dist)
        # Bottom-up order (decreasing depth, then ID): children always
        # precede their parent, so one pass computes convergecast values.
        self.postorder: Tuple[int, ...] = tuple(
            sorted(range(k), key=lambda v: (-self.dist[v], v))
        )
        self._counts_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # Scratch cache for consumers deriving per-(τ, s) artefacts from
        # the schedule (e.g. warm-start views); keyed by consumer.
        self.aux: Dict[Any, Any] = {}

    def token_counts(
        self, tau: int, tokens_per_node: int = 1
    ) -> Tuple[int, ...]:
        """Per-node convergecast counts ``c(v)`` for package size *tau*.

        ``c(v) = (tokens_per_node + Σ_{u child of v} c(u)) mod τ`` — the
        number of tokens *v* forwards to its parent during the TOKENS
        phase (Theorem 5.1).  Cached per ``(tau, tokens_per_node)``.
        """
        if tau < 1:
            raise ParameterError(f"tau must be >= 1, got {tau}")
        if tokens_per_node < 1:
            raise ParameterError(
                f"tokens_per_node must be >= 1, got {tokens_per_node}"
            )
        key = (tau, tokens_per_node)
        cached = self._counts_cache.get(key)
        if cached is not None:
            return cached
        c = [0] * len(self.dist)
        for v in self.postorder:
            total = tokens_per_node
            for u in self.children[v]:
                total += c[u]
            c[v] = total % tau
        counts = tuple(c)
        self._counts_cache[key] = counts
        return counts


class Topology:
    """An immutable connected undirected graph on ``{0, ..., k-1}``.

    Use the class-method constructors (:meth:`line`, :meth:`ring`,
    :meth:`star`, :meth:`grid`, :meth:`complete`, :meth:`balanced_tree`,
    :meth:`random_regular`, :meth:`gnp`) or :meth:`from_edges`.
    """

    __slots__ = ("_adjacency", "_name", "_diameter", "_diam_ub", "_tree_schedule")

    def __init__(self, adjacency: Sequence[Sequence[int]], name: str = "") -> None:
        adj: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(set(neigh))) for neigh in adjacency
        )
        k = len(adj)
        if k == 0:
            raise ParameterError("topology must have at least one node")
        for v, neigh in enumerate(adj):
            for u in neigh:
                if not 0 <= u < k:
                    raise ParameterError(f"edge ({v},{u}) leaves the node range")
                if u == v:
                    raise ParameterError(f"self-loop at node {v}")
                if v not in adj[u]:
                    raise ParameterError(f"edge ({v},{u}) is not symmetric")
        self._adjacency = adj
        self._name = name
        self._diameter: Optional[int] = None
        self._diam_ub: Optional[int] = None
        self._tree_schedule: Optional[TreeSchedule] = None
        if not self._is_connected():
            raise ParameterError("topology must be connected")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(k: int, edges: Iterable[Tuple[int, int]], name: str = "") -> "Topology":
        """Build from an explicit edge list over ``k`` nodes."""
        adj: List[List[int]] = [[] for _ in range(k)]
        for u, v in edges:
            if not (0 <= u < k and 0 <= v < k):
                raise ParameterError(f"edge ({u},{v}) outside node range [0, {k})")
            adj[u].append(v)
            adj[v].append(u)
        return Topology(adj, name=name)

    @staticmethod
    def from_networkx(graph: "nx.Graph", name: str = "") -> "Topology":
        """Build from a networkx graph with integer node labels ``0..k-1``."""
        k = graph.number_of_nodes()
        mapping = {node: i for i, node in enumerate(sorted(graph.nodes()))}
        edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
        return Topology.from_edges(k, edges, name=name)

    @staticmethod
    def line(k: int) -> "Topology":
        """Path graph — diameter ``k − 1``, the worst case for gathering."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        return Topology.from_edges(k, [(i, i + 1) for i in range(k - 1)], name=f"line({k})")

    @staticmethod
    def ring(k: int) -> "Topology":
        """Cycle graph — diameter ``⌊k/2⌋``."""
        if k < 3:
            raise ParameterError(f"ring needs k >= 3, got {k}")
        edges = [(i, (i + 1) % k) for i in range(k)]
        return Topology.from_edges(k, edges, name=f"ring({k})")

    @staticmethod
    def star(k: int) -> "Topology":
        """Star with centre 0 — diameter 2, the best case for gathering."""
        if k < 2:
            raise ParameterError(f"star needs k >= 2, got {k}")
        return Topology.from_edges(k, [(0, i) for i in range(1, k)], name=f"star({k})")

    @staticmethod
    def complete(k: int) -> "Topology":
        """Complete graph — diameter 1."""
        if k < 2:
            raise ParameterError(f"complete needs k >= 2, got {k}")
        edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
        return Topology.from_edges(k, edges, name=f"complete({k})")

    @staticmethod
    def grid(rows: int, cols: int) -> "Topology":
        """2-D grid — diameter ``rows + cols − 2``."""
        if rows < 1 or cols < 1:
            raise ParameterError(f"grid needs positive dims, got {(rows, cols)}")
        edges = []
        for r in range(rows):
            for c in range(cols):
                v = r * cols + c
                if c + 1 < cols:
                    edges.append((v, v + 1))
                if r + 1 < rows:
                    edges.append((v, v + cols))
        return Topology.from_edges(rows * cols, edges, name=f"grid({rows}x{cols})")

    @staticmethod
    def balanced_tree(branching: int, height: int) -> "Topology":
        """Complete ``branching``-ary tree of the given height."""
        if branching < 1 or height < 0:
            raise ParameterError(f"bad tree shape {(branching, height)}")
        graph = nx.balanced_tree(branching, height)
        return Topology.from_networkx(graph, name=f"tree(b={branching},h={height})")

    @staticmethod
    def random_regular(k: int, degree: int, rng: SeedLike = None) -> "Topology":
        """Random ``degree``-regular graph (an expander w.h.p.)."""
        gen = ensure_rng(rng)
        for attempt in range(64):
            seed = int(gen.integers(2**31 - 1))
            graph = nx.random_regular_graph(degree, k, seed=seed)
            if nx.is_connected(graph):
                return Topology.from_networkx(graph, name=f"regular(k={k},d={degree})")
        raise ParameterError(
            f"failed to sample a connected {degree}-regular graph on {k} nodes"
        )

    @staticmethod
    def gnp(k: int, p: float, rng: SeedLike = None) -> "Topology":
        """Connected Erdős–Rényi ``G(k, p)`` (resampled until connected)."""
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"p must be in (0, 1], got {p}")
        gen = ensure_rng(rng)
        for attempt in range(64):
            seed = int(gen.integers(2**31 - 1))
            graph = nx.gnp_random_graph(k, p, seed=seed)
            if graph.number_of_nodes() == k and nx.is_connected(graph):
                return Topology.from_networkx(graph, name=f"gnp(k={k},p={p})")
        raise ParameterError(f"failed to sample a connected G({k},{p}) graph")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbours of node *v*."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of node *v*."""
        return len(self._adjacency[v])

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(a) for a in self._adjacency) // 2

    def edges(self) -> List[Tuple[int, int]]:
        """All undirected edges as sorted pairs."""
        return [
            (v, u)
            for v in range(self.k)
            for u in self._adjacency[v]
            if v < u
        ]

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distances from *source* to every node."""
        dist = np.full(self.k, -1, dtype=np.int64)
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            for u in self._adjacency[v]:
                if dist[u] < 0:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        return dist

    def bfs_tree(self, root: int) -> Dict[int, Optional[int]]:
        """Parent pointers of a BFS tree rooted at *root* (root maps to None).

        Deterministic: among equal-distance candidates the smallest-ID
        parent wins — matching what the flooding protocol converges to.
        """
        parent: Dict[int, Optional[int]] = {root: None}
        dist = {root: 0}
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for u in self._adjacency[v]:
                if u not in dist:
                    dist[u] = dist[v] + 1
                    parent[u] = v
                    queue.append(u)
        return parent

    def tree_schedule(self) -> TreeSchedule:
        """The max-ID flooding fixpoint (cached; one BFS + one sort).

        See :class:`TreeSchedule` — the BFS tree the Section 5 protocols
        elect on this topology, used to warm-start Monte-Carlo runs.
        """
        if self._tree_schedule is None:
            self._tree_schedule = TreeSchedule(self)
        return self._tree_schedule

    def eccentricity(self, v: int) -> int:
        """Maximum hop distance from *v*."""
        return int(self.bfs_distances(v).max())

    def diameter(self) -> int:
        """Exact diameter (cached; ``O(k·m)`` BFS sweep)."""
        if self._diameter is None:
            self._diameter = max(self.eccentricity(v) for v in range(self.k))
        return self._diameter

    def diameter_upper_bound(self) -> int:
        """Cheap 2-approximation: ``2·ecc(0)`` with a single BFS (cached).

        Protocol runners use this for round budgets; benchmarks that report
        ``D`` itself use the exact :meth:`diameter`.
        """
        if self._diameter is not None:
            return self._diameter
        if self._diam_ub is None:
            self._diam_ub = 2 * self.eccentricity(0)
        return self._diam_ub

    def _bfs_within(self, source: int, r: int) -> Dict[int, int]:
        """Distances from *source* for all nodes at hop distance ≤ r.

        Depth-limited BFS: ``O(|ball| · max-degree)``, independent of ``k``
        — the workhorse behind :meth:`power_graph` on large sparse graphs.
        """
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and depth < r:
            depth += 1
            next_frontier: List[int] = []
            for v in frontier:
                for u in self._adjacency[v]:
                    if u not in dist:
                        dist[u] = depth
                        next_frontier.append(u)
            frontier = next_frontier
        return dist

    def power_graph(self, r: int) -> "Topology":
        """``G^r``: connect every pair at hop distance ≤ r (used by LOCAL MIS)."""
        if r < 1:
            raise ParameterError(f"power must be >= 1, got {r}")
        adj: List[List[int]] = [[] for _ in range(self.k)]
        for v in range(self.k):
            adj[v] = [u for u in self._bfs_within(v, r) if u != v]
        return Topology(adj, name=f"{self._name}^{r}")

    def ball(self, v: int, r: int) -> List[int]:
        """All nodes within hop distance ≤ r of *v* (including *v*)."""
        return sorted(self._bfs_within(v, r))

    def _is_connected(self) -> bool:
        return bool((self.bfs_distances(0) >= 0).all())

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<Topology{label} k={self.k} edges={self.edge_count()}>"
