"""Simultaneous-message machinery behind the lower bound (Section 7).

The paper's lower bound for anonymous 0-round uniformity testing goes
through simultaneous communication complexity of Equality with asymmetric
error.  This package implements *both directions* concretely:

- :mod:`repro.smp.galois`, :mod:`repro.smp.reed_solomon`,
  :mod:`repro.smp.codes` — GF(2^q) arithmetic, Reed–Solomon, and a
  concatenated binary code with a *certified* minimum distance (our
  stand-in for the Justesen code of Lemma 7.3; the protocol only needs
  constant rate and constant relative distance, both of which are measured
  properties here).
- :mod:`repro.smp.equality` — the Lemma 7.3 torus-chunk SMP protocol for
  Equality: worst-case ``O(√(τδn))`` bits, perfect completeness, NO-side
  rejection ``≥ τδ``.
- :mod:`repro.smp.reduction` — the Blais–Canonne–Gur reduction
  (Theorem 7.1): any ``q``-sample uniformity tester yields an SMP Equality
  protocol of cost ``q·log n``; includes the input-to-distribution mapping
  and a runnable protocol wrapping any
  :class:`~repro.core.gap.CentralizedTester`.
- :mod:`repro.smp.lowerbound` — the quantitative side: Lemma 2.1's KL
  separation, ``f(τ) = τ−1−ln τ``, and the per-node ``(δ, α)``
  requirements that drive Theorem 1.3.
- :mod:`repro.smp.smp_plane` — the vectorised trial plane: batched
  GF/Reed–Solomon encoding plus Monte-Carlo replay of both protocols'
  referee verdicts, bit-identical per seed to the scalar ``run()`` path.
"""

from repro.smp.codes import ConcatenatedCode, InnerCode, repetition_inner_code
from repro.smp.equality import EqualityProtocol, TorusChunkMessage
from repro.smp.galois import GF
from repro.smp.lowerbound import anonymous_tester_requirements, verify_kl_separation
from repro.smp.reduction import (
    BCGMapping,
    TesterBasedEqualityProtocol,
)
from repro.smp.reduction import support_driver
from repro.smp.reed_solomon import ReedSolomonCode
from repro.smp.referee import (
    RefereeProtocol,
    enumerate_balanced_partitions,
    expected_induced_distance,
    induced_distribution,
    random_balanced_partition,
)
from repro.smp.smp_plane import (
    EqualityTrialRunner,
    ReductionVerdictKernel,
    TorusVerdictKernel,
)

__all__ = [
    "GF",
    "ReedSolomonCode",
    "InnerCode",
    "ConcatenatedCode",
    "repetition_inner_code",
    "EqualityProtocol",
    "TorusChunkMessage",
    "BCGMapping",
    "TesterBasedEqualityProtocol",
    "anonymous_tester_requirements",
    "verify_kl_separation",
    "support_driver",
    "RefereeProtocol",
    "random_balanced_partition",
    "induced_distribution",
    "enumerate_balanced_partitions",
    "expected_induced_distance",
    "EqualityTrialRunner",
    "TorusVerdictKernel",
    "ReductionVerdictKernel",
]
