"""The Blais–Canonne–Gur reduction (Theorem 7.1): testers ⇒ EQ protocols.

The lower bound of Section 7 rests on this bridge: a ``q``-sample
uniformity tester with error ``(δ₀, δ₁)`` yields a private-coin SMP
Equality protocol of cost ``q·log n`` and the same error.  Contrapositive:
the Equality lower bound of Theorem 7.2 forces every ``(δ, α)``-gap
uniformity tester to use ``Ω(√(f(α)δn)/log n)`` samples (Corollary 7.4).

This module implements the bridge *forward* so it can be run:

1. :class:`BCGMapping` — encode the inputs with a certified-distance code,
   then map to sampling distributions: Alice's ``μ_X`` is uniform on
   ``{(i, X'_i)}``, Bob's ``μ_Y`` on ``{(i, 1 − Y'_i)}`` (pairs flattened
   into ``[2m']``).  The half-half mixture ``μ = ½μ_X + ½μ_Y`` is exactly
   uniform on ``[2m']`` when ``X = Y`` and ``Δ``-far in L1 when ``X ≠ Y``
   (``Δ`` = the code's relative distance) — verified in closed form by
   :meth:`BCGMapping.mixture_distribution`.
2. :class:`TesterBasedEqualityProtocol` — each player sends ``q`` samples
   from their half (``q·⌈log₂ 2m'⌉`` bits); the referee interleaves them
   with fair coins (giving ``q`` i.i.d. samples from ``μ``) and feeds any
   :class:`~repro.core.gap.CentralizedTester`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.core.gap import CentralizedTester
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import CodingError, ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.smp._validation import check_trials
from repro.smp.codes import ConcatenatedCode


@lru_cache(maxsize=8)
def support_driver(size: int) -> DiscreteDistribution:
    """The uniform inverse-CDF driver over ``size`` support points (cached).

    Both players sample their support *through this distribution* rather
    than via ``Generator.integers``: one invocation consumes exactly
    ``count`` ``U[0, 1)`` doubles (``Generator.choice`` with a probability
    vector is inverse-CDF sampling), so the whole protocol stream is
    reproducible from
    :meth:`~repro.distributions.base.DiscreteDistribution.sample_uniform`
    draws plus
    :meth:`~repro.distributions.base.DiscreteDistribution.index_quantiles`
    lookups — the split the SMP trial plane batches.
    """
    return DiscreteDistribution(
        np.full(size, 1.0 / size), name=f"bcg-driver({size})"
    )


@dataclass(frozen=True)
class BCGMapping:
    """Input-to-distribution mapping over a fixed code.

    The image domain is ``[2m']`` where ``m'`` is the codeword length:
    element ``2i + b`` encodes the pair ``(position i, bit b)``.
    """

    code: ConcatenatedCode

    @property
    def domain_size(self) -> int:
        """Size of the sampling domain: twice the codeword length."""
        return 2 * self.code.codeword_bits

    @property
    def far_distance(self) -> float:
        """Guaranteed L1 distance of the mixture from uniform when
        ``X ≠ Y``: the code's certified relative distance."""
        return self.code.relative_distance

    def _support(self, bits: np.ndarray, flip: bool) -> np.ndarray:
        word = self.code.encode(bits)
        values = 1 - word if flip else word
        return 2 * np.arange(word.size, dtype=np.int64) + values

    def alice_support(self, x: np.ndarray) -> np.ndarray:
        """Support of ``μ_X``: the points ``(i, X'_i)``."""
        return self._support(np.asarray(x), flip=False)

    def bob_support(self, y: np.ndarray) -> np.ndarray:
        """Support of ``μ_Y``: the points ``(i, 1 − Y'_i)``."""
        return self._support(np.asarray(y), flip=True)

    def sample_alice(self, x: np.ndarray, count: int, rng: SeedLike = None) -> np.ndarray:
        """``count`` i.i.d. samples from ``μ_X`` (uniform over its support).

        Drawn through :func:`support_driver` — ``count`` driver doubles,
        inverse-CDF mapped — so the stream is replayable in batch.
        """
        gen = ensure_rng(rng)
        support = self.alice_support(x)
        return support[support_driver(support.size).sample(count, gen)]

    def sample_bob(self, y: np.ndarray, count: int, rng: SeedLike = None) -> np.ndarray:
        """``count`` i.i.d. samples from ``μ_Y`` (same driver split)."""
        gen = ensure_rng(rng)
        support = self.bob_support(y)
        return support[support_driver(support.size).sample(count, gen)]

    def mixture_distribution(
        self, x: np.ndarray, y: np.ndarray
    ) -> DiscreteDistribution:
        """The exact mixture ``½μ_X + ½μ_Y`` (for analysis/tests)."""
        m = self.code.codeword_bits
        probs = np.zeros(2 * m, dtype=np.float64)
        np.add.at(probs, self.alice_support(x), 0.5 / m)
        np.add.at(probs, self.bob_support(y), 0.5 / m)
        return DiscreteDistribution(probs, name="bcg-mixture")


@dataclass(frozen=True)
class TesterBasedEqualityProtocol:
    """Theorem 7.1 forward: wrap a uniformity tester as an SMP EQ protocol.

    Attributes
    ----------
    mapping:
        The input-to-distribution mapping (fixes the domain size).
    tester:
        Any single-node uniformity tester calibrated for
        ``mapping.domain_size``.
    """

    mapping: BCGMapping
    tester: CentralizedTester

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    @property
    def communication_bits(self) -> int:
        """Per-player cost: ``q · ⌈log₂(domain)⌉`` — Theorem 7.1's bound."""
        q = self.tester.samples_required
        return q * max(1, math.ceil(math.log2(self.mapping.domain_size)))

    def run(self, x: np.ndarray, y: np.ndarray, rng: SeedLike = None) -> bool:
        """One execution; ``True`` = referee says Equal.

        Alice and Bob use private coins to sample their halves; the
        referee's own coins interleave them into i.i.d. mixture samples.
        """
        gen = ensure_rng(rng)
        q = self.tester.samples_required
        alice_samples = self.mapping.sample_alice(x, q, gen)
        bob_samples = self.mapping.sample_bob(y, q, gen)
        # Fair coins drawn as doubles: the per-trial stream is then 3q
        # U[0, 1) values (q Alice, q Bob, q referee), which the SMP trial
        # plane reproduces with a single batched sample_uniform call.
        take_alice = gen.random(q) < 0.5
        merged = np.where(take_alice, alice_samples, bob_samples)
        return self.tester.decide(merged)

    def estimate_acceptance(
        self, x: np.ndarray, y: np.ndarray, trials: int, rng: SeedLike = None
    ) -> float:
        """Monte-Carlo acceptance rate on the input pair."""
        trials = check_trials(trials)
        gen = ensure_rng(rng)
        accepted = 0
        for _ in range(trials):
            if self.run(x, y, gen):
                accepted += 1
        return accepted / trials

    def estimate_error(
        self,
        x: np.ndarray,
        y: np.ndarray,
        trials: int,
        rng: SeedLike = None,
        workers: int = 1,
        fast_path: bool = True,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate on ``(x, y)``: fraction of trials whose
        referee verdict disagrees with the ground truth ``x == y``.

        With a seed-like ``rng`` (``None`` or an int) the trials run on
        the chunk-keyed trial engine; ``fast_path=True`` (the default)
        routes them through the vectorised
        :class:`~repro.smp.smp_plane.EqualityTrialRunner` — one batched
        driver draw plus vectorised tester verdicts, bit-identical flags
        per seed, with ``engine_check`` re-running that fraction of the
        trials through the scalar :meth:`run` and raising
        :class:`~repro.exceptions.SimulationError` on divergence.  A live
        ``Generator`` keeps the legacy sequential loop (and requires
        ``fast_path=False``).
        """
        trials = check_trials(trials)
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.smp.smp_plane import EqualityTrialRunner

            runner = EqualityTrialRunner.for_reduction(
                self, x, y, base_seed=0 if rng is None else int(rng)
            )
            if fast_path:
                return runner.error_rate(
                    trials, workers=workers, engine_check=engine_check
                )
            return runner.scalar_error_rate(trials, workers=workers)
        if fast_path:
            raise ParameterError(
                "fast_path needs a seed-like rng (None or int): the trial "
                "plane replays chunk-keyed streams, not a shared Generator"
            )
        gen = ensure_rng(rng)
        equal = bool(np.array_equal(np.asarray(x), np.asarray(y)))
        errors = 0
        for _ in range(trials):
            if self.run(x, y, gen) != equal:
                errors += 1
        return errors / trials
