"""Shared parameter checks for the SMP estimation APIs.

Every Monte-Carlo entry point in :mod:`repro.smp` validates its ``trials``
count through :func:`check_trials` so a float, bool or non-positive value
raises :class:`~repro.exceptions.ParameterError` up front instead of
producing a silent empty loop or a ZeroDivision artefact.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError


def check_trials(trials) -> int:
    """Validate a Monte-Carlo trial count: a positive integer, returned as
    a plain ``int``."""
    if isinstance(trials, bool) or not isinstance(trials, (int, np.integer)):
        raise ParameterError(f"trials must be an integer, got {trials!r}")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    return int(trials)


def check_message_bits(n_bits) -> int:
    """Validate an input length in bits: a positive integer, returned as a
    plain ``int``."""
    if isinstance(n_bits, bool) or not isinstance(n_bits, (int, np.integer)):
        raise ParameterError(f"n_bits must be an integer, got {n_bits!r}")
    if n_bits < 1:
        raise ParameterError(f"n_bits must be >= 1, got {n_bits}")
    return int(n_bits)
