"""Reed–Solomon codes over GF(2^q) by polynomial evaluation.

An ``[n_sym, k_sym]`` RS code encodes ``k_sym`` message symbols as the
evaluations of the degree-``< k_sym`` message polynomial at ``n_sym``
distinct field points.  Minimum distance is exactly
``n_sym − k_sym + 1`` (MDS) — the certified outer distance of the
concatenated construction in :mod:`repro.smp.codes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import CodingError
from repro.smp.galois import GF


@dataclass(frozen=True)
class ReedSolomonCode:
    """``[n_sym, k_sym]`` Reed–Solomon code over GF(2^q).

    Attributes
    ----------
    field:
        The symbol field.
    n_sym:
        Codeword length in symbols; at most ``2^q`` (we evaluate at the
        points ``0, 1, ..., n_sym − 1``).
    k_sym:
        Message length in symbols; ``1 ≤ k_sym ≤ n_sym``.
    """

    field: GF
    n_sym: int
    k_sym: int

    def __post_init__(self) -> None:
        if not 1 <= self.k_sym <= self.n_sym:
            raise CodingError(
                f"need 1 <= k_sym <= n_sym, got k={self.k_sym}, n={self.n_sym}"
            )
        if self.n_sym > self.field.order:
            raise CodingError(
                f"n_sym={self.n_sym} exceeds field size {self.field.order}"
            )

    @property
    def min_distance(self) -> int:
        """Exact minimum distance ``n_sym − k_sym + 1`` (MDS property)."""
        return self.n_sym - self.k_sym + 1

    @property
    def relative_distance(self) -> float:
        """``min_distance / n_sym``."""
        return self.min_distance / self.n_sym

    @property
    def rate(self) -> float:
        """``k_sym / n_sym``."""
        return self.k_sym / self.n_sym

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Encode ``k_sym`` symbols into ``n_sym`` evaluation symbols."""
        msg = np.asarray(message, dtype=np.int64)
        if msg.shape != (self.k_sym,):
            raise CodingError(
                f"message must have {self.k_sym} symbols, got shape {msg.shape}"
            )
        if msg.size and (msg.min() < 0 or msg.max() >= self.field.order):
            raise CodingError("message symbols outside the field")
        points = np.arange(self.n_sym, dtype=np.int64)
        return self.field.poly_eval(msg, points)

    def encode_many(self, messages: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, k_sym)`` message matrix in one shot.

        Codeword-for-codeword identical to calling :meth:`encode` on each
        row, but routed through :meth:`repro.smp.galois.GF.poly_eval_many`
        (one power-table matrix product instead of ``k_sym`` Horner steps
        per message).
        """
        msgs = np.asarray(messages, dtype=np.int64)
        if msgs.ndim != 2 or msgs.shape[1] != self.k_sym:
            raise CodingError(
                f"messages must have shape (batch, {self.k_sym}), got "
                f"{msgs.shape}"
            )
        if msgs.size and (msgs.min() < 0 or msgs.max() >= self.field.order):
            raise CodingError("message symbols outside the field")
        points = np.arange(self.n_sym, dtype=np.int64)
        return self.field.poly_eval_many(msgs, points)
