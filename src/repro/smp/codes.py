"""Concatenated binary codes with certified minimum distance.

Lemma 7.3 uses a Justesen code: constant rate, constant relative distance,
binary.  Any such code supports the torus protocol — the analysis only
consumes the (rate, relative distance) pair — so we build the classical
concatenation:

- **outer**: Reed–Solomon over GF(2^q) (exact distance, MDS);
- **inner**: a small binary linear code found by randomized search with
  its minimum distance *verified exhaustively* (the code has ``2^{k_in}``
  words; for ``k_in ≤ 12`` full enumeration is instant and the distance is
  a certificate, not an estimate).

The concatenated ``[n_out·n_in, k_out·k_in]`` code has relative distance
at least ``δ_out · δ_in`` — the bound the Equality protocol plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import CodingError
from repro.rng import SeedLike, ensure_rng
from repro.smp.galois import GF
from repro.smp.reed_solomon import ReedSolomonCode


@dataclass(frozen=True)
class InnerCode:
    """A binary linear ``[n_bits, k_bits]`` code with verified distance.

    ``generator`` has shape ``(k_bits, n_bits)`` over GF(2); systematic
    generators (identity prefix) are produced by :meth:`search`.
    """

    generator: Tuple[Tuple[int, ...], ...]
    min_distance: int

    @property
    def k_bits(self) -> int:
        """Message length in bits."""
        return len(self.generator)

    @property
    def n_bits(self) -> int:
        """Codeword length in bits."""
        return len(self.generator[0])

    @property
    def relative_distance(self) -> float:
        """``min_distance / n_bits``."""
        return self.min_distance / self.n_bits

    @property
    def rate(self) -> float:
        """``k_bits / n_bits``."""
        return self.k_bits / self.n_bits

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode ``k_bits`` bits into ``n_bits`` bits (matrix product mod 2)."""
        msg = np.asarray(bits, dtype=np.int64)
        if msg.shape != (self.k_bits,):
            raise CodingError(f"message must have {self.k_bits} bits")
        gen = np.asarray(self.generator, dtype=np.int64)
        return (msg @ gen) % 2

    def encode_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Encode a vector of ``k_bits``-bit symbols, one codeword each.

        Returns shape ``(len(symbols), n_bits)``.  Vectorised over the
        symbol alphabet via a precomputed codebook.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        book = self._codebook()
        return book[symbols]

    def _codebook(self) -> np.ndarray:
        """All ``2^k`` codewords, indexed by the message read as an integer
        with bit 0 the most significant (computed on demand, tiny)."""
        k = self.k_bits
        messages = ((np.arange(1 << k)[:, None] >> np.arange(k - 1, -1, -1)) & 1)
        gen = np.asarray(self.generator, dtype=np.int64)
        return (messages @ gen) % 2

    @staticmethod
    def exact_min_distance(generator: np.ndarray) -> int:
        """Exhaustive minimum distance of a linear code = min nonzero weight."""
        k, n = generator.shape
        if k > 20:
            raise CodingError(f"exhaustive distance check infeasible for k={k}")
        messages = ((np.arange(1, 1 << k)[:, None] >> np.arange(k - 1, -1, -1)) & 1)
        words = (messages @ generator) % 2
        return int(words.sum(axis=1).min())

    @staticmethod
    def search(
        k_bits: int,
        n_bits: int,
        target_distance: int,
        rng: SeedLike = None,
        attempts: int = 2000,
    ) -> "InnerCode":
        """Randomized search for a systematic ``[n_bits, k_bits]`` code with
        distance ≥ *target_distance* (verified exhaustively).

        The Gilbert–Varshamov bound guarantees existence well below the GV
        distance; failure after *attempts* raises.
        """
        if k_bits < 1 or n_bits < k_bits:
            raise CodingError(f"bad inner code shape [{n_bits}, {k_bits}]")
        gen0 = ensure_rng(rng)
        identity = np.eye(k_bits, dtype=np.int64)
        best: Optional[Tuple[int, np.ndarray]] = None
        for _ in range(attempts):
            parity = gen0.integers(0, 2, size=(k_bits, n_bits - k_bits))
            generator = np.concatenate([identity, parity], axis=1)
            distance = InnerCode.exact_min_distance(generator)
            if best is None or distance > best[0]:
                best = (distance, generator)
            if distance >= target_distance:
                return InnerCode(
                    generator=tuple(tuple(int(x) for x in row) for row in generator),
                    min_distance=distance,
                )
        assert best is not None
        raise CodingError(
            f"no [{n_bits}, {k_bits}] code of distance {target_distance} found "
            f"in {attempts} attempts (best: {best[0]})"
        )


def repetition_inner_code(k_bits: int, repetitions: int) -> InnerCode:
    """The trivial ``[k·rep, k]`` bitwise-repetition code (distance = rep).

    Used in tests as a deterministic inner code with a known distance.
    """
    if k_bits < 1 or repetitions < 1:
        raise CodingError(f"bad repetition shape {(k_bits, repetitions)}")
    gen = np.zeros((k_bits, k_bits * repetitions), dtype=np.int64)
    for i in range(k_bits):
        gen[i, i * repetitions: (i + 1) * repetitions] = 1
    return InnerCode(
        generator=tuple(tuple(int(x) for x in row) for row in gen),
        min_distance=repetitions,
    )


@lru_cache(maxsize=8)
def _default_inner(q: int) -> InnerCode:
    """A good ``[2q, q]`` inner code (deterministic seed, cached)."""
    # Achievable by randomized systematic search (verified exhaustively);
    # [16, 8, 5] exists but random search rarely finds it — d = 4 gives
    # relative distance 1/4, ample for the torus protocol.
    targets = {4: 3, 8: 4}
    target = targets.get(q, max(2, q // 2 - 1))
    return InnerCode.search(q, 2 * q, target, rng=20180723)


@dataclass(frozen=True)
class ConcatenatedCode:
    """RS ∘ inner concatenation: binary, constant rate, certified distance.

    Parameters
    ----------
    outer:
        Reed–Solomon outer code over GF(2^q).
    inner:
        Binary inner code with ``k_bits = q``.
    """

    outer: ReedSolomonCode
    inner: InnerCode

    def __post_init__(self) -> None:
        if self.inner.k_bits != self.outer.field.q:
            raise CodingError(
                f"inner message length {self.inner.k_bits} must equal the "
                f"outer symbol size q={self.outer.field.q}"
            )

    @staticmethod
    def for_message_bits(
        message_bits: int,
        q: int = 8,
        outer_rate: float = 0.5,
        inner: Optional[InnerCode] = None,
    ) -> "ConcatenatedCode":
        """Construct a code for messages of *message_bits* bits.

        Pads the message to ``k_sym = ⌈bits/q⌉`` symbols and picks
        ``n_sym = ⌈k_sym/outer_rate⌉`` (capped by the field size).
        """
        if isinstance(message_bits, bool) or not isinstance(
            message_bits, (int, np.integer)
        ):
            raise CodingError(
                f"message_bits must be an integer, got {message_bits!r}"
            )
        if message_bits < 1:
            raise CodingError(f"message_bits must be >= 1, got {message_bits}")
        if not 0.0 < outer_rate < 1.0:
            raise CodingError(f"outer_rate must be in (0, 1), got {outer_rate}")
        field = GF(q)
        k_sym = -(-message_bits // q)
        n_sym = min(field.order, int(np.ceil(k_sym / outer_rate)))
        if k_sym > n_sym or (n_sym - k_sym + 1) / n_sym < 0.05:
            raise CodingError(
                f"message of {message_bits} bits needs {k_sym} symbols but "
                f"GF(2^{q}) supports codewords of at most {field.order} "
                "symbols at useful distance; increase q"
            )
        outer = ReedSolomonCode(field=field, n_sym=n_sym, k_sym=k_sym)
        return ConcatenatedCode(outer=outer, inner=inner or _default_inner(q))

    @property
    def message_bits(self) -> int:
        """Input size in bits (``k_sym · q``)."""
        return self.outer.k_sym * self.outer.field.q

    @property
    def codeword_bits(self) -> int:
        """Output size in bits (``n_sym · n_in``)."""
        return self.outer.n_sym * self.inner.n_bits

    @property
    def rate(self) -> float:
        """``message_bits / codeword_bits``."""
        return self.message_bits / self.codeword_bits

    @property
    def relative_distance(self) -> float:
        """Certified lower bound ``δ_outer · δ_inner``."""
        return self.outer.relative_distance * self.inner.relative_distance

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode a bit vector (padded with zeros to ``message_bits``)."""
        msg = np.asarray(bits, dtype=np.int64)
        if msg.ndim != 1 or msg.size > self.message_bits:
            raise CodingError(
                f"message must be a bit vector of at most {self.message_bits} "
                f"bits, got shape {msg.shape}"
            )
        if msg.size and not np.all((msg == 0) | (msg == 1)):
            raise CodingError("message must be binary")
        padded = np.zeros(self.message_bits, dtype=np.int64)
        padded[: msg.size] = msg
        q = self.outer.field.q
        weights = 1 << np.arange(q - 1, -1, -1)
        symbols = padded.reshape(self.outer.k_sym, q) @ weights
        outer_word = self.outer.encode(symbols)
        return self.inner.encode_symbols(outer_word).reshape(-1)

    def encode_many(self, bit_rows: np.ndarray) -> np.ndarray:
        """Encode a ``(batch, bits)`` matrix of messages, one codeword per row.

        Bit-for-bit identical to calling :meth:`encode` on each row: the
        same zero-padding, the same bit-to-symbol packing, but one batched
        Reed–Solomon evaluation
        (:meth:`repro.smp.reed_solomon.ReedSolomonCode.encode_many`) and
        one inner-codebook gather for the whole batch.
        """
        msgs = np.asarray(bit_rows, dtype=np.int64)
        if msgs.ndim != 2 or msgs.shape[1] > self.message_bits:
            raise CodingError(
                f"messages must be a (batch, bits) matrix with at most "
                f"{self.message_bits} bits per row, got shape {msgs.shape}"
            )
        if msgs.size and not np.all((msgs == 0) | (msgs == 1)):
            raise CodingError("messages must be binary")
        padded = np.zeros((msgs.shape[0], self.message_bits), dtype=np.int64)
        padded[:, : msgs.shape[1]] = msgs
        q = self.outer.field.q
        weights = 1 << np.arange(q - 1, -1, -1)
        symbols = padded.reshape(msgs.shape[0], self.outer.k_sym, q) @ weights
        outer_words = self.outer.encode_many(symbols)
        inner_words = self.inner.encode_symbols(outer_words)
        return inner_words.reshape(msgs.shape[0], self.codeword_bits)
