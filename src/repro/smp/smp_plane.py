"""The vectorised SMP lower-bound plane: batched Equality/BCG trial replay.

A Monte-Carlo sweep of the Section 7 SMP protocols runs the same protocol
thousands of times on one fixed input pair, varying only the private
coins.  But the expensive parts of a trial never look at the coins: the
concatenated encoding (Reed–Solomon over GF(2^q) composed with a verified
inner code) is a pure function of the inputs, and the torus layout is a
pure function of the codeword.  So the whole coding phase is hoisted out
— one :meth:`~repro.smp.codes.ConcatenatedCode.encode_many` call encodes
both inputs as a single power-table matrix product — and a trial's
verdict reduces to a handful of array ops:

- **Torus Equality (Lemma 7.3)**: the scalar ``run()`` consumes exactly
  four bounded-integer draws per trial (Alice's and Bob's start cells).
  Numpy integer streams are prefix-stable under call splitting, so one
  ``integers(0, side, size=4·count)`` call reproduces every trial's
  draws; the referee compare is then two modular offsets, a chunk-window
  test and one gather per table at the crossing cells.
- **BCG reduction (Theorem 7.1)**: the scalar ``run()`` consumes exactly
  ``3q`` ``U[0, 1)`` doubles per trial — ``q`` driver values behind each
  player's :func:`~repro.smp.reduction.support_driver` draw plus ``q``
  referee coins.  One batched
  :meth:`~repro.distributions.base.DiscreteDistribution.sample_uniform`
  draw covers the whole batch; the support gathers go through exact
  :meth:`~repro.distributions.base.DiscreteDistribution.index_quantiles`
  lookups and the centralized tester verdicts through the vectorised
  :func:`~repro.core.gap.decide_many`.

Bit-identity contract: both kernels consume the trial engine's
chunk-keyed streams exactly like the scalar ``run()`` experiments (same
labels, same per-trial stream consumption), so fast-path and scalar
trial ``t`` see the *same coins* and must produce the same verdict.
``engine_check`` re-runs a prefix of the trials through the scalar
protocol and raises :class:`~repro.exceptions.SimulationError` on any
divergence.  The scalar route remains the measurement of record for
communication cost; the plane only accelerates verdict statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import telemetry
from repro.core.gap import decide_many
from repro.exceptions import ParameterError, SimulationError
from repro.experiments.runner import TrialRunner
from repro.rng import ensure_rng
from repro.smp.equality import EqualityProtocol
from repro.smp.reduction import TesterBasedEqualityProtocol, support_driver
from repro.zeroround.network import auto_batch


# ---------------------------------------------------------------------------
# Scalar twins: the honest per-trial experiments the plane must reproduce
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class _TorusTrialExperiment:
    """Scalar trial: one full torus ``run()`` (re-encoding and all)."""

    protocol: EqualityProtocol
    x: np.ndarray
    y: np.ndarray
    equal: bool

    def __call__(self, rng: np.random.Generator) -> bool:
        accepted, _ = self.protocol.run(self.x, self.y, rng)
        return accepted != self.equal


@dataclass(frozen=True, eq=False)
class _ReductionTrialExperiment:
    """Scalar trial: one full BCG ``run()`` (re-encoding and all)."""

    protocol: TesterBasedEqualityProtocol
    x: np.ndarray
    y: np.ndarray
    equal: bool

    def __call__(self, rng: np.random.Generator) -> bool:
        return self.protocol.run(self.x, self.y, rng) != self.equal


# ---------------------------------------------------------------------------
# Batched verdict kernels
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TorusVerdictKernel:
    """Batched experiment: Lemma 7.3 referee error flags.

    ``(rng, count) -> flags`` where ``True`` means the verdict disagrees
    with the ground truth ``equal``.  Consumes exactly ``count`` trials'
    worth of start-cell draws (four bounded integers per trial, in the
    scalar order Alice-row, Alice-col, Bob-row, Bob-col), so it is
    bit-identical to :class:`_TorusTrialExperiment` on the same chunk
    stream.  The chunks cross iff both modular offsets fall inside the
    chunk window; the crossing cell is ``(bob_row, alice_col)`` and the
    referee rejects only on a bit mismatch there.
    """

    table_a: np.ndarray
    table_b: np.ndarray
    side: int
    chunk_length: int
    equal: bool

    def accepts(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Referee verdicts (``True`` = accept) for *count* trials."""
        with telemetry.span("smp_plane.draw", trials=count) as sp:
            draws = rng.integers(0, self.side, size=4 * count).reshape(count, 4)
            sp.count("draws", 4 * count)
        with telemetry.span("smp_plane.verdict", trials=count):
            a_rows, a_cols, b_rows, b_cols = draws.T
            row_off = (b_rows - a_rows) % self.side
            col_off = (a_cols - b_cols) % self.side
            crossing = (row_off < self.chunk_length) & (
                col_off < self.chunk_length
            )
            mismatch = crossing & (
                self.table_a[b_rows, a_cols] != self.table_b[b_rows, a_cols]
            )
            return ~mismatch

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self.accepts(rng, count) != self.equal


@dataclass(frozen=True, eq=False)
class ReductionVerdictKernel:
    """Batched experiment: Theorem 7.1 referee error flags.

    ``(rng, count) -> flags``.  One
    :meth:`~repro.distributions.base.DiscreteDistribution.sample_uniform`
    call draws every trial's ``3q`` driver doubles (``q`` Alice, ``q``
    Bob, ``q`` referee coins — the exact scalar ``run()`` stream), the
    support gathers go through exact ``index_quantiles`` lookups, and
    the centralized tester decides all trials at once via
    :func:`~repro.core.gap.decide_many`.
    """

    support_alice: np.ndarray
    support_bob: np.ndarray
    tester: object
    q: int
    equal: bool

    def accepts(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Referee verdicts (``True`` = accept) for *count* trials."""
        driver = support_driver(self.support_alice.size)
        with telemetry.span("smp_plane.draw", trials=count) as sp:
            u = driver.sample_uniform(count * 3 * self.q, rng).reshape(
                count, 3, self.q
            )
            sp.count("doubles", count * 3 * self.q)
        with telemetry.span("smp_plane.verdict", trials=count):
            alice = self.support_alice[driver.index_quantiles(u[:, 0, :])]
            bob = self.support_bob[driver.index_quantiles(u[:, 1, :])]
            take_alice = u[:, 2, :] < 0.5
            merged = np.where(take_alice, alice, bob)
            return decide_many(self.tester, merged)

    def __call__(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self.accepts(rng, count) != self.equal


# ---------------------------------------------------------------------------
# The trial runner shared by both protocols
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class EqualityTrialRunner:
    """Vectorised Monte-Carlo trials for one SMP protocol on one input pair.

    Encodes the inputs once (one batched
    :meth:`~repro.smp.codes.ConcatenatedCode.encode_many` call under the
    ``smp_plane.encode`` span), then replays whole trial batches through
    the chunk-keyed trial engine.  Build with :meth:`for_torus` or
    :meth:`for_reduction`; the scalar twin rides along so
    ``engine_check`` and :meth:`scalar_flags` replay the *same* labelled
    streams through the full protocol.
    """

    kernel: object
    scalar: object
    labels: Tuple
    elements_per_trial: int
    base_seed: int

    @staticmethod
    def for_torus(
        protocol: EqualityProtocol,
        x: np.ndarray,
        y: np.ndarray,
        base_seed: int = 0,
    ) -> "EqualityTrialRunner":
        """Plane runner for the Lemma 7.3 torus protocol on ``(x, y)``."""
        x = np.asarray(x)
        y = np.asarray(y)
        side = protocol.side
        with telemetry.span(
            "smp_plane.encode", codeword_bits=protocol.code.codeword_bits
        ) as sp:
            words = protocol.code.encode_many(np.stack([x, y]))
            sp.count("codewords", 2)
            padded = np.zeros((2, side * side), dtype=np.int64)
            padded[:, : words.shape[1]] = words
            tables = padded.reshape(2, side, side)
        equal = bool(np.array_equal(x, y))
        kernel = TorusVerdictKernel(
            table_a=tables[0],
            table_b=tables[1],
            side=side,
            chunk_length=protocol.chunk_length,
            equal=equal,
        )
        scalar = _TorusTrialExperiment(protocol=protocol, x=x, y=y, equal=equal)
        return EqualityTrialRunner(
            kernel=kernel,
            scalar=scalar,
            labels=("smp", "torus", side),
            elements_per_trial=4,
            base_seed=int(base_seed),
        )

    @staticmethod
    def for_reduction(
        protocol: TesterBasedEqualityProtocol,
        x: np.ndarray,
        y: np.ndarray,
        base_seed: int = 0,
    ) -> "EqualityTrialRunner":
        """Plane runner for the Theorem 7.1 reduction on ``(x, y)``."""
        x = np.asarray(x)
        y = np.asarray(y)
        mapping = protocol.mapping
        with telemetry.span(
            "smp_plane.encode", codeword_bits=mapping.code.codeword_bits
        ) as sp:
            # Both supports come from one batched encode: the support of
            # μ_X is 2i + X'_i, of μ_Y is 2i + (1 − Y'_i).
            words = mapping.code.encode_many(np.stack([x, y]))
            sp.count("codewords", 2)
            positions = 2 * np.arange(words.shape[1], dtype=np.int64)
            support_alice = positions + words[0]
            support_bob = positions + (1 - words[1])
        equal = bool(np.array_equal(x, y))
        q = int(protocol.tester.samples_required)
        kernel = ReductionVerdictKernel(
            support_alice=support_alice,
            support_bob=support_bob,
            tester=protocol.tester,
            q=q,
            equal=equal,
        )
        scalar = _ReductionTrialExperiment(
            protocol=protocol, x=x, y=y, equal=equal
        )
        return EqualityTrialRunner(
            kernel=kernel,
            scalar=scalar,
            labels=("smp", "bcg", mapping.domain_size),
            elements_per_trial=3 * q,
            base_seed=int(base_seed),
        )

    # -- per-seed API ---------------------------------------------------

    def verdicts_for_seeds(self, seeds) -> List[bool]:
        """Per-seed referee verdicts matching ``protocol.run(x, y, rng=seed)``.

        Each seed's draws consume a fresh ``ensure_rng(seed)`` exactly as
        the scalar path would, so verdict ``i`` is bit-identical to the
        scalar referee decision at ``seeds[i]``.
        """
        return [
            bool(self.kernel.accepts(ensure_rng(seed), 1)[0]) for seed in seeds
        ]

    # -- trial-engine APIs ---------------------------------------------

    def run_flags(
        self, trials: int, workers: int = 1, engine_check: float = 0.0
    ) -> np.ndarray:
        """Per-trial error flags via the chunk-keyed trial engine.

        Bit-identical to :meth:`scalar_flags` — same labels, same stream
        consumption.  ``engine_check`` ∈ [0, 1] re-runs that fraction of
        the trials (at least one; a prefix of the same stream) through
        the full scalar ``run()``, raising :class:`SimulationError` on
        any divergence.
        """
        if not 0.0 <= engine_check <= 1.0:
            raise ParameterError(
                f"engine_check must be in [0, 1], got {engine_check}"
            )
        flags = TrialRunner(base_seed=self.base_seed).run_flags_batched(
            self.kernel,
            trials,
            *self.labels,
            batch=auto_batch(self.elements_per_trial),
            workers=workers,
        )
        if engine_check > 0.0:
            checked = min(trials, max(1, int(round(engine_check * trials))))
            with telemetry.span("smp_plane.engine_check", trials=checked) as sp:
                scalar_flags = TrialRunner(base_seed=self.base_seed).run_flags(
                    self.scalar, checked, *self.labels
                )
                sp.count("checked", checked)
                if not np.array_equal(scalar_flags, flags[:checked]):
                    bad = np.flatnonzero(scalar_flags != flags[:checked])
                    raise SimulationError(
                        f"smp-plane verdicts diverge from the scalar "
                        f"protocol on trials {bad[:8].tolist()} of {checked} "
                        f"checked — bit-identity contract broken"
                    )
        return flags

    def scalar_flags(self, trials: int, workers: int = 1) -> np.ndarray:
        """The scalar route on the same chunk-keyed streams (full
        ``run()`` per trial, re-encoding and all)."""
        return TrialRunner(base_seed=self.base_seed).run_flags(
            self.scalar, trials, *self.labels, workers=workers
        )

    def error_rate(
        self, trials: int, workers: int = 1, engine_check: float = 0.0
    ) -> float:
        """Monte-Carlo error rate over :meth:`run_flags`."""
        flags = self.run_flags(
            trials, workers=workers, engine_check=engine_check
        )
        return float(flags.sum()) / trials

    def scalar_error_rate(self, trials: int, workers: int = 1) -> float:
        """Monte-Carlo error rate over :meth:`scalar_flags`."""
        flags = self.scalar_flags(trials, workers=workers)
        return float(flags.sum()) / trials
