"""The referee model of distributed testing (related work [1], §1.1).

The paper contrasts its 0-round model with the contemporaneous model of
Acharya–Canonne–Tyagi [ACT18]: ``k`` players hold **one sample each** and
send a *short* (``ℓ``-bit) message to a referee, who then decides with an
arbitrary function of the messages.  The focus there is the trade-off
between the number of players and the communication per player — roughly,
squeezing samples of a size-``n`` domain through ``ℓ`` bits costs extra
players.  This module implements the natural hash-and-test protocol in
that model so the trade-off can be *measured* (benchmark E13):

1. **Public randomness**: the referee draws a random balanced partition of
   ``[n]`` into ``B = 2^ℓ`` buckets and announces it (in [ACT18] terms,
   a public-coin protocol).
2. Each player sends the bucket index of its sample — exactly ``ℓ`` bits.
3. The referee now holds ``k`` i.i.d. samples of the **induced
   distribution** ``μ_B`` on ``[B]`` and runs a centralized
   collision-count uniformity test.

Distance contraction is the crux: a uniform ``μ`` induces a uniform
``μ_B`` exactly (balanced buckets), while an ε-far ``μ`` induces a
``μ_B`` that is ε′-far **on average** with ``ε′ ≈ ε·√(B/n)`` — random
bucketing cancels most of the deviation, and the √ law is the standard
second-moment heuristic ([ACT18] Lemma-style).  :func:`expected_induced_distance`
computes the exact contraction for a given ``μ`` by enumeration, and the
protocol calibrates its referee threshold to the conservative
``ε′ = κ·ε·√(B/n)`` with the empirically validated ``κ`` below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.baselines import CollisionCountTester
from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.smp._validation import check_trials

#: Conservative constant in the contraction law eps' = KAPPA * eps * sqrt(B/n).
#: Validated by tests on the certified far families (the measured mean
#: contraction constant is ~= 0.75-0.80 for Paninski-type deviations).
CONTRACTION_KAPPA = 0.5

#: Exact-enumeration cap for :func:`expected_induced_distance`: below this
#: many distinct balanced partitions the expectation is computed in closed
#: form over all of them instead of by Monte-Carlo sampling.
ENUMERATION_LIMIT = 20_000


def random_balanced_partition(
    n: int, buckets: int, rng: SeedLike = None
) -> np.ndarray:
    """A uniformly random balanced assignment ``[n] -> [buckets]``.

    Every bucket receives either ``⌊n/B⌋`` or ``⌈n/B⌉`` elements, so the
    uniform distribution on ``[n]`` induces an (almost exactly) uniform
    distribution on ``[B]`` — exactly uniform when ``B | n``.
    """
    if buckets < 2 or buckets > n:
        raise ParameterError(f"need 2 <= buckets <= n, got B={buckets}, n={n}")
    gen = ensure_rng(rng)
    assignment = np.arange(n, dtype=np.int64) % buckets
    gen.shuffle(assignment)
    return assignment


def induced_distribution(
    mu: DiscreteDistribution, partition: np.ndarray
) -> DiscreteDistribution:
    """The exact distribution of ``partition[X]`` for ``X ~ μ``."""
    if partition.shape != (mu.n,):
        raise ParameterError("partition must assign every domain element")
    buckets = int(partition.max()) + 1
    probs = np.zeros(buckets, dtype=np.float64)
    np.add.at(probs, partition, mu.probs)
    return DiscreteDistribution(probs, name=f"induced({mu.name},B={buckets})")


def _balanced_sizes(n: int, buckets: int) -> np.ndarray:
    """Bucket sizes of a balanced assignment (the multiset every random
    balanced partition realises)."""
    sizes = np.full(buckets, n // buckets, dtype=np.int64)
    sizes[: n % buckets] += 1
    return sizes


def balanced_partition_count(n: int, buckets: int) -> int:
    """Number of distinct balanced assignments ``[n] → [buckets]``: the
    multinomial coefficient ``n! / ∏ sizes!``."""
    total, remaining = 1, n
    for s in _balanced_sizes(n, buckets):
        total *= math.comb(remaining, int(s))
        remaining -= int(s)
    return total


def enumerate_balanced_partitions(n: int, buckets: int) -> np.ndarray:
    """All balanced assignments ``[n] → [buckets]`` as a ``(count, n)``
    matrix, in lexicographic order.

    Refuses (``ParameterError``) above :data:`ENUMERATION_LIMIT`
    assignments — the cap under which full enumeration is cheaper than
    any sampling error is worth.
    """
    if buckets < 2 or buckets > n:
        raise ParameterError(f"need 2 <= buckets <= n, got B={buckets}, n={n}")
    count = balanced_partition_count(n, buckets)
    if count > ENUMERATION_LIMIT:
        raise ParameterError(
            f"{count} balanced partitions exceed the enumeration limit "
            f"{ENUMERATION_LIMIT}; use the sampled estimator"
        )
    remaining = _balanced_sizes(n, buckets)
    out = np.empty((count, n), dtype=np.int64)
    assignment = np.empty(n, dtype=np.int64)
    row = 0

    def fill(pos: int) -> None:
        nonlocal row
        if pos == n:
            out[row] = assignment
            row += 1
            return
        for b in range(buckets):
            if remaining[b]:
                remaining[b] -= 1
                assignment[pos] = b
                fill(pos + 1)
                remaining[b] += 1

    fill(0)
    return out


def _partition_distances(
    mu: DiscreteDistribution, partitions: np.ndarray, buckets: int
) -> np.ndarray:
    """``‖μ_B − U_B‖₁`` for every row of a partition matrix, via one
    flat-index ``bincount`` scatter."""
    rows = partitions.shape[0]
    idx = partitions + buckets * np.arange(rows, dtype=np.int64)[:, None]
    weights = np.broadcast_to(mu.probs, partitions.shape)
    induced = np.bincount(
        idx.reshape(-1), weights=weights.reshape(-1), minlength=rows * buckets
    ).reshape(rows, buckets)
    return np.abs(induced - 1.0 / buckets).sum(axis=1)


def expected_induced_distance(
    mu: DiscreteDistribution,
    buckets: int,
    trials: int,
    rng: SeedLike = None,
    method: str = "auto",
) -> Tuple[float, float]:
    """Mean and min of ``‖μ_B − U_B‖₁`` over balanced partitions.

    Used to validate the √(B/n) contraction law and to calibrate
    :data:`CONTRACTION_KAPPA`.  With ``method="exact"`` the mean and min
    are computed over *all* balanced partitions (exact expectation, no
    Monte-Carlo noise, ``trials`` ignored beyond validation); with
    ``method="sampled"`` over ``trials`` random partitions drawn in
    vectorised batches.  The default ``"auto"`` picks exact whenever the
    partition count fits under :data:`ENUMERATION_LIMIT`.
    """
    trials = check_trials(trials)
    if method not in ("auto", "exact", "sampled"):
        raise ParameterError(
            f"method must be 'auto', 'exact' or 'sampled', got {method!r}"
        )
    if buckets < 2 or buckets > mu.n:
        raise ParameterError(
            f"need 2 <= buckets <= n, got B={buckets}, n={mu.n}"
        )
    if method == "auto":
        exact = balanced_partition_count(mu.n, buckets) <= ENUMERATION_LIMIT
        method = "exact" if exact else "sampled"
    if method == "exact":
        partitions = enumerate_balanced_partitions(mu.n, buckets)
        distances = _partition_distances(mu, partitions, buckets)
        return float(distances.mean()), float(distances.min())
    gen = ensure_rng(rng)
    base = np.arange(mu.n, dtype=np.int64) % buckets
    chunk_cap = max(1, (1 << 20) // mu.n)
    total, best, done = 0.0, math.inf, 0
    while done < trials:
        chunk = min(chunk_cap, trials - done)
        partitions = gen.permuted(np.tile(base, (chunk, 1)), axis=1)
        distances = _partition_distances(mu, partitions, buckets)
        total += float(distances.sum())
        best = min(best, float(distances.min()))
        done += chunk
    return total / trials, best


@dataclass(frozen=True)
class RefereeProtocol:
    """Hash-and-test uniformity testing in the referee model.

    Attributes
    ----------
    n:
        Domain size.
    eps:
        Distance parameter of the original problem.
    message_bits:
        Bits per player ``ℓ``; the bucket count is ``B = 2^ℓ`` (capped at
        ``n``).
    players:
        Number of players ``k`` (one sample each).

    Notes
    -----
    The referee's test targets the contracted distance
    ``ε′ = κ·ε·√(B/n)``; constant error then needs
    ``k = Θ(√B/ε′²) = Θ(n/(ε²·√B))`` players — *decreasing* in the
    message size.  That inverse trade-off (more bits per player ⇒ fewer
    players) is [ACT18]'s headline, measured by benchmark E13.
    """

    n: int
    eps: float
    message_bits: int
    players: int

    def __post_init__(self) -> None:
        if self.message_bits < 1:
            raise ParameterError(f"message_bits must be >= 1, got {self.message_bits}")
        if self.players < 2:
            raise ParameterError(f"players must be >= 2, got {self.players}")
        if not 0.0 < self.eps < 2.0:
            raise ParameterError(f"eps must be in (0, 2), got {self.eps}")
        if self.buckets > self.n:
            raise ParameterError(
                f"2^{self.message_bits} buckets exceed the domain n={self.n}; "
                "players may as well send raw samples"
            )

    @property
    def buckets(self) -> int:
        """``B = 2^ℓ``."""
        return 1 << self.message_bits

    @property
    def contracted_eps(self) -> float:
        """The referee's working distance ``ε′ = κ·ε·√(B/n)``."""
        return CONTRACTION_KAPPA * self.eps * math.sqrt(self.buckets / self.n)

    @property
    def total_communication_bits(self) -> int:
        """``k · ℓ`` bits arriving at the referee."""
        return self.players * self.message_bits

    @staticmethod
    def players_needed(n: int, eps: float, message_bits: int, constant: float = 4.0) -> int:
        """The ``k = Θ(√B/ε′²)`` player count for constant error."""
        buckets = 1 << message_bits
        eps_prime = CONTRACTION_KAPPA * eps * math.sqrt(buckets / n)
        return max(2, int(math.ceil(constant * math.sqrt(buckets) / eps_prime**2)))

    def run(self, mu: DiscreteDistribution, rng: SeedLike = None) -> bool:
        """One protocol execution; ``True`` = referee says uniform.

        The partition draw is the public randomness; each player's sample
        and the bucketing of it are private.
        """
        if mu.n != self.n:
            raise ParameterError(f"protocol built for n={self.n}, got {mu.n}")
        gen = ensure_rng(rng)
        partition = random_balanced_partition(self.n, self.buckets, gen)
        samples = mu.sample(self.players, gen)
        messages = partition[samples]  # what the referee receives
        referee = CollisionCountTester(
            n=self.buckets, s=self.players, eps=self.contracted_eps
        )
        return referee.decide(messages)

    def estimate_error(
        self,
        mu: DiscreteDistribution,
        is_uniform: bool,
        trials: int,
        rng: SeedLike = None,
    ) -> float:
        """Monte-Carlo error rate over full executions (fresh public coins
        every trial)."""
        trials = check_trials(trials)
        gen = ensure_rng(rng)
        errors = 0
        for _ in range(trials):
            if self.run(mu, gen) != is_uniform:
                errors += 1
        return errors / trials
