"""The Lemma 7.3 SMP Equality protocol (torus chunks over a good code).

Setting: Alice holds ``X``, Bob holds ``Y`` (``n`` bits each); each sends
one message to a referee who outputs Equal / Not-equal.  Target error
regime: perfect acceptance when ``X = Y``, rejection probability at least
``τδ`` when ``X ≠ Y`` — the asymmetric regime of Theorem 7.2, matched by
this protocol's ``O(√(τδn))`` worst-case bits.

Protocol:

1. Both encode their input with a constant-rate code of certified relative
   distance ``Δ`` and lay the codeword out as an ``L × L`` torus
   (zero-padded; padding positions agree so they never cause rejection).
2. Alice picks a uniformly random cell and sends a **vertical** chunk of
   ``t`` wrapped cells starting there; Bob sends a **horizontal** chunk.
3. The chunks cross in at most one cell; if they do, the referee compares
   the two bits and rejects on a mismatch, otherwise accepts.

The crossing cell is uniform on the torus, so for ``X ≠ Y`` the rejection
probability is ``(t/L)² · (#differing cells)/L² ≥ (t²/L²) · Δ·m/L²``;
choosing ``t = ⌈L²·√(τδ / (Δ·m))⌉`` meets the ``τδ`` target with
communication ``t + 2⌈log₂ L⌉`` bits per player.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import CodingError, ParameterError
from repro.rng import SeedLike, ensure_rng
from repro.smp._validation import check_message_bits, check_trials
from repro.smp.codes import ConcatenatedCode


@dataclass(frozen=True)
class TorusChunkMessage:
    """One player's message: a start cell and ``t`` chunk bits."""

    row: int
    col: int
    bits: Tuple[int, ...]

    def size_in_bits(self, side: int) -> int:
        """Declared communication cost: coordinates + chunk."""
        coord_bits = max(1, math.ceil(math.log2(side)))
        return 2 * coord_bits + len(self.bits)


@dataclass(frozen=True)
class EqualityProtocol:
    """Runnable Lemma 7.3 protocol for ``n_bits``-bit inputs.

    Examples
    --------
    >>> proto = EqualityProtocol.build(n_bits=256, delta=0.05, tau=2.0)
    >>> proto.chunk_length >= 1
    True
    """

    code: ConcatenatedCode
    side: int
    chunk_length: int
    delta: float
    tau: float

    @staticmethod
    def build(
        n_bits: int,
        delta: float,
        tau: float,
        code: Optional[ConcatenatedCode] = None,
    ) -> "EqualityProtocol":
        """Construct the protocol for the given error regime.

        Raises
        ------
        ParameterError
            If ``τδ`` exceeds what even full-row/column chunks achieve
            (rejection is capped by the code's effective distance).
        """
        n_bits = check_message_bits(n_bits)
        if not 0.0 < delta < 1.0 or tau <= 1.0:
            raise ParameterError(f"need delta in (0,1), tau > 1; got {(delta, tau)}")
        the_code = code or ConcatenatedCode.for_message_bits(n_bits)
        if the_code.message_bits < n_bits:
            raise CodingError(
                f"code carries {the_code.message_bits} bits < input {n_bits}"
            )
        m = the_code.codeword_bits
        side = int(math.ceil(math.sqrt(m)))
        # Effective distance on the padded torus: >= Delta*m out of side^2.
        diff_cells = the_code.relative_distance * m
        target = tau * delta
        # reject prob = (t/side)^2 * diff_cells/side^2  =>  solve for t.
        t = int(math.ceil(math.sqrt(target * side**4 / diff_cells)))
        if t > side:
            raise ParameterError(
                f"tau*delta={target:.4g} exceeds the protocol's maximum "
                f"rejection {diff_cells / side**2:.4g} at full chunks; "
                "use a lower tau*delta or a longer code"
            )
        return EqualityProtocol(
            code=the_code,
            side=side,
            chunk_length=max(1, t),
            delta=delta,
            tau=tau,
        )

    # ------------------------------------------------------------------
    # Predicted quantities
    # ------------------------------------------------------------------

    @property
    def communication_bits(self) -> int:
        """Worst-case bits per player (the Lemma 7.3 headline)."""
        coord_bits = max(1, math.ceil(math.log2(self.side)))
        return 2 * coord_bits + self.chunk_length

    @property
    def rejection_probability_bound(self) -> float:
        """Guaranteed rejection probability for any unequal inputs."""
        diff_cells = self.code.relative_distance * self.code.codeword_bits
        return (self.chunk_length / self.side) ** 2 * diff_cells / self.side**2

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _torus(self, input_bits: np.ndarray) -> np.ndarray:
        word = self.code.encode(input_bits)
        padded = np.zeros(self.side * self.side, dtype=np.int64)
        padded[: word.size] = word
        return padded.reshape(self.side, self.side)

    def alice_message(self, x: np.ndarray, rng: SeedLike = None) -> TorusChunkMessage:
        """Alice's vertical chunk from a random start cell."""
        gen = ensure_rng(rng)
        table = self._torus(x)
        row = int(gen.integers(self.side))
        col = int(gen.integers(self.side))
        rows = (row + np.arange(self.chunk_length)) % self.side
        return TorusChunkMessage(
            row=row, col=col, bits=tuple(int(b) for b in table[rows, col])
        )

    def bob_message(self, y: np.ndarray, rng: SeedLike = None) -> TorusChunkMessage:
        """Bob's horizontal chunk from a random start cell."""
        gen = ensure_rng(rng)
        table = self._torus(y)
        row = int(gen.integers(self.side))
        col = int(gen.integers(self.side))
        cols = (col + np.arange(self.chunk_length)) % self.side
        return TorusChunkMessage(
            row=row, col=col, bits=tuple(int(b) for b in table[row, cols])
        )

    def referee(self, alice: TorusChunkMessage, bob: TorusChunkMessage) -> bool:
        """Referee decision: ``True`` = accept (equal).

        The chunks cross iff Bob's row lies in Alice's row range and
        Alice's column lies in Bob's column range (mod the torus); on a
        crossing, compare the two copies of that cell.
        """
        row_offset = (bob.row - alice.row) % self.side
        col_offset = (alice.col - bob.col) % self.side
        if row_offset >= self.chunk_length or col_offset >= self.chunk_length:
            return True
        return alice.bits[row_offset] == bob.bits[col_offset]

    def run(
        self, x: np.ndarray, y: np.ndarray, rng: SeedLike = None
    ) -> Tuple[bool, int]:
        """One protocol execution; returns ``(accepted, max message bits)``."""
        gen = ensure_rng(rng)
        msg_a = self.alice_message(x, gen)
        msg_b = self.bob_message(y, gen)
        cost = max(msg_a.size_in_bits(self.side), msg_b.size_in_bits(self.side))
        return self.referee(msg_a, msg_b), cost

    def estimate_rejection(
        self, x: np.ndarray, y: np.ndarray, trials: int, rng: SeedLike = None
    ) -> float:
        """Monte-Carlo rejection rate on the input pair ``(x, y)``.

        Encodes once and replays the chunk choices — equivalent to full
        executions because the encoding is deterministic.
        """
        trials = check_trials(trials)
        gen = ensure_rng(rng)
        table_a = self._torus(np.asarray(x))
        table_b = self._torus(np.asarray(y))
        side, t = self.side, self.chunk_length
        a_rows = gen.integers(0, side, size=trials)
        a_cols = gen.integers(0, side, size=trials)
        b_rows = gen.integers(0, side, size=trials)
        b_cols = gen.integers(0, side, size=trials)
        row_off = (b_rows - a_rows) % side
        col_off = (a_cols - b_cols) % side
        crossing = (row_off < t) & (col_off < t)
        rejected = 0
        if crossing.any():
            rows = b_rows[crossing]
            cols = a_cols[crossing]
            rejected = int(
                (table_a[rows, cols] != table_b[rows, cols]).sum()
            )
        return rejected / trials

    def estimate_error(
        self,
        x: np.ndarray,
        y: np.ndarray,
        trials: int,
        rng: SeedLike = None,
        workers: int = 1,
        fast_path: bool = True,
        engine_check: float = 0.0,
    ) -> float:
        """Monte-Carlo error rate on ``(x, y)``: fraction of trials whose
        referee verdict disagrees with the ground truth ``x == y``.

        With a seed-like ``rng`` (``None`` or an int) the trials run on
        the chunk-keyed trial engine; ``fast_path=True`` (the default)
        routes them through the vectorised
        :class:`~repro.smp.smp_plane.EqualityTrialRunner` — bit-identical
        flags per seed, with ``engine_check`` re-running that fraction of
        the trials through the scalar :meth:`run` and raising
        :class:`~repro.exceptions.SimulationError` on divergence.  A live
        ``Generator`` keeps the legacy sequential loop (and requires
        ``fast_path=False``).
        """
        trials = check_trials(trials)
        if rng is None or isinstance(rng, (int, np.integer)):
            from repro.smp.smp_plane import EqualityTrialRunner

            runner = EqualityTrialRunner.for_torus(
                self, x, y, base_seed=0 if rng is None else int(rng)
            )
            if fast_path:
                return runner.error_rate(
                    trials, workers=workers, engine_check=engine_check
                )
            return runner.scalar_error_rate(trials, workers=workers)
        if fast_path:
            raise ParameterError(
                "fast_path needs a seed-like rng (None or int): the trial "
                "plane replays chunk-keyed streams, not a shared Generator"
            )
        gen = ensure_rng(rng)
        equal = bool(np.array_equal(np.asarray(x), np.asarray(y)))
        errors = 0
        for _ in range(trials):
            accepted, _ = self.run(x, y, gen)
            if accepted != equal:
                errors += 1
        return errors / trials
