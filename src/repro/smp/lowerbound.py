"""Quantitative lower-bound machinery (Section 7 / Lemma 2.1).

The chain of the paper's Theorem 1.3:

1. An anonymous 0-round tester with network error ≤ 1/3 forces every node
   to be a ``(δ, α)``-gap tester with
   ``δ ≤ 1 − (2/3)^{1/k}`` and ``αδ ≥ 1 − (1/3)^{1/k}``
   (:func:`anonymous_tester_requirements` — in particular ``α > 5/4``).
2. Corollary 7.4: such a tester needs ``Ω(√(f(α)δn)/log n)`` samples,
   via the Theorem 7.1 reduction and the Theorem 7.2 Equality bound.
3. Lemma 2.1 is the information backbone: distinguishing acceptance rates
   ``1−δ`` vs ``1−τδ`` costs KL divergence at least ``(δ/4)·f(τ)``
   (:func:`verify_kl_separation` checks the inequality numerically).

The closed-form curves live in :mod:`repro.core.bounds`; this module adds
the pieces tied to the SMP argument.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.bounds import f_tau
from repro.distributions.distances import bernoulli_kl
from repro.exceptions import ParameterError


def anonymous_tester_requirements(k: int, p: float = 1.0 / 3.0) -> Tuple[float, float]:
    """Per-node ``(δ_max, α_min)`` forced by a network error ≤ *p*.

    From the proof of Theorem 1.3: an anonymous AND-rule network of ``k``
    nodes accepting uniform w.p. ≥ 1−p needs per-node rejection
    ``δ ≤ 1 − (1−p)^{1/k}``, and rejecting far inputs w.p. ≥ 1−p needs
    ``αδ ≥ 1 − p^{1/k}``; the ratio bound is ``α_min``.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if not 0.0 < p < 0.5:
        raise ParameterError(f"p must be in (0, 1/2), got {p}")
    delta_max = 1.0 - (1.0 - p) ** (1.0 / k)
    alpha_min = (1.0 - p ** (1.0 / k)) / delta_max
    return delta_max, alpha_min


def verify_kl_separation(delta: float, tau: float) -> Tuple[float, float]:
    """Both sides of Lemma 2.1: returns ``(exact_KL, lower_bound)``.

    ``exact_KL = D(B_{1−δ} ‖ B_{1−τδ})`` and
    ``lower_bound = (δ/4)·(τ − 1 − ln τ)``; the lemma asserts
    ``exact_KL ≥ lower_bound`` for ``δ ∈ (0, 1/4)``, ``τ ∈ (1, 1/δ)``.
    """
    if not 0.0 < delta < 0.25:
        raise ParameterError(f"delta must be in (0, 1/4), got {delta}")
    if not 1.0 < tau < 1.0 / delta:
        raise ParameterError(f"tau must be in (1, 1/delta), got {tau}")
    exact = bernoulli_kl(1.0 - delta, 1.0 - tau * delta)
    bound = delta / 4.0 * f_tau(tau)
    return exact, bound
