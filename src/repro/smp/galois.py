"""Finite-field arithmetic GF(2^q) via log/antilog tables.

Small, dependency-free implementation sufficient for the Reed–Solomon
outer code: supports ``q ≤ 16`` with standard primitive polynomials.
Elements are plain ints in ``[0, 2^q)``; addition is XOR.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import CodingError

#: Primitive polynomials (including the x^q term) for supported extensions.
_PRIMITIVE_POLYS: Dict[int, int] = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,  # x^8 + x^4 + x^3 + x^2 + 1 (the AES-adjacent classic)
    9: 0b1000010001,
    10: 0b10000001001,
    12: 0b1000001010011,
    16: 0b10001000000001011,
}


class GF:
    """The field GF(2^q).

    Examples
    --------
    >>> f = GF(8)
    >>> f.mul(7, 11) == f.mul(11, 7)
    True
    >>> f.mul(7, f.inv(7))
    1
    """

    def __init__(self, q: int) -> None:
        if q not in _PRIMITIVE_POLYS:
            supported = sorted(_PRIMITIVE_POLYS)
            raise CodingError(f"GF(2^{q}) unsupported; q must be one of {supported}")
        self.q = q
        self.order = 1 << q
        poly = _PRIMITIVE_POLYS[q]
        exp: List[int] = [0] * (2 * self.order)
        log: List[int] = [0] * self.order
        x = 1
        for i in range(self.order - 1):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.order:
                x ^= poly
        if x != 1:
            raise CodingError(f"polynomial {poly:#x} is not primitive for q={q}")
        for i in range(self.order - 1, 2 * self.order):
            exp[i] = exp[i - (self.order - 1)]
        self._exp = np.asarray(exp, dtype=np.int64)
        self._log = np.asarray(log, dtype=np.int64)

    def _check(self, *elements: int) -> None:
        for e in elements:
            if not 0 <= e < self.order:
                raise CodingError(f"element {e} outside GF(2^{self.q})")

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction): XOR."""
        self._check(a, b)
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via the log tables."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        self._check(a)
        if a == 0:
            raise CodingError("zero has no inverse")
        return int(self._exp[(self.order - 1) - self._log[a]])

    def pow(self, a: int, e: int) -> int:
        """``a^e`` with ``0^0 = 1``."""
        self._check(a)
        if e < 0:
            return self.pow(self.inv(a), -e)
        if a == 0:
            return 1 if e == 0 else 0
        return int(self._exp[(self._log[a] * e) % (self.order - 1)])

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise vector multiplication (vectorised log tables)."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        nz = (a != 0) & (b != 0)
        av, bv = np.broadcast_arrays(a, b)
        out[nz] = self._exp[self._log[av[nz]] + self._log[bv[nz]]]
        return out

    def poly_eval(self, coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial with the given coefficient vector
        (lowest degree first) at each point, via Horner's rule."""
        points = np.asarray(points, dtype=np.int64)
        acc = np.zeros(points.shape, dtype=np.int64)
        for coeff in np.asarray(coefficients, dtype=np.int64)[::-1]:
            acc = self.mul_vec(acc, points) ^ int(coeff)
        return acc

    # ------------------------------------------------------------------
    # Batched kernels (the SMP-plane fast path)
    # ------------------------------------------------------------------

    def _check_array(self, a: np.ndarray) -> np.ndarray:
        arr = np.asarray(a, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.order):
            raise CodingError(f"array elements outside GF(2^{self.q})")
        return arr

    def mul_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Field matrix product ``(rows, k) @ (k, cols)`` with XOR accumulation.

        The GF analogue of ``a @ b``: entry ``(r, c)`` is
        ``⊕_i mul(a[r, i], b[i, c])``.  Accumulated one rank-1 outer
        product per inner index via the vectorised log tables, so the
        working set stays at ``rows × cols`` — element-identical to the
        scalar :meth:`mul`/:meth:`add` loop.
        """
        av = self._check_array(a)
        bv = self._check_array(b)
        if av.ndim != 2 or bv.ndim != 2 or av.shape[1] != bv.shape[0]:
            raise CodingError(
                f"mul_matrix needs (rows, k) x (k, cols), got "
                f"{av.shape} x {bv.shape}"
            )
        acc = np.zeros((av.shape[0], bv.shape[1]), dtype=np.int64)
        for i in range(av.shape[1]):
            acc ^= self.mul_vec(av[:, i : i + 1], bv[i, :])
        return acc

    def power_table(self, points: np.ndarray, degree: int) -> np.ndarray:
        """Vandermonde power table ``T[i, j] = points[j]^i`` for ``i < degree``.

        Built in one shot from the log/antilog tables
        (``exp[(i · log p) mod (2^q − 1)]``), with the ``0^0 = 1`` /
        ``0^i = 0`` convention of :meth:`pow` patched in explicitly.
        """
        if degree < 1:
            raise CodingError(f"degree must be >= 1, got {degree}")
        pts = self._check_array(points)
        if pts.ndim != 1:
            raise CodingError(f"points must be a vector, got shape {pts.shape}")
        exponents = np.arange(degree, dtype=np.int64)[:, None]
        table = self._exp[(exponents * self._log[pts][None, :]) % (self.order - 1)]
        table[0, :] = 1
        if degree > 1:
            table[1:, pts == 0] = 0
        return table

    def poly_eval_many(
        self, coefficients: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Evaluate a whole batch of polynomials at the same points.

        ``coefficients`` has shape ``(batch, k)`` (lowest degree first,
        one polynomial per row); the result has shape
        ``(batch, len(points))`` and is element-identical to calling
        :meth:`poly_eval` row by row — but instead of ``k`` Python-level
        Horner steps per row it is a single :meth:`mul_matrix` against
        the :meth:`power_table` of the evaluation points.
        """
        coeffs = self._check_array(coefficients)
        if coeffs.ndim != 2:
            raise CodingError(
                f"coefficients must be a (batch, k) matrix, got shape "
                f"{coeffs.shape}"
            )
        return self.mul_matrix(coeffs, self.power_table(points, coeffs.shape[1]))
