"""Experiment harness: seeded trials, error estimation, tables, sweeps.

Shared infrastructure for the benchmark suite (``benchmarks/bench_e*.py``)
and the examples:

- :mod:`repro.experiments.stats` — Monte-Carlo error estimation with
  Wilson confidence intervals, and the empirical sample-complexity search
  used to sandwich measured costs between the paper's bounds.
- :mod:`repro.experiments.runner` — the batched, parallel Monte-Carlo
  trial engine: deterministic per-configuration chunk streams keyed by
  (seed, labels, chunk), with serial, vectorised and process-pool paths
  that produce bit-identical results.
- :mod:`repro.experiments.tables` — plain-ASCII table rendering for
  benchmark output (the repo's stand-in for the paper's tables).
- :mod:`repro.experiments.sweeps` — parameter grids and log-log slope
  fitting for scaling-shape checks (e.g. "samples ∝ k^{−1/2}").
- :mod:`repro.experiments.robustness` — fault-grid sweeps of the
  hardened CONGEST tester: error rate vs drop probability and crash
  fraction, with the engine's fault counters alongside.
"""

from repro.experiments.runner import (
    TRIAL_CHUNK,
    TrialRunner,
    estimate_probability,
    estimate_probability_batched,
)
from repro.experiments.stats import (
    ErrorEstimate,
    empirical_sample_complexity,
    estimate,
    wilson_interval,
)
from repro.experiments.robustness import (
    RobustnessPoint,
    make_topology,
    robustness_sweep,
)
from repro.experiments.sweeps import (
    geometric_grid,
    geometric_int_grid,
    loglog_slope,
    relative_spread,
)
from repro.experiments.tables import Table

__all__ = [
    "TRIAL_CHUNK",
    "TrialRunner",
    "estimate_probability",
    "estimate_probability_batched",
    "ErrorEstimate",
    "estimate",
    "wilson_interval",
    "empirical_sample_complexity",
    "Table",
    "RobustnessPoint",
    "make_topology",
    "robustness_sweep",
    "geometric_grid",
    "geometric_int_grid",
    "loglog_slope",
    "relative_spread",
]
