"""Deterministic trial loops.

Every benchmark measurement reduces to "run this boolean experiment T
times and count failures".  :class:`TrialRunner` keys every trial's
randomness to ``(base seed, configuration labels, trial index)`` via
:func:`repro.rng.derive`, so a single sweep point can be re-run in
isolation and reproduce exactly — independent of sweep order or
parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.exceptions import ParameterError
from repro.experiments.stats import ErrorEstimate, estimate
from repro.rng import derive


@dataclass(frozen=True)
class TrialRunner:
    """Runs seeded boolean trials for one experiment.

    Parameters
    ----------
    base_seed:
        Root seed of the whole experiment.
    """

    base_seed: int

    def error_rate(
        self,
        experiment: Callable[[np.random.Generator], bool],
        trials: int,
        *labels: Union[str, int],
    ) -> ErrorEstimate:
        """Fraction of trials where *experiment* returns ``True`` (= error).

        Each trial receives a generator derived from
        ``(base_seed, *labels, trial_index)``.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        failures = 0
        for t in range(trials):
            rng = derive(self.base_seed, *labels, t)
            if experiment(rng):
                failures += 1
        return estimate(failures, trials)


def estimate_probability(
    experiment: Callable[[np.random.Generator], bool],
    trials: int,
    seed: int = 0,
) -> ErrorEstimate:
    """One-off convenience wrapper around :class:`TrialRunner`."""
    return TrialRunner(base_seed=seed).error_rate(experiment, trials, "adhoc")
