"""The batched, parallel Monte-Carlo trial engine.

Every benchmark measurement reduces to "run this boolean experiment T
times and count failures".  :class:`TrialRunner` executes those trials
serially, in vectorised batches, or across a process pool — all three
paths producing **bit-identical** results for a fixed ``base_seed``.

Reproducibility model
---------------------
Trials are partitioned into fixed *chunks* of :data:`TRIAL_CHUNK` trials.
Chunk ``c`` of a configuration draws all of its randomness from one
generator keyed by ``(base_seed, *labels, c)`` via :func:`repro.rng.derive`;
trials inside a chunk consume that stream sequentially.  Because the chunk
quantum is an engine constant — *not* the user-facing ``batch`` or
``workers`` knobs — the stream each trial sees is independent of how the
work is batched or scheduled:

- ``batch`` only caps how many trials a vectorised experiment handles per
  call, and calls never straddle a chunk boundary.  numpy ``Generator``
  streams are consumed strictly sequentially, so splitting a chunk into
  smaller calls yields the same draws (a property the test suite pins).
- ``workers`` only decides *where* a chunk executes; every worker re-derives
  its chunk generator from ``(base_seed, labels, chunk_index)``, so results
  are invariant to worker count and scheduling order.
- any single chunk (and hence any sweep point) can be re-run in isolation
  and reproduce exactly, independent of sweep order.

A *scalar* experiment maps ``rng -> bool`` (True = failure); a *batched*
experiment maps ``(rng, count) -> bool[count]``.  A scalar/batched pair
that consumes the generator identically (e.g. one network trial vs. the
matrix kernel over many — see :mod:`repro.zeroround.network`) produces
bit-identical failure flags through either API.

For multi-process execution the experiment callable must be picklable:
use a module-level function or a frozen dataclass with ``__call__`` (the
kernels in :mod:`repro.zeroround.network` are), not a local closure.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.exceptions import ParameterError
from repro.experiments.stats import ErrorEstimate, estimate
from repro.rng import derive

#: Trials per randomness chunk.  This is the engine's reproducibility
#: quantum: changing it re-keys every stream, so it is a constant, not a
#: parameter.  ``batch``/``workers`` never affect results; this would.
TRIAL_CHUNK = 1024

Label = Union[str, int]
ScalarExperiment = Callable[[np.random.Generator], bool]
BatchedExperiment = Callable[[np.random.Generator, int], np.ndarray]


def _chunk_lengths(trials: int) -> List[int]:
    """Lengths of the fixed-quantum chunks covering ``trials`` trials."""
    full, rest = divmod(trials, TRIAL_CHUNK)
    return [TRIAL_CHUNK] * full + ([rest] if rest else [])


def _run_scalar_chunk(
    experiment: ScalarExperiment,
    base_seed: int,
    labels: Tuple[Label, ...],
    chunk_index: int,
    length: int,
) -> np.ndarray:
    """Failure flags for one chunk, scalar experiment, shared chunk stream."""
    rng = derive(base_seed, *labels, chunk_index)
    flags = np.empty(length, dtype=bool)
    for t in range(length):
        flags[t] = bool(experiment(rng))
    return flags


def _run_batched_chunk(
    experiment: BatchedExperiment,
    base_seed: int,
    labels: Tuple[Label, ...],
    chunk_index: int,
    length: int,
    batch: int,
) -> np.ndarray:
    """Failure flags for one chunk, vectorised experiment, batch-capped calls."""
    rng = derive(base_seed, *labels, chunk_index)
    flags = np.empty(length, dtype=bool)
    pos = 0
    while pos < length:
        m = min(batch, length - pos)
        out = np.asarray(experiment(rng, m), dtype=bool)
        if out.shape != (m,):
            raise ParameterError(
                f"batched experiment returned shape {out.shape} for count={m}"
            )
        flags[pos : pos + m] = out
        pos += m
    return flags


def _scalar_task(args) -> Tuple[int, np.ndarray]:
    experiment, base_seed, labels, chunk_index, length = args
    return chunk_index, _run_scalar_chunk(experiment, base_seed, labels, chunk_index, length)


def _batched_task(args) -> Tuple[int, np.ndarray]:
    experiment, base_seed, labels, chunk_index, length, batch = args
    return chunk_index, _run_batched_chunk(
        experiment, base_seed, labels, chunk_index, length, batch
    )


def _gather(
    task: Callable[[tuple], Tuple[int, np.ndarray]],
    arglist: Sequence[tuple],
    workers: int,
) -> np.ndarray:
    """Run chunk tasks in-process or on a pool; reassemble in chunk order."""
    if workers <= 1 or len(arglist) <= 1:
        if telemetry.enabled():
            # One span per chunk (args[3] = chunk index, args[4] = length).
            # Pool chunks are not traced — workers carry no tracer — but
            # the caller's enclosing span still accounts their wall time.
            parts = []
            for args in arglist:
                with telemetry.span(
                    "trials.chunk", chunk=args[3], trials=args[4]
                ) as sp:
                    part = task(args)
                    sp.count("failures", int(part[1].sum()))
                parts.append(part)
        else:
            parts = [task(args) for args in arglist]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(arglist))) as pool:
            parts = list(pool.map(task, arglist))
    parts.sort(key=lambda item: item[0])
    return np.concatenate([flags for _, flags in parts])


@dataclass(frozen=True)
class TrialRunner:
    """Runs seeded boolean trials for one experiment.

    Parameters
    ----------
    base_seed:
        Root seed of the whole experiment.  Together with the configuration
        labels it fully determines every trial's randomness (see the module
        docstring for the chunk keying scheme).
    """

    base_seed: int

    # -- flag-level API (bit-for-bit comparable) -----------------------

    def run_flags(
        self,
        experiment: ScalarExperiment,
        trials: int,
        *labels: Label,
        workers: int = 1,
    ) -> np.ndarray:
        """Per-trial failure flags for a scalar experiment.

        Trial ``t`` draws from the stream of its chunk ``t // TRIAL_CHUNK``,
        keyed by ``(base_seed, *labels, chunk)``.  ``workers > 1`` fans the
        chunks out over a process pool with identical results.
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        arglist = [
            (experiment, self.base_seed, labels, c, length)
            for c, length in enumerate(_chunk_lengths(trials))
        ]
        with telemetry.span(
            "trials.run",
            mode="scalar",
            labels=list(labels),
            workers=workers,
        ) as sp:
            flags = _gather(_scalar_task, arglist, workers)
            sp.count("trials", trials)
            sp.count("failures", int(flags.sum()))
        return flags

    def run_flags_batched(
        self,
        experiment: BatchedExperiment,
        trials: int,
        *labels: Label,
        batch: int = TRIAL_CHUNK,
        workers: int = 1,
    ) -> np.ndarray:
        """Per-trial failure flags for a vectorised ``(rng, count)`` experiment.

        Bit-identical to :meth:`run_flags` of the matching scalar experiment,
        and invariant to ``batch`` and ``workers`` (see module docstring).
        """
        if trials < 1:
            raise ParameterError(f"trials must be >= 1, got {trials}")
        if batch < 1:
            raise ParameterError(f"batch must be >= 1, got {batch}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        arglist = [
            (experiment, self.base_seed, labels, c, length, batch)
            for c, length in enumerate(_chunk_lengths(trials))
        ]
        with telemetry.span(
            "trials.run",
            mode="batched",
            labels=list(labels),
            batch=batch,
            workers=workers,
        ) as sp:
            flags = _gather(_batched_task, arglist, workers)
            sp.count("trials", trials)
            sp.count("failures", int(flags.sum()))
        return flags

    # -- rate-level API ------------------------------------------------

    def error_rate(
        self,
        experiment: ScalarExperiment,
        trials: int,
        *labels: Label,
        workers: int = 1,
    ) -> ErrorEstimate:
        """Fraction of trials where *experiment* returns ``True`` (= error)."""
        flags = self.run_flags(experiment, trials, *labels, workers=workers)
        return estimate(int(flags.sum()), trials)

    def error_rate_batched(
        self,
        experiment: BatchedExperiment,
        trials: int,
        *labels: Label,
        batch: int = TRIAL_CHUNK,
        workers: int = 1,
    ) -> ErrorEstimate:
        """Error rate via the vectorised experiment API.

        1–2 orders of magnitude faster than :meth:`error_rate` for kernels
        that sample whole trial batches in one numpy call.
        """
        flags = self.run_flags_batched(
            experiment, trials, *labels, batch=batch, workers=workers
        )
        return estimate(int(flags.sum()), trials)


def estimate_probability(
    experiment: ScalarExperiment,
    trials: int,
    seed: int = 0,
    workers: int = 1,
) -> ErrorEstimate:
    """One-off convenience wrapper around :class:`TrialRunner`."""
    return TrialRunner(base_seed=seed).error_rate(
        experiment, trials, "adhoc", workers=workers
    )


def estimate_probability_batched(
    experiment: BatchedExperiment,
    trials: int,
    seed: int = 0,
    batch: int = TRIAL_CHUNK,
    workers: int = 1,
) -> ErrorEstimate:
    """One-off convenience wrapper around :meth:`TrialRunner.error_rate_batched`."""
    return TrialRunner(base_seed=seed).error_rate_batched(
        experiment, trials, "adhoc", batch=batch, workers=workers
    )
