"""Statistical helpers for the experiment harness.

Monte-Carlo estimates of error probabilities come with Wilson confidence
intervals so benchmark tables can state "error ≤ 1/3" with an uncertainty
attached, and :func:`empirical_sample_complexity` binary-searches the
smallest sample count at which a tester family reaches a target error —
the measured curve that the paper's upper/lower bounds must sandwich
(benchmark E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class ErrorEstimate:
    """A Monte-Carlo error-rate estimate with its Wilson 95% interval."""

    failures: int
    trials: int
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ParameterError(f"trials must be >= 1, got {self.trials}")
        if not 0 <= self.failures <= self.trials:
            raise ParameterError(
                f"failures must be in [0, {self.trials}], got {self.failures}"
            )

    @property
    def rate(self) -> float:
        """Point estimate ``failures / trials``."""
        return self.failures / self.trials

    def __str__(self) -> str:
        return f"{self.rate:.3f} [{self.low:.3f}, {self.high:.3f}]"


def wilson_interval(
    failures: int, trials: int, z: float = 1.959964
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation at the extreme rates the
    gap testers live at (δ ≈ 0.01).
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if not 0 <= failures <= trials:
        raise ParameterError(f"failures must be in [0, {trials}], got {failures}")
    p_hat = failures / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def estimate(failures: int, trials: int) -> ErrorEstimate:
    """Wrap a raw count into an :class:`ErrorEstimate`."""
    low, high = wilson_interval(failures, trials)
    return ErrorEstimate(failures=failures, trials=trials, low=low, high=high)


def empirical_sample_complexity(
    error_at: Callable[[int], float],
    target_error: float,
    s_min: int = 2,
    s_max: int = 1 << 20,
) -> Optional[int]:
    """Smallest ``s`` with ``error_at(s) <= target_error`` (binary search).

    Assumes ``error_at`` is (noisily) non-increasing in ``s``, which holds
    for every tester family in this library once past the degenerate range.
    Returns ``None`` when even ``s_max`` misses the target.

    ``error_at`` is typically a Monte-Carlo estimator; callers control the
    noise floor through its trial count.
    """
    if not 0.0 < target_error < 1.0:
        raise ParameterError(f"target_error must be in (0, 1), got {target_error}")
    if s_min < 1 or s_max < s_min:
        raise ParameterError(f"bad search range [{s_min}, {s_max}]")
    if error_at(s_max) > target_error:
        return None
    lo, hi = s_min, s_max
    while lo < hi:
        mid = (lo + hi) // 2
        if error_at(mid) <= target_error:
            hi = mid
        else:
            lo = mid + 1
    return lo
