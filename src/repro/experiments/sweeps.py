"""Parameter grids and scaling-shape diagnostics.

The reproduction criteria in DESIGN.md are *shapes*: per-node samples
``∝ k^{−1/2}`` (Theorem 1.2), rounds ``∝ D + τ`` (Theorem 5.1),
communication ``∝ √(δn)`` (Lemma 7.3).  :func:`loglog_slope` turns a
measured sweep into the exponent those claims predict.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ParameterError


def geometric_grid(start: float, stop: float, points: int) -> List[float]:
    """``points`` geometrically spaced values from *start* to *stop*."""
    if points < 2:
        raise ParameterError(f"points must be >= 2, got {points}")
    if start <= 0 or stop <= 0:
        raise ParameterError("geometric grids need positive endpoints")
    ratio = (stop / start) ** (1.0 / (points - 1))
    return [start * ratio**i for i in range(points)]


def geometric_int_grid(start: int, stop: int, points: int) -> List[int]:
    """Geometric grid of distinct integers (deduplicated, sorted).

    Guarantees at least two distinct values — a degenerate span
    (``start == stop``, or endpoints that round to the same integer)
    raises :class:`ParameterError` rather than collapsing to a single
    point, which would crash :func:`loglog_slope` downstream.
    """
    values = sorted({int(round(v)) for v in geometric_grid(start, stop, points)})
    if len(values) < 2:
        raise ParameterError(
            f"geometric int grid [{start}, {stop}] collapses to "
            f"{values}: need a span wide enough for >= 2 distinct "
            f"integers"
        )
    return values


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept of ``log y`` against ``log x``.

    Returns ``(slope, intercept)``; a Theorem 1.2 sweep of samples against
    ``k`` should give slope ≈ −0.5.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ParameterError("need at least two matched (x, y) points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ParameterError("log-log fit needs positive data")
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    slope, intercept = np.polyfit(lx, ly, 1)
    return float(slope), float(intercept)


def relative_spread(values: Sequence[float]) -> float:
    """``(max − min) / mean`` — a flatness diagnostic for "constant" claims."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ParameterError("need at least one value")
    mean = float(arr.mean())
    if mean == 0:
        raise ParameterError("relative spread undefined at zero mean")
    return float((arr.max() - arr.min()) / mean)
