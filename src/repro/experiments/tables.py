"""Plain-ASCII tables for benchmark output.

The paper has no numbered tables; our benchmark suite generates one table
per theorem (see DESIGN.md's experiment index).  This renderer keeps the
output dependency-free and diff-friendly so EXPERIMENTS.md can embed the
results verbatim.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """A simple column-aligned text table.

    Examples
    --------
    >>> t = Table(["k", "samples", "error"], title="demo")
    >>> t.add_row([8, 120, "0.10 [0.05, 0.18]"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    k | samples | error
    --+---------+------------------
    8 | 120     | 0.10 [0.05, 0.18]
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row (stringified); must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_format(v) for v in values])

    def render(self) -> str:
        """Render the table as aligned ASCII text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header.rstrip())
        lines.append(rule)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (with a leading blank line)."""
        print()
        print(self.render())


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
