"""Robustness sweeps: tester accuracy under message loss and crashes.

The hardened CONGEST tester (:mod:`repro.congest.hardened`) is built to
*degrade* under faults — lose evidence, widen windows, report what went
missing — rather than deadlock.  This module measures the degradation:
for each point on a (drop probability × crash fraction) grid it runs
Monte-Carlo trials of the full hardened protocol against uniform and
against a certified ε-far distribution, and records the error rates next
to the fault counters the engine surfaced.

Determinism: trial ``t`` of point ``(d, c)`` uses sampling seed
``base_seed + t`` and a :class:`~repro.simulator.faults.FaultPlan` seeded
from the same trial index, with crash victims drawn (never the elected
root ``k−1``, which would void the verdict entirely) by a generator keyed
on ``(base_seed, trial)`` — rerunning a sweep reproduces it bit for bit.

``fast_path=True`` replays the whole grid — every per-trial-keyed plan,
faulty or not — through the vectorized fault plane
(:mod:`repro.congest.fault_plane`), bit-identical to the engine per
seed; the ``engine_check`` subset keeps the engine as measurement of
record for the observables only it can see (rounds, raw drop counts)
and raises :class:`~repro.exceptions.SimulationError` on any verdict or
counter divergence.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.congest.hardened import (
    HardenedCongestTester,
    PhaseSchedule,
    RetryPolicy,
)
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.simulator.faults import FaultPlan
from repro.simulator.graph import Topology


def make_topology(name: str, k: int) -> Topology:
    """Build a named benchmark topology on ``k`` nodes.

    ``star`` and ``ring`` take any ``k``; ``grid`` uses the most-square
    ``rows × cols = k`` factorisation (rows = the largest divisor of
    ``k`` not exceeding ``√k``).
    """
    if name == "star":
        return Topology.star(k)
    if name == "ring":
        return Topology.ring(k)
    if name == "grid":
        rows = max(r for r in range(1, int(math.isqrt(k)) + 1) if k % r == 0)
        return Topology.grid(rows, k // rows)
    raise ParameterError(f"unknown topology {name!r} (star, ring, grid)")


@dataclass(frozen=True)
class RobustnessPoint:
    """Aggregated trial results at one (drop, crash) grid point."""

    topology: str
    drop_prob: float
    crash_fraction: float
    crashed_nodes: int
    trials: int
    error_uniform: float
    error_far: float
    no_verdict: int
    mean_rounds: float
    mean_drops: float
    mean_missing_subtrees: float
    mean_shortfall: float
    mean_unheard: float
    mean_agreement: float
    #: Trials re-run through the engine (all of them without the fast
    #: path; the ``engine_check`` subset with it; 0 = replay only).
    engine_trials: int = 0
    #: Wall-clock spent in the fault-plane replay, amortised over the
    #: grid points sharing one batched build (0.0 without the fast path).
    fast_path_seconds: float = 0.0
    #: Wall-clock spent in this point's engine runs.
    engine_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "drop_prob": self.drop_prob,
            "crash_fraction": self.crash_fraction,
            "crashed_nodes": self.crashed_nodes,
            "trials": self.trials,
            "error_uniform": self.error_uniform,
            "error_far": self.error_far,
            "no_verdict": self.no_verdict,
            "mean_rounds": self.mean_rounds,
            "mean_drops": self.mean_drops,
            "mean_missing_subtrees": self.mean_missing_subtrees,
            "mean_shortfall": self.mean_shortfall,
            "mean_unheard": self.mean_unheard,
            "mean_agreement": self.mean_agreement,
            "engine_trials": self.engine_trials,
            "fast_path_seconds": self.fast_path_seconds,
            "engine_seconds": self.engine_seconds,
        }


def _crash_plan(
    k: int,
    fraction: float,
    horizon: int,
    base_seed: int,
    trial: int,
) -> Dict[int, int]:
    """Deterministic crash-stop schedule for one trial.

    Crashes ``⌊fraction · (k−1)⌋`` victims chosen uniformly among nodes
    ``0 .. k−2`` (the elected root ``k−1`` is spared so the run still has
    a verdict to score) at rounds uniform in ``[1, horizon]``.
    """
    count = int(fraction * (k - 1))
    if count <= 0:
        return {}
    gen = np.random.default_rng([base_seed, trial, 0xC4A5])
    victims = gen.choice(k - 1, size=count, replace=False)
    rounds = gen.integers(1, horizon + 1, size=count)
    return {int(v): int(r) for v, r in zip(victims, rounds)}


def robustness_sweep(
    n: int,
    k: int,
    eps: float,
    p: float = 1.0 / 3.0,
    samples_per_node: int = 1,
    topology: str = "star",
    drop_probs: Sequence[float] = (0.0, 0.01, 0.05),
    crash_fractions: Sequence[float] = (0.0,),
    trials: int = 10,
    base_seed: int = 0,
    policy: Optional[RetryPolicy] = None,
    fast_path: bool = False,
    engine_check: float = 0.0,
) -> Tuple[RobustnessPoint, ...]:
    """Sweep the hardened tester over a fault grid; one point per combo.

    Every trial runs the full hardened protocol twice — once sampling
    from uniform, once from the Paninski ε-far family — under the same
    fault plan, so ``error_uniform``/``error_far`` are directly
    comparable.  A run whose verdict is ``None`` (the root crashed; ruled
    out by :func:`_crash_plan` but possible with custom plans) counts as
    an error on both sides and in ``no_verdict``.

    ``fast_path=True`` replays *every* grid point — per-trial-keyed
    fault plans included — through the vectorized fault plane
    (:class:`~repro.congest.fault_plane.HardenedFaultPlane`): one
    batched build covers the whole grid, and each trial's samples are
    drawn once and shared across points (the engine would redraw them
    per point, but trial ``t`` uses seed ``base_seed + t`` everywhere).
    A subset of ``max(1, round(engine_check · trials))`` trials per
    point still runs through the engine: it supplies ``mean_rounds`` /
    ``mean_drops`` (observables only the engine measures; 0.0 when
    ``engine_check`` is 0) and cross-checks the replayed verdicts,
    agreement, and give-up counters, raising
    :class:`~repro.exceptions.SimulationError` on any disagreement.
    """
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if not 0.0 <= engine_check <= 1.0:
        raise ParameterError(
            f"engine_check must be in [0, 1], got {engine_check}"
        )
    tester = HardenedCongestTester.solve(
        n, k, eps, p, samples_per_node, policy=policy
    )
    topo = make_topology(topology, k)
    d_hint = topo.diameter_upper_bound()
    telemetry.annotate(
        solved={"tau": tester.params.tau, "d_hint": d_hint}
    )
    schedule = PhaseSchedule.build(d_hint, tester.params.tau, tester.policy)
    dist_u = uniform(n)
    dist_far = far_family("paninski", n, min(eps, 1.0), rng=base_seed)
    grid = [(drop, frac) for drop in drop_probs for frac in crash_fractions]

    def point_plan(drop: float, frac: float, t: int) -> FaultPlan:
        return FaultPlan(
            seed=base_seed * 1_000_003 + t,
            drop_prob=drop,
            crashes=_crash_plan(k, frac, schedule.count_end, base_seed, t),
        )

    with telemetry.span(
        "robustness.sweep",
        topology=topology,
        n=n,
        k=k,
        eps=eps,
        trials=trials,
        grid_points=len(grid),
        fast_path=fast_path,
    ):
        return _sweep_points(
            tester, topo, dist_u, dist_far, grid, point_plan,
            topology, k, trials, base_seed, fast_path, engine_check, d_hint,
        )


def _sweep_points(
    tester, topo, dist_u, dist_far, grid, point_plan,
    topology, k, trials, base_seed, fast_path, engine_check, d_hint,
):
    score_u = score_f = None
    fast_share = 0.0
    plane = None
    if fast_path:
        # Imported here: repro.experiments.__init__ loads this module,
        # and the fault plane uses the congest package.
        from repro.congest.fault_plane import HardenedFaultPlane
        from repro.rng import ensure_rng

        fast_start = time.perf_counter()
        with telemetry.span(
            "robustness.fast_build", grid_points=len(grid), trials=trials
        ):
            plans = [
                point_plan(drop, frac, t)
                for drop, frac in grid
                for t in range(trials)
            ]
            plane = HardenedFaultPlane.build(
                tester, topo, plans, d_hint=d_hint
            )
            # Trial t draws the same samples at every grid point, so
            # sample the `trials` unique streams once and fan them out
            # by row.
            total = plane.trials.total_tokens
            fan = np.tile(np.arange(trials), len(grid))
            score_u = plane.trials.score(
                np.stack(
                    [
                        dist_u.sample(total, ensure_rng(base_seed + t))
                        for t in range(trials)
                    ]
                )[fan]
            )
            score_f = plane.trials.score(
                np.stack(
                    [
                        dist_far.sample(total, ensure_rng(base_seed + t))
                        for t in range(trials)
                    ]
                )[fan]
            )
        fast_share = (time.perf_counter() - fast_start) / len(grid)

    points = []
    for index, (drop, frac) in enumerate(grid):
        point_span = telemetry.span(
            "robustness.point",
            drop_prob=float(drop),
            crash_fraction=float(frac),
        )
        with point_span:
            err_u = err_f = no_verdict = 0
            rounds = drops = missing = shortfall = unheard = 0.0
            agreement = 0.0
            crashed_nodes = int(frac * (k - 1))
            if fast_path:
                rows = slice(index * trials, (index + 1) * trials)
                verdicts_u = score_u.verdicts[rows]
                verdicts_f = score_f.verdicts[rows]
                err_u = sum(v is not True for v in verdicts_u)
                err_f = sum(v is not False for v in verdicts_f)
                no_verdict = sum(v is None for v in verdicts_u) + sum(
                    v is None for v in verdicts_f
                )
                # Sample-independent counters are shared by the uniform
                # and far runs of a trial, so the per-run mean is the
                # per-trial mean; agreement is sample-dependent and
                # averages both.
                missing = 2.0 * float(
                    plane.trials.missing_subtrees[rows].sum()
                )
                shortfall = 2.0 * float(plane.trials.shortfall[rows].sum())
                unheard = 2.0 * float(plane.trials.unheard[rows].sum())
                agreement = float(
                    score_u.agreement[rows].sum()
                    + score_f.agreement[rows].sum()
                )
                engine_trials = (
                    min(trials, max(1, int(round(engine_check * trials))))
                    if engine_check > 0
                    else 0
                )
            else:
                engine_trials = trials
            engine_start = time.perf_counter()
            check_span = telemetry.span(
                "robustness.engine_check" if fast_path
                else "robustness.point_engine",
                trials=engine_trials,
            )
            with check_span:
                for t in range(engine_trials):
                    plan = point_plan(drop, frac, t)
                    res_u = tester.run(
                        topo, dist_u, rng=base_seed + t, faults=plan
                    )
                    res_f = tester.run(
                        topo, dist_far, rng=base_seed + t, faults=plan
                    )
                    if fast_path:
                        row = index * trials + t
                        plane.trials.check_against_engine(
                            row, res_u, score_u.verdicts[row],
                            float(score_u.agreement[row]),
                        )
                        plane.trials.check_against_engine(
                            row, res_f, score_f.verdicts[row],
                            float(score_f.agreement[row]),
                        )
                    else:
                        err_u += res_u.verdict is not True
                        err_f += res_f.verdict is not False
                        no_verdict += (res_u.verdict is None) + (
                            res_f.verdict is None
                        )
                        missing += (
                            res_u.missing_subtrees + res_f.missing_subtrees
                        )
                        shortfall += res_u.shortfall + res_f.shortfall
                        unheard += res_u.unheard + res_f.unheard
                        agreement += res_u.agreement + res_f.agreement
                    rounds += res_u.report.rounds + res_f.report.rounds
                    drops += res_u.report.drops + res_f.report.drops
            engine_seconds = time.perf_counter() - engine_start
            counter_runs = 2 * (trials if fast_path else engine_trials)
            engine_runs = 2 * engine_trials
            point_span.count("errors_uniform", int(err_u))
            point_span.count("errors_far", int(err_f))
            point_span.count("no_verdict", int(no_verdict))
            point_span.count("engine_trials", engine_trials)
            points.append(
                RobustnessPoint(
                    topology=topology,
                    drop_prob=float(drop),
                    crash_fraction=float(frac),
                    crashed_nodes=crashed_nodes,
                    trials=trials,
                    error_uniform=err_u / trials,
                    error_far=err_f / trials,
                    no_verdict=no_verdict,
                    mean_rounds=rounds / engine_runs if engine_runs else 0.0,
                    mean_drops=drops / engine_runs if engine_runs else 0.0,
                    mean_missing_subtrees=missing / counter_runs,
                    mean_shortfall=shortfall / counter_runs,
                    mean_unheard=unheard / counter_runs,
                    mean_agreement=agreement / counter_runs,
                    engine_trials=engine_trials,
                    fast_path_seconds=fast_share,
                    engine_seconds=engine_seconds,
                )
            )
    return tuple(points)
