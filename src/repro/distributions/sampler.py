"""Sample oracles: the only interface testers get to the unknown distribution.

In the paper, a node's entire knowledge of ``μ`` is a batch of i.i.d.
samples.  Wrapping sampling in an oracle object (instead of handing testers
the :class:`~repro.distributions.base.DiscreteDistribution` directly) keeps
the information boundary honest and lets experiments *account* for samples:
the lower-bound benchmarks need to know exactly how many draws an algorithm
consumed, and the asymmetric-cost model (Section 4) charges ``c_i`` per draw.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.rng import SeedLike, ensure_rng, spawn


class SampleOracle:
    """Draws i.i.d. samples from a fixed underlying distribution.

    Parameters
    ----------
    distribution:
        The hidden ``μ``.
    rng:
        Seed or generator for the oracle's own randomness.

    Notes
    -----
    Oracles are cheap; create one per simulated node (with a spawned child
    generator) so node sample streams are independent, exactly as in the
    paper's model where each node draws its own samples.
    """

    def __init__(self, distribution: DiscreteDistribution, rng: SeedLike = None) -> None:
        self._distribution = distribution
        self._rng = ensure_rng(rng)

    @property
    def domain_size(self) -> int:
        """``n = |Ω|`` -- the one piece of prior knowledge testers have."""
        return self._distribution.n

    def draw(self, count: int) -> np.ndarray:
        """Draw *count* fresh i.i.d. samples from the hidden distribution."""
        return self._distribution.sample(count, self._rng)

    def split(self, parts: int) -> "list[SampleOracle]":
        """Create *parts* oracles over the same distribution with independent
        randomness -- one per simulated node.

        Children are derived via ``SeedSequence`` spawning (collision-safe),
        so their streams are guaranteed independent of each other and of the
        parent oracle's remaining draws.
        """
        if parts < 0:
            raise ValueError(f"parts must be >= 0, got {parts}")
        return [
            SampleOracle(self._distribution, child)
            for child in spawn(self._rng, parts)
        ]


class CountingOracle(SampleOracle):
    """A :class:`SampleOracle` that records how many samples were drawn.

    Optionally charges a per-sample *cost* (the Section 4 model); the running
    total is exposed as :attr:`total_cost`.

    Examples
    --------
    >>> from repro.distributions import uniform
    >>> oracle = CountingOracle(uniform(100), rng=0, cost_per_sample=2.0)
    >>> _ = oracle.draw(5)
    >>> oracle.samples_drawn, oracle.total_cost
    (5, 10.0)
    """

    def __init__(
        self,
        distribution: DiscreteDistribution,
        rng: SeedLike = None,
        cost_per_sample: float = 1.0,
        budget: Optional[int] = None,
    ) -> None:
        super().__init__(distribution, rng)
        if cost_per_sample <= 0:
            raise ValueError(f"cost_per_sample must be positive, got {cost_per_sample}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._cost_per_sample = float(cost_per_sample)
        self._budget = budget
        self._samples_drawn = 0

    @property
    def samples_drawn(self) -> int:
        """Total number of samples drawn so far."""
        return self._samples_drawn

    @property
    def cost_per_sample(self) -> float:
        """The Section 4 per-sample cost ``c_i``."""
        return self._cost_per_sample

    @property
    def total_cost(self) -> float:
        """``samples_drawn * cost_per_sample`` -- node *i*'s total cost."""
        return self._samples_drawn * self._cost_per_sample

    @property
    def remaining_budget(self) -> Optional[int]:
        """Samples left before the budget is exhausted (``None`` = unlimited)."""
        if self._budget is None:
            return None
        return self._budget - self._samples_drawn

    def draw(self, count: int) -> np.ndarray:
        if self._budget is not None and self._samples_drawn + count > self._budget:
            raise RuntimeError(
                f"sample budget exceeded: {self._samples_drawn} drawn, "
                f"{count} requested, budget {self._budget}"
            )
        # Count only after the underlying draw succeeds: a failed draw (bad
        # count, broken distribution) must not corrupt the accounting the
        # lower-bound experiments and the Section 4 cost model rely on.
        samples = super().draw(count)
        self._samples_drawn += count
        return samples
