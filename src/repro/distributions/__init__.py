"""Discrete-distribution toolkit.

This subpackage is the substrate every tester in the library stands on: an
immutable :class:`DiscreteDistribution` type over the domain ``{0, ..., n-1}``
(the paper's ``{1, ..., n}``, zero-indexed), distance functionals, a zoo of
certified ε-far families, seeded sampling oracles, and the classical
identity-to-uniformity *filter* reduction that the paper's introduction
invokes ("each node can independently apply [the filter] to its samples").

Public surface
--------------
- :class:`~repro.distributions.base.DiscreteDistribution`
- distances: :func:`~repro.distributions.distances.l1_distance`,
  :func:`~repro.distributions.distances.total_variation`,
  :func:`~repro.distributions.distances.l2_distance`,
  :func:`~repro.distributions.distances.kl_divergence`,
  :func:`~repro.distributions.distances.chi_square_divergence`,
  :func:`~repro.distributions.distances.collision_probability`,
  :func:`~repro.distributions.distances.l1_distance_to_uniform`
- families: :func:`~repro.distributions.families.uniform`,
  :func:`~repro.distributions.families.paninski_pair`,
  :func:`~repro.distributions.families.two_bump`,
  :func:`~repro.distributions.families.heavy_element`,
  :func:`~repro.distributions.families.restricted_support`,
  :func:`~repro.distributions.families.zipf`,
  :func:`~repro.distributions.families.mixture`,
  :func:`~repro.distributions.families.far_family`,
  :func:`~repro.distributions.families.FAR_FAMILY_BUILDERS`
- sampling: :class:`~repro.distributions.sampler.SampleOracle`,
  :class:`~repro.distributions.sampler.CountingOracle`
- identity reduction: :class:`~repro.distributions.identity.IdentityFilter`,
  :func:`~repro.distributions.identity.grain`
"""

from repro.distributions.base import DiscreteDistribution
from repro.distributions.distances import (
    chi_square_divergence,
    collision_probability,
    hellinger_distance,
    kl_divergence,
    l1_distance,
    l1_distance_to_uniform,
    l2_distance,
    total_variation,
)
from repro.distributions.families import (
    FAR_FAMILY_BUILDERS,
    far_family,
    heavy_element,
    mixture,
    paninski_pair,
    restricted_support,
    two_bump,
    uniform,
    zipf,
)
from repro.distributions.estimators import (
    bootstrap_ci,
    collision_probability_estimate,
    empirical_distribution,
    l1_bracket_from_l2,
    l2_distance_to_uniform_estimate,
)
from repro.distributions.identity import IdentityFilter, grain
from repro.distributions.sampler import CountingOracle, SampleOracle

__all__ = [
    "DiscreteDistribution",
    "l1_distance",
    "l1_distance_to_uniform",
    "total_variation",
    "l2_distance",
    "kl_divergence",
    "chi_square_divergence",
    "hellinger_distance",
    "collision_probability",
    "uniform",
    "paninski_pair",
    "two_bump",
    "heavy_element",
    "restricted_support",
    "zipf",
    "mixture",
    "far_family",
    "FAR_FAMILY_BUILDERS",
    "SampleOracle",
    "CountingOracle",
    "IdentityFilter",
    "grain",
    "empirical_distribution",
    "collision_probability_estimate",
    "l2_distance_to_uniform_estimate",
    "l1_bracket_from_l2",
    "bootstrap_ci",
]
