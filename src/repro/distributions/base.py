"""Immutable discrete distributions over ``{0, ..., n-1}``.

The paper works with an unknown distribution ``μ`` on a domain of known size
``n``; everything a tester may do is draw i.i.d. samples.  This module gives
that object a concrete, validated, hashable-ish form with efficient vectorised
sampling.

Design notes
------------
- Probabilities are stored as a read-only ``float64`` array that sums to 1
  within a strict tolerance; construction validates and normalises.
- Sampling uses ``Generator.choice`` with the probability vector, which is
  ``O(s log n)`` per batch and fully vectorised -- fast enough for the
  multi-million-sample sweeps in the benchmarks.
- ``choice`` is inverse-CDF sampling under the hood, and the class exposes
  the two halves separately: :meth:`DiscreteDistribution.sample_uniform`
  draws the ``U[0, 1)`` driver values (consuming the generator exactly as
  :meth:`DiscreteDistribution.sample` would) and
  :meth:`DiscreteDistribution.index_quantiles` maps driver values to
  outcomes through a cached guide table, bit-identical to ``choice``'s own
  ``searchsorted``.  Batched consumers that only read a subset of the
  drawn slots (the LOCAL trial plane) pay the quantile lookup just for
  the slots they use.
- The class is deliberately *final-style* and value-semantic: all deriving
  operations (:meth:`mix`, :meth:`conditioned_on`, :meth:`permuted`) return
  new instances.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidDistributionError
from repro.rng import SeedLike, ensure_rng

#: Absolute tolerance when checking that a probability vector sums to one.
_SUM_ATOL = 1e-9


class DiscreteDistribution:
    """A probability distribution on the domain ``{0, ..., n-1}``.

    Parameters
    ----------
    probs:
        Non-negative weights; normalised to sum to one.  Must be non-empty
        and contain at least one strictly positive entry.
    name:
        Optional human-readable label used in experiment tables.

    Examples
    --------
    >>> d = DiscreteDistribution([0.5, 0.25, 0.25], name="demo")
    >>> d.n
    3
    >>> d.prob(0)
    0.5
    """

    __slots__ = ("_probs", "_name", "_cached_collision", "_cached_quantiles")

    def __init__(self, probs: Union[Sequence[float], np.ndarray], name: str = "") -> None:
        arr = np.asarray(probs, dtype=np.float64)
        if arr.ndim != 1:
            raise InvalidDistributionError(
                f"probability vector must be 1-dimensional, got shape {arr.shape}"
            )
        if arr.size == 0:
            raise InvalidDistributionError("probability vector must be non-empty")
        if not np.all(np.isfinite(arr)):
            raise InvalidDistributionError("probability vector contains NaN or inf")
        if np.any(arr < 0):
            worst = float(arr.min())
            raise InvalidDistributionError(f"negative probability mass: {worst}")
        total = float(arr.sum())
        if total <= 0:
            raise InvalidDistributionError("probability vector has zero total mass")
        if abs(total - 1.0) > 1e-6:
            raise InvalidDistributionError(
                f"probability vector sums to {total}, expected 1 (pre-normalise "
                "explicitly if this is intended weight data)"
            )
        arr = arr / total
        arr.setflags(write=False)
        self._probs = arr
        self._name = name
        self._cached_collision: Optional[float] = None
        self._cached_quantiles: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Domain size ``|Ω|``."""
        return int(self._probs.size)

    @property
    def name(self) -> str:
        """Human-readable label (may be empty)."""
        return self._name

    @property
    def probs(self) -> np.ndarray:
        """The read-only probability vector."""
        return self._probs

    def prob(self, x: int) -> float:
        """Probability of outcome *x*."""
        return float(self._probs[x])

    def support(self) -> np.ndarray:
        """Indices with strictly positive mass."""
        return np.flatnonzero(self._probs > 0)

    def support_size(self) -> int:
        """Number of outcomes with strictly positive mass."""
        return int(np.count_nonzero(self._probs > 0))

    def is_uniform(self, atol: float = 1e-12) -> bool:
        """Whether this is (numerically) the uniform distribution on ``[n]``."""
        return bool(np.allclose(self._probs, 1.0 / self.n, atol=atol, rtol=0.0))

    # ------------------------------------------------------------------
    # Moments and functionals
    # ------------------------------------------------------------------

    def collision_probability(self) -> float:
        """``χ(μ) = Σ_x μ(x)²``, the probability two i.i.d. samples collide.

        The uniform distribution minimises this at ``1/n`` (Section 3.1 of
        the paper); Lemma 3.2 lower-bounds it by ``(1+ε²)/n`` for ε-far
        distributions.  Cached because the testers' analyses query it often.
        """
        if self._cached_collision is None:
            self._cached_collision = float(np.dot(self._probs, self._probs))
        return self._cached_collision

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        p = self._probs[self._probs > 0]
        return float(-np.sum(p * np.log(p)))

    def renyi2_entropy(self) -> float:
        """Collision (Rényi-2) entropy in nats: ``-ln χ(μ)``.

        This is the quantity the paper's lower-bound proof tracks (Section
        7.1): high collision entropy implies low collision probability.
        """
        return float(-np.log(self.collision_probability()))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Draw *size* i.i.d. samples.

        Parameters
        ----------
        size:
            Number of samples; must be non-negative.
        rng:
            Seed or generator (see :func:`repro.rng.ensure_rng`).

        Returns
        -------
        numpy.ndarray
            Integer array of shape ``(size,)`` with values in ``[0, n)``.
        """
        if size < 0:
            raise ValueError(f"sample size must be >= 0, got {size}")
        gen = ensure_rng(rng)
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return gen.choice(self.n, size=size, p=self._probs).astype(np.int64)

    def sample_uniform(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """The ``U[0, 1)`` driver draws behind :meth:`sample` — same stream.

        ``Generator.choice`` with a probability vector is inverse-CDF
        sampling: it draws *size* uniform doubles, then maps each through
        a ``searchsorted`` on the cumulative weights.  This method performs
        only the drawing half, consuming the generator identically, so

        ``index_quantiles(sample_uniform(size, seed)) == sample(size, seed)``

        holds exactly, value for value.  Batched consumers (the LOCAL
        trial plane) exploit the split: draw every trial's doubles in one
        call, then quantile-map only the slots the protocol actually
        reads.
        """
        if size < 0:
            raise ValueError(f"sample size must be >= 0, got {size}")
        gen = ensure_rng(rng)
        if size == 0:
            return np.empty(0, dtype=np.float64)
        return gen.random(size)

    def _quantile_tables(self) -> tuple:
        """Cached ``(cdf, buckets, guide)`` for exact inverse-CDF lookup.

        The CDF is normalised exactly as ``Generator.choice`` normalises
        it (``cumsum`` then divide by the last entry), so lookups agree
        with :meth:`sample` bit for bit.  The guide table brackets, for
        each of ``buckets`` equal slices of ``[0, 1)``, the CDF indices a
        driver draw in that slice can map to; ``buckets`` is a power of
        two so the bucket of a draw is computed exactly in binary
        floating point.
        """
        if self._cached_quantiles is None:
            cdf = self._probs.cumsum()
            cdf /= cdf[-1]
            buckets = 1 << max(1, int(np.ceil(np.log2(4.0 * self.n))))
            guide = cdf.searchsorted(np.arange(buckets + 1) / buckets, side="right")
            cdf.setflags(write=False)
            guide.setflags(write=False)
            self._cached_quantiles = (cdf, buckets, guide)
        return self._cached_quantiles

    def index_quantiles(self, u: np.ndarray) -> np.ndarray:
        """Map driver draws *u* to outcomes, bit-identical to :meth:`sample`.

        Computes exactly ``searchsorted(cdf, u, side="right")`` — the
        mapping inside ``Generator.choice`` — via the bucketed guide
        table: each draw's bucket narrows the answer to a bracket
        ``[guide[b], guide[b+1]]``, finished off by a short vectorised
        bisection (one step for near-uniform distributions, ``log`` of
        the largest same-value run in the worst case).  No per-call
        cumulative-sum rebuild, so this is much cheaper than ``choice``
        itself.
        """
        cdf, buckets, guide = self._quantile_tables()
        u = np.asarray(u, dtype=np.float64)
        if u.size and (float(u.min()) < 0.0 or float(u.max()) >= 1.0):
            raise ValueError("driver draws must lie in [0, 1)")
        bucket = (u * buckets).astype(np.int64)
        lo = guide[bucket]
        hi = guide[bucket + 1]
        while True:
            width = hi - lo
            if not width.any():
                break
            mid = lo + (width >> 1)
            go = cdf[mid] <= u
            lo = np.where(go, mid + 1, lo)
            hi = np.where(go, hi, mid)
        return lo.astype(np.int64)

    def max_bin_width(self) -> float:
        """Largest single-outcome step of the normalised CDF.

        Two driver draws can map to the same outcome only if they differ
        by less than this — the gap test the LOCAL verdict kernel uses to
        discard almost every sorted-adjacent sample pair before doing an
        exact :meth:`index_quantiles` lookup on the survivors.
        """
        cdf, _, _ = self._quantile_tables()
        return float(np.diff(cdf, prepend=0.0).max())

    def sample_matrix(self, rows: int, cols: int, rng: SeedLike = None) -> np.ndarray:
        """Draw a ``rows x cols`` matrix of i.i.d. samples.

        Convenient for simulating *k* nodes with *s* samples each in one
        vectorised call: ``sample_matrix(k, s)``.
        """
        if rows < 0 or cols < 0:
            raise ValueError(f"matrix shape must be non-negative, got {(rows, cols)}")
        flat = self.sample(rows * cols, rng)
        return flat.reshape(rows, cols)

    def sample_uniform_matrix(
        self, rows: int, cols: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Driver-draw matrix: ``rows × cols`` doubles, same stream as
        :meth:`sample_matrix`.

        The matrix form of :meth:`sample_uniform` — one generator call for
        a whole trial batch, so
        ``index_quantiles(sample_uniform_matrix(r, c, seed))`` equals
        ``sample_matrix(r, c, seed)`` exactly.  The SMP trial plane draws
        every trial's driver doubles this way and quantile-maps the slots
        afterwards.
        """
        if rows < 0 or cols < 0:
            raise ValueError(f"matrix shape must be non-negative, got {(rows, cols)}")
        flat = self.sample_uniform(rows * cols, rng)
        return flat.reshape(rows, cols)

    # ------------------------------------------------------------------
    # Deriving new distributions
    # ------------------------------------------------------------------

    def mix(self, other: "DiscreteDistribution", weight: float) -> "DiscreteDistribution":
        """Convex combination ``weight·self + (1-weight)·other``.

        Both distributions must share the same domain size.
        """
        if other.n != self.n:
            raise InvalidDistributionError(
                f"cannot mix distributions on domains of size {self.n} and {other.n}"
            )
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"mixing weight must be in [0, 1], got {weight}")
        mixed = weight * self._probs + (1.0 - weight) * other._probs
        return DiscreteDistribution(mixed, name=f"mix({self._name},{other._name},{weight})")

    def permuted(self, permutation: Sequence[int]) -> "DiscreteDistribution":
        """Relabel outcomes by *permutation* (``new[p[i]] = old[i]``).

        Uniformity and all symmetric functionals are invariant under this
        operation -- a property the test suite exploits.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.n,) or not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise ValueError("permutation must be a rearrangement of range(n)")
        out = np.empty_like(self._probs)
        out[perm] = self._probs
        return DiscreteDistribution(out, name=f"perm({self._name})")

    def conditioned_on(self, event: Iterable[int]) -> "DiscreteDistribution":
        """The conditional distribution given the outcome lies in *event*.

        The domain size is preserved; mass outside *event* becomes zero.
        """
        mask = np.zeros(self.n, dtype=bool)
        idx = np.fromiter(event, dtype=np.int64)
        mask[idx] = True
        restricted = np.where(mask, self._probs, 0.0)
        total = restricted.sum()
        if total <= 0:
            raise InvalidDistributionError("conditioning event has zero probability")
        return DiscreteDistribution(restricted / total, name=f"cond({self._name})")

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self._probs, other._probs))

    def __hash__(self) -> int:  # value-semantic hash on the rounded vector
        return hash((self.n, self._probs.round(12).tobytes()))

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return f"<DiscreteDistribution{label} n={self.n} chi={self.collision_probability():.3g}>"
