"""Certified families of distributions for uniformity-testing experiments.

Every "far" builder in this module returns a distribution whose ``L1``
distance to uniform is *exactly* the requested ``eps`` (up to floating-point
round-off), so experiments can assert their workloads really are ε-far
rather than hoping.  The families cover the qualitatively different ways a
distribution can deviate from uniform:

- :func:`paninski_pair` -- the classical hard instance for collision-based
  testers: pair up the domain and shift mass ``ε/(2n)`` within each pair.
  This family minimises the collision-probability excess at a given ``L1``
  distance (it meets Lemma 3.2 with near-equality), so it is the *worst case*
  for the paper's tester.
- :func:`two_bump` -- half the domain heavy, half light; a smooth bulk
  deviation.
- :func:`heavy_element` -- all the deviation concentrated on a single
  outcome; the *easiest* case for collision testers.
- :func:`restricted_support` -- uniform over a fraction of the domain
  (support size ``n·(1 − ε/2)`` gives ``L1`` distance exactly ``ε``).
- :func:`zipf` -- a power law, the classic "natural skew" model for the
  paper's motivating DoS-detection scenario (not ε-calibrated; its distance
  is whatever the law gives and is reported by the helper).
- :func:`mixture` / :func:`far_family` -- combinators and a registry used by
  the benchmark sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.distributions.distances import l1_distance_to_uniform
from repro.exceptions import InvalidDistributionError, ParameterError
from repro.rng import SeedLike, ensure_rng


def uniform(n: int) -> DiscreteDistribution:
    """The uniform distribution ``U_n`` on ``{0, ..., n-1}``."""
    if n <= 0:
        raise ParameterError(f"domain size must be positive, got {n}")
    return DiscreteDistribution(np.full(n, 1.0 / n), name=f"uniform(n={n})")


def _check_eps(eps: float) -> None:
    if not 0.0 < eps < 2.0:
        raise ParameterError(f"eps must be in (0, 2) for L1 distance, got {eps}")


def paninski_pair(n: int, eps: float, rng: SeedLike = None) -> DiscreteDistribution:
    """Paninski's paired perturbation: exactly ε-far, minimal collision excess.

    The domain is split into ``n/2`` pairs; within each pair one element gets
    mass ``(1 + ε)/n`` and the other ``(1 − ε)/n``, with the heavy side of
    each pair chosen at random (a random member of the classical hard
    family).  Requires even ``n`` and ``ε ≤ 1``.

    Per element ``|μ(x) − 1/n| = ε/n``, so ``‖μ − U‖₁ = ε`` exactly, and the
    collision probability is ``χ(μ) = (1 + ε²)/n`` — meeting the Lemma 3.2
    bound with equality, which is what makes this the worst case for
    collision-based testers.
    """
    _check_eps(eps)
    if eps > 1.0:
        raise ParameterError(f"paninski_pair requires eps <= 1, got {eps}")
    if n < 2 or n % 2 != 0:
        raise ParameterError(f"paninski_pair requires even n >= 2, got {n}")
    gen = ensure_rng(rng)
    signs = gen.choice([-1.0, 1.0], size=n // 2)
    probs = np.empty(n, dtype=np.float64)
    probs[0::2] = (1.0 + signs * eps) / n
    probs[1::2] = (1.0 - signs * eps) / n
    return DiscreteDistribution(probs, name=f"paninski(n={n},eps={eps})")


def two_bump(n: int, eps: float) -> DiscreteDistribution:
    """Half the domain heavy, half light; exactly ε-far from uniform.

    Elements ``0 .. n/2-1`` receive mass ``(1 + ε/2)/n`` and the rest
    ``(1 − ε/2)/n`` (odd ``n`` leaves the middle element untouched and
    rescales, preserving the exact distance).
    """
    _check_eps(eps)
    if n < 2:
        raise ParameterError(f"two_bump requires n >= 2, got {n}")
    half = n // 2
    # Put +eps/2 total excess on the first half, -eps/2 total deficit on the
    # last `rest` elements; the middle element (odd n) keeps mass 1/n.
    probs = np.full(n, 1.0 / n)
    rest = n - half if n % 2 == 0 else n - half - 1
    probs[:half] += (eps / 2.0) / half
    probs[n - rest:] -= (eps / 2.0) / rest
    if np.any(probs < 0):
        raise ParameterError(
            f"two_bump(n={n}, eps={eps}) drives probabilities negative; "
            "decrease eps or increase n"
        )
    return DiscreteDistribution(probs, name=f"two_bump(n={n},eps={eps})")


def heavy_element(n: int, eps: float, element: int = 0) -> DiscreteDistribution:
    """All deviation on one outcome: ``μ(element) = 1/n + ε/2``.

    The remaining mass deficit ``ε/2`` is spread evenly over the other
    elements, giving ``‖μ − U‖₁ = ε`` exactly.  This is the *easiest* far
    instance for collision-based testers because it maximises χ at a given
    distance.
    """
    _check_eps(eps)
    if n < 2:
        raise ParameterError(f"heavy_element requires n >= 2, got {n}")
    if not 0 <= element < n:
        raise ParameterError(f"element must be in [0, {n}), got {element}")
    if eps / 2.0 > 1.0 - 1.0 / n:
        raise ParameterError(f"eps={eps} too large for heavy_element on n={n}")
    deficit = (eps / 2.0) / (n - 1)
    if deficit > 1.0 / n:
        raise ParameterError(
            f"heavy_element(n={n}, eps={eps}) drives probabilities negative"
        )
    probs = np.full(n, 1.0 / n - deficit)
    probs[element] = 1.0 / n + eps / 2.0
    return DiscreteDistribution(probs, name=f"heavy(n={n},eps={eps})")


def restricted_support(n: int, eps: float) -> DiscreteDistribution:
    """Uniform over a prefix of the domain, exactly ε-far from ``U_n``.

    Uniform over a support of size ``m`` has ``L1`` distance
    ``2(1 − m/n)`` to ``U_n``; we solve ``m = n(1 − ε/2)`` and, because ``m``
    must be an integer, mix the two straddling support sizes to land on
    ``eps`` exactly.
    """
    _check_eps(eps)
    if n < 2:
        raise ParameterError(f"restricted_support requires n >= 2, got {n}")
    m_real = n * (1.0 - eps / 2.0)
    m_lo = int(np.floor(m_real + 1e-9))
    if m_lo < 1:
        raise ParameterError(f"eps={eps} too large for restricted_support on n={n}")
    if abs(m_lo - m_real) < 1e-9:
        probs = np.zeros(n)
        probs[:m_lo] = 1.0 / m_lo
        return DiscreteDistribution(probs, name=f"support(n={n},eps={eps})")
    # Mix uniform-over-(m_lo) and uniform-over-(m_lo+1) to hit eps exactly:
    # both deviate in the same direction, distance is linear in the support
    # mass allocation, so we can solve a 1-D equation on the first m_lo+1
    # cells.  Simpler exact construction: support = first m_lo+1 elements,
    # with the last support element at reduced mass.
    # Let the first m_lo elements carry mass a each and element m_lo carry b,
    # with m_lo*a + b = 1, a >= 1/n >= b. Distance = m_lo*(a-1/n) + (1/n - b)
    # + (n-m_lo-1)/n = eps.
    tail = (n - m_lo - 1) / n
    # Using total mass: m_lo*a + b = 1 -> m_lo*(a - 1/n) = 1 - b - m_lo/n.
    # distance = (1 - b - m_lo/n) + (1/n - b) + tail = eps -> solve for b.
    b = (1.0 - m_lo / n + 1.0 / n + tail - eps) / 2.0
    if -1e-12 < b < 0.0:  # pure float round-off
        b = 0.0
    a = (1.0 - b) / m_lo
    if b < 0 or b > 1.0 / n or a < 1.0 / n:
        raise ParameterError(
            f"restricted_support(n={n}, eps={eps}) has no valid construction"
        )
    probs = np.zeros(n)
    probs[:m_lo] = a
    probs[m_lo] = b
    return DiscreteDistribution(probs, name=f"support(n={n},eps={eps})")


def zipf(n: int, exponent: float = 1.0) -> DiscreteDistribution:
    """Zipf/power-law distribution: ``μ(i) ∝ (i+1)^{-exponent}``.

    Not ε-calibrated -- use :func:`l1_distance_to_uniform` to read off its
    actual distance.  Models the "natural skew" of the paper's DoS-detection
    motivation (a few flows dominating traffic).
    """
    if n <= 0:
        raise ParameterError(f"domain size must be positive, got {n}")
    if exponent < 0:
        raise ParameterError(f"exponent must be >= 0, got {exponent}")
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-exponent)
    return DiscreteDistribution(weights / weights.sum(), name=f"zipf(n={n},a={exponent})")


def mixture(
    components: Sequence[DiscreteDistribution],
    weights: Sequence[float],
    name: str = "",
) -> DiscreteDistribution:
    """Convex combination of *components* with *weights*."""
    if len(components) != len(weights) or not components:
        raise ParameterError("components and weights must be equal-length and non-empty")
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0) or abs(w.sum() - 1.0) > 1e-9:
        raise ParameterError("weights must be non-negative and sum to 1")
    n = components[0].n
    acc = np.zeros(n)
    for comp, wi in zip(components, w):
        if comp.n != n:
            raise InvalidDistributionError("mixture components must share a domain")
        acc += wi * comp.probs
    return DiscreteDistribution(acc, name=name or "mixture")


#: Registry of calibrated far-family builders, keyed by name.  Each builder
#: has signature ``(n, eps, rng) -> DiscreteDistribution`` and returns a
#: distribution with ``L1`` distance to uniform exactly ``eps``.
FAR_FAMILY_BUILDERS: Dict[str, Callable[..., DiscreteDistribution]] = {
    "paninski": paninski_pair,
    "two_bump": lambda n, eps, rng=None: two_bump(n, eps),
    "heavy": lambda n, eps, rng=None: heavy_element(n, eps),
    "support": lambda n, eps, rng=None: restricted_support(n, eps),
}


def far_family(
    family: str, n: int, eps: float, rng: SeedLike = None
) -> DiscreteDistribution:
    """Build a certified ε-far distribution from the named *family*.

    The returned distribution's distance to uniform is asserted to equal
    *eps* within ``1e-9``; a failed assertion indicates a construction bug,
    never bad luck.
    """
    try:
        builder = FAR_FAMILY_BUILDERS[family]
    except KeyError:
        known = ", ".join(sorted(FAR_FAMILY_BUILDERS))
        raise ParameterError(f"unknown far family {family!r}; known: {known}") from None
    dist = builder(n, eps, rng)
    actual = l1_distance_to_uniform(dist)
    if abs(actual - eps) > 1e-9:
        raise AssertionError(
            f"far family {family!r} produced distance {actual}, expected {eps}"
        )
    return dist
