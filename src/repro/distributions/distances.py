"""Distance and divergence functionals between discrete distributions.

The paper measures "far from uniform" in ``L1`` distance
(``Σ_ω |μ(ω) − 1/n|``, i.e. twice the total-variation distance), and its
analyses use the ``L2`` connection of Lemma 3.2 and the KL-divergence
machinery of Lemma 2.1.  All of those functionals live here, operating on
:class:`~repro.distributions.base.DiscreteDistribution` or raw vectors.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.exceptions import InvalidDistributionError

VectorLike = Union[DiscreteDistribution, np.ndarray]


def _as_probs(dist: VectorLike) -> np.ndarray:
    """Extract a validated probability vector from *dist*."""
    if isinstance(dist, DiscreteDistribution):
        return dist.probs
    arr = np.asarray(dist, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidDistributionError("expected a non-empty 1-D probability vector")
    return arr


def _check_same_domain(p: np.ndarray, q: np.ndarray) -> None:
    if p.shape != q.shape:
        raise InvalidDistributionError(
            f"distributions live on different domains: {p.shape} vs {q.shape}"
        )


def l1_distance(p: VectorLike, q: VectorLike) -> float:
    """``‖p − q‖₁ = Σ_x |p(x) − q(x)|`` (the paper's distance; in [0, 2])."""
    pa, qa = _as_probs(p), _as_probs(q)
    _check_same_domain(pa, qa)
    return float(np.abs(pa - qa).sum())


def total_variation(p: VectorLike, q: VectorLike) -> float:
    """Total-variation distance, ``½‖p − q‖₁`` (in [0, 1])."""
    return 0.5 * l1_distance(p, q)


def l2_distance(p: VectorLike, q: VectorLike) -> float:
    """Euclidean distance ``‖p − q‖₂``."""
    pa, qa = _as_probs(p), _as_probs(q)
    _check_same_domain(pa, qa)
    return float(np.sqrt(((pa - qa) ** 2).sum()))


def l1_distance_to_uniform(p: VectorLike) -> float:
    """``‖p − U_n‖₁`` where ``n`` is *p*'s domain size."""
    pa = _as_probs(p)
    return float(np.abs(pa - 1.0 / pa.size).sum())


def kl_divergence(p: VectorLike, q: VectorLike) -> float:
    """Kullback–Leibler divergence ``D(p ‖ q)`` in nats.

    Returns ``inf`` if *p* puts mass where *q* does not.  This is the
    divergence used by the paper's Lemma 2.1 and the Equality lower bound.
    """
    pa, qa = _as_probs(p), _as_probs(q)
    _check_same_domain(pa, qa)
    mask = pa > 0
    if np.any(qa[mask] <= 0):
        return float("inf")
    # log(p) - log(q) avoids overflow when q is denormal-small.
    return float(np.sum(pa[mask] * (np.log(pa[mask]) - np.log(qa[mask]))))


def chi_square_divergence(p: VectorLike, q: VectorLike) -> float:
    """χ²-divergence ``Σ_x (p(x) − q(x))² / q(x)``.

    Infinite when *p* has mass outside *q*'s support.
    """
    pa, qa = _as_probs(p), _as_probs(q)
    _check_same_domain(pa, qa)
    if np.any((qa <= 0) & (pa > 0)):
        return float("inf")
    mask = qa > 0
    diff = pa[mask] - qa[mask]
    return float(np.sum(diff * diff / qa[mask]))


def hellinger_distance(p: VectorLike, q: VectorLike) -> float:
    """Hellinger distance ``(½ Σ (√p − √q)²)^{1/2}`` (in [0, 1])."""
    pa, qa = _as_probs(p), _as_probs(q)
    _check_same_domain(pa, qa)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(pa) - np.sqrt(qa)) ** 2)))


def collision_probability(p: VectorLike) -> float:
    """``χ(p) = Σ_x p(x)²`` -- probability two i.i.d. samples collide.

    Lemma 3.2 of the paper: ``‖p − U_n‖₁ ≥ ε`` implies ``χ(p) > (1+ε²)/n``;
    the uniform distribution achieves the minimum ``1/n``.
    """
    if isinstance(p, DiscreteDistribution):
        return p.collision_probability()
    pa = _as_probs(p)
    return float(np.dot(pa, pa))


def bernoulli_kl(p: float, q: float) -> float:
    """KL divergence between Bernoulli(p) and Bernoulli(q), in nats.

    Handles the boundary cases: ``0·log 0 = 0``; mass where the other
    distribution has none gives ``inf``.  Used to verify the paper's
    Lemma 2.1 numerically.
    """
    if not 0.0 <= p <= 1.0 or not 0.0 <= q <= 1.0:
        raise ValueError(f"Bernoulli parameters must be in [0, 1], got {(p, q)}")
    terms = 0.0
    if p > 0:
        if q <= 0:
            return float("inf")
        terms += p * np.log(p / q)
    if p < 1:
        if q >= 1:
            return float("inf")
        terms += (1 - p) * np.log((1 - p) / (1 - q))
    return float(terms)
