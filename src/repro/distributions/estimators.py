"""Estimating distribution functionals from samples.

The testers decide a promise problem; operators usually also want a
*number* — "how far from uniform is the traffic right now?".  This module
provides the standard sample-based estimators:

- :func:`empirical_distribution` — the plug-in histogram.
- :func:`collision_probability_estimate` — the unbiased U-statistic
  ``Σ N_x(N_x−1) / (s(s−1))`` for ``χ(μ) = Σ μ(x)²``.
- :func:`l2_distance_to_uniform_estimate` — the unbiased-in-χ plug-in
  ``√(max(0, χ̂ − 1/n))``; recall ``‖μ−U‖₂² = χ(μ) − 1/n``.
- :func:`l1_bracket_from_l2` — the norm sandwich
  ``‖·‖₂ ≤ ‖·‖₁ ≤ √n·‖·‖₂`` turned into an L1 bracket, the honest
  statement a sub-linear sample budget supports.
- :func:`bootstrap_ci` — percentile bootstrap for any statistic of the
  sample batch.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng


def empirical_distribution(samples: np.ndarray, n: int) -> DiscreteDistribution:
    """The plug-in histogram distribution over ``[n]``."""
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size == 0:
        raise ParameterError("need at least one sample")
    if arr.min() < 0 or arr.max() >= n:
        raise ParameterError("samples out of domain")
    counts = np.bincount(arr, minlength=n)
    return DiscreteDistribution(counts / arr.size, name="empirical")


def collision_probability_estimate(samples: np.ndarray, n: int) -> float:
    """Unbiased estimate of ``χ(μ)``: ``Σ_x N_x(N_x−1) / (s(s−1))``.

    This is the U-statistic over sample pairs; ``E[χ̂] = χ(μ)`` exactly.
    Requires at least two samples.
    """
    arr = np.asarray(samples, dtype=np.int64)
    s = arr.size
    if s < 2:
        raise ParameterError(f"need >= 2 samples, got {s}")
    if arr.min() < 0 or arr.max() >= n:
        raise ParameterError("samples out of domain")
    counts = np.bincount(arr, minlength=n).astype(np.float64)
    return float((counts * (counts - 1.0)).sum() / (s * (s - 1.0)))


def l2_distance_to_uniform_estimate(samples: np.ndarray, n: int) -> float:
    """Estimate ``‖μ − U_n‖₂ = √(χ(μ) − 1/n)`` (clipped at zero).

    The inner estimate is unbiased in χ; the square root introduces the
    usual small-sample downward bias, quantifiable with
    :func:`bootstrap_ci`.
    """
    chi_hat = collision_probability_estimate(samples, n)
    return math.sqrt(max(0.0, chi_hat - 1.0 / n))


def l1_bracket_from_l2(l2_estimate: float, n: int) -> Tuple[float, float]:
    """The L1 bracket implied by an L2 estimate: ``[ℓ₂, min(2, √n·ℓ₂)]``.

    With ``o(n)`` samples the L1 distance itself is not estimable; the
    norm sandwich is the honest deliverable.  The upper end is clipped at
    the maximum possible L1 distance, 2.
    """
    if l2_estimate < 0:
        raise ParameterError(f"l2 estimate must be >= 0, got {l2_estimate}")
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    return l2_estimate, min(2.0, math.sqrt(n) * l2_estimate)


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    level: float = 0.95,
    resamples: int = 200,
    rng: SeedLike = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for *statistic*.

    Resamples the batch with replacement *resamples* times and returns the
    ``(1±level)/2`` percentiles of the statistic's bootstrap distribution.
    """
    arr = np.asarray(samples)
    if arr.size < 2:
        raise ParameterError("need >= 2 samples to bootstrap")
    if not 0.0 < level < 1.0:
        raise ParameterError(f"level must be in (0, 1), got {level}")
    if resamples < 10:
        raise ParameterError(f"resamples must be >= 10, got {resamples}")
    gen = ensure_rng(rng)
    values = np.empty(resamples, dtype=np.float64)
    for b in range(resamples):
        idx = gen.integers(0, arr.size, size=arr.size)
        values[b] = statistic(arr[idx])
    lo = float(np.percentile(values, 100 * (1 - level) / 2))
    hi = float(np.percentile(values, 100 * (1 + level) / 2))
    return lo, hi
