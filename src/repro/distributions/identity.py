"""Identity testing via the uniformity *filter* reduction.

The paper's introduction notes that uniformity testing is complete for
testing identity to any fixed distribution ``η`` [Goldreich 2016;
Diakonikolas–Kane 2016], and -- crucially for the distributed setting -- the
reduction is a **filter**: a randomized per-sample mapping each node applies
locally with private coins before running a uniformity tester.  This module
implements that filter.

Construction (Goldreich's grained reduction)
--------------------------------------------
Suppose ``η`` is *m-grained*: every probability is an integer multiple of
``1/m``.  Allocate ``m`` buckets, giving element ``i`` exactly
``m·η(i)`` of them.  The filter maps a sample ``i`` to a uniformly random one
of ``i``'s buckets (samples of elements with ``η(i) = 0`` map to a reserved
bucket-range uniformly, preserving their mass as "junk" that makes the image
far from uniform).  Then:

- if ``μ = η``, the image distribution is exactly ``U_m``;
- the map is a stochastic contraction on L1, and restricted to comparisons
  against ``η`` it *preserves* L1 distance exactly:
  ``‖filter(μ) − U_m‖₁ = Σ_i |μ(i) − η(i)| = ‖μ − η‖₁`` for η with full
  support (for partial support, junk mass keeps the distance within a factor
  2 -- see :meth:`IdentityFilter.distance_guarantee`).

Non-grained targets are handled by :func:`grain`, which rounds ``η`` to the
nearest m-grained distribution at an L1 cost ≤ ``n/m`` (choose
``m ≥ 2n/ε`` to lose at most ``ε/2`` of the distance budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.distributions.base import DiscreteDistribution
from repro.exceptions import ParameterError
from repro.rng import SeedLike, ensure_rng


def grain(eta: DiscreteDistribution, m: int) -> DiscreteDistribution:
    """Round *eta* to an *m*-grained distribution (all probs multiples of 1/m).

    The rounding uses the largest-remainder method, so the result is a valid
    distribution and ``‖grained − η‖₁ ≤ n/m``.

    Parameters
    ----------
    eta:
        Target distribution.
    m:
        Grain denominator; must satisfy ``m >= eta.n`` so every positive
        probability can receive at least the option of a bucket.
    """
    if m < eta.n:
        raise ParameterError(f"grain size m={m} must be >= domain size {eta.n}")
    scaled = eta.probs * m
    floors = np.floor(scaled).astype(np.int64)
    remainder = int(m - floors.sum())
    if remainder > 0:
        fractional = scaled - floors
        top = np.argsort(-fractional, kind="stable")[:remainder]
        floors[top] += 1
    return DiscreteDistribution(floors / m, name=f"grained({eta.name},m={m})")


@dataclass(frozen=True)
class IdentityFilter:
    """Per-sample randomized filter reducing identity-to-``η`` to uniformity.

    Attributes
    ----------
    eta:
        The m-grained target distribution (use :func:`grain` first if the
        target is not grained).
    m:
        Number of buckets = image domain size.

    Examples
    --------
    >>> from repro.distributions import DiscreteDistribution
    >>> eta = DiscreteDistribution([0.5, 0.25, 0.25])
    >>> filt = IdentityFilter.for_target(eta, m=4)
    >>> filt.m
    4
    """

    eta: DiscreteDistribution
    m: int
    _bucket_start: Tuple[int, ...]
    _bucket_count: Tuple[int, ...]

    @staticmethod
    def for_target(eta: DiscreteDistribution, m: int) -> "IdentityFilter":
        """Build a filter for *eta*, which must be exactly m-grained."""
        counts = np.rint(eta.probs * m).astype(np.int64)
        if not np.allclose(counts / m, eta.probs, atol=1e-12, rtol=0.0):
            raise ParameterError(
                f"target is not {m}-grained; call grain(eta, m) first"
            )
        if counts.sum() != m:
            raise ParameterError("grained probabilities do not fill all m buckets")
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        return IdentityFilter(
            eta=eta,
            m=m,
            _bucket_start=tuple(int(x) for x in starts),
            _bucket_count=tuple(int(x) for x in counts),
        )

    @property
    def image_domain_size(self) -> int:
        """Domain size of the filtered samples (= number of buckets + junk).

        Elements with ``η(i) = 0`` have no buckets; their samples map to a
        dedicated junk symbol per element appended after the ``m`` buckets.
        In the common full-support case this equals ``m``.
        """
        zero_support = sum(1 for c in self._bucket_count if c == 0)
        return self.m + zero_support

    def apply(self, samples: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Map raw samples from ``μ`` to the image domain.

        If ``μ = η`` the output is i.i.d. uniform on ``[m]``.  Uses only the
        caller's private randomness -- the property that makes this reduction
        distributable.
        """
        gen = ensure_rng(rng)
        samples = np.asarray(samples, dtype=np.int64)
        if samples.size and (samples.min() < 0 or samples.max() >= self.eta.n):
            raise ValueError("samples out of the target's domain")
        counts = np.asarray(self._bucket_count, dtype=np.int64)
        starts = np.asarray(self._bucket_start, dtype=np.int64)
        out = np.empty(samples.shape, dtype=np.int64)
        has_bucket = counts[samples] > 0
        idx = samples[has_bucket]
        offsets = (gen.random(idx.size) * counts[idx]).astype(np.int64)
        out[has_bucket] = starts[idx] + offsets
        # Junk symbols for zero-probability elements: one reserved symbol per
        # such element, placed after the m buckets.
        if not np.all(has_bucket):
            zero_elements = np.flatnonzero(counts == 0)
            junk_index = {int(e): self.m + j for j, e in enumerate(zero_elements)}
            bad = samples[~has_bucket]
            out[~has_bucket] = np.array([junk_index[int(e)] for e in bad], dtype=np.int64)
        return out

    def image_distribution(self, mu: DiscreteDistribution) -> DiscreteDistribution:
        """The exact distribution of ``apply(X)`` when ``X ~ μ`` (for analysis).

        Useful in tests: lets us verify the distance guarantee without
        sampling.
        """
        if mu.n != self.eta.n:
            raise ParameterError("mu must share the target's domain")
        counts = np.asarray(self._bucket_count, dtype=np.int64)
        starts = np.asarray(self._bucket_start, dtype=np.int64)
        size = self.image_domain_size
        probs = np.zeros(size, dtype=np.float64)
        zero_elements = np.flatnonzero(counts == 0)
        junk_index = {int(e): self.m + j for j, e in enumerate(zero_elements)}
        for i in range(self.eta.n):
            mass = mu.prob(i)
            if mass == 0:
                continue
            if counts[i] > 0:
                probs[starts[i]: starts[i] + counts[i]] += mass / counts[i]
            else:
                probs[junk_index[i]] += mass
        return DiscreteDistribution(probs, name=f"filtered({mu.name})")

    def distance_guarantee(self, mu: DiscreteDistribution) -> Tuple[float, float]:
        """Return ``(input_distance, image_distance)`` in L1.

        ``input_distance = ‖μ − η‖₁`` and ``image_distance`` is the image's
        distance to uniform on the image domain.  The reduction guarantees
        ``image_distance >= input_distance / 2`` always, with equality to
        ``input_distance`` when η has full support; and ``image_distance = 0``
        iff ``μ = η`` (when η has full support).
        """
        input_dist = float(np.abs(mu.probs - self.eta.probs).sum())
        image = self.image_distribution(mu)
        uniform_probs = np.zeros(self.image_domain_size)
        uniform_probs[: self.m] = 1.0 / self.m
        image_dist = float(np.abs(image.probs - uniform_probs).sum())
        return input_dist, image_dist
