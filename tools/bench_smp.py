"""Time the SMP lower-bound plane against the scalar Section 7 protocols.

One fixed workload (E17): the Lemma 7.3 torus Equality protocol and the
Theorem 7.1 BCG reduction at the default CLI parameters (256-bit inputs,
δ=0.05, τ=2.0 → a 1024-bit concatenated codeword, torus side 32, BCG
domain 2048).  Each protocol runs two Monte-Carlo sweeps (``x = y`` and
``x ≠ y``, the single-bit-flip pair) through two bit-equivalent routes:

- **scalar**: the full per-trial ``run()`` — re-encoding, per-sample
  loops, scalar referee — on the chunk-keyed trial streams.
- **smp plane**: :class:`repro.smp.EqualityTrialRunner` — encode once via
  the batched GF power-table kernels, then replay whole trial batches
  with array ops.

Both routes consume identical streams, so the per-trial error flags must
agree bit for bit; the script exits non-zero if they do not.  The trial
count is fixed across smoke and full runs so every ``*_seconds`` field
normalises identically in ``bench_compare``'s per-trial gate.

Usage::

    PYTHONPATH=src python tools/bench_smp.py            # full run
    PYTHONPATH=src python tools/bench_smp.py --smoke    # CI run

Writes ``BENCH_smp.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.collision import CollisionGapTester  # noqa: E402
from repro.rng import ensure_rng  # noqa: E402
from repro.smp import (  # noqa: E402
    BCGMapping,
    EqualityProtocol,
    EqualityTrialRunner,
    TesterBasedEqualityProtocol,
)
from repro.telemetry import Tracer, span_seconds_fields, tracing  # noqa: E402

BASE_SEED = 2018  # PODC year; any fixed value works

# E17 workload: the default `repro smp` parameters.  The trial count is
# fixed across smoke and full runs so every *_seconds field normalises
# identically in ``bench_compare``'s per-trial gate.
E17_N_BITS = 256
E17_DELTA = 0.05
E17_TAU = 2.0
E17_TRIALS = 2048


def _input_pair(n_bits: int):
    """The bench input pair: random ``x``, and ``y`` one bit-flip away —
    the hardest unequal instance for a distance-based protocol."""
    gen = ensure_rng(BASE_SEED)
    x = gen.integers(0, 2, size=n_bits)
    y = x.copy()
    y[0] ^= 1
    return x, y


def _bench_runners(label: str, build_runner, trials: int,
                   extra: dict) -> dict:
    """Scalar-vs-plane timing for one protocol's two sweeps.

    ``build_runner(a, b, seed)`` must return an
    :class:`~repro.smp.EqualityTrialRunner`; the encode phase is timed
    once per sweep (``encode_seconds``), the scalar route once, and the
    plane route as the best of five steady-state passes.
    """
    x, y = _input_pair(E17_N_BITS)
    sweep_inputs = (("equal", x, x, 1), ("unequal", x, y, 2))

    start = time.perf_counter()
    runners = {
        name: build_runner(a, b, BASE_SEED + offset)
        for name, a, b, offset in sweep_inputs
    }
    t_encode = time.perf_counter() - start

    scalar_flags = {}
    t_scalar = 0.0
    for name, runner in runners.items():
        start = time.perf_counter()
        scalar_flags[name] = runner.scalar_flags(trials)
        t_scalar += time.perf_counter() - start

    t_fast = float("inf")
    for _ in range(5):  # steady state: best of a few passes
        start = time.perf_counter()
        fast_flags = {
            name: runner.run_flags(trials)
            for name, runner in runners.items()
        }
        t_fast = min(t_fast, time.perf_counter() - start)
    identical = all(
        np.array_equal(fast_flags[name], scalar_flags[name])
        for name in runners
    )

    total_trials = trials * len(runners)
    speedup = t_scalar / t_fast
    print(f"E17 {label} plane  n_bits={E17_N_BITS} trials={trials}x"
          f"{len(runners)}")
    print(f"  batched encode      : {t_encode * 1000:7.1f} ms (once per "
          f"input pair)")
    print(f"  scalar protocol     : {t_scalar:7.3f} s "
          f"({t_scalar / total_trials * 1000:6.3f} ms/trial)")
    print(f"  smp-plane trials    : {t_fast:7.3f} s "
          f"({t_fast / total_trials * 1000:6.3f} ms/trial)  [{speedup:.0f}x]")
    print(f"  flags identical     : {identical}")

    return {
        "n_bits": E17_N_BITS,
        "delta": E17_DELTA,
        "tau": E17_TAU,
        **extra,
        "trials": trials,
        "sweeps": len(runners),
        "encode_seconds": round(t_encode, 5),
        "scalar_seconds": round(t_scalar, 4),
        "fast_seconds": round(t_fast, 6),
        "speedup_vs_scalar": round(speedup, 1),
        "err_equal": float(np.mean(scalar_flags["equal"])),
        "err_unequal": float(np.mean(scalar_flags["unequal"])),
        "bit_identical": identical,
        "equivalent": identical,
    }


def _build_protocols():
    torus = EqualityProtocol.build(E17_N_BITS, delta=E17_DELTA, tau=E17_TAU)
    mapping = BCGMapping(code=torus.code)
    tester = CollisionGapTester.from_delta(mapping.domain_size, E17_DELTA)
    bcg = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
    return torus, bcg


def bench_e17_torus(trials: int) -> dict:
    torus, _ = _build_protocols()
    result = _bench_runners(
        "torus",
        lambda a, b, seed: EqualityTrialRunner.for_torus(
            torus, a, b, base_seed=seed
        ),
        trials,
        {
            "codeword_bits": torus.code.codeword_bits,
            "side": torus.side,
            "chunk_length": torus.chunk_length,
            "bits_per_player": torus.communication_bits,
        },
    )
    return result


def bench_e17_bcg(trials: int) -> dict:
    torus, bcg = _build_protocols()
    result = _bench_runners(
        "BCG",
        lambda a, b, seed: EqualityTrialRunner.for_reduction(
            bcg, a, b, base_seed=seed
        ),
        trials,
        {
            "codeword_bits": torus.code.codeword_bits,
            "domain_size": bcg.mapping.domain_size,
            "tester_samples_q": bcg.tester.samples_required,
            "bits_per_player": bcg.communication_bits,
        },
    )
    return result


def trace_phase_breakdown() -> dict:
    """One traced plane pass per protocol, aggregated to ``*_seconds``.

    A fixed small workload in both smoke and full runs (so the raw
    timings stay comparable); everything timed above runs untraced,
    keeping the committed numbers a gate on the tracing-off overhead.
    The ``engine_check`` prefix exercises the scalar cross-check span.
    """
    torus, bcg = _build_protocols()
    x, y = _input_pair(E17_N_BITS)
    trials = 256
    with tracing(Tracer()) as tracer:
        EqualityTrialRunner.for_torus(
            torus, x, y, base_seed=BASE_SEED
        ).run_flags(trials, engine_check=0.05)
        EqualityTrialRunner.for_reduction(
            bcg, x, y, base_seed=BASE_SEED
        ).run_flags(trials, engine_check=0.05)
    return {"trials": trials, **span_seconds_fields(tracer.events)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--trials", type=int, default=E17_TRIALS,
                        help=f"Monte-Carlo trials per sweep (default "
                             f"{E17_TRIALS}; fixed across smoke and full "
                             f"runs so per-trial timings stay comparable)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI run: skip the benchmarks/results table")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_smp.json",
                        help="output JSON path "
                             "(default repo-root BENCH_smp.json)")
    args = parser.parse_args(argv)
    if args.trials < 1:
        parser.error(f"--trials must be >= 1, got {args.trials}")

    print(f"smp-plane benchmark  cpu_count={os.cpu_count()}")
    e17_torus = bench_e17_torus(args.trials)
    e17_bcg = bench_e17_bcg(args.trials)

    if not args.smoke:
        from repro.experiments import Table

        table = Table(
            ["route", "seconds", "ms/trial", "speedup"],
            title=f"E17 - SMP plane vs scalar Section 7 protocols "
                  f"(n_bits={E17_N_BITS}, delta={E17_DELTA}, tau={E17_TAU}, "
                  f"{args.trials} trials x 2 sweeps each)",
        )
        for label, block in (("torus", e17_torus), ("BCG", e17_bcg)):
            total = block["trials"] * block["sweeps"]
            table.add_row(
                [f"{label} scalar", f"{block['scalar_seconds']:.3f}",
                 f"{block['scalar_seconds'] / total * 1000:.3f}", "1x"])
            table.add_row(
                [f"{label} smp plane", f"{block['fast_seconds']:.4f}",
                 f"{block['fast_seconds'] / total * 1000:.3f}",
                 f"{block['speedup_vs_scalar']:.0f}x"])
        results_dir = ROOT / "benchmarks" / "results"
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "e17_smp_plane.txt").write_text(table.render() + "\n")

    payload = {
        "schema": "bench_smp/v1",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "base_seed": BASE_SEED,
        "e17_torus": e17_torus,
        "e17_bcg": e17_bcg,
        "trace_phases": trace_phase_breakdown(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (e17_torus["equivalent"] and e17_bcg["equivalent"]):
        print("ERROR: smp plane disagrees with the scalar protocols — "
              "bit-identity contract broken", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
