"""Assemble EXPERIMENTS.md from the benchmark result tables.

Run the benchmark suite first (it writes ``benchmarks/results/*.txt``),
then:  ``python tools/collect_experiments.py``

Each section pairs the paper's claim with the measured table and the
reproduction verdict encoded in the benchmark's assertions (a table is
only written after its assertions passed).
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

#: Experiment sections: (id, paper claim, result files, expected shape).
SECTIONS = [
    (
        "E1 — The single-collision gap tester (Theorem 3.1, Lemma 3.4)",
        "A tester drawing s with s(s−1)=2δn and accepting iff all samples are "
        "distinct rejects the uniform distribution w.p. ≤ δ and any ε-far "
        "distribution w.p. ≥ (1+γε²)δ, with γ the explicit Eq. (1) slack.",
        ["e1_gap_tester"],
        "Measured rejection probabilities bracket δ and (1+γε²)δ on both the "
        "worst-case (Paninski) and bulk (two-bump) families; all assertions "
        "at 4σ Monte-Carlo margins.",
    ),
    (
        "E2 — 0-round testing, AND rule (Theorem 1.1)",
        "Network error ≤ p with s = Θ((C_p/ε²)·√(n/k^{Θ(ε²/C_p)})) samples "
        "per node; k helps only through a tiny exponent.",
        ["e2_and_rule"],
        "Both error sides within budget at every k; a 16× larger network "
        "saves < 3× samples — the AND rule's amplification-hostility. Note "
        "the construction is *infeasible* for small k at p = 1/3 (the weak "
        "collision signal cannot reach constant per-node rejection), exactly "
        "the regime restriction the paper states.",
    ),
    (
        "E3 — 0-round testing, threshold rule (Theorem 1.2)",
        "Error ≤ 1/3 with s = Θ(√(n/k)/ε²) samples per node and threshold "
        "T = Θ(1/ε⁴): the full √k saving.",
        ["e3_threshold_scaling", "e3b_rule_head_to_head"],
        "Log-log slope of s against k ≈ −0.5; errors ≤ 1/3 everywhere; the "
        "threshold rule beats the AND rule by ≥ 2× at a common "
        "configuration (who wins: threshold, decisively).",
    ),
    (
        "E4 — Asymmetric costs (Section 4)",
        "Max individual cost C = Θ(√n/ε²)/‖T‖₂ under the threshold rule; "
        "soundness inherited from the symmetric case by Lemma 4.1.",
        ["e4_asymmetric_costs", "e4b_lemma41"],
        "Measured C within ~5% of √(2nΔ)/‖T‖₂ across uniform, bimodal and "
        "power-law cost profiles; Lemma 4.1's extremality g(X) ≤ g(Y) holds "
        "on 200 random assignments (0 violations).",
    ),
    (
        "E5 — τ-token packaging (Definition 2, Theorem 5.1)",
        "Packages of exactly τ tokens, ≤ 1 package per token, ≤ τ−1 dropped, "
        "in O(D + τ) CONGEST rounds.",
        ["e5_token_packaging", "e5b_tau_slope", "e5c_diameter_slope"],
        "All Definition 2 invariants verified per run across 6 topologies; "
        "rounds ≈ 4D + τ (slope ≈ 1 in τ on a star, linear in D on lines).",
    ),
    (
        "E6 — CONGEST uniformity testing (Theorem 1.4)",
        "O(D + n/(kε⁴)) rounds, error ≤ 1/3, O(log n)-bit messages.",
        ["e6_congest", "e6b_tau_shape"],
        "Rounds within the O(D+τ) budget on star (τ dominates) and line "
        "(D dominates); bandwidth certificate from the engine; τ grows "
        "with n and shrinks with k as Θ(n/(kε⁴)) predicts.\n\n"
        "**Fast paths (measurement hygiene).** The round counts quoted "
        "above always come from **cold** engine runs — the real protocol "
        "the `O(D + τ)` claims are about.  The error-rate columns may use "
        "the fast paths instead: the warm start (cached `TreeSchedule`, "
        "enter TOKENS at round 0; bit-identical verdicts via "
        "`verify_warm_start`) and, since E15, the vectorised trial plane "
        "(`fast_path=True` with an `engine_check` fraction re-run through "
        "the engine).  The LOCAL-model sweeps (E7) have the same split "
        "since E16: `repro.localmodel.local_plane` replays the Luby-MIS "
        "layout and batches the AND-rule verdicts, bit-identical per seed "
        "to the scalar Section 6 tester.  `tools/bench_protocol.py` "
        "re-checks all routes' equivalence on every run, writing "
        "`BENCH_protocol.json`.",
    ),
    (
        "E7 — LOCAL uniformity testing (Section 6)",
        "MIS of G^r gathering: ≤ 2k/r virtual nodes with ≥ r/2 samples each; "
        "AND-rule testing at radius r gives error ≤ p.",
        ["e7_local_ring", "e7b_radius"],
        "Structural counting bounds hold exactly; measured errors within "
        "p = 0.45 on a 4096-node ring at r = 64; the doubling-search radius "
        "is consistent with the paper's closed-form curve.  Since E16 the "
        "error rates run through the vectorised LOCAL trial plane at 512 "
        "trials per sweep (vs the historical 60 scalar trials), which "
        "tightened the error columns from ±0.15 eyeball slack to a ±0.08 "
        "(~3.5σ) statistical band; `engine_check=0.05` re-runs a prefix of "
        "every sweep through the scalar `test_with_plan` route and "
        "cross-checks the replayed MIS layout against a real engine run, "
        "raising on any divergence.  E7b's doubling search probes radii "
        "through the same per-radius layout cache the subsequent sweep "
        "hits.",
    ),
    (
        "E8 — SMP Equality with asymmetric error (Lemma 7.3)",
        "A private-coin simultaneous protocol with worst-case O(√(τδn)) "
        "bits, perfect YES acceptance, NO rejection ≥ τδ.",
        ["e8_smp_equality", "e8b_cost_scaling"],
        "Zero rejections on equal inputs across all runs; NO-side rejection "
        "≥ τδ at 4σ; cost slope 1/2 in δ. The measured cost sits above the "
        "Theorem 7.2 Ω(√(f(τ)δn)) curve — both sides of the tight bound.",
    ),
    (
        "E9 — The lower-bound chain (Lemma 2.1, Thm 7.1/7.2, Cor 7.4, Thm 1.3)",
        "KL separation D(B_{1−δ}‖B_{1−τδ}) ≥ (δ/4)f(τ); any (δ,α)-gap tester "
        "needs Ω(√(f(α)δn)/log n) samples; testers convert to EQ protocols "
        "at q·log n bits.",
        ["e9a_kl_grid", "e9b_sandwich", "e9c_reduction"],
        "Lemma 2.1 holds on a 144-point grid (0 violations); the measured "
        "minimal sample count for the gap sits between Cor 7.4's lower "
        "curve and the √(2δn) construction; the forward reduction "
        "preserves the (δ, α) profile at q·log n bits.",
    ),
    (
        "E10 — Centralized context (the weak-signal premise)",
        "Classical testers need Θ(√n/ε²) samples for constant error; below "
        "that, only the single-collision gap signal survives.",
        ["e10_baselines", "e10b_weak_signal"],
        "Collision-count and χ² testers flip from unusable to reliable "
        "across the √n/ε² crossover; the plug-in L1 tester needs Θ(n) "
        "samples; at s ≈ √(2δn) ≪ crossover the gap signal is present, "
        "reliable, and tiny — the paper's starting point.",
    ),
    (
        "E11 — Distributed identity testing via the filter (Intro claim)",
        "Testing equality to any fixed η reduces to uniformity through a "
        "per-sample filter each node applies locally with private coins.",
        ["e11_identity", "e11b_filter_distance"],
        "The filter maps η to uniform exactly and preserves L1 distance "
        "(machine precision); the threshold network over filtered samples "
        "accepts η and rejects corrupted profiles.",
    ),
    (
        "E12 — Ablations",
        "(a) Threshold placement: Chernoff Eq. (5) vs exact binomial tails. "
        "(b) Far-family difficulty: Lemma 3.2 is tight on the Paninski "
        "pairing.",
        ["e12a_window_ablation", "e12b_family_difficulty"],
        "Exact tails dominate: smaller minimal feasible k and fewer samples "
        "at a common k, with the guarantee intact. Paninski/two-bump sit at "
        "the (1+ε²)/n collision floor and reject least; the heavy-element "
        "family rejects most.",
    ),
    (
        "E13 — Extension: the referee model of [ACT18] (related work §1.1)",
        "One sample per player, ℓ-bit messages to a referee: the focus of "
        "Acharya–Canonne–Tyagi is the players-vs-communication trade-off, "
        "orthogonal to this paper's per-node sample complexity.",
        ["e13_referee_tradeoff"],
        "The hash-and-test protocol reproduces the inverse trade-off: "
        "players scale as B^{-1/2} in the bucket count (measured slope "
        "−0.5), with error ≤ 1/3 on both sides at every message length.",
    ),
    (
        "E14 — Extension: robustness of the hardened CONGEST tester (fault model)",
        "None — the paper's protocols assume a reliable synchronous "
        "network.  This extension measures how a fault-hardened rebuild "
        "of the Theorem 1.4 protocol (timer-driven phases, ack/retransmit "
        "with bounded retries, conservative deadlines; "
        "`repro.congest.hardened`) degrades under seeded message loss and "
        "crash-stop failures injected by the engine "
        "(`repro.simulator.faults.FaultPlan`).  Every grid point runs "
        "paired Monte-Carlo trials (uniform and Paninski ε-far under the "
        "same fault plan) at n=200, k=60, ε=0.9, p=1/3, 64 samples/node "
        "(τ=6); fault plans are keyed by (base_seed, trial) and replay "
        "bit-for-bit.  `tools/bench_robustness.py` regenerates this table "
        "and `BENCH_robustness.json`; the `--smoke` grid runs in CI.\n\n"
        "**Fast path.** The whole grid replays through the vectorised "
        "fault plane (`repro.congest.fault_plane`): every per-trial-keyed "
        "plan's flooding, retry ladders, token transfer, give-up "
        "accounting, and verdict broadcast are re-derived as array ops "
        "over the plan batch, with no engine runs.  A fifth of each "
        "point's trials still runs through the engine, which cross-checks "
        "verdict, agreement, shortfall, missing-subtree and unheard "
        "counters bit for bit (any divergence raises `SimulationError`) "
        "and supplies the rounds/drops columns only it can measure.  On "
        "this grid the replay costs ≈3.1 ms per trial against ≈170 ms per "
        "engine trial — **≈55× per faulty trial** (`BENCH_robustness.json` "
        "`fault_plane.speedup`, `bit_identical: true`), which is what made "
        "25 trials/point affordable.",
        ["e14_robustness"],
        "(Star and ring sweeps in `BENCH_robustness.json` match.)  "
        "Message loss up to 10% costs only rounds (retransmissions absorb "
        "it: agreement is unchanged, shortfall ≈ 0; the uniform-side "
        "error rate ≈ 0.2 is the tester's intrinsic false-reject budget "
        "at p = 1/3, present at the fault-free point too).  "
        "Crashing 10% of nodes degrades conservatively: the far side "
        "stays perfect, the uniform side rejects (missing subtrees are "
        "counted as silent evidence and reported — never invented), and "
        "the surviving network still reaches unanimous agreement on every "
        "run.  The graceful-degradation contract — drop ≤ 0.05, no "
        "crashes ⇒ every node gets a verdict, agreement 1.0 — is asserted "
        "by the benchmark and CI.",
    ),
    (
        "E15 — Extension: the vectorised trial plane (Monte-Carlo fast path)",
        "None — an implementation result.  The Theorem 1.4 protocol's "
        "control flow never reads a token's *value*: the BFS tree, the "
        "c(v) counts and the forward-the-buffer-head rule are functions "
        "of the topology and τ alone, so which node's j-th sample lands "
        "in which package is fixed across Monte-Carlo trials.  "
        "`repro.congest.trial_plane` extracts that packaging layout once "
        "(`PackagingLayout`, cross-checked against a real engine run; or "
        "`RealisedLayout` from one instrumented faulty run for the "
        "hardened tester under a fixed `FaultPlan` — pack-then-replay) "
        "and then computes whole trial batches as one gather + one "
        "sort-and-diff collision pass + one threshold comparison.  "
        "Verdicts are bit-identical per seed to the engine path (the "
        "same sample stream is consumed; `engine_check` re-runs a trial "
        "prefix through the engine and raises on any disagreement), and "
        "the engine remains the measurement of record for rounds, "
        "bandwidth and fault counters.  `tools/bench_protocol.py` "
        "regenerates this table into `BENCH_protocol.json` "
        "(`e6_trial_plane`); `tools/bench_compare.py --smoke` gates "
        "regressions in CI.",
        ["e15_trial_plane"],
        "On the E6 error-rate workload (n=500, k=3000, τ=6, star) the "
        "trial plane runs the same trials ~150× faster than the "
        "warm-started engine (≈0.3 ms vs ≈45 ms per trial) after a "
        "~30 ms one-time layout extraction, with "
        "`bit_identical.fast_vs_engine = true` asserted by the benchmark "
        "gate.  The E6 sweep rides this path with an engine-check "
        "fraction; the E14 robustness sweep, whose plans are keyed per "
        "trial and realise a *different* layout every trial, rides the "
        "fault plane (`repro.congest.fault_plane`), which re-derives the "
        "layouts themselves as batched array ops (see E14).",
    ),
    (
        "E16 — Extension: the vectorised LOCAL trial plane",
        "None — an implementation result, the LOCAL-model counterpart of "
        "E15.  The Section 6 tester's control flow never reads a sample's "
        "*value* either: the Luby MIS of G^r, each virtual node's "
        "catchment and the samples-per-node/repetition counts are "
        "functions of (topology, r, the MIS seed stream) alone, so which "
        "node's j-th sample each AND-rule repetition reads is fixed "
        "across Monte-Carlo trials.  `repro.localmodel.local_plane` "
        "extracts that layout once (`LocalLayout`: bitset-BFS power graph "
        "+ an array-based lock-step replay of the engine's "
        "`LubyMISProgram`, cross-checked node-for-node against a real "
        "engine run by `verify_layout`) and then computes whole trial "
        "batches with a driver-draw split: every trial draws only the "
        "uniform doubles the numpy `Generator.choice` inverse-CDF would "
        "consume (keeping the stream bit-identical to the scalar "
        "tester's), gathers the slots the MIS nodes actually read, and "
        "detects collisions with a bit-pattern sort plus a max-bin-width "
        "gap filter — only sorted-adjacent pairs closer than the widest "
        "CDF step can collide, and just those rare survivors get exact "
        "`index_quantiles` lookups.  Verdicts are bit-identical per seed "
        "to `test_with_plan`; `estimate_error(..., fast_path=True, "
        "engine_check=f)` re-runs a prefix through the scalar route and "
        "re-verifies the layout, raising `SimulationError` on any "
        "divergence.  `choose_radius(..., fast_path=True)` shares the "
        "per-radius layout cache with the subsequent sweep.",
        ["e16_local_plane"],
        "On the E7 error-rate workload (n=20000, ring(4096), r=64) the "
        "local plane runs the same 512-trial sweeps ~52× faster than the "
        "scalar tester (≈0.019 ms vs ≈0.96 ms per trial) after a ~0.7 s "
        "one-time layout extraction, with both "
        "`bit_identical.fast_vs_scalar` and `bit_identical.layout_vs_engine` "
        "asserted true by the benchmark gate (`BENCH_protocol.json`, "
        "`e7_local_plane`; regression-gated by `tools/bench_compare.py "
        "--smoke` in CI).  The E7/E7b sweeps above ride this path; "
        "`DiscreteDistribution.sample()` itself is untouched — "
        "`gen.choice` remains the auditable scalar reference, and the "
        "split (`sample_uniform` + `index_quantiles`) is pinned "
        "bit-for-bit to it by `tests/distributions/test_base.py`.",
    ),
    (
        "E17 — Extension: the vectorised SMP lower-bound plane",
        "None — an implementation result, the Section 7 counterpart of "
        "E15/E16.  Both SMP protocols' expensive work never reads the "
        "private coins: the concatenated encoding (Reed–Solomon over "
        "GF(2^q) composed with the verified inner code) and the torus "
        "layout are pure functions of the inputs, and a trial consumes a "
        "tiny fixed coin stream — four bounded integer draws for the "
        "Lemma 7.3 torus protocol (the two start cells), 3q uniform "
        "doubles for the Theorem 7.1 BCG reduction (q driver values per "
        "player plus q referee coins).  `repro.smp.smp_plane` hoists the "
        "coding phase into one batched `encode_many` call (a GF "
        "power-table matrix product, element-identical to the scalar "
        "Horner loop) and replays whole trial batches through the "
        "chunk-keyed trial engine: the torus referee compare becomes two "
        "modular offsets plus one gather per table, and the BCG referee "
        "runs all trials at once through `decide_many` (the vectorised "
        "collision testers).  Verdicts are bit-identical per seed to the "
        "scalar `run()` on both protocols; `estimate_error(..., "
        "fast_path=True, engine_check=f)` re-runs a prefix of the same "
        "streams through the full scalar protocol and raises "
        "`SimulationError` on any divergence.  `tools/bench_smp.py` "
        "regenerates this table and `BENCH_smp.json`; "
        "`tools/bench_compare.py --smoke` gates regressions in CI.",
        ["e17_smp_plane"],
        "On the default `repro smp` workload (256-bit inputs, δ=0.05, "
        "τ=2.0 → a 1024-bit codeword, torus side 32, BCG domain 2048, "
        "q=14) the plane runs the same 2048-trial sweeps ~8900× faster "
        "than the scalar torus protocol (≈0.0001 ms vs ≈0.74 ms per "
        "trial) and ~1000× faster than the scalar BCG reduction "
        "(≈0.001 ms vs ≈0.80 ms per trial), with `bit_identical: true` "
        "on both asserted by the benchmark gate (`BENCH_smp.json`, "
        "`e17_torus`/`e17_bcg`).  The scalar route remains the "
        "measurement of record for communication cost (E8's bit counts "
        "are untouched); the plane only accelerates verdict statistics, "
        "which is what made the `repro smp` error columns affordable at "
        "thousands of trials.",
    ),
]

#: Closing paragraph appended after the last section (not tied to one
#: experiment: it documents the telemetry split embedded in BENCH_*.json).
FOOTER = (
    "\n**Phase breakdowns.** Every route above is instrumented with "
    "`repro.telemetry` (`docs/observability.md`): pass `--trace PATH` to "
    "any CLI run and `python -m repro report PATH` prints the per-phase "
    "wall-time split (FLOOD / CLAIM+COUNT / TOKENS / VOTE+DECIDE for a "
    "cold engine run; layout / draw / verdict / engine-check for the "
    "trial and local planes; build / replay / score per grid point for "
    "the fault plane) next to the run's manifest.  The committed "
    "`BENCH_*.json` payloads embed the same split as a `trace_phases` "
    "block from one fixed-size traced run, so `tools/bench_compare.py` "
    "gates phase-level slowdowns — e.g. a regression localised to the "
    "TOKENS phase fails the gate even if the headline total hides it.  "
    "Tracing never changes results (bit-identity pinned by "
    "`tests/telemetry/`), and all headline timings are measured "
    "untraced.\n"
)

HEADER = """# EXPERIMENTS — paper claims vs measured

Generated by ``python tools/collect_experiments.py`` from the tables the
benchmark suite writes to ``benchmarks/results/`` (each table is written
only after its reproduction assertions passed).  The paper (PODC 2018)
reports no absolute-number tables — every claim is a theorem — so
"reproduction" here means the **shape** of each theorem measured on the
implementation: who wins, what slope, which bound holds.  See DESIGN.md
for the experiment-to-module index.

Environment: pure-Python simulation (numpy), single machine, all
randomness seeded.  Monte-Carlo estimates run on the batched trial
engine (``repro.experiments.TrialRunner``): trials are chunk-keyed by
``(base_seed, labels, chunk)``, so every number below is bit-for-bit
reproducible at any batch size or worker count — see the README's
"trial engine" section and ``BENCH_trials.json`` for engine timings.
Regenerate with ``pytest benchmarks/ --benchmark-only`` then this
script.
"""


def main() -> int:
    missing = []
    parts = [HEADER]
    for title, claim, files, verdict in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper claim.** {claim}\n")
        for name in files:
            path = RESULTS / f"{name}.txt"
            if not path.exists():
                missing.append(name)
                parts.append(f"\n*(missing: run benchmarks to produce {name})*\n")
                continue
            parts.append("\n```text\n" + path.read_text().rstrip() + "\n```\n")
        parts.append(f"**Measured outcome.** {verdict}\n")
    parts.append(FOOTER)
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("".join(parts))
    print(f"wrote {out} ({len(SECTIONS)} sections, {len(missing)} missing tables)")
    if missing:
        print("missing:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    sys.exit(main())
