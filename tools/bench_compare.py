"""Regression gate: diff a fresh benchmark run against committed numbers.

Collects every ``*_seconds`` field from the committed ``BENCH_trials.json``,
``BENCH_protocol.json``, ``BENCH_robustness.json``, and ``BENCH_smp.json``
payloads and from a
freshly generated run of the same benchmarks, normalises each timing by
the trial/repeat count in scope (so a ``--smoke`` run is comparable to
the committed full run), and fails when any shared field got slower by
more than the tolerance.

Speedups and *new* fields never fail the gate — only a recorded timing
regressing does.  Timings whose committed and fresh totals are both under
a millisecond are skipped as pure noise.  The telemetry-derived
``trace_phases`` blocks (single traced runs, see ``docs/observability.md``)
compare under a higher noise floor and doubled tolerance.

Usage::

    PYTHONPATH=src python tools/bench_compare.py             # full rerun
    PYTHONPATH=src python tools/bench_compare.py --smoke     # CI gate
    PYTHONPATH=src python tools/bench_compare.py --smoke \\
        --fresh-trials /tmp/bench_trials.json \\
        --fresh-protocol /tmp/bench_protocol.json            # reuse runs

Exits 1 with a per-field report if any regression exceeds the tolerance
(default 0.30 = 30% slower; ``--smoke`` defaults to 3.0, since smoke
runs on shared CI hardware are an order-of-magnitude noisier).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
from typing import Dict, List, Optional, Tuple

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Paths where both runs spent less than this many seconds are skipped —
#: sub-millisecond timer noise, not a measurable regression.
NOISE_FLOOR_SECONDS = 1e-3

#: ``trace_phases`` blocks hold per-phase wall times from a *single*
#: traced run (see the ``trace_phase_breakdown`` helpers in the bench
#: scripts), so they are an order of magnitude noisier than the
#: best-of-N headline timings: a higher floor and extra tolerance slack
#: keep the gate on real phase-level regressions only.  The headline
#: (untraced) ``*_seconds`` fields keep the tight gate — which is what
#: pins the tracing-off overhead of the instrumentation to the noise
#: floor.
TRACE_PHASES_KEY = "trace_phases"
TRACE_NOISE_FLOOR_SECONDS = 5e-2
TRACE_TOLERANCE_SLACK = 2.0


def collect_seconds(
    payload: object, scale: Optional[float] = None, prefix: str = ""
) -> Dict[str, Tuple[float, float]]:
    """Flatten a bench payload to ``{dotted.path: (seconds, scale)}``.

    ``scale`` is the trial/repeat count the timing amortises over: the
    nearest enclosing dict's ``trials``/``repeats`` field (looking
    through a ``workload`` sub-dict, where ``bench_perf`` keeps it),
    inherited downward.  Timings with no count in scope get scale 1 —
    they time a single run and compare raw.
    """
    out: Dict[str, Tuple[float, float]] = {}
    if isinstance(payload, dict):
        own = payload.get("trials") or payload.get("repeats")
        if own is None and isinstance(payload.get("workload"), dict):
            workload = payload["workload"]
            own = workload.get("trials") or workload.get("repeats")
        if isinstance(own, (int, float)) and own > 0:
            scale = float(own)
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                out.update(collect_seconds(value, scale, path))
            elif key.endswith("_seconds") and isinstance(value, (int, float)):
                out[path] = (float(value), scale if scale else 1.0)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            out.update(collect_seconds(value, scale, f"{prefix}[{index}]"))
    return out


def compare_payloads(
    committed: object, fresh: object, tolerance: float
) -> Tuple[List[dict], List[dict]]:
    """Diff two bench payloads; returns ``(rows, regressions)``.

    Each row describes one ``*_seconds`` field present in both payloads:
    per-unit committed/fresh timings, the slowdown ratio, and whether it
    breaches the tolerance (``regressions`` is the breaching subset).
    """
    committed_fields = collect_seconds(committed)
    fresh_fields = collect_seconds(fresh)
    rows: List[dict] = []
    regressions: List[dict] = []
    for path in sorted(set(committed_fields) & set(fresh_fields)):
        committed_total, committed_scale = committed_fields[path]
        fresh_total, fresh_scale = fresh_fields[path]
        is_trace = TRACE_PHASES_KEY in path.split(".")
        floor = TRACE_NOISE_FLOOR_SECONDS if is_trace else NOISE_FLOOR_SECONDS
        path_tolerance = (
            tolerance * TRACE_TOLERANCE_SLACK if is_trace else tolerance
        )
        if committed_total < floor and fresh_total < floor:
            continue
        committed_unit = committed_total / committed_scale
        fresh_unit = fresh_total / fresh_scale
        ratio = (
            fresh_unit / committed_unit
            if committed_unit > 0
            else float("inf")
        )
        row = {
            "path": path,
            "committed_unit_seconds": committed_unit,
            "fresh_unit_seconds": fresh_unit,
            "ratio": ratio,
            "regressed": ratio > 1.0 + path_tolerance,
        }
        rows.append(row)
        if row["regressed"]:
            regressions.append(row)
    return rows, regressions


def _run_bench(script: str, smoke: bool, out: pathlib.Path) -> None:
    cmd = [sys.executable, str(ROOT / "tools" / script), "--out", str(out)]
    if smoke:
        cmd.append("--smoke")
    env_path = str(ROOT / "src")
    subprocess.run(
        cmd,
        check=True,
        env={**__import__("os").environ, "PYTHONPATH": env_path},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the benchmarks in smoke mode and loosen "
                             "the default tolerance for CI noise")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="fail on any *_seconds field slower by more "
                             "than this fraction (default 0.30; 3.0 with "
                             "--smoke)")
    parser.add_argument("--fresh-trials", type=pathlib.Path, default=None,
                        help="fresh bench_perf payload; reused if it exists, "
                             "generated there otherwise")
    parser.add_argument("--fresh-protocol", type=pathlib.Path, default=None,
                        help="fresh bench_protocol payload; reused if it "
                             "exists, generated there otherwise")
    parser.add_argument("--fresh-robustness", type=pathlib.Path, default=None,
                        help="fresh bench_robustness payload; reused if it "
                             "exists, generated there otherwise")
    parser.add_argument("--fresh-smp", type=pathlib.Path, default=None,
                        help="fresh bench_smp payload; reused if it exists, "
                             "generated there otherwise")
    parser.add_argument("--committed-trials", type=pathlib.Path,
                        default=ROOT / "BENCH_trials.json")
    parser.add_argument("--committed-protocol", type=pathlib.Path,
                        default=ROOT / "BENCH_protocol.json")
    parser.add_argument("--committed-robustness", type=pathlib.Path,
                        default=ROOT / "BENCH_robustness.json")
    parser.add_argument("--committed-smp", type=pathlib.Path,
                        default=ROOT / "BENCH_smp.json")
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = 3.0 if args.smoke else 0.30
    if tolerance < 0:
        parser.error(f"--tolerance must be >= 0, got {tolerance}")

    pairs = []
    with tempfile.TemporaryDirectory() as tmp:
        for label, script, committed_path, fresh_path in (
            ("trials", "bench_perf.py", args.committed_trials,
             args.fresh_trials),
            ("protocol", "bench_protocol.py", args.committed_protocol,
             args.fresh_protocol),
            ("robustness", "bench_robustness.py", args.committed_robustness,
             args.fresh_robustness),
            ("smp", "bench_smp.py", args.committed_smp, args.fresh_smp),
        ):
            if not committed_path.exists():
                print(f"[{label}] no committed payload at {committed_path}; "
                      f"skipping")
                continue
            if fresh_path is None:
                fresh_path = pathlib.Path(tmp) / f"fresh_{label}.json"
            if not fresh_path.exists():
                _run_bench(script, args.smoke, fresh_path)
            committed = json.loads(committed_path.read_text())
            fresh = json.loads(fresh_path.read_text())
            pairs.append((label, committed, fresh))

    failed = False
    for label, committed, fresh in pairs:
        rows, regressions = compare_payloads(committed, fresh, tolerance)
        print(f"[{label}] {len(rows)} shared *_seconds fields, "
              f"{len(regressions)} regression(s) at tolerance "
              f"{tolerance:.0%}")
        for row in rows:
            marker = "REGRESSED" if row["regressed"] else "ok"
            print(f"  {row['path']:<45} "
                  f"{row['committed_unit_seconds'] * 1000:10.3f} ms -> "
                  f"{row['fresh_unit_seconds'] * 1000:10.3f} ms/unit  "
                  f"[{row['ratio']:.2f}x] {marker}")
        if regressions:
            failed = True
    if failed:
        print("ERROR: benchmark regression beyond tolerance", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
