"""Time the protocol simulator's fast path against the pre-fast-path engine.

Four workloads, each run through up to three bit-equivalent routes:

- **E5 packaging** (grid, τ=8): the full FLOOD/CHILD/COUNT/TOKENS
  protocol (*cold* — this is the run whose round count the ``O(D + τ)``
  benchmark E5 cites) vs the *warm* start that loads the topology's
  cached :class:`TreeSchedule` and runs only the TOKENS phase.
- **E6 tester error-rate** (n=500, k=3000, star): Monte-Carlo CONGEST
  tester trials through (a) a bench-local **legacy** engine that
  faithfully reproduces the pre-fast-path inner loop (per-round dict
  inboxes, full ``sorted(live)`` rebuilds, eager per-trial generator
  spawning) with the parameter-solver caches cleared per trial, (b) the
  current slim engine *cold*, and (c) the slim engine *warm-started*.
  The headline number is legacy vs warm: the speedup the fast path buys
  a Monte-Carlo error-rate sweep.
- **E7 gather** (ring, r=4): the LOCAL CLAIM+ROUTE protocol cold vs
  warm (preloaded CLAIM fixpoint).
- **E7 LOCAL trial plane** (n=20000, ring(4096), r=64): Monte-Carlo
  error-rate trials of the Section 6 tester through the scalar
  ``test_with_plan`` route vs the vectorised LOCAL plane
  (:class:`repro.localmodel.LocalTrialRunner`) on the same chunk-keyed
  streams — per-trial flags must match bit for bit, and the replayed
  MIS layout must match a real engine run.

Every route must agree exactly — identical packaging outcomes, identical
verdicts, identical sample assignments — and the script exits non-zero
if any equivalence check fails.

Usage::

    PYTHONPATH=src python tools/bench_protocol.py            # full run
    PYTHONPATH=src python tools/bench_protocol.py --smoke    # <30 s CI run

Writes ``BENCH_protocol.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

import repro.congest.tester as tester_mod  # noqa: E402
from repro.congest import (  # noqa: E402
    CongestTrialRunner,
    CongestUniformityTester,
    verify_warm_start,
)
from repro.congest.tester import _alarm_probabilities  # noqa: E402
from repro.congest.token_packaging import run_token_packaging  # noqa: E402
from repro.core.binomial import find_separating_threshold  # noqa: E402
from repro.distributions import far_family  # noqa: E402
from repro.exceptions import BandwidthExceededError, SimulationError  # noqa: E402
from repro.localmodel import luby_mis  # noqa: E402
from repro.localmodel.gather_protocol import run_gather_protocol  # noqa: E402
from repro.rng import SeedLike, ensure_rng, spawn  # noqa: E402
from repro.simulator import Topology  # noqa: E402
from repro.simulator.engine import EngineReport  # noqa: E402
from repro.telemetry import Tracer, span_seconds_fields, tracing  # noqa: E402
from repro.simulator.message import Message  # noqa: E402
from repro.simulator.node import Context  # noqa: E402

BASE_SEED = 2018  # PODC year; any fixed value works

# E6 workload (ISSUE acceptance workload): Theorem 1.4 at n=500, k=3000.
E6_N = 500
E6_K = 3000
E6_EPS = 0.9


class LegacySynchronousEngine:
    """The pre-fast-path engine loop, preserved verbatim for baselining.

    Reproduces the original ``SynchronousEngine.run``: eager per-node
    generator spawning, per-round ``dict`` inboxes built with
    ``setdefault``, ``sorted(set(...))`` active-set rebuilds every round,
    trace stats recomputed by re-iterating the inboxes, and outbox
    draining through per-round context list rebuilds.  Constructor is
    signature-compatible with the current engine so it can be patched
    into ``repro.congest.tester`` for the baseline measurement.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 1_000_000,
        record_trace: bool = False,
        deadlock_quiet_rounds: int = 3,
        faults=None,
        phase_names=None,  # accepted for signature parity, never traced
    ) -> None:
        if faults is not None and not faults.is_null:
            raise ValueError(
                "the legacy baseline engine predates fault injection"
            )
        self.topology = topology
        self.bandwidth_bits = bandwidth_bits
        self.max_rounds = max_rounds
        self.record_trace = record_trace
        self.deadlock_quiet_rounds = deadlock_quiet_rounds

    def run(self, program_factory, rng: SeedLike = None) -> EngineReport:
        topo = self.topology
        gen = ensure_rng(rng)
        node_rngs = spawn(gen, topo.k)  # eager: every node pays up front
        programs = [program_factory(v) for v in range(topo.k)]
        contexts = [
            Context(node_id=v, neighbors=topo.neighbors(v), rng=node_rngs[v])
            for v in range(topo.k)
        ]

        live: set = set(range(topo.k))
        pending_wakes: Dict[int, List[int]] = {}

        def note_halt_and_wake(v: int) -> None:
            ctx = contexts[v]
            if ctx.halted:
                live.discard(v)
            elif ctx._wake_at is not None:
                pending_wakes.setdefault(ctx._wake_at, []).append(v)

        for v, prog in enumerate(programs):
            prog.on_start(contexts[v])
            note_halt_and_wake(v)
        in_flight = self._collect(contexts)

        rounds = 0
        messages = 0
        total_bits = 0
        max_edge_bits = 0
        quiet_streak = 0
        trace = []

        while rounds < self.max_rounds:
            if not live and not in_flight:
                return EngineReport(
                    rounds=rounds,
                    messages=messages,
                    total_bits=total_bits,
                    max_edge_bits_per_round=max_edge_bits,
                    outputs=[ctx.output for ctx in contexts],
                    halted=True,
                    trace=trace,
                )
            rounds += 1
            inboxes: Dict[int, List[Message]] = {}
            for msg in in_flight:
                inboxes.setdefault(msg.dst, []).append(msg)
                messages += 1
                total_bits += msg.bits
                max_edge_bits = max(max_edge_bits, msg.bits)
            if in_flight:
                quiet_streak = 0
            else:
                quiet_streak += 1
                if quiet_streak >= self.deadlock_quiet_rounds:
                    sample = sorted(live)[:8]
                    raise SimulationError(
                        f"deadlock: {quiet_streak} silent rounds with live "
                        f"nodes {sample}{'...' if len(live) > 8 else ''} "
                        f"at round {rounds}"
                    )
            due = pending_wakes.pop(rounds, [])
            if quiet_streak > 0:
                active = sorted(live)
            else:
                active = sorted(set(inboxes).union(due).intersection(live))
            for v in active:
                ctx = contexts[v]
                if ctx._wake_at is not None and ctx._wake_at <= rounds:
                    ctx._wake_at = None
                ctx.round = rounds
                ctx.quiet_rounds = quiet_streak
                programs[v].on_round(ctx, inboxes.get(v, []))
                note_halt_and_wake(v)
            if self.record_trace:
                from repro.simulator.engine import RoundStats

                trace.append(
                    RoundStats(
                        round=rounds,
                        messages=sum(len(ms) for ms in inboxes.values()),
                        bits=sum(m.bits for ms in inboxes.values() for m in ms),
                        active_nodes=len(active),
                        quiet=quiet_streak > 0,
                    )
                )
            in_flight = self._collect([contexts[v] for v in active])

        return EngineReport(
            rounds=rounds,
            messages=messages,
            total_bits=total_bits,
            max_edge_bits_per_round=max_edge_bits,
            outputs=[ctx.output for ctx in contexts],
            halted=all(ctx.halted for ctx in contexts),
            trace=trace,
        )

    def _collect(self, contexts: Sequence[Context]) -> List[Message]:
        out: List[Message] = []
        for ctx in contexts:
            seen_edges = set()
            for msg in ctx._drain_outbox():
                if self.bandwidth_bits is not None:
                    if msg.bits > self.bandwidth_bits:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent {msg.bits} bits to "
                            f"{msg.dst} (budget {self.bandwidth_bits}) "
                            f"[tag={msg.tag!r}]"
                        )
                    if msg.dst in seen_edges:
                        raise BandwidthExceededError(
                            f"node {msg.src} sent two messages to {msg.dst} "
                            f"in one round [tag={msg.tag!r}]"
                        )
                    seen_edges.add(msg.dst)
                out.append(msg)
        return out


def _drop_caches(topology: Topology) -> None:
    """Reset everything the fast path memoizes, so the legacy baseline
    re-pays the pre-fast-path per-trial costs (threshold solving, tail
    evaluation, diameter BFS)."""
    find_separating_threshold.cache_clear()
    _alarm_probabilities.cache_clear()
    topology._diam_ub = None


def bench_e6_tester(trials: int) -> dict:
    tester = CongestUniformityTester.solve(E6_N, E6_K, E6_EPS)
    far = far_family("paninski", E6_N, E6_EPS, rng=0)
    seeds = [BASE_SEED + i for i in range(trials)]

    def run_trials(warm: bool):
        topo = Topology.star(E6_K)  # fresh topology: no cached schedule
        out = []
        start = time.perf_counter()
        for seed in seeds:
            out.append(tester.run(topo, far, rng=seed, warm_start=warm)[0])
        return time.perf_counter() - start, out

    def run_legacy():
        topo = Topology.star(E6_K)
        out = []
        current = tester_mod.SynchronousEngine
        tester_mod.SynchronousEngine = LegacySynchronousEngine
        try:
            start = time.perf_counter()
            for seed in seeds:
                _drop_caches(topo)
                out.append(tester.run(topo, far, rng=seed, warm_start=False)[0])
            elapsed = time.perf_counter() - start
        finally:
            tester_mod.SynchronousEngine = current
        return elapsed, out

    t_legacy, v_legacy = run_legacy()
    t_cold, v_cold = run_trials(warm=False)
    t_warm, v_warm = run_trials(warm=True)
    equivalent = v_legacy == v_cold == v_warm

    print(f"E6 tester   n={E6_N} k={E6_K} tau={tester.params.tau} "
          f"trials={trials}")
    print(f"  legacy engine, cold : {t_legacy:7.3f} s "
          f"({t_legacy / trials * 1000:6.1f} ms/trial)")
    print(f"  slim engine,   cold : {t_cold:7.3f} s "
          f"({t_cold / trials * 1000:6.1f} ms/trial)  "
          f"[{t_legacy / t_cold:.2f}x]")
    print(f"  slim engine,   warm : {t_warm:7.3f} s "
          f"({t_warm / trials * 1000:6.1f} ms/trial)  "
          f"[{t_legacy / t_warm:.2f}x]")
    print(f"  verdicts identical  : {equivalent}")

    return {
        "n": E6_N,
        "k": E6_K,
        "eps": E6_EPS,
        "tau": tester.params.tau,
        "topology": "star",
        "trials": trials,
        "legacy_seconds": round(t_legacy, 4),
        "cold_seconds": round(t_cold, 4),
        "warm_seconds": round(t_warm, 4),
        "speedup_cold": round(t_legacy / t_cold, 2),
        "speedup_warm": round(t_legacy / t_warm, 2),
        "rejection_rate": sum(not v for v in v_warm) / trials,
        "equivalent": equivalent,
    }


def bench_e6_trial_plane(trials: int, smoke: bool) -> dict:
    """E6 error-rate trials: warm engine vs the vectorised trial plane.

    The trial plane extracts the packaging layout once (timed
    separately as ``layout_seconds``) and then replays it over batched
    sample matrices; ``fast_seconds`` times the steady-state replay on
    the same seeds the warm engine route runs, and the verdicts must
    match bit for bit.
    """
    tester = CongestUniformityTester.solve(E6_N, E6_K, E6_EPS)
    far = far_family("paninski", E6_N, E6_EPS, rng=0)
    seeds = [BASE_SEED + i for i in range(trials)]

    topo = Topology.star(E6_K)
    start = time.perf_counter()
    runner = CongestTrialRunner.build(tester, topo)
    t_layout = time.perf_counter() - start

    start = time.perf_counter()
    v_engine = [
        tester.run(topo, far, rng=seed, warm_start=True)[0] for seed in seeds
    ]
    t_warm = time.perf_counter() - start

    t_fast = float("inf")
    for _ in range(5):  # steady state: best of a few passes
        start = time.perf_counter()
        v_fast = runner.verdicts_for_seeds(far, seeds)
        t_fast = min(t_fast, time.perf_counter() - start)
    identical = v_fast == v_engine

    speedup = t_warm / t_fast
    print(f"E6 trial plane  n={E6_N} k={E6_K} tau={tester.params.tau} "
          f"trials={trials}")
    print(f"  layout extraction   : {t_layout * 1000:7.1f} ms (once per "
          f"topology)")
    print(f"  warm engine trials  : {t_warm:7.3f} s "
          f"({t_warm / trials * 1000:6.1f} ms/trial)")
    print(f"  trial-plane trials  : {t_fast:7.3f} s "
          f"({t_fast / trials * 1000:6.3f} ms/trial)  [{speedup:.0f}x]")
    print(f"  verdicts identical  : {identical}")

    if not smoke:
        from repro.experiments import Table

        table = Table(
            ["route", "seconds", "ms/trial", "speedup"],
            title=f"E15 - trial plane vs warm engine, E6 error-rate "
                  f"workload (n={E6_N}, k={E6_K}, tau={tester.params.tau}, "
                  f"{trials} trials)",
        )
        table.add_row(["warm engine", f"{t_warm:.3f}",
                       f"{t_warm / trials * 1000:.1f}", "1x"])
        table.add_row(["trial plane", f"{t_fast:.4f}",
                       f"{t_fast / trials * 1000:.3f}", f"{speedup:.0f}x"])
        table.add_row(["layout extraction (once)", f"{t_layout:.3f}", "-",
                       "-"])
        results_dir = ROOT / "benchmarks" / "results"
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "e15_trial_plane.txt").write_text(
            table.render() + "\n"
        )

    return {
        "n": E6_N,
        "k": E6_K,
        "eps": E6_EPS,
        "tau": tester.params.tau,
        "topology": "star",
        "trials": trials,
        "virtual_nodes": runner.layout.virtual_nodes,
        "layout_seconds": round(t_layout, 5),
        "warm_engine_seconds": round(t_warm, 4),
        "fast_seconds": round(t_fast, 6),
        "speedup_vs_warm": round(speedup, 1),
        "bit_identical": {"fast_vs_engine": identical},
        "equivalent": identical,
    }


# E7 LOCAL-plane workload (the EXPERIMENTS.md E7 instance): Section 6
# tester on ring(4096) at r=64.  The trial count is fixed across smoke
# and full runs so every *_seconds field normalises identically in
# ``bench_compare``'s per-trial gate.
E7L_N = 20_000
E7L_K = 4_096
E7L_EPS = 1.0
E7L_P = 0.45
E7L_RADIUS = 64
E7L_TRIALS = 512


def bench_e7_local_plane(smoke: bool) -> dict:
    """E7 error-rate trials: scalar Section 6 tester vs the LOCAL plane.

    Both routes replay the same chunk-keyed trial streams (uniform and
    paninski-far sweeps, ``E7L_TRIALS`` trials each), so the per-trial
    error flags must agree bit for bit; the plane's replayed MIS layout
    is additionally cross-checked against a real engine run
    (``verify_layout``).  ``fast_seconds`` is the best of five
    steady-state passes over both sweeps; ``layout_seconds`` times the
    once-per-(topology, radius) structural extraction.
    """
    from repro.distributions import uniform
    from repro.experiments.runner import TrialRunner
    from repro.localmodel import LocalTrialRunner, LocalUniformityTester
    from repro.localmodel.local_plane import mis_generator
    from repro.localmodel.tester import _LocalTrialExperiment

    tester = LocalUniformityTester(n=E7L_N, eps=E7L_EPS, p=E7L_P)
    sweeps = (
        ("uniform", uniform(E7L_N), True),
        ("far", far_family("paninski", E7L_N, E7L_EPS, rng=0), False),
    )
    trials = E7L_TRIALS

    topo = Topology.ring(E7L_K)
    start = time.perf_counter()
    runner = LocalTrialRunner.build(
        tester, topo, E7L_RADIUS, base_seed=BASE_SEED
    )
    t_layout = time.perf_counter() - start

    plan = tester.plan(
        topo, E7L_RADIUS, mis_generator(BASE_SEED, runner.layout.radius)
    )
    scalar_flags = {}
    t_scalar = 0.0
    for label, dist, is_uniform in sweeps:
        experiment = _LocalTrialExperiment(
            tester=tester, plan=plan, distribution=dist, is_uniform=is_uniform
        )
        start = time.perf_counter()
        scalar_flags[label] = TrialRunner(base_seed=BASE_SEED).run_flags(
            experiment, trials, "local", topo.k
        )
        t_scalar += time.perf_counter() - start

    t_fast = float("inf")
    for _ in range(5):  # steady state: best of a few passes
        start = time.perf_counter()
        fast_flags = {
            label: runner.run_flags(dist, is_uniform, trials)
            for label, dist, is_uniform in sweeps
        }
        t_fast = min(t_fast, time.perf_counter() - start)
    identical = all(
        np.array_equal(fast_flags[label], scalar_flags[label])
        for label, _, _ in sweeps
    )

    start = time.perf_counter()
    layout_check = runner.layout.verify_layout(topo)
    t_check = time.perf_counter() - start

    total_trials = trials * len(sweeps)
    speedup = t_scalar / t_fast
    print(f"E7 local plane  n={E7L_N} k={E7L_K} r={E7L_RADIUS} "
          f"mis={runner.layout.mis_size} m={runner.params.m} "
          f"trials={trials}x{len(sweeps)}")
    print(f"  layout extraction   : {t_layout * 1000:7.1f} ms (once per "
          f"topology+radius)")
    print(f"  scalar tester trials: {t_scalar:7.3f} s "
          f"({t_scalar / total_trials * 1000:6.3f} ms/trial)")
    print(f"  local-plane trials  : {t_fast:7.3f} s "
          f"({t_fast / total_trials * 1000:6.3f} ms/trial)  [{speedup:.0f}x]")
    print(f"  flags identical     : {identical}   "
          f"layout vs engine: {layout_check.equivalent}")

    if not smoke:
        from repro.experiments import Table

        table = Table(
            ["route", "seconds", "ms/trial", "speedup"],
            title=f"E16 - LOCAL trial plane vs scalar tester, E7 "
                  f"error-rate workload (n={E7L_N}, ring({E7L_K}), "
                  f"r={E7L_RADIUS}, {trials} trials x {len(sweeps)} sweeps)",
        )
        table.add_row(["scalar tester", f"{t_scalar:.3f}",
                       f"{t_scalar / total_trials * 1000:.3f}", "1x"])
        table.add_row(["local plane", f"{t_fast:.4f}",
                       f"{t_fast / total_trials * 1000:.3f}",
                       f"{speedup:.0f}x"])
        table.add_row(["layout extraction (once)", f"{t_layout:.3f}", "-",
                       "-"])
        table.add_row(["engine layout cross-check", f"{t_check:.3f}", "-",
                       "-"])
        results_dir = ROOT / "benchmarks" / "results"
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "e16_local_plane.txt").write_text(
            table.render() + "\n"
        )

    return {
        "n": E7L_N,
        "k": E7L_K,
        "eps": E7L_EPS,
        "p": E7L_P,
        "radius": E7L_RADIUS,
        "topology": f"ring({E7L_K})",
        "trials": trials,
        "sweeps": len(sweeps),
        "mis_size": runner.layout.mis_size,
        "samples_per_node": runner.params.samples_per_node,
        "repetitions_m": runner.params.m,
        "layout_seconds": round(t_layout, 5),
        "layout_check_seconds": round(t_check, 5),
        "scalar_seconds": round(t_scalar, 4),
        "fast_seconds": round(t_fast, 6),
        "speedup_vs_scalar": round(speedup, 1),
        "err_uniform": float(np.mean(scalar_flags["uniform"])),
        "err_far": float(np.mean(scalar_flags["far"])),
        "bit_identical": {
            "fast_vs_scalar": identical,
            "layout_vs_engine": layout_check.equivalent,
        },
        "equivalent": identical and layout_check.equivalent,
    }


def trace_phase_breakdown() -> dict:
    """One traced cold E6 engine run, aggregated to ``*_seconds`` fields.

    The same fixed workload in smoke and full runs (so the raw timings
    stay comparable across the two); everything timed above runs
    untraced, keeping the committed numbers a gate on the tracing-off
    overhead.  The cold run is the one whose FLOOD/CLAIM/TOKENS/VOTE
    phase split E6 cares about.
    """
    tester = CongestUniformityTester.solve(E6_N, E6_K, E6_EPS)
    far = far_family("paninski", E6_N, E6_EPS, rng=0)
    with tracing(Tracer()) as tracer:
        tester.run(Topology.star(E6_K), far, rng=BASE_SEED)
    return {"trials": 1, **span_seconds_fields(tracer.events)}


def bench_e5_packaging(repeats: int) -> dict:
    topo = Topology.grid(8, 8)
    tau = 8
    tokens = list(range(topo.k))
    check = verify_warm_start(topo, tokens, tau, rng=BASE_SEED)

    def timed(warm: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            t = Topology.grid(8, 8)
            start = time.perf_counter()
            run_token_packaging(t, tokens, tau, rng=BASE_SEED, warm_start=warm)
            best = min(best, time.perf_counter() - start)
        return best

    t_cold = timed(False)
    t_warm = timed(True)
    print(f"E5 packaging grid(8,8) tau={tau}: cold {t_cold * 1000:6.1f} ms "
          f"({check.cold_report.rounds} rounds, the O(D+tau) run) vs "
          f"warm {t_warm * 1000:6.1f} ms ({check.warm_report.rounds} rounds) "
          f"[{t_cold / t_warm:.2f}x]  equivalent={check.equivalent}")
    return {
        "topology": "grid(8,8)",
        "tau": tau,
        "cold_seconds": round(t_cold, 5),
        "warm_seconds": round(t_warm, 5),
        "cold_rounds": check.cold_report.rounds,
        "warm_rounds": check.warm_report.rounds,
        "speedup_warm": round(t_cold / t_warm, 2),
        "equivalent": check.equivalent,
    }


def bench_e7_gather(repeats: int) -> dict:
    topo = Topology.ring(96)
    radius = 4
    power = topo.power_graph(radius)
    mis, _ = luby_mis(power, rng=BASE_SEED)
    samples = np.random.default_rng(BASE_SEED).integers(0, 1000, size=topo.k)
    cold = run_gather_protocol(topo, mis, samples, radius, rng=1, warm_start=False)
    warm = run_gather_protocol(topo, mis, samples, radius, rng=1, warm_start=True)
    equivalent = warm.owner == cold.owner and warm.samples_at == cold.samples_at

    def timed(warm_flag: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            t = Topology.ring(96)
            start = time.perf_counter()
            run_gather_protocol(t, mis, samples, radius, rng=1,
                                warm_start=warm_flag)
            best = min(best, time.perf_counter() - start)
        return best

    t_cold = timed(False)
    t_warm = timed(True)
    print(f"E7 gather ring(96) r={radius}: cold {t_cold * 1000:6.1f} ms "
          f"({cold.rounds} rounds) vs warm {t_warm * 1000:6.1f} ms "
          f"({warm.rounds} rounds) [{t_cold / t_warm:.2f}x]  "
          f"equivalent={equivalent}")
    return {
        "topology": "ring(96)",
        "radius": radius,
        "cold_seconds": round(t_cold, 5),
        "warm_seconds": round(t_warm, 5),
        "cold_rounds": cold.rounds,
        "warm_rounds": warm.rounds,
        "speedup_warm": round(t_cold / t_warm, 2),
        "equivalent": equivalent,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--trials", type=int, default=None,
                        help="E6 Monte-Carlo trials (default 9, smoke 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (<30 s) for CI sanity checks")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_protocol.json",
                        help="output JSON path "
                             "(default repo-root BENCH_protocol.json)")
    args = parser.parse_args(argv)

    if args.trials is not None and args.trials < 1:
        parser.error(f"--trials must be >= 1, got {args.trials}")
    trials = args.trials
    if trials is None:
        trials = 3 if args.smoke else 9
    repeats = 1 if args.smoke else 3

    print(f"protocol fast-path benchmark  cpu_count={os.cpu_count()}")
    e5 = bench_e5_packaging(repeats)
    e6 = bench_e6_tester(trials)
    e15 = bench_e6_trial_plane(trials, args.smoke)
    e7 = bench_e7_gather(repeats)
    e16 = bench_e7_local_plane(args.smoke)

    payload = {
        "schema": "bench_protocol/v1",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "base_seed": BASE_SEED,
        "e5_packaging": e5,
        "e6_tester": e6,
        "e6_trial_plane": e15,
        "e7_gather": e7,
        "e7_local_plane": e16,
        "trace_phases": trace_phase_breakdown(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (e5["equivalent"] and e6["equivalent"] and e15["equivalent"]
            and e7["equivalent"] and e16["equivalent"]):
        print("ERROR: fast path disagrees with the full protocol — "
              "equivalence contract broken", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
