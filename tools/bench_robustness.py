"""Sweep the hardened CONGEST tester over a fault grid.

For each benchmark topology (star / ring / grid) the sweep runs
Monte-Carlo trials of the full hardened Theorem 1.4 protocol under a
grid of message-drop probabilities and crash fractions, recording the
uniform- and far-side error rates next to the engine's fault counters
(drops, missing subtrees, token shortfall, unheard nodes).

The headline check: at drop probability ≤ 0.05 with no crashes, every
run must complete with a verdict and full network agreement — the
hardened protocol's graceful-degradation contract.  The script exits
non-zero if that fails.

Usage::

    PYTHONPATH=src python tools/bench_robustness.py            # full run
    PYTHONPATH=src python tools/bench_robustness.py --smoke    # CI run

Writes ``BENCH_robustness.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import Table, robustness_sweep  # noqa: E402

BASE_SEED = 2018  # PODC year; any fixed value works

# Workload: the smallest Theorem 1.4 instance feasible at p = 1/3 with a
# benchmark-sized network (solver yields tau = 6, 640 expected packages).
N = 200
K = 60
EPS = 0.9
P = 1.0 / 3.0
SAMPLES_PER_NODE = 64


def write_results_table(all_points: dict) -> None:
    """Render the grid sweep as the E14 table for EXPERIMENTS.md."""
    table = Table(
        ["drop", "crash", "err(unif)", "err(far)", "rounds", "drops",
         "missing", "shortfall", "unheard", "agree"],
        title=f"E14 - hardened tester under faults, grid(6x10), "
              f"{all_points['grid'][0].trials} trials/point",
    )
    for pt in sorted(
        all_points["grid"], key=lambda p: (p.crash_fraction, p.drop_prob)
    ):
        table.add_row([
            f"{pt.drop_prob:.2f}",
            f"{pt.crash_fraction:.2f}",
            f"{pt.error_uniform:.2f}",
            f"{pt.error_far:.2f}",
            f"{pt.mean_rounds:.0f}",
            f"{pt.mean_drops:.0f}",
            f"{pt.mean_missing_subtrees:.1f}",
            f"{pt.mean_shortfall:.1f}",
            f"{pt.mean_unheard:.1f}",
            f"{pt.mean_agreement:.2f}",
        ])
    results_dir = ROOT / "benchmarks" / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "e14_robustness.txt").write_text(table.render() + "\n")


def run_sweep(topology: str, smoke: bool) -> list:
    if smoke:
        drop_probs = (0.0, 0.05)
        crash_fractions = (0.0,)
        trials = 2
    else:
        drop_probs = (0.0, 0.02, 0.05, 0.1)
        crash_fractions = (0.0, 0.1)
        trials = 10
    start = time.perf_counter()
    # Fault-free grid points ride the trial-plane replay; a third of
    # their trials still run through the engine to feed the mean_*
    # columns and cross-check verdicts (faulty points are engine-only —
    # their per-trial plans realise a different layout every trial).
    points = robustness_sweep(
        N,
        K,
        EPS,
        p=P,
        samples_per_node=SAMPLES_PER_NODE,
        topology=topology,
        drop_probs=drop_probs,
        crash_fractions=crash_fractions,
        trials=trials,
        base_seed=BASE_SEED,
        fast_path=True,
        engine_check=1 / 3,
    )
    elapsed = time.perf_counter() - start

    table = Table(
        ["drop", "crash", "err(unif)", "err(far)", "rounds", "drops",
         "missing", "shortfall", "unheard", "agree"],
        title=f"{topology}(k={K})  n={N} eps={EPS} s={SAMPLES_PER_NODE} "
              f"trials={trials}  [{elapsed:.1f} s]",
    )
    for pt in points:
        table.add_row([
            f"{pt.drop_prob:.2f}",
            f"{pt.crash_fraction:.2f}",
            f"{pt.error_uniform:.2f}",
            f"{pt.error_far:.2f}",
            f"{pt.mean_rounds:.0f}",
            f"{pt.mean_drops:.0f}",
            f"{pt.mean_missing_subtrees:.1f}",
            f"{pt.mean_shortfall:.1f}",
            f"{pt.mean_unheard:.1f}",
            f"{pt.mean_agreement:.2f}",
        ])
    print(table.render())
    return list(points)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast sweep for CI sanity checks")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_robustness.json",
                        help="output JSON path "
                             "(default repo-root BENCH_robustness.json)")
    args = parser.parse_args(argv)

    print(f"robustness sweep  cpu_count={os.cpu_count()}")
    all_points = {}
    for topology in ("star", "ring", "grid"):
        all_points[topology] = run_sweep(topology, args.smoke)
    if not args.smoke:
        write_results_table(all_points)

    # Contract check: low loss + no crashes => every run completes with a
    # verdict and unanimous agreement (graceful degradation never lets a
    # node hang or default silently at these rates).
    ok = True
    for topology, points in all_points.items():
        for pt in points:
            if pt.crash_fraction == 0.0 and pt.drop_prob <= 0.05:
                if pt.no_verdict or pt.mean_agreement < 1.0:
                    print(f"ERROR: {topology} at drop={pt.drop_prob} lost "
                          f"verdicts (no_verdict={pt.no_verdict}, "
                          f"agreement={pt.mean_agreement})", file=sys.stderr)
                    ok = False

    payload = {
        "schema": "bench_robustness/v1",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "base_seed": BASE_SEED,
        "workload": {
            "n": N,
            "k": K,
            "eps": EPS,
            "p": P,
            "samples_per_node": SAMPLES_PER_NODE,
        },
        "points": {
            topology: [pt.as_dict() for pt in points]
            for topology, points in all_points.items()
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
