"""Sweep the hardened CONGEST tester over a fault grid.

For each benchmark topology (star / ring / grid) the sweep runs
Monte-Carlo trials of the full hardened Theorem 1.4 protocol under a
grid of message-drop probabilities and crash fractions, recording the
uniform- and far-side error rates next to the fault counters (drops,
missing subtrees, token shortfall, unheard nodes).

The whole grid — per-trial-keyed fault plans included — replays through
the vectorized fault plane (``repro.congest.fault_plane``); a subset of
each point's trials re-runs through the engine to cross-check verdicts,
agreement, and give-up counters bit for bit (any divergence raises
``SimulationError`` and aborts the bench) and to supply the
rounds/drops columns only the engine measures.  The recorded
``fault_plane.speedup`` compares the two routes per trial over the
faulty grid points.

The headline check: at drop probability ≤ 0.05 with no crashes, every
run must complete with a verdict and full network agreement — the
hardened protocol's graceful-degradation contract.  The script exits
non-zero if that fails.

Usage::

    PYTHONPATH=src python tools/bench_robustness.py            # full run
    PYTHONPATH=src python tools/bench_robustness.py --smoke    # CI run

Writes ``BENCH_robustness.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import Table, robustness_sweep  # noqa: E402
from repro.telemetry import Tracer, span_seconds_fields, tracing  # noqa: E402

BASE_SEED = 2018  # PODC year; any fixed value works

# Workload: the smallest Theorem 1.4 instance feasible at p = 1/3 with a
# benchmark-sized network (solver yields tau = 6, 640 expected packages).
N = 200
K = 60
EPS = 0.9
P = 1.0 / 3.0
SAMPLES_PER_NODE = 64


def point_label(pt) -> str:
    """Stable grid-point key, shared between smoke and full payloads."""
    return f"d{pt.drop_prob:.2f}_c{pt.crash_fraction:.2f}"


def point_entry(pt) -> dict:
    """One point's JSON entry: stats plus route timings.

    The replay and engine timings sit in sub-dicts carrying their own
    ``trials`` scale so ``bench_compare`` normalises each by the trial
    count it actually amortises over (the engine route only re-runs the
    cross-check subset).
    """
    entry = pt.as_dict()
    fast_seconds = entry.pop("fast_path_seconds")
    engine_seconds = entry.pop("engine_seconds")
    engine_trials = entry.pop("engine_trials")
    entry["fast"] = {
        "trials": pt.trials,
        "replay_seconds": fast_seconds,
        "ms_per_trial": 1000.0 * fast_seconds / pt.trials,
    }
    entry["engine"] = {
        "trials": engine_trials,
        "runs_seconds": engine_seconds,
        "ms_per_trial": (
            1000.0 * engine_seconds / engine_trials if engine_trials else 0.0
        ),
    }
    return entry


def write_results_table(all_points: dict) -> None:
    """Render the grid sweep as the E14 table for EXPERIMENTS.md."""
    table = Table(
        ["drop", "crash", "err(unif)", "err(far)", "rounds", "drops",
         "missing", "shortfall", "unheard", "agree"],
        title=f"E14 - hardened tester under faults, grid(6x10), "
              f"{all_points['grid'][0].trials} trials/point",
    )
    for pt in sorted(
        all_points["grid"], key=lambda p: (p.crash_fraction, p.drop_prob)
    ):
        table.add_row([
            f"{pt.drop_prob:.2f}",
            f"{pt.crash_fraction:.2f}",
            f"{pt.error_uniform:.2f}",
            f"{pt.error_far:.2f}",
            f"{pt.mean_rounds:.0f}",
            f"{pt.mean_drops:.0f}",
            f"{pt.mean_missing_subtrees:.1f}",
            f"{pt.mean_shortfall:.1f}",
            f"{pt.mean_unheard:.1f}",
            f"{pt.mean_agreement:.2f}",
        ])
    results_dir = ROOT / "benchmarks" / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "e14_robustness.txt").write_text(table.render() + "\n")


def run_sweep(topology: str, smoke: bool) -> list:
    if smoke:
        drop_probs = (0.0, 0.05)
        crash_fractions = (0.0,)
        # 4 trials, not fewer: the committed run amortises its one
        # batched build over 25 trials/point, so a tiny smoke count
        # would inflate the per-trial replay timing against the gate.
        trials = 4
        engine_check = 1 / 4
    else:
        drop_probs = (0.0, 0.02, 0.05, 0.1)
        crash_fractions = (0.0, 0.1)
        # The fault plane makes trials cheap; the engine subset (1/5 of
        # them) dominates the wall clock and feeds the rounds/drops
        # columns plus the bit-identity cross-check.
        trials = 25
        engine_check = 1 / 5
    start = time.perf_counter()
    points = robustness_sweep(
        N,
        K,
        EPS,
        p=P,
        samples_per_node=SAMPLES_PER_NODE,
        topology=topology,
        drop_probs=drop_probs,
        crash_fractions=crash_fractions,
        trials=trials,
        base_seed=BASE_SEED,
        fast_path=True,
        engine_check=engine_check,
    )
    elapsed = time.perf_counter() - start

    table = Table(
        ["drop", "crash", "err(unif)", "err(far)", "rounds", "missing",
         "shortfall", "unheard", "agree", "fast ms/t", "engine ms/t"],
        title=f"{topology}(k={K})  n={N} eps={EPS} s={SAMPLES_PER_NODE} "
              f"trials={trials}  [{elapsed:.1f} s]",
    )
    for pt in points:
        engine_ms = (
            1000.0 * pt.engine_seconds / pt.engine_trials
            if pt.engine_trials
            else 0.0
        )
        table.add_row([
            f"{pt.drop_prob:.2f}",
            f"{pt.crash_fraction:.2f}",
            f"{pt.error_uniform:.2f}",
            f"{pt.error_far:.2f}",
            f"{pt.mean_rounds:.0f}",
            f"{pt.mean_missing_subtrees:.1f}",
            f"{pt.mean_shortfall:.1f}",
            f"{pt.mean_unheard:.1f}",
            f"{pt.mean_agreement:.2f}",
            f"{1000.0 * pt.fast_path_seconds / pt.trials:.2f}",
            f"{engine_ms:.1f}",
        ])
    print(table.render())
    return list(points)


def trace_phase_breakdown() -> dict:
    """One traced mini-sweep, aggregated to ``*_seconds`` phase fields.

    The same fixed star workload in smoke and full runs (so the raw
    timings stay comparable across the two); the main sweeps above run
    untraced, keeping the committed numbers a gate on the tracing-off
    overhead.
    """
    with tracing(Tracer()) as tracer:
        robustness_sweep(
            N,
            K,
            EPS,
            p=P,
            samples_per_node=SAMPLES_PER_NODE,
            topology="star",
            drop_probs=(0.0, 0.05),
            crash_fractions=(0.0,),
            trials=4,
            base_seed=BASE_SEED,
            fast_path=True,
            engine_check=1 / 4,
        )
    return {"trials": 1, **span_seconds_fields(tracer.events)}


def fault_plane_summary(all_points: dict) -> dict:
    """Per-trial replay-vs-engine speedup over the faulty grid points.

    ``bit_identical`` is earned, not asserted: every engine-checked
    trial was compared verdict-, agreement-, and counter-exact, and a
    single divergence raises before this summary is written.
    """
    fast_ms = []
    engine_ms = []
    for points in all_points.values():
        for pt in points:
            if pt.drop_prob == 0.0 and pt.crashed_nodes == 0:
                continue
            if not pt.engine_trials:
                continue
            fast_ms.append(1000.0 * pt.fast_path_seconds / pt.trials)
            engine_ms.append(1000.0 * pt.engine_seconds / pt.engine_trials)
    mean_fast = sum(fast_ms) / len(fast_ms) if fast_ms else 0.0
    mean_engine = sum(engine_ms) / len(engine_ms) if engine_ms else 0.0
    return {
        "faulty_points": len(fast_ms),
        "fast_ms_per_trial": mean_fast,
        "engine_ms_per_trial": mean_engine,
        "speedup": mean_engine / mean_fast if mean_fast else 0.0,
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast sweep for CI sanity checks")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_robustness.json",
                        help="output JSON path "
                             "(default repo-root BENCH_robustness.json)")
    args = parser.parse_args(argv)

    print(f"robustness sweep  cpu_count={os.cpu_count()}")
    all_points = {}
    for topology in ("star", "ring", "grid"):
        all_points[topology] = run_sweep(topology, args.smoke)
    if not args.smoke:
        write_results_table(all_points)

    # Contract check: low loss + no crashes => every run completes with a
    # verdict and unanimous agreement (graceful degradation never lets a
    # node hang or default silently at these rates).
    ok = True
    for topology, points in all_points.items():
        for pt in points:
            if pt.crash_fraction == 0.0 and pt.drop_prob <= 0.05:
                if pt.no_verdict or pt.mean_agreement < 1.0:
                    print(f"ERROR: {topology} at drop={pt.drop_prob} lost "
                          f"verdicts (no_verdict={pt.no_verdict}, "
                          f"agreement={pt.mean_agreement})", file=sys.stderr)
                    ok = False

    summary = fault_plane_summary(all_points)
    print(f"fault plane: {summary['fast_ms_per_trial']:.2f} ms/trial vs "
          f"engine {summary['engine_ms_per_trial']:.1f} ms/trial over "
          f"{summary['faulty_points']} faulty points -> "
          f"{summary['speedup']:.0f}x")

    payload = {
        "schema": "bench_robustness/v2",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "base_seed": BASE_SEED,
        "workload": {
            "n": N,
            "k": K,
            "eps": EPS,
            "p": P,
            "samples_per_node": SAMPLES_PER_NODE,
        },
        "fault_plane": summary,
        "trace_phases": trace_phase_breakdown(),
        "points": {
            topology: {point_label(pt): point_entry(pt) for pt in points}
            for topology, points in all_points.items()
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
