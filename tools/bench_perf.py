"""Time the trial engine's serial, batched, and parallel paths.

Runs an E1-style collision workload (the paper's single-collision gap
tester at n=20 000, delta=0.05) through three bit-identical routes:

- **serial**    — ``TrialRunner.run_flags`` with the scalar per-trial
  experiment (one ``distribution.sample(s)`` call per trial);
- **batched**   — ``TrialRunner.run_flags_batched`` with the vectorised
  kernel (one ``(m, s)`` sample matrix per call);
- **parallel**  — the batched path with ``workers=N`` chunk-level
  processes.

Because every chunk of ``TRIAL_CHUNK`` trials re-derives its generator
from ``(base_seed, *labels, chunk_index)``, all three must produce the
same flag array bit for bit — the script verifies this (and invariance
to the ``batch`` knob) before reporting timings, and records the verdict
in the output JSON.

Also micro-benchmarks ``has_collision``'s small-batch set fast path
against the sort-based path it replaced.

Usage::

    PYTHONPATH=src python tools/bench_perf.py            # full run, 20k+ trials
    PYTHONPATH=src python tools/bench_perf.py --smoke    # <30 s sanity run
    PYTHONPATH=src python tools/bench_perf.py --trials 50000 --workers 8

Writes ``BENCH_trials.json`` (override with ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core import CollisionGapTester  # noqa: E402
from repro.core.collision import _SET_SCAN_CUTOFF  # noqa: E402
from repro.distributions import uniform  # noqa: E402
from repro.experiments import TRIAL_CHUNK, TrialRunner  # noqa: E402
from repro.telemetry import Tracer, span_seconds_fields, tracing  # noqa: E402
from repro.zeroround import CollisionTrialKernel, ScalarCollisionTrial  # noqa: E402

N = 20_000
DELTA = 0.05
BASE_SEED = 2018  # PODC year; any fixed value works

#: Fixed traced workload for the ``trace_phases`` payload block — the
#: same size in smoke and full runs so the raw timings stay comparable
#: across the two (bench_compare diffs them without a trial scale), and
#: large enough (~100 ms batched) to clear the gate's trace noise floor.
TRACE_TRIALS = 16_384


def trace_phase_breakdown(runner, kernel, labels, batch) -> dict:
    """One traced batched run, aggregated to ``*_seconds`` phase fields.

    The main timings above run untraced (so the committed numbers keep
    gating the tracing-off overhead); this single extra run is where the
    per-phase wall-time split in the payload comes from.
    """
    with tracing(Tracer()) as tracer:
        runner.run_flags_batched(kernel, TRACE_TRIALS, *labels, batch=batch)
    return {"trials": 1, **span_seconds_fields(tracer.events)}


def _time(fn, repeats: int = 1):
    """Best-of-``repeats`` wall time and the (last) return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def bench_has_collision(s: int, reps: int) -> dict:
    """Micro-benchmark ``has_collision`` against the old ``np.unique`` path.

    The current implementation picks a hash-set scan (early exit) below
    ``_SET_SCAN_CUTOFF`` and a sort+diff scan above; both replace the
    previous ``np.unique(arr).size != arr.size``, which pays for
    unique-value extraction the predicate never needed.
    """
    from repro.core.collision import has_collision

    rng = np.random.default_rng(0)
    sizes = sorted({8, _SET_SCAN_CUTOFF, s})
    rows = []
    for size in sizes:
        batches = [rng.integers(0, N, size=size) for _ in range(256)]

        def current():
            for arr in batches:
                has_collision(arr)

        def unique_path():
            for arr in batches:
                bool(np.unique(arr).size != arr.size)

        current(), unique_path()  # warm caches before timing
        t_cur, _ = _time(current, repeats=reps)
        t_old, _ = _time(unique_path, repeats=reps)
        per = 1e6 / len(batches)
        rows.append({
            "s": size,
            "current_us": round(t_cur * per, 3),
            "unique_path_us": round(t_old * per, 3),
            "speedup": round(t_old / t_cur, 2) if t_cur > 0 else None,
        })
    return {"set_scan_cutoff": _SET_SCAN_CUTOFF, "sizes": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--trials", type=int, default=None,
                        help="Monte-Carlo trials (default 24000, smoke 2000)")
    parser.add_argument("--workers", type=int, default=4,
                        help="processes for the parallel path (default 4)")
    parser.add_argument("--batch", type=int, default=TRIAL_CHUNK,
                        help=f"trials per vectorised call (default {TRIAL_CHUNK})")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (<30 s) for CI sanity checks")
    parser.add_argument("--out", type=pathlib.Path,
                        default=ROOT / "BENCH_trials.json",
                        help="output JSON path (default repo-root BENCH_trials.json)")
    args = parser.parse_args(argv)

    if args.trials is not None and args.trials < 1:
        parser.error(f"--trials must be >= 1, got {args.trials}")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")

    trials = args.trials
    workers = args.workers
    if args.smoke:
        trials = trials if trials is not None else 2_000
        workers = min(workers, 2)
    if trials is None:
        trials = 24_000

    tester = CollisionGapTester.from_delta(N, DELTA)
    dist = uniform(N)
    scalar = ScalarCollisionTrial(dist, tester.s)
    kernel = CollisionTrialKernel(dist, tester.s)
    runner = TrialRunner(base_seed=BASE_SEED)
    labels = ("bench", "e1", tester.s)

    print(f"workload: n={N} delta={DELTA} s={tester.s} trials={trials} "
          f"batch={args.batch} workers={workers} cpu_count={os.cpu_count()}")

    t_serial, flags_serial = _time(
        lambda: runner.run_flags(scalar, trials, *labels))
    print(f"serial   (scalar per-trial loop): {t_serial:8.3f} s")

    t_batched, flags_batched = _time(
        lambda: runner.run_flags_batched(kernel, trials, *labels,
                                         batch=args.batch))
    print(f"batched  (vectorised kernel)    : {t_batched:8.3f} s  "
          f"[{t_serial / t_batched:.1f}x]")

    t_parallel, flags_parallel = _time(
        lambda: runner.run_flags_batched(kernel, trials, *labels,
                                         batch=args.batch, workers=workers))
    print(f"parallel (workers={workers})          : {t_parallel:8.3f} s  "
          f"[{t_serial / t_parallel:.1f}x]")

    # Reproducibility: all paths and any batch size give the same bits.
    odd_batch = max(1, args.batch // 3 + 1)
    flags_oddbatch = runner.run_flags_batched(kernel, trials, *labels,
                                              batch=odd_batch)
    bit_identical = {
        "serial_vs_batched": bool(np.array_equal(flags_serial, flags_batched)),
        "serial_vs_parallel": bool(np.array_equal(flags_serial, flags_parallel)),
        "batch_invariance": bool(np.array_equal(flags_batched, flags_oddbatch)),
    }
    print(f"bit-identical: {bit_identical}")
    if not all(bit_identical.values()):
        print("ERROR: engine paths disagree — reproducibility contract broken",
              file=sys.stderr)
        return 1

    collision = bench_has_collision(tester.s, reps=1 if args.smoke else 3)
    for row in collision["sizes"]:
        print(f"has_collision s={row['s']:3d}: current {row['current_us']} us "
              f"vs np.unique {row['unique_path_us']} us [{row['speedup']}x]")

    rate = float(flags_serial.mean())
    payload = {
        "schema": "bench_trials/v1",
        "smoke": bool(args.smoke),
        "cpu_count": os.cpu_count(),
        "workload": {
            "kind": "e1_collision_gap",
            "n": N,
            "delta": DELTA,
            "s": tester.s,
            "trials": trials,
            "rejection_rate": round(rate, 6),
        },
        "engine": {
            "base_seed": BASE_SEED,
            "trial_chunk": TRIAL_CHUNK,
            "batch": args.batch,
            "workers": workers,
        },
        "serial_seconds": round(t_serial, 4),
        "batched_seconds": round(t_batched, 4),
        "parallel_seconds": round(t_parallel, 4),
        "speedup_batched": round(t_serial / t_batched, 2),
        "speedup_parallel": round(t_serial / t_parallel, 2),
        "bit_identical": bit_identical,
        "has_collision_us": collision,
        "trace_phases": trace_phase_breakdown(
            runner, kernel, labels, args.batch
        ),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
