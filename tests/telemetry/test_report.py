"""Round-trip tests: write a trace, load it back, summarise it."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.exceptions import ParameterError
from repro.telemetry import (
    RunManifest,
    Tracer,
    counter_totals,
    load_trace,
    phase_totals,
    render_report,
    tracing,
)


@pytest.fixture()
def trace_path(tmp_path):
    """A real three-span trace with a manifest and a late annotation."""
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(str(path))
    with tracing(tracer):
        tracer.set_manifest(
            RunManifest(
                command="robustness",
                route="fault-plane",
                seed=2018,
                argv=("robustness", "--n", "200"),
                parameters={"n": 200, "k": 60},
                topology={"name": "star", "k": 60},
            )
        )
        telemetry.annotate(parameters={"tau": 6})
        with telemetry.span("sweep", grid_points=2) as sweep:
            sweep.count("trials", 8)
            with telemetry.span("point", drop_prob=0.05) as point:
                point.count("errors", 2)
            telemetry.record_span("draw", 0.5, counters={"tokens": 640})
    tracer.close()
    return path


class TestLoadTrace:
    def test_tree_structure(self, trace_path):
        trace = load_trace(str(trace_path))
        assert [root.name for root in trace.roots] == ["sweep"]
        (sweep,) = trace.roots
        assert [c.name for c in sweep.children] == ["point", "draw"]
        assert sweep.counters == {"trials": 8.0}
        assert sweep.attrs == {"grid_points": 2}

    def test_manifest_update_merges_dicts(self, trace_path):
        trace = load_trace(str(trace_path))
        # annotate(parameters={"tau": 6}) merges into, not replaces, the
        # manifest's parameters dict.
        assert trace.manifest["parameters"] == {"n": 200, "k": 60, "tau": 6}

    def test_self_seconds_excludes_children(self, trace_path):
        trace = load_trace(str(trace_path))
        (sweep,) = trace.roots
        children = sum(c.seconds for c in sweep.children)
        assert sweep.self_seconds == pytest.approx(
            max(0.0, sweep.seconds - children)
        )

    def test_walk_yields_depths(self, trace_path):
        trace = load_trace(str(trace_path))
        walked = [(depth, node.name) for depth, node in trace.walk()]
        assert walked == [(0, "sweep"), (1, "point"), (1, "draw")]


class TestSummaries:
    def test_phase_totals(self, trace_path):
        totals = phase_totals(load_trace(str(trace_path)))
        assert totals["draw"]["calls"] == 1
        assert totals["draw"]["seconds"] == pytest.approx(0.5)

    def test_counter_totals_keyed_by_span_name(self, trace_path):
        totals = counter_totals(load_trace(str(trace_path)))
        assert totals["sweep.trials"] == 8.0
        assert totals["point.errors"] == 2.0
        assert totals["draw.tokens"] == 640.0

    def test_render_report_mentions_everything(self, trace_path):
        text = render_report(load_trace(str(trace_path)))
        assert "run manifest" in text
        assert "fault-plane" in text
        assert "span tree (3 spans)" in text
        assert "hot phases" in text
        assert "counter totals" in text
        assert "draw.tokens" in text


class TestMalformedTraces:
    def _write(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def _manifest_line(self):
        return json.dumps(RunManifest(command="demo", route="solve").as_event())

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParameterError, match="cannot read trace"):
            load_trace(str(tmp_path / "nope.jsonl"))

    def test_invalid_json_names_line(self, tmp_path):
        path = self._write(tmp_path, [self._manifest_line(), "{oops"])
        with pytest.raises(ParameterError, match=":2:"):
            load_trace(path)

    def test_no_manifest(self, tmp_path):
        path = self._write(
            tmp_path,
            [json.dumps({"event": "span", "id": 1, "name": "x", "seconds": 0})],
        )
        with pytest.raises(ParameterError, match="no manifest"):
            load_trace(path)

    def test_duplicate_manifest(self, tmp_path):
        path = self._write(
            tmp_path, [self._manifest_line(), self._manifest_line()]
        )
        with pytest.raises(ParameterError, match="2 manifest events"):
            load_trace(path)

    def test_duplicate_span_id(self, tmp_path):
        span = json.dumps({"event": "span", "id": 1, "name": "x", "seconds": 0})
        path = self._write(tmp_path, [self._manifest_line(), span, span])
        with pytest.raises(ParameterError, match="duplicate span id"):
            load_trace(path)

    def test_dangling_parent(self, tmp_path):
        span = json.dumps(
            {"event": "span", "id": 1, "parent": 99, "name": "x", "seconds": 0}
        )
        path = self._write(tmp_path, [self._manifest_line(), span])
        with pytest.raises(ParameterError, match="unknown parent 99"):
            load_trace(path)

    def test_span_missing_field(self, tmp_path):
        span = json.dumps({"event": "span", "id": 1, "name": "x"})
        path = self._write(tmp_path, [self._manifest_line(), span])
        with pytest.raises(ParameterError, match="missing field 'seconds'"):
            load_trace(path)

    def test_manifest_update_needs_fields(self, tmp_path):
        update = json.dumps({"event": "manifest_update"})
        path = self._write(tmp_path, [self._manifest_line(), update])
        with pytest.raises(ParameterError, match="fields"):
            load_trace(path)
