"""Unit tests for the tracer: spans, counters, manifests, activation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import telemetry
from repro.exceptions import ParameterError
from repro.telemetry import (
    MANIFEST_SCHEMA,
    NULL_SPAN,
    ROUTES,
    TRACE_SCHEMA,
    RunManifest,
    Tracer,
    library_versions,
    tracing,
    validate_manifest,
)


class TestSpans:
    def test_nesting_records_parent_links(self):
        with tracing(Tracer()) as tracer:
            with telemetry.span("outer") as outer:
                with telemetry.span("inner"):
                    pass
        events = [e for e in tracer.events if e["event"] == "span"]
        # Spans are emitted on exit: inner first.
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer_ev = events
        assert inner["parent"] == outer.span_id
        assert outer_ev["parent"] is None

    def test_counters_are_additive(self):
        with tracing(Tracer()) as tracer:
            with telemetry.span("work") as sp:
                sp.count("items", 3).count("items", 4).count("errors")
        (event,) = tracer.events
        assert event["counters"] == {"items": 7, "errors": 1}

    def test_attrs_and_numpy_coercion(self):
        with tracing(Tracer()) as tracer:
            with telemetry.span("work", k=np.int64(60)) as sp:
                sp.set(mode="batched")
        (event,) = tracer.events
        assert event["attrs"] == {"k": 60, "mode": "batched"}
        # Must survive JSON encoding (numpy scalars do not, raw).
        json.dumps(event)

    def test_exception_tags_error_attr(self):
        with tracing(Tracer()) as tracer:
            with pytest.raises(ValueError):
                with telemetry.span("boom"):
                    raise ValueError("nope")
        (event,) = tracer.events
        assert event["attrs"]["error"] == "ValueError"

    def test_record_span_attaches_to_current(self):
        with tracing(Tracer()) as tracer:
            with telemetry.span("parent") as parent:
                telemetry.record_span("phase", 0.25, counters={"rounds": 4})
        phase, _ = tracer.events
        assert phase["name"] == "phase"
        assert phase["seconds"] == 0.25
        assert phase["parent"] == parent.span_id


class TestActivation:
    def test_disabled_returns_shared_null_span(self):
        assert not telemetry.enabled()
        assert telemetry.span("anything", k=3) is NULL_SPAN
        # All no-ops, chainable, usable as a context manager.
        with telemetry.span("x") as sp:
            assert sp.set(a=1).count("c", 2) is NULL_SPAN
        telemetry.record_span("x", 1.0)  # no-op, no error
        telemetry.annotate(solved={"tau": 6})  # no-op, no error

    def test_tracing_restores_previous(self):
        outer = Tracer()
        inner = Tracer()
        with tracing(outer):
            with tracing(inner):
                assert telemetry.get_tracer() is inner
            assert telemetry.get_tracer() is outer
        assert telemetry.get_tracer() is None

    def test_annotate_emits_manifest_update(self):
        with tracing(Tracer()) as tracer:
            telemetry.annotate(solved={"tau": 6})
        (event,) = tracer.events
        assert event == {
            "event": "manifest_update",
            "fields": {"solved": {"tau": 6}},
        }


class TestFileSink:
    def test_owned_path_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(str(path))
        with tracing(tracer):
            tracer.set_manifest(RunManifest(command="demo", route="zero-round"))
            with telemetry.span("work"):
                pass
        tracer.close()
        tracer.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "manifest"
        assert events[1]["event"] == "span"


class TestManifest:
    def _valid_event(self):
        return RunManifest(
            command="robustness",
            route="fault-plane",
            seed=2018,
            argv=("robustness", "--n", "200"),
            parameters={"n": 200, "k": 60},
            topology={"name": "star", "k": 60},
        ).as_event()

    def test_as_event_is_schema_valid(self):
        event = self._valid_event()
        validate_manifest(event)
        assert event["schema"] == MANIFEST_SCHEMA
        assert event["trace_schema"] == TRACE_SCHEMA
        assert event["route"] in ROUTES

    def test_versions_cover_bitstream_libraries(self):
        versions = library_versions()
        assert set(versions) >= {"python", "numpy", "repro"}

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda e: e.pop("command"),
            lambda e: e.pop("versions"),
            lambda e: e.update(route="teleport"),
            lambda e: e.update(seed="not-an-int"),
            lambda e: e.update(schema="repro-manifest/v999"),
            lambda e: e.update(parameters=[1, 2]),
            lambda e: e["versions"].pop("numpy"),
        ],
    )
    def test_defects_rejected(self, corrupt):
        event = self._valid_event()
        corrupt(event)
        with pytest.raises(ParameterError, match="invalid run manifest"):
            validate_manifest(event)

    def test_all_defects_reported_at_once(self):
        event = self._valid_event()
        del event["command"]
        event["route"] = "teleport"
        with pytest.raises(ParameterError) as excinfo:
            validate_manifest(event)
        message = str(excinfo.value)
        assert "command" in message and "teleport" in message
