"""Tracing must be an observer: every traced route is bit-identical to
its untraced run under the same seed.

This pins the telemetry layer's core contract (it never draws
randomness and never branches the traced computation) for the four
instrumented execution routes — cold engine, trial plane, fault plane,
local plane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.congest import CongestTrialRunner, CongestUniformityTester
from repro.distributions import far_family, uniform
from repro.experiments import make_topology
from repro.experiments.robustness import robustness_sweep
from repro.telemetry import Tracer, tracing

N, K, EPS, P, S = 200, 60, 0.9, 1.0 / 3.0, 64
SEED = 2018

# Timing fields legitimately differ between runs; everything else must not.
_TIMING_FIELDS = ("fast_path_seconds", "engine_seconds")


@pytest.fixture(scope="module")
def tester():
    return CongestUniformityTester.solve(N, K, EPS, P, S)


@pytest.fixture(scope="module")
def topo():
    return make_topology("star", K)


class TestEngineRoute:
    def test_cold_engine_report_identical(self, tester, topo):
        plain = tester.run(topo, uniform(N), rng=SEED)
        with tracing(Tracer()) as tracer:
            traced = tester.run(topo, uniform(N), rng=SEED)
        assert traced == plain
        names = [e["name"] for e in tracer.events if e["event"] == "span"]
        assert "engine.run" in names
        assert "engine.phase.flood" in names
        assert "engine.phase.vote_decide" in names

    def test_phase_counters_sum_to_report(self, tester, topo):
        with tracing(Tracer()) as tracer:
            _, report = tester.run(topo, uniform(N), rng=SEED)
        phases = [
            e for e in tracer.events
            if e["event"] == "span" and e["name"].startswith("engine.phase.")
        ]
        assert sum(e["counters"]["rounds"] for e in phases) == report.rounds
        assert sum(e["counters"]["messages"] for e in phases) == report.messages
        assert sum(e["counters"]["bits"] for e in phases) == report.total_bits


class TestTrialPlaneRoute:
    @pytest.mark.parametrize("is_uniform", [True, False])
    def test_flags_identical(self, tester, topo, is_uniform):
        runner = CongestTrialRunner.build(tester, topo)
        dist = uniform(N) if is_uniform else far_family("paninski", N, EPS, rng=0)
        plain = runner.run_flags(dist, is_uniform, trials=64, base_seed=SEED)
        with tracing(Tracer()) as tracer:
            traced = runner.run_flags(dist, is_uniform, trials=64, base_seed=SEED)
        np.testing.assert_array_equal(traced, plain)
        names = {e["name"] for e in tracer.events if e["event"] == "span"}
        assert {"trials.run", "trials.chunk", "trial_plane.draw",
                "trial_plane.verdict"} <= names


class TestLocalPlaneRoute:
    @pytest.mark.parametrize("is_uniform", [True, False])
    def test_flags_identical(self, is_uniform):
        from repro.localmodel import LocalTrialRunner, LocalUniformityTester
        from repro.simulator import Topology

        local_n, local_eps = 2_000, 1.5
        tester = LocalUniformityTester(n=local_n, eps=local_eps, p=0.45)
        runner = LocalTrialRunner.build(
            tester, Topology.ring(512), 16, base_seed=SEED
        )
        dist = (
            uniform(local_n)
            if is_uniform
            else far_family("support", local_n, local_eps)
        )
        plain = runner.run_flags(dist, is_uniform, trials=64)
        with tracing(Tracer()) as tracer:
            traced = runner.run_flags(dist, is_uniform, trials=64)
        np.testing.assert_array_equal(traced, plain)
        names = {e["name"] for e in tracer.events if e["event"] == "span"}
        assert {"trials.run", "trials.chunk", "local_plane.draw",
                "local_plane.verdict"} <= names

    def test_layout_build_identical(self):
        from repro.localmodel import LocalLayout
        from repro.simulator import Topology

        plain = LocalLayout.build(Topology.ring(128), 8, base_seed=SEED)
        with tracing(Tracer()) as tracer:
            traced = LocalLayout.build(Topology.ring(128), 8, base_seed=SEED)
        np.testing.assert_array_equal(traced.membership, plain.membership)
        assert traced.mis_rounds == plain.mis_rounds
        assert traced.gather == plain.gather
        names = {e["name"] for e in tracer.events if e["event"] == "span"}
        assert "local_plane.layout" in names


class TestFaultPlaneRoute:
    def test_sweep_columns_identical(self):
        kwargs = dict(
            n=N, k=K, eps=EPS, samples_per_node=S, topology="star",
            drop_probs=(0.0, 0.05), crash_fractions=(0.0, 0.1),
            trials=3, base_seed=SEED, fast_path=True, engine_check=0.5,
        )
        plain = robustness_sweep(**kwargs)
        with tracing(Tracer()) as tracer:
            traced = robustness_sweep(**kwargs)
        assert len(traced) == len(plain)
        for got, want in zip(traced, plain):
            got_d, want_d = got.as_dict(), want.as_dict()
            for field in _TIMING_FIELDS:
                got_d.pop(field), want_d.pop(field)
            assert got_d == want_d
        names = {e["name"] for e in tracer.events if e["event"] == "span"}
        assert {"robustness.sweep", "robustness.point", "robustness.fast_build",
                "fault_plane.replay", "fault_plane.score"} <= names
