"""Tests for the exception hierarchy contract.

Callers are promised: everything the library raises derives from
``ReproError``, and the domain subclasses double as the matching builtin
(``ValueError`` / ``RuntimeError``) so generic handlers keep working.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BandwidthExceededError,
    CodingError,
    InfeasibleParametersError,
    InvalidDistributionError,
    ParameterError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidDistributionError,
            ParameterError,
            InfeasibleParametersError,
            SimulationError,
            BandwidthExceededError,
            CodingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        for exc in (InvalidDistributionError, ParameterError, CodingError):
            assert issubclass(exc, ValueError)

    def test_runtime_error_compatibility(self):
        assert issubclass(SimulationError, RuntimeError)
        assert issubclass(BandwidthExceededError, RuntimeError)

    def test_infeasible_is_a_parameter_error(self):
        assert issubclass(InfeasibleParametersError, ParameterError)

    def test_bandwidth_is_a_simulation_error(self):
        assert issubclass(BandwidthExceededError, SimulationError)


class TestCatchability:
    def test_library_errors_caught_by_single_handler(self):
        """One except clause covers the whole library, as documented."""
        from repro.core import CollisionGapTester
        from repro.distributions import DiscreteDistribution

        caught = 0
        for trigger in (
            lambda: DiscreteDistribution([0.5, -0.1, 0.6]),
            lambda: CollisionGapTester(n=0, s=2),
            lambda: CollisionGapTester(n=10, s=1),
        ):
            try:
                trigger()
            except ReproError:
                caught += 1
        assert caught == 3
