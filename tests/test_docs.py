"""Documentation guards: the code blocks in the docs must actually run.

Docs rot silently; these tests execute the README quickstart and the
protocol-authoring guide's worked example verbatim, and check metadata
consistency (version strings, experiment index coverage).
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = _python_blocks(ROOT / "README.md")
        assert blocks, "README lost its quickstart block"
        # The quickstart uses doctest-style bare expressions; exec line by
        # line, evaluating expression lines.
        namespace: dict = {}
        for line in blocks[0].splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                exec(line, namespace)
            except SyntaxError:
                eval(compile(line, "<readme>", "eval"), namespace)

    def test_mentions_all_example_scripts(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"README does not mention {script.name}"


class TestProtocolGuide:
    def test_worked_example_runs(self):
        blocks = _python_blocks(ROOT / "docs" / "writing_protocols.md")
        assert blocks
        exec(blocks[0], {})


class TestMetadata:
    def test_version_consistent(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_design_covers_every_benchmark(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_e*.py"):
            assert bench.name in design, (
                f"DESIGN.md experiment index does not mention {bench.name}"
            )

    def test_paper_map_mentions_every_package(self):
        paper_map = (ROOT / "docs" / "paper_map.md").read_text()
        for pkg in (ROOT / "src" / "repro").iterdir():
            if pkg.is_dir() and not pkg.name.startswith("__"):
                assert f"repro.{pkg.name}" in paper_map, (
                    f"docs/paper_map.md does not mention repro.{pkg.name}"
                )
