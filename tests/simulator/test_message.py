"""Tests for message bit accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.simulator import Message, bits_for_domain, bits_for_int


class TestBitSizes:
    def test_domain_bits(self):
        assert bits_for_domain(2) == 1
        assert bits_for_domain(1024) == 10
        assert bits_for_domain(1025) == 11

    def test_domain_minimum_one(self):
        assert bits_for_domain(1) == 1

    def test_int_bits(self):
        assert bits_for_int(0) == 1
        assert bits_for_int(1) == 1
        assert bits_for_int(255) == 8
        assert bits_for_int(256) == 9

    def test_validation(self):
        with pytest.raises(ParameterError):
            bits_for_domain(0)
        with pytest.raises(ParameterError):
            bits_for_int(-1)


class TestMessage:
    def test_fields(self):
        m = Message(src=1, dst=2, payload="x", bits=5, tag="t")
        assert (m.src, m.dst, m.payload, m.bits, m.tag) == (1, 2, "x", 5, "t")

    def test_negative_bits_rejected(self):
        with pytest.raises(ParameterError):
            Message(src=0, dst=1, payload=None, bits=-1)

    def test_frozen(self):
        m = Message(src=0, dst=1, payload=None, bits=1)
        with pytest.raises(AttributeError):
            m.bits = 7
