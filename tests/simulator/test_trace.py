"""Tests for engine trace recording (per-round activity profiles)."""

from __future__ import annotations

import pytest

from repro.simulator import (
    FloodMaxProgram,
    RoundStats,
    SynchronousEngine,
    Topology,
)


class TestTraceRecording:
    def test_disabled_by_default(self):
        topo = Topology.line(6)
        report = SynchronousEngine(topo).run(
            lambda v: FloodMaxProgram(v, topo.k), rng=0
        )
        assert report.trace == []

    def test_one_entry_per_round(self):
        topo = Topology.line(10)
        report = SynchronousEngine(topo, record_trace=True).run(
            lambda v: FloodMaxProgram(v, topo.k), rng=0
        )
        assert len(report.trace) == report.rounds
        assert [t.round for t in report.trace] == list(range(1, report.rounds + 1))

    def test_totals_consistent_with_report(self):
        topo = Topology.grid(4, 4)
        report = SynchronousEngine(topo, record_trace=True).run(
            lambda v: FloodMaxProgram(v, topo.k), rng=0
        )
        assert sum(t.messages for t in report.trace) == report.messages
        assert sum(t.bits for t in report.trace) == report.total_bits

    def test_quiet_round_marked(self):
        """FloodMax terminates via a quiet round: it must appear in the trace."""
        topo = Topology.line(8)
        report = SynchronousEngine(topo, record_trace=True).run(
            lambda v: FloodMaxProgram(v, topo.k), rng=0
        )
        assert any(t.quiet for t in report.trace)
        assert all(t.messages == 0 for t in report.trace if t.quiet)

    def test_flood_wavefront_shrinks(self):
        """On a line flooded from the end, activity decays monotonically-ish:
        the final round has far fewer messages than the first."""
        topo = Topology.line(30)
        report = SynchronousEngine(topo, record_trace=True).run(
            lambda v: FloodMaxProgram(v, topo.k), rng=0
        )
        busy = [t.messages for t in report.trace if t.messages > 0]
        assert busy[0] > busy[-1]


class TestTraceOnCongestTester:
    def test_phases_visible_in_trace(self):
        """The token-packaging phase structure shows up as message bursts
        separated by quiet rounds."""
        from repro.congest.token_packaging import TokenPackagingProgram

        topo = Topology.line(16)
        tau = 4
        engine = SynchronousEngine(
            topo, bandwidth_bits=32, max_rounds=10_000, record_trace=True,
            deadlock_quiet_rounds=tau + 6,
        )
        report = engine.run(
            lambda v: TokenPackagingProgram(
                node_id=v, k=topo.k, tau=tau, token=v, token_bits=8
            ),
            rng=0,
        )
        assert report.halted
        quiet_rounds = [t.round for t in report.trace if t.quiet]
        # At least two phase boundaries: flood->child and count->tokens.
        assert len(quiet_rounds) >= 2
