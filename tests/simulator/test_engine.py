"""Tests for the synchronous engine: delivery, CONGEST limits, scheduling."""

from __future__ import annotations

from typing import List

import pytest

from repro.exceptions import BandwidthExceededError, SimulationError
from repro.simulator import Message, SynchronousEngine, Topology
from repro.simulator.node import Context, NodeProgram


class EchoOnce(NodeProgram):
    """Sends one message to each neighbour, halts after hearing anything."""

    def __init__(self, node_id: int, bits: int = 8) -> None:
        self.node_id = node_id
        self.bits = bits

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(self.node_id, bits=self.bits, tag="echo")

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if inbox:
            ctx.halt([m.payload for m in inbox])


class Oversized(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast("big", bits=1000, tag="big")

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        ctx.halt()


class DoubleSend(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        if ctx.neighbors:
            ctx.send(ctx.neighbors[0], 1, bits=1)
            ctx.send(ctx.neighbors[0], 2, bits=1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        ctx.halt()


class Silent(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        pass  # never halts, never sends -> deadlock


class TimerNode(NodeProgram):
    """Halts at a self-scheduled wakeup without any messages."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        ctx.request_wakeup(2)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if ctx.round >= 2:
            ctx.halt(ctx.round)
        else:
            ctx.request_wakeup(2)


class TestDelivery:
    def test_messages_arrive_next_round(self):
        topo = Topology.line(3)
        report = SynchronousEngine(topo).run(lambda v: EchoOnce(v), rng=0)
        assert report.halted
        assert report.outputs[0] == [1]
        assert sorted(report.outputs[1]) == [0, 2]

    def test_message_and_bit_accounting(self):
        topo = Topology.line(3)
        report = SynchronousEngine(topo).run(lambda v: EchoOnce(v, bits=5), rng=0)
        assert report.messages == 4  # 2 edges x 2 directions
        assert report.total_bits == 20
        assert report.max_edge_bits_per_round == 5


class TestCongestEnforcement:
    def test_oversized_message_rejected(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, bandwidth_bits=16)
        with pytest.raises(BandwidthExceededError):
            engine.run(lambda v: Oversized(v), rng=0)

    def test_oversized_allowed_in_local(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo, bandwidth_bits=None).run(
            lambda v: Oversized(v), rng=0
        )
        assert report.halted

    def test_double_send_per_edge_rejected(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, bandwidth_bits=16)
        with pytest.raises(BandwidthExceededError):
            engine.run(lambda v: DoubleSend(v), rng=0)

    def test_double_send_allowed_in_local(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo, bandwidth_bits=None).run(
            lambda v: DoubleSend(v), rng=0
        )
        assert report.halted


class TestScheduling:
    def test_deadlock_detected(self):
        topo = Topology.line(2)
        with pytest.raises(SimulationError, match="deadlock"):
            SynchronousEngine(topo).run(lambda v: Silent(v), rng=0)

    def test_wakeups_fire_without_messages(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo).run(lambda v: TimerNode(v), rng=0)
        assert report.halted
        assert report.outputs == [2, 2]

    def test_max_rounds_cutoff(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, max_rounds=1)

        class Chatter(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                ctx.broadcast(0, bits=1)

            def on_round(self, ctx, inbox):
                ctx.broadcast(0, bits=1)

        report = engine.run(lambda v: Chatter(v), rng=0)
        assert not report.halted
        assert report.rounds == 1


class TestContextGuards:
    def test_send_to_non_neighbor(self):
        topo = Topology.line(3)

        class Bad(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(2, "x", bits=1)  # 0 and 2 are not adjacent

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(SimulationError, match="non-neighbour"):
            SynchronousEngine(topo).run(lambda v: Bad(v), rng=0)

    def test_send_after_halt(self):
        topo = Topology.line(2)

        class HaltThenSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                ctx.halt()
                ctx.send(ctx.neighbors[0], "x", bits=1)

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(SimulationError, match="halting"):
            SynchronousEngine(topo).run(lambda v: HaltThenSend(v), rng=0)
