"""Tests for the synchronous engine: delivery, CONGEST limits, scheduling."""

from __future__ import annotations

from typing import List

import pytest

from repro.exceptions import BandwidthExceededError, SimulationError
from repro.simulator import Message, SynchronousEngine, Topology
from repro.simulator.node import Context, NodeProgram


class EchoOnce(NodeProgram):
    """Sends one message to each neighbour, halts after hearing anything."""

    def __init__(self, node_id: int, bits: int = 8) -> None:
        self.node_id = node_id
        self.bits = bits

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(self.node_id, bits=self.bits, tag="echo")

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if inbox:
            ctx.halt([m.payload for m in inbox])


class Oversized(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast("big", bits=1000, tag="big")

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        ctx.halt()


class DoubleSend(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        if ctx.neighbors:
            ctx.send(ctx.neighbors[0], 1, bits=1)
            ctx.send(ctx.neighbors[0], 2, bits=1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        ctx.halt()


class Silent(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        pass  # never halts, never sends -> deadlock


class TimerNode(NodeProgram):
    """Halts at a self-scheduled wakeup without any messages."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: Context) -> None:
        ctx.request_wakeup(2)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if ctx.round >= 2:
            ctx.halt(ctx.round)
        else:
            ctx.request_wakeup(2)


class TestDelivery:
    def test_messages_arrive_next_round(self):
        topo = Topology.line(3)
        report = SynchronousEngine(topo).run(lambda v: EchoOnce(v), rng=0)
        assert report.halted
        assert report.outputs[0] == [1]
        assert sorted(report.outputs[1]) == [0, 2]

    def test_message_and_bit_accounting(self):
        topo = Topology.line(3)
        report = SynchronousEngine(topo).run(lambda v: EchoOnce(v, bits=5), rng=0)
        assert report.messages == 4  # 2 edges x 2 directions
        assert report.total_bits == 20
        assert report.max_edge_bits_per_round == 5


class TestCongestEnforcement:
    def test_oversized_message_rejected(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, bandwidth_bits=16)
        with pytest.raises(BandwidthExceededError):
            engine.run(lambda v: Oversized(v), rng=0)

    def test_oversized_allowed_in_local(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo, bandwidth_bits=None).run(
            lambda v: Oversized(v), rng=0
        )
        assert report.halted

    def test_double_send_per_edge_rejected(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, bandwidth_bits=16)
        with pytest.raises(BandwidthExceededError):
            engine.run(lambda v: DoubleSend(v), rng=0)

    def test_double_send_allowed_in_local(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo, bandwidth_bits=None).run(
            lambda v: DoubleSend(v), rng=0
        )
        assert report.halted


class TestScheduling:
    def test_deadlock_detected(self):
        topo = Topology.line(2)
        with pytest.raises(SimulationError, match="deadlock"):
            SynchronousEngine(topo).run(lambda v: Silent(v), rng=0)

    def test_wakeups_fire_without_messages(self):
        topo = Topology.line(2)
        report = SynchronousEngine(topo).run(lambda v: TimerNode(v), rng=0)
        assert report.halted
        assert report.outputs == [2, 2]

    def test_max_rounds_cutoff(self):
        topo = Topology.line(2)
        engine = SynchronousEngine(topo, max_rounds=1)

        class Chatter(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                ctx.broadcast(0, bits=1)

            def on_round(self, ctx, inbox):
                ctx.broadcast(0, bits=1)

        report = engine.run(lambda v: Chatter(v), rng=0)
        assert not report.halted
        assert report.rounds == 1


class LongSleeper(NodeProgram):
    """Sleeps straight through more quiet rounds than the deadlock limit."""

    def __init__(self, node_id: int, wake_at: int) -> None:
        self.node_id = node_id
        self.wake_at = wake_at

    def on_start(self, ctx: Context) -> None:
        ctx.request_wakeup(self.wake_at)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if ctx.round >= self.wake_at:
            ctx.halt(ctx.round)
        else:
            ctx.request_wakeup(self.wake_at)


class EveryRoundSleeper(NodeProgram):
    """Re-arms a one-round timer each round; every round is quiet."""

    def __init__(self, node_id: int, until: int) -> None:
        self.node_id = node_id
        self.until = until

    def on_start(self, ctx: Context) -> None:
        ctx.request_wakeup(1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        if ctx.round >= self.until:
            ctx.halt(ctx.round)
        else:
            ctx.request_wakeup(ctx.round + 1)


class RearmOnMail(NodeProgram):
    """Node 0 arms a far timer; early mail moves it earlier (clear-and-rearm)."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.target = 10
        self.runs: List[int] = []

    def on_start(self, ctx: Context) -> None:
        if self.node_id == 0:
            ctx.request_wakeup(self.target)
        else:
            ctx.send(ctx.neighbors[0], "poke", bits=1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        self.runs.append(ctx.round)
        if self.node_id != 0:
            ctx.halt()
            return
        if inbox:
            self.target = 4
        if ctx.round >= self.target:
            ctx.halt(ctx.round)
        else:
            ctx.request_wakeup(self.target)


class PingPongTimer(NodeProgram):
    """Node 0 re-arms the *same* wake round on every mail delivery."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.runs: List[int] = []

    def on_start(self, ctx: Context) -> None:
        if self.node_id == 1:
            ctx.send(ctx.neighbors[0], "ping", bits=1)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        self.runs.append(ctx.round)
        if self.node_id == 1:
            if ctx.round < 3:
                ctx.send(ctx.neighbors[0], "ping", bits=1)
            else:
                ctx.halt()
            return
        for m in inbox:
            ctx.send(m.src, "pong", bits=1)
        if ctx.round >= 8:
            ctx.halt(tuple(self.runs))
        else:
            ctx.request_wakeup(8)


class TestWakeDeadlockAccounting:
    """Regression tests for the sleep/deadlock accounting fixes.

    The pre-fix engine (a) ignored scheduled wakeups in the deadlock
    check, so any sleep longer than ``deadlock_quiet_rounds`` raised a
    spurious deadlock, and (b) kept a node's stale ``_wake_at`` after an
    early mail wake and re-appended it to the pending list, accumulating
    duplicates.  Each test here fails on that engine.
    """

    def test_sleep_past_quiet_limit_is_not_deadlock(self):
        # deadlock_quiet_rounds defaults to 3; sleep through 3 + 2 = 5
        # quiet rounds.  The pre-fix engine raises at the third.
        topo = Topology.line(2)
        report = SynchronousEngine(topo).run(lambda v: LongSleeper(v, 6), rng=0)
        assert report.halted
        assert report.outputs == [6, 6]
        assert report.rounds == 6

    def test_every_round_rearm_is_not_deadlock(self):
        # A wake scheduled for the *current* round has not fired when the
        # deadlock check runs; it must still count as a pending wake.
        topo = Topology.line(2)
        report = SynchronousEngine(topo).run(
            lambda v: EveryRoundSleeper(v, 8), rng=0
        )
        assert report.halted
        assert report.outputs == [8, 8]

    def test_deadlock_still_raised_without_wakes(self):
        # The exemption must not swallow genuine deadlocks.
        topo = Topology.line(2)
        with pytest.raises(SimulationError, match="deadlock"):
            SynchronousEngine(topo).run(lambda v: Silent(v), rng=0)

    def test_mail_wake_rearms_to_earlier_round(self):
        # Node 0 arms round 10, gets mail at round 1, re-arms to round 4:
        # it must halt at 4, not 10, and run at most once per round.
        topo = Topology.line(2)
        programs = {}

        def factory(v):
            programs[v] = RearmOnMail(v)
            return programs[v]

        report = SynchronousEngine(topo).run(factory, rng=0)
        assert report.halted
        assert report.outputs[0] == 4
        assert report.rounds == 4
        runs = programs[0].runs
        assert len(runs) == len(set(runs)), f"duplicate invocations: {runs}"

    def test_rearming_same_round_never_duplicates(self):
        # Node 0 re-arms wake(8) on every ping; the pre-fix engine appended
        # a fresh pending entry each time and fired on_round repeatedly.
        topo = Topology.line(2)
        programs = {}

        def factory(v):
            programs[v] = PingPongTimer(v)
            return programs[v]

        report = SynchronousEngine(topo).run(factory, rng=0)
        assert report.halted
        runs = programs[0].runs
        assert len(runs) == len(set(runs)), f"duplicate invocations: {runs}"
        assert report.outputs[0][-1] == 8


class TestContextGuards:
    def test_send_to_non_neighbor(self):
        topo = Topology.line(3)

        class Bad(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                if ctx.node_id == 0:
                    ctx.send(2, "x", bits=1)  # 0 and 2 are not adjacent

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(SimulationError, match="non-neighbour"):
            SynchronousEngine(topo).run(lambda v: Bad(v), rng=0)

    def test_send_after_halt(self):
        topo = Topology.line(2)

        class HaltThenSend(NodeProgram):
            def __init__(self, node_id):
                self.node_id = node_id

            def on_start(self, ctx):
                ctx.halt()
                ctx.send(ctx.neighbors[0], "x", bits=1)

            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(SimulationError, match="halting"):
            SynchronousEngine(topo).run(lambda v: HaltThenSend(v), rng=0)
