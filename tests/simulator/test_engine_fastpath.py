"""Tests for the slimmed engine inner loop (PR 2 fast path).

The engine rewrite (tuple messages, recycled inboxes, incremental active
sets, constructor-level deadlock margin) must not change a single
observable: reports are bit-identical run-to-run, deadlock detection
still fires, and the margin is now a constructor parameter instead of a
module-global monkeypatch.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulator import (
    DEFAULT_DEADLOCK_QUIET_ROUNDS,
    FloodMaxProgram,
    SynchronousEngine,
    Topology,
)
from repro.simulator.node import NodeProgram


class _CoinFlipper(NodeProgram):
    """Halts immediately with one private-coin draw (exercises ctx.rng)."""

    def __init__(self, node_id):
        self.node_id = node_id

    def on_start(self, ctx):
        ctx.halt(int(ctx.rng.integers(0, 1 << 30)))

    def on_round(self, ctx, inbox):  # pragma: no cover - halts at start
        pass


class _Mute(NodeProgram):
    """Never sends, never halts: the canonical deadlock."""

    def __init__(self, node_id):
        self.node_id = node_id

    def on_start(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        pass


class TestDeterminism:
    def test_reports_bit_identical_across_runs(self):
        """Same topology + seed => identical report, including the trace."""
        topo = Topology.gnp(40, 0.15, rng=3)
        reports = [
            SynchronousEngine(topo, record_trace=True).run(
                lambda v: FloodMaxProgram(v, topo.k), rng=11
            )
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_private_coins_stable_across_runs(self):
        """Per-node rng streams are reproducible under the lazy spawn."""
        topo = Topology.ring(12)
        draws = [
            SynchronousEngine(topo).run(lambda v: _CoinFlipper(v), rng=5).outputs
            for _ in range(2)
        ]
        assert draws[0] == draws[1]
        # Streams are per-node independent, not one shared stream.
        assert len(set(draws[0])) > 1


class TestDeadlockMargin:
    def test_default_margin(self):
        topo = Topology.line(4)
        with pytest.raises(SimulationError, match="deadlock"):
            SynchronousEngine(topo, max_rounds=100).run(lambda v: _Mute(v), rng=0)

    def test_margin_is_constructor_parameter(self):
        """A widened margin tolerates exactly that many silent rounds."""
        topo = Topology.line(4)
        engine = SynchronousEngine(
            topo, max_rounds=100, deadlock_quiet_rounds=7
        )
        with pytest.raises(SimulationError, match="7 silent rounds"):
            engine.run(lambda v: _Mute(v), rng=0)

    def test_margin_validated(self):
        topo = Topology.line(2)
        with pytest.raises(SimulationError, match="deadlock_quiet_rounds"):
            SynchronousEngine(topo, deadlock_quiet_rounds=0)

    def test_default_exported(self):
        assert DEFAULT_DEADLOCK_QUIET_ROUNDS >= 1
