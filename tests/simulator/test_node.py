"""Unit tests for the node Context (the per-node world view)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulator.node import Context


def make_ctx(node_id=0, neighbors=(1, 2)):
    return Context(node_id=node_id, neighbors=tuple(neighbors),
                   rng=np.random.default_rng(0))


class TestSend:
    def test_send_queues_message(self):
        ctx = make_ctx()
        ctx.send(1, "hello", bits=5, tag="t")
        out = ctx._drain_outbox()
        assert len(out) == 1
        assert out[0].dst == 1 and out[0].payload == "hello" and out[0].bits == 5

    def test_drain_empties(self):
        ctx = make_ctx()
        ctx.send(1, "x", bits=1)
        ctx._drain_outbox()
        assert ctx._drain_outbox() == []

    def test_non_neighbor_rejected(self):
        ctx = make_ctx()
        with pytest.raises(SimulationError):
            ctx.send(9, "x", bits=1)

    def test_broadcast_hits_every_neighbor(self):
        ctx = make_ctx(neighbors=(1, 2, 3))
        ctx.broadcast("b", bits=2)
        out = ctx._drain_outbox()
        assert sorted(m.dst for m in out) == [1, 2, 3]

    def test_send_after_halt_rejected(self):
        ctx = make_ctx()
        ctx.halt()
        with pytest.raises(SimulationError):
            ctx.send(1, "x", bits=1)


class TestHaltAndOutput:
    def test_halt_sets_output(self):
        ctx = make_ctx()
        ctx.halt("done")
        assert ctx.halted and ctx.output == "done"

    def test_halt_without_output_preserves_prior(self):
        ctx = make_ctx()
        ctx.set_output("partial")
        ctx.halt()
        assert ctx.output == "partial"

    def test_set_output_does_not_halt(self):
        ctx = make_ctx()
        ctx.set_output(3)
        assert not ctx.halted


class TestWakeups:
    def test_earliest_wakeup_wins(self):
        ctx = make_ctx()
        ctx.request_wakeup(10)
        ctx.request_wakeup(5)
        ctx.request_wakeup(8)
        assert ctx._wake_at == 5

    def test_later_request_ignored(self):
        ctx = make_ctx()
        ctx.request_wakeup(3)
        ctx.request_wakeup(7)
        assert ctx._wake_at == 3


class TestRngIsolation:
    def test_private_generator(self):
        a = Context(0, (1,), np.random.default_rng(1))
        b = Context(1, (0,), np.random.default_rng(2))
        assert a.rng.integers(1 << 30) != b.rng.integers(1 << 30)
