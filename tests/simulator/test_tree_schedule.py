"""Tests for the cached :class:`TreeSchedule` (the warm-start tree).

The schedule predicts, without running any protocol, the exact tree the
max-ID flooding phase elects under the engine's deterministic delivery
order: root ``k−1``, BFS distances, min-ID parents.  These tests pin that
equivalence by running the real FLOOD/CHILD/COUNT phases and comparing
the per-node state the programs ended up with.
"""

from __future__ import annotations

import pytest

from repro.congest.token_packaging import TokenPackagingProgram
from repro.simulator import SynchronousEngine, Topology, TreeSchedule


TOPOLOGIES = {
    "line": lambda: Topology.line(17),
    "ring": lambda: Topology.ring(14),
    "star": lambda: Topology.star(25),
    "grid": lambda: Topology.grid(5, 6),
    "gnp": lambda: Topology.gnp(30, 0.15, rng=2),
    "regular": lambda: Topology.random_regular(24, 3, rng=4),
    "single": lambda: Topology.line(1),
}


def _run_cold(topo, tau):
    """Run cold packaging and keep the program instances for inspection."""
    programs = {}

    def factory(v):
        prog = TokenPackagingProgram(
            node_id=v, k=topo.k, tau=tau, token=v, token_bits=16
        )
        programs[v] = prog
        return prog

    engine = SynchronousEngine(
        topo, bandwidth_bits=64, max_rounds=100_000,
        deadlock_quiet_rounds=tau + 6,
    )
    engine.run(factory, rng=0)
    return programs


class TestStructure:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_matches_bfs_from_max_id(self, name):
        topo = TOPOLOGIES[name]()
        sched = topo.tree_schedule()
        root = topo.k - 1
        assert sched.root == root
        assert sched.dist == tuple(topo.bfs_distances(root))
        for v in range(topo.k):
            if v == root:
                assert sched.parent[v] is None
                assert sched.dist[v] == 0
            else:
                p = sched.parent[v]
                assert sched.dist[p] == sched.dist[v] - 1
                # Min-ID among equally-close neighbours (the engine's
                # sender-sorted delivery order makes this the adopted one).
                assert p == min(
                    u for u in topo.neighbors(v)
                    if sched.dist[u] == sched.dist[v] - 1
                )
                assert v in sched.children[p]

    def test_postorder_children_before_parents(self):
        topo = TOPOLOGIES["gnp"]()
        sched = topo.tree_schedule()
        seen = set()
        for v in sched.postorder:
            for c in sched.children[v]:
                assert c in seen
            seen.add(v)
        assert seen == set(range(topo.k))

    def test_cached_per_topology(self):
        topo = Topology.grid(4, 4)
        assert topo.tree_schedule() is topo.tree_schedule()
        assert isinstance(topo.tree_schedule(), TreeSchedule)


class TestMatchesElectedTree:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("tau", [2, 5])
    def test_parent_children_and_counts(self, name, tau):
        """The cold protocol elects exactly the cached schedule's tree and
        converges to exactly its token counts."""
        topo = TOPOLOGIES[name]()
        sched = topo.tree_schedule()
        counts = sched.token_counts(tau)
        programs = _run_cold(topo, tau)
        for v in range(topo.k):
            prog = programs[v]
            assert prog.parent == sched.parent[v], f"node {v} parent"
            assert tuple(prog.children) == sched.children[v], f"node {v} children"
            assert prog.c_value == counts[v], f"node {v} c(v)"


class TestTokenCounts:
    def test_counts_are_subtree_sizes_mod_tau(self):
        topo = Topology.grid(5, 5)
        sched = topo.tree_schedule()
        for tau in (2, 3, 7):
            counts = sched.token_counts(tau)
            # Independent check: c(v) = |subtree(v)| mod tau.
            size = [1] * topo.k
            for v in sched.postorder:
                for c in sched.children[v]:
                    size[v] += size[c]
            assert counts == tuple(s % tau for s in size)

    def test_counts_cached(self):
        topo = Topology.ring(9)
        sched = topo.tree_schedule()
        assert sched.token_counts(4) is sched.token_counts(4)
        assert sched.token_counts(4) != sched.token_counts(3)

    def test_multi_token_counts(self):
        topo = Topology.line(6)
        sched = topo.tree_schedule()
        counts = sched.token_counts(4, tokens_per_node=3)
        size = [1] * topo.k
        for v in sched.postorder:
            for c in sched.children[v]:
                size[v] += size[c]
        assert counts == tuple((3 * s) % 4 for s in size)
