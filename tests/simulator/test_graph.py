"""Tests for topologies and structural queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.simulator import Topology


class TestConstructors:
    def test_line(self):
        t = Topology.line(5)
        assert t.k == 5 and t.edge_count() == 4
        assert t.diameter() == 4

    def test_ring(self):
        t = Topology.ring(8)
        assert t.edge_count() == 8
        assert t.diameter() == 4

    def test_star(self):
        t = Topology.star(10)
        assert t.diameter() == 2
        assert t.degree(0) == 9

    def test_complete(self):
        t = Topology.complete(6)
        assert t.edge_count() == 15
        assert t.diameter() == 1

    def test_grid(self):
        t = Topology.grid(3, 4)
        assert t.k == 12
        assert t.diameter() == 5

    def test_balanced_tree(self):
        t = Topology.balanced_tree(2, 3)
        assert t.k == 15
        assert t.diameter() == 6

    def test_random_regular_connected(self):
        t = Topology.random_regular(40, 3, rng=0)
        assert t.k == 40
        assert all(t.degree(v) == 3 for v in range(40))

    def test_gnp_connected(self):
        t = Topology.gnp(50, 0.15, rng=1)
        assert t.k == 50
        assert (t.bfs_distances(0) >= 0).all()

    def test_single_node(self):
        t = Topology.line(1)
        assert t.k == 1 and t.diameter() == 0


class TestValidation:
    def test_disconnected_rejected(self):
        with pytest.raises(ParameterError):
            Topology.from_edges(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(ParameterError):
            Topology([[0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            Topology.from_edges(2, [(0, 5)])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            Topology([])


class TestQueries:
    def test_bfs_distances_line(self):
        t = Topology.line(6)
        assert list(t.bfs_distances(0)) == [0, 1, 2, 3, 4, 5]

    def test_bfs_tree_parents(self):
        t = Topology.line(4)
        parents = t.bfs_tree(3)
        assert parents[3] is None
        assert parents[0] == 1 and parents[1] == 2 and parents[2] == 3

    def test_eccentricity(self):
        t = Topology.line(7)
        assert t.eccentricity(3) == 3
        assert t.eccentricity(0) == 6

    def test_diameter_upper_bound_valid(self):
        for t in [Topology.line(20), Topology.grid(4, 5), Topology.star(9)]:
            assert t.diameter() <= t.diameter_upper_bound() <= 2 * t.diameter()

    def test_neighbors_sorted_tuples(self):
        t = Topology.from_edges(3, [(2, 0), (0, 1)])
        assert t.neighbors(0) == (1, 2)

    def test_edges_listing(self):
        t = Topology.ring(4)
        assert set(t.edges()) == {(0, 1), (1, 2), (2, 3), (0, 3)}


class TestPowerGraph:
    def test_line_squared(self):
        t = Topology.line(6).power_graph(2)
        assert t.neighbors(0) == (1, 2)
        assert t.neighbors(3) == (1, 2, 4, 5)

    def test_power_ge_diameter_is_complete(self):
        base = Topology.ring(7)
        t = base.power_graph(base.diameter())
        assert all(t.degree(v) == 6 for v in range(7))

    def test_ball(self):
        t = Topology.line(10)
        assert t.ball(5, 2) == [3, 4, 5, 6, 7]

    def test_ball_limited_bfs_matches_full(self):
        t = Topology.gnp(40, 0.1, rng=2)
        full = t.bfs_distances(7)
        ball = set(t.ball(7, 3))
        expected = {int(v) for v in np.flatnonzero((full >= 0) & (full <= 3))}
        assert ball == expected

    def test_power_validation(self):
        with pytest.raises(ParameterError):
            Topology.line(4).power_graph(0)
