"""Scalar-parity tests for the vectorized fault RNG kernels.

The fault plane's whole-batch drop/delay draws are only sound if every
element of :func:`repro.simulator.faults.uniform_array` equals the
scalar :func:`~repro.simulator.faults._uniform` bit for bit — these
tests pin that contract across random key grids, broadcasting shapes,
and the 64-bit wrap/edge keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.faults import (
    _SALT_DELAY,
    _SALT_DROP,
    DelayDistribution,
    FaultPlan,
    _mix64,
    _uniform,
    mix64_array,
    uniform_array,
)

RNG = np.random.default_rng(0xFA117)


class TestMix64Parity:
    def test_random_words_match_scalar(self):
        words = RNG.integers(0, 2**64, size=512, dtype=np.uint64)
        vec = mix64_array(words)
        for w, v in zip(words.tolist(), vec.tolist()):
            assert v == _mix64(w)

    def test_edge_words(self):
        words = np.array(
            [0, 1, 2**63, 2**64 - 1, 0x9E3779B97F4A7C15], dtype=np.uint64
        )
        assert mix64_array(words).tolist() == [_mix64(int(w)) for w in words]


class TestUniformArrayParity:
    def test_random_key_grid_matches_scalar(self):
        n = 256
        seeds = RNG.integers(0, 2**63, size=n)
        srcs = RNG.integers(0, 10_000, size=n)
        dsts = RNG.integers(0, 10_000, size=n)
        rounds = RNG.integers(0, 100_000, size=n)
        indexes = RNG.integers(0, 64, size=n)
        for salt in (_SALT_DROP, _SALT_DELAY):
            vec = uniform_array(seeds, srcs, dsts, rounds, indexes, salt)
            for i in range(n):
                scalar = _uniform(
                    int(seeds[i]), int(srcs[i]), int(dsts[i]),
                    int(rounds[i]), int(indexes[i]), salt,
                )
                assert vec[i] == scalar  # bit-identical floats

    def test_broadcasting_matches_elementwise(self):
        """The fault plane's natural call shape: one seed column per
        trial broadcast against an edge row and a round axis."""
        seeds = np.array([3, 7, 123456789])[:, None, None]
        srcs = np.arange(4)[None, :, None]
        rounds = np.arange(1, 6)[None, None, :]
        vec = uniform_array(seeds, srcs, srcs + 1, rounds, 0, _SALT_DROP)
        assert vec.shape == (3, 4, 5)
        for t in range(3):
            for e in range(4):
                for r in range(5):
                    assert vec[t, e, r] == _uniform(
                        int(seeds[t, 0, 0]), e, e + 1, r + 1, 0, _SALT_DROP
                    )

    def test_scalar_inputs_return_scalar_value(self):
        vec = uniform_array(42, 1, 2, 3, 0, _SALT_DROP)
        assert float(vec) == _uniform(42, 1, 2, 3, 0, _SALT_DROP)

    def test_unit_interval(self):
        seeds = RNG.integers(0, 2**63, size=1000)
        u = uniform_array(seeds, 0, 1, 1, 0, _SALT_DROP)
        assert ((0.0 <= u) & (u < 1.0)).all()


class TestDelaySampleParity:
    def test_sample_array_matches_scalar_cdf_walk(self):
        delay = DelayDistribution(outcomes=((1, 0.25), (3, 0.25), (7, 0.2)))
        u = RNG.random(2048)
        vec = delay.sample_array(u)
        for ui, vi in zip(u.tolist(), vec.tolist()):
            assert vi == delay.sample(ui)

    def test_boundary_uniforms(self):
        delay = DelayDistribution(outcomes=((2, 0.5), (5, 0.5)))
        u = np.array([0.0, 0.5 - 1e-16, 0.5, 1.0 - 1e-16])
        assert delay.sample_array(u).tolist() == [
            delay.sample(x) for x in u.tolist()
        ]


class TestFaultPlanArrayParity:
    @pytest.mark.parametrize("drop_prob", [0.0, 0.05, 0.5])
    def test_drop_flags_match_should_drop(self, drop_prob):
        plan = FaultPlan(
            seed=97, drop_prob=drop_prob, edge_drop={(2, 3): 0.9, (4, 0): 0.0}
        )
        src = RNG.integers(0, 6, size=400)
        dst = RNG.integers(0, 6, size=400)
        rounds = RNG.integers(1, 50, size=400)
        flags = plan.drop_flags(src, dst, rounds)
        for i in range(400):
            assert flags[i] == plan.should_drop(
                int(src[i]), int(dst[i]), int(rounds[i])
            )

    def test_delay_rounds_array_matches_scalar(self):
        plan = FaultPlan(
            seed=11,
            delay=DelayDistribution(outcomes=((1, 0.3), (4, 0.3))),
        )
        src = RNG.integers(0, 5, size=300)
        dst = RNG.integers(0, 5, size=300)
        rounds = RNG.integers(1, 40, size=300)
        vec = plan.delay_rounds_array(src, dst, rounds)
        for i in range(300):
            assert vec[i] == plan.delay_rounds(
                int(src[i]), int(dst[i]), int(rounds[i])
            )

    def test_no_delay_plan_returns_zeros(self):
        plan = FaultPlan(seed=11, drop_prob=0.1)
        vec = plan.delay_rounds_array(np.arange(3), np.arange(3), 1)
        assert vec.dtype == np.int64 and not vec.any()
