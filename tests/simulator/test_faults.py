"""Tests for deterministic fault injection (drops, delays, crash-stop)."""

from __future__ import annotations

from typing import List

import pytest

from repro.exceptions import ParameterError, SimulationError
from repro.simulator import (
    DelayDistribution,
    FaultPlan,
    Message,
    SynchronousEngine,
    Topology,
)
from repro.simulator.node import Context, NodeProgram


class BroadcastThenReport(NodeProgram):
    """Broadcasts once at start, reports (src, round) of all mail at a deadline."""

    def __init__(self, node_id: int, deadline: int = 4) -> None:
        self.node_id = node_id
        self.deadline = deadline
        self.heard: List[tuple] = []

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(self.node_id, bits=8)
        ctx.request_wakeup(self.deadline)

    def on_round(self, ctx: Context, inbox: List[Message]) -> None:
        self.heard.extend((m.src, ctx.round) for m in inbox)
        if ctx.round >= self.deadline:
            ctx.halt(tuple(sorted(self.heard)))
        else:
            ctx.request_wakeup(self.deadline)


class TestDelayDistributionValidation:
    def test_zero_delay_outcome_rejected(self):
        with pytest.raises(ParameterError, match=">= 1 round"):
            DelayDistribution(((0, 0.5),))

    def test_negative_probability_rejected(self):
        with pytest.raises(ParameterError, match="outside"):
            DelayDistribution(((1, -0.1),))

    def test_mass_over_one_rejected(self):
        with pytest.raises(ParameterError, match="sum"):
            DelayDistribution(((1, 0.7), (2, 0.6)))

    def test_sample_follows_cdf_order(self):
        dist = DelayDistribution(((1, 0.25), (3, 0.25)))
        assert dist.sample(0.0) == 1
        assert dist.sample(0.24) == 1
        assert dist.sample(0.3) == 3
        assert dist.sample(0.6) == 0  # missing mass = on time


class TestFaultPlanValidation:
    def test_drop_prob_out_of_range(self):
        with pytest.raises(ParameterError, match="drop_prob"):
            FaultPlan(drop_prob=1.5)

    def test_edge_drop_out_of_range(self):
        with pytest.raises(ParameterError, match="edge_drop"):
            FaultPlan(edge_drop={(0, 1): -0.2})

    def test_negative_crash_round(self):
        with pytest.raises(ParameterError, match="crash round"):
            FaultPlan(crashes={3: -1})

    def test_null_detection(self):
        assert FaultPlan.none().is_null
        assert FaultPlan(edge_drop={(0, 1): 0.0}).is_null
        assert not FaultPlan(drop_prob=0.1).is_null
        assert not FaultPlan(edge_drop={(0, 1): 0.5}).is_null
        assert not FaultPlan(delay=DelayDistribution(((1, 0.1),))).is_null
        assert not FaultPlan(crashes={0: 5}).is_null

    def test_edge_override_beats_default(self):
        plan = FaultPlan(drop_prob=0.2, edge_drop={(1, 0): 0.9})
        assert plan.drop_probability(0, 1) == 0.2
        assert plan.drop_probability(1, 0) == 0.9

    def test_crash_schedule_groups_by_round(self):
        plan = FaultPlan(crashes={5: 2, 1: 2, 3: 7})
        assert plan.crash_schedule() == {2: (1, 5), 7: (3,)}


class TestFaultStreamDeterminism:
    def test_draws_are_pure_functions_of_the_key(self):
        plan = FaultPlan(seed=99, drop_prob=0.5,
                         delay=DelayDistribution(((1, 0.3), (2, 0.3))))
        drops = [plan.should_drop(0, 1, r, 0) for r in range(100)]
        delays = [plan.delay_rounds(0, 1, r, 0) for r in range(100)]
        assert drops == [plan.should_drop(0, 1, r, 0) for r in range(100)]
        assert delays == [plan.delay_rounds(0, 1, r, 0) for r in range(100)]
        assert any(drops) and not all(drops)

    def test_different_seeds_give_independent_streams(self):
        a = FaultPlan(seed=1, drop_prob=0.5)
        b = FaultPlan(seed=2, drop_prob=0.5)
        assert [a.should_drop(0, 1, r, 0) for r in range(200)] != [
            b.should_drop(0, 1, r, 0) for r in range(200)
        ]

    def test_extremes_never_and_always(self):
        never = FaultPlan(seed=3, drop_prob=0.0)
        always = FaultPlan(seed=3, drop_prob=1.0)
        assert not any(never.should_drop(0, 1, r, 0) for r in range(50))
        assert all(always.should_drop(0, 1, r, 0) for r in range(50))


class TestEngineDrops:
    def test_directed_edge_drop_loses_exactly_that_delivery(self):
        topo = Topology.line(2)
        plan = FaultPlan(edge_drop={(0, 1): 1.0})
        report = SynchronousEngine(topo, faults=plan).run(
            lambda v: BroadcastThenReport(v), rng=0
        )
        assert report.halted
        assert report.outputs[0] == ((1, 1),)  # 1 -> 0 survives
        assert report.outputs[1] == ()  # 0 -> 1 dropped
        assert report.drops == 1
        assert report.messages == 1

    def test_trace_rounds_sum_to_report_counters(self):
        topo = Topology.ring(6)
        plan = FaultPlan(seed=5, drop_prob=0.5)
        report = SynchronousEngine(topo, record_trace=True, faults=plan).run(
            lambda v: BroadcastThenReport(v), rng=0
        )
        assert report.drops > 0
        assert sum(s.drops for s in report.trace) == report.drops
        assert sum(s.delays for s in report.trace) == report.delays
        assert sum(s.crashes for s in report.trace) == report.crashes


class TestEngineDelays:
    def test_delayed_mail_arrives_late_and_is_counted(self):
        topo = Topology.line(2)
        plan = FaultPlan(delay=DelayDistribution(((2, 1.0),)))
        report = SynchronousEngine(topo, faults=plan).run(
            lambda v: BroadcastThenReport(v, deadline=5), rng=0
        )
        assert report.halted
        # Sent for round 1, deferred two extra rounds.
        assert report.outputs[0] == ((1, 3),)
        assert report.outputs[1] == ((0, 3),)
        assert report.delays == 2
        assert report.drops == 0

    def test_delayed_mail_defers_deadlock(self):
        """In-flight delayed messages are legal silence, not deadlock."""
        topo = Topology.line(2)
        plan = FaultPlan(delay=DelayDistribution(((6, 1.0),)))
        report = SynchronousEngine(topo, faults=plan).run(
            lambda v: BroadcastThenReport(v, deadline=8), rng=0
        )
        assert report.halted
        assert report.outputs[0] == ((1, 7),)


class TestEngineCrashes:
    def test_crash_stop_mid_run(self):
        topo = Topology.line(3)
        plan = FaultPlan(crashes={2: 1})
        report = SynchronousEngine(topo, faults=plan).run(
            lambda v: BroadcastThenReport(v), rng=0
        )
        # The crasher's in-flight start broadcast still delivers...
        assert report.outputs[1] == ((0, 1), (2, 1))
        # ...but mail addressed to it from round 1 on is dropped.
        assert report.outputs[2] is None
        assert report.crashes == 1
        assert report.drops == 1
        assert report.halted  # crashed nodes do not block termination

    def test_crash_at_round_zero_skips_on_start(self):
        topo = Topology.line(2)
        plan = FaultPlan(crashes={1: 0})
        report = SynchronousEngine(topo, faults=plan).run(
            lambda v: BroadcastThenReport(v), rng=0
        )
        assert report.outputs[0] == ()  # node 1 never broadcast
        assert report.outputs[1] is None
        assert report.crashes == 1
        assert report.drops == 1  # 0's broadcast to the corpse

    def test_crash_node_out_of_range_rejected(self):
        with pytest.raises(SimulationError, match="outside"):
            SynchronousEngine(Topology.line(2), faults=FaultPlan(crashes={5: 1}))


class TestNullPlanBitIdentity:
    def test_null_plan_identical_to_no_plan(self):
        topo = Topology.grid(4, 4)
        base = SynchronousEngine(topo, record_trace=True).run(
            lambda v: BroadcastThenReport(v), rng=42
        )
        null = SynchronousEngine(
            topo, record_trace=True, faults=FaultPlan.none()
        ).run(lambda v: BroadcastThenReport(v), rng=42)
        assert repr(base) == repr(null)

    def test_same_plan_same_seed_bit_identical(self):
        topo = Topology.ring(8)
        plan = FaultPlan(seed=7, drop_prob=0.3,
                         delay=DelayDistribution(((1, 0.2),)), crashes={3: 2})
        runs = [
            SynchronousEngine(topo, record_trace=True, faults=plan).run(
                lambda v: BroadcastThenReport(v), rng=9
            )
            for _ in range(2)
        ]
        assert repr(runs[0]) == repr(runs[1])
