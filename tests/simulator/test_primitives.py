"""Tests for the flooding / convergecast / broadcast primitives."""

from __future__ import annotations

import pytest

from repro.simulator import (
    BroadcastProgram,
    ConvergecastSumProgram,
    FloodMaxProgram,
    SynchronousEngine,
    Topology,
)
from repro.simulator.primitives import children_from_parents


def run_flood(topo, rng=0, bandwidth=64):
    engine = SynchronousEngine(topo, bandwidth_bits=bandwidth)
    return engine.run(lambda v: FloodMaxProgram(v, topo.k), rng=rng)


class TestFloodMax:
    @pytest.mark.parametrize(
        "topo",
        [
            Topology.line(12),
            Topology.ring(9),
            Topology.star(8),
            Topology.grid(4, 4),
            Topology.balanced_tree(3, 2),
        ],
    )
    def test_elects_max_id(self, topo):
        report = run_flood(topo)
        assert report.halted
        assert all(out[0] == topo.k - 1 for out in report.outputs)

    def test_distances_are_bfs_distances(self):
        topo = Topology.grid(5, 5)
        report = run_flood(topo)
        true_dist = topo.bfs_distances(topo.k - 1)
        assert all(report.outputs[v][1] == true_dist[v] for v in range(topo.k))

    def test_parents_form_tree(self):
        topo = Topology.gnp(30, 0.15, rng=2)
        report = run_flood(topo)
        parents = [out[2] for out in report.outputs]
        root = topo.k - 1
        assert parents[root] is None
        # Every non-root path to the root terminates (acyclic, rooted).
        for v in range(topo.k):
            seen = set()
            node = v
            while parents[node] is not None:
                assert node not in seen
                seen.add(node)
                node = parents[node]
            assert node == root

    def test_rounds_linear_in_diameter(self):
        topo = Topology.line(40)
        report = run_flood(topo)
        assert report.rounds <= topo.diameter() + 4

    def test_messages_fit_congest(self):
        topo = Topology.grid(4, 4)
        report = run_flood(topo, bandwidth=2 * 5)  # 2 * ceil(log2 16) bits
        assert report.max_edge_bits_per_round <= 10

    def test_single_node(self):
        topo = Topology.line(1)
        report = run_flood(topo)
        assert report.outputs[0] == (0, 0, None)


class TestConvergecast:
    def _tree(self, topo, root):
        parents_map = topo.bfs_tree(root)
        parents = [parents_map[v] for v in range(topo.k)]
        return parents, children_from_parents(parents)

    @pytest.mark.parametrize(
        "topo,root",
        [
            (Topology.line(10), 0),
            (Topology.star(12), 0),
            (Topology.grid(4, 5), 7),
        ],
    )
    def test_sum_reaches_root(self, topo, root):
        parents, children = self._tree(topo, root)
        values = list(range(topo.k))
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(
            lambda v: ConvergecastSumProgram(
                v, values[v], parents[v], children[v], max_total=sum(values)
            ),
            rng=0,
        )
        assert report.halted
        assert report.outputs[root] == sum(values)

    def test_intermediate_nodes_hold_subtree_sums(self):
        topo = Topology.line(5)
        parents, children = self._tree(topo, 0)
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(
            lambda v: ConvergecastSumProgram(v, 1, parents[v], children[v], 5),
            rng=0,
        )
        # Node v on the line (rooted at 0) has subtree {v, ..., 4}.
        assert report.outputs == [5, 4, 3, 2, 1]

    def test_rounds_bounded_by_height(self):
        topo = Topology.line(20)
        parents, children = self._tree(topo, 0)
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(
            lambda v: ConvergecastSumProgram(v, 1, parents[v], children[v], 20),
            rng=0,
        )
        assert report.rounds <= 20 + 2


class TestBroadcast:
    @pytest.mark.parametrize("topo", [Topology.line(9), Topology.grid(3, 4)])
    def test_everyone_receives(self, topo):
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(lambda v: BroadcastProgram(v, 0, "hello", 16), rng=0)
        assert report.halted
        assert all(out == "hello" for out in report.outputs)

    def test_rounds_equal_eccentricity(self):
        topo = Topology.line(15)
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(lambda v: BroadcastProgram(v, 0, 1, 4), rng=0)
        assert report.rounds <= topo.eccentricity(0) + 2
