"""Tests for sweep grids and scaling diagnostics."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.experiments import geometric_grid, geometric_int_grid, loglog_slope, relative_spread


class TestGrids:
    def test_geometric_endpoints(self):
        grid = geometric_grid(1.0, 100.0, 5)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(100.0)

    def test_geometric_ratio_constant(self):
        grid = geometric_grid(2.0, 32.0, 5)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_int_grid_dedupes(self):
        grid = geometric_int_grid(1, 10, 20)
        assert grid == sorted(set(grid))
        assert grid[0] == 1 and grid[-1] == 10

    def test_validation(self):
        with pytest.raises(ParameterError):
            geometric_grid(0.0, 10.0, 3)
        with pytest.raises(ParameterError):
            geometric_grid(1.0, 10.0, 1)

    def test_int_grid_degenerate_span_rejected(self):
        with pytest.raises(ParameterError, match="collapses"):
            geometric_int_grid(7, 7, 5)

    def test_int_grid_narrow_span_keeps_two_points(self):
        assert geometric_int_grid(9, 10, 12) == [9, 10]
        # Two distinct points always survive -> loglog_slope accepts it.
        grid = geometric_int_grid(1, 2, 3)
        slope, _ = loglog_slope(grid, [g**2.0 for g in grid])
        assert slope == pytest.approx(2.0)


class TestLogLogSlope:
    def test_recovers_power_law(self):
        xs = [10, 100, 1000]
        ys = [x**-0.5 for x in xs]
        slope, _ = loglog_slope(xs, ys)
        assert slope == pytest.approx(-0.5, abs=1e-9)

    def test_intercept(self):
        xs = [1.0, 2.0, 4.0]
        ys = [3.0 * x**2 for x in xs]
        slope, intercept = loglog_slope(xs, ys)
        assert slope == pytest.approx(2.0)
        import math

        assert intercept == pytest.approx(math.log(3.0))

    def test_validation(self):
        with pytest.raises(ParameterError):
            loglog_slope([1.0], [1.0])
        with pytest.raises(ParameterError):
            loglog_slope([1.0, -2.0], [1.0, 2.0])


class TestRelativeSpread:
    def test_flat_series(self):
        assert relative_spread([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        assert relative_spread([1.0, 3.0]) == pytest.approx(1.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ParameterError):
            relative_spread([-1.0, 1.0])
