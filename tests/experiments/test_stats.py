"""Tests for statistical helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.experiments import (
    ErrorEstimate,
    empirical_sample_complexity,
    estimate,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(20, 100)
        assert low < 0.2 < high

    def test_zero_failures(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0 < high < 0.15

    def test_all_failures(self):
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0)
        assert low > 0.85

    def test_narrows_with_trials(self):
        w1 = wilson_interval(10, 100)
        w2 = wilson_interval(100, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_validation(self):
        with pytest.raises(ParameterError):
            wilson_interval(5, 0)
        with pytest.raises(ParameterError):
            wilson_interval(11, 10)


class TestEstimate:
    def test_wraps_counts(self):
        e = estimate(3, 30)
        assert isinstance(e, ErrorEstimate)
        assert e.rate == pytest.approx(0.1)
        assert e.low <= 0.1 <= e.high

    def test_str_formatting(self):
        s = str(estimate(3, 30))
        assert "[" in s and "]" in s

    def test_zero_trials_rejected_at_construction(self):
        # Previously .rate raised ZeroDivisionError; now construction fails.
        with pytest.raises(ParameterError):
            ErrorEstimate(failures=0, trials=0, low=0.0, high=0.0)

    def test_failures_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            ErrorEstimate(failures=11, trials=10, low=0.0, high=1.0)
        with pytest.raises(ParameterError):
            ErrorEstimate(failures=-1, trials=10, low=0.0, high=1.0)


class TestEmpiricalSampleComplexity:
    def test_finds_deterministic_threshold(self):
        # error = 1 below 37, 0 at/above.
        found = empirical_sample_complexity(
            lambda s: 0.0 if s >= 37 else 1.0, target_error=0.5
        )
        assert found == 37

    def test_none_when_unreachable(self):
        found = empirical_sample_complexity(
            lambda s: 1.0, target_error=0.5, s_max=128
        )
        assert found is None

    def test_smooth_decreasing_curve(self):
        found = empirical_sample_complexity(
            lambda s: 1.0 / s, target_error=0.01, s_max=1000
        )
        assert found == 100

    def test_validation(self):
        with pytest.raises(ParameterError):
            empirical_sample_complexity(lambda s: 0.0, target_error=0.0)
        with pytest.raises(ParameterError):
            empirical_sample_complexity(lambda s: 0.0, 0.5, s_min=10, s_max=5)
