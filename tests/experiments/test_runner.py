"""Tests for the seeded trial runner and its batched/parallel engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import uniform
from repro.exceptions import ParameterError
from repro.experiments import (
    TRIAL_CHUNK,
    TrialRunner,
    estimate_probability,
    estimate_probability_batched,
)
from repro.zeroround import CollisionTrialKernel, ScalarCollisionTrial


class TestTrialRunner:
    def test_reproducible_across_instances(self):
        def coin(rng: np.random.Generator) -> bool:
            return bool(rng.random() < 0.3)

        a = TrialRunner(base_seed=5).error_rate(coin, 200, "cfg", 1)
        b = TrialRunner(base_seed=5).error_rate(coin, 200, "cfg", 1)
        assert a.failures == b.failures

    def test_labels_isolate_configurations(self):
        def coin(rng):
            return bool(rng.random() < 0.5)

        a = TrialRunner(base_seed=5).error_rate(coin, 100, "cfg", 1)
        b = TrialRunner(base_seed=5).error_rate(coin, 100, "cfg", 2)
        assert a.failures != b.failures  # overwhelming probability

    def test_rate_converges(self):
        def coin(rng):
            return bool(rng.random() < 0.25)

        est = TrialRunner(base_seed=0).error_rate(coin, 3000, "p25")
        assert est.rate == pytest.approx(0.25, abs=0.03)

    def test_trial_count_validated(self):
        with pytest.raises(ParameterError):
            TrialRunner(base_seed=0).error_rate(lambda rng: True, 0)


class TestEstimateProbability:
    def test_convenience_wrapper(self):
        est = estimate_probability(lambda rng: bool(rng.random() < 0.1), 1000, seed=1)
        assert est.rate == pytest.approx(0.1, abs=0.04)


# Module-level so the process-pool path can pickle them.
_DIST = uniform(400)
_SCALAR = ScalarCollisionTrial(_DIST, 9)
_KERNEL = CollisionTrialKernel(_DIST, 9)


def _batched_coin(rng, count):
    return rng.random(count) < 0.3


def _scalar_coin(rng):
    return bool(rng.random() < 0.3)


class TestBatchedEngine:
    """The reproducibility contract: serial, batched, and parallel paths
    must agree bit for bit, for any batch size and worker count, because
    every TRIAL_CHUNK-sized chunk re-derives its generator from
    ``(base_seed, *labels, chunk_index)``."""

    TRIALS = 2 * TRIAL_CHUNK + 257  # exercises a partial final chunk

    def test_scalar_vs_batched_bit_identical(self):
        runner = TrialRunner(base_seed=5)
        serial = runner.run_flags(_SCALAR, self.TRIALS, "cfg", 1)
        batched = runner.run_flags_batched(_KERNEL, self.TRIALS, "cfg", 1)
        assert np.array_equal(serial, batched)

    def test_batch_size_invariance(self):
        runner = TrialRunner(base_seed=5)
        reference = runner.run_flags_batched(_KERNEL, self.TRIALS, "cfg", 1)
        for batch in (1, 7, 64, TRIAL_CHUNK, 5 * TRIAL_CHUNK):
            flags = runner.run_flags_batched(
                _KERNEL, self.TRIALS, "cfg", 1, batch=batch
            )
            assert np.array_equal(reference, flags), f"batch={batch}"

    def test_worker_count_invariance(self):
        runner = TrialRunner(base_seed=5)
        reference = runner.run_flags_batched(_KERNEL, self.TRIALS, "cfg", 1)
        parallel = runner.run_flags_batched(
            _KERNEL, self.TRIALS, "cfg", 1, workers=2
        )
        assert np.array_equal(reference, parallel)

    def test_scalar_parallel_matches_serial(self):
        runner = TrialRunner(base_seed=8)
        serial = runner.run_flags(_SCALAR, self.TRIALS, "w")
        parallel = runner.run_flags(_SCALAR, self.TRIALS, "w", workers=2)
        assert np.array_equal(serial, parallel)

    def test_error_rate_batched_matches_scalar_rate(self):
        runner = TrialRunner(base_seed=3)
        scalar = runner.error_rate(_scalar_coin, 600, "coin")
        batched = runner.error_rate_batched(_batched_coin, 600, "coin")
        assert scalar.failures == batched.failures
        assert scalar.rate == batched.rate

    def test_flags_dtype_and_shape(self):
        flags = TrialRunner(base_seed=0).run_flags_batched(
            _batched_coin, 130, "shape", batch=32
        )
        assert flags.shape == (130,) and flags.dtype == bool

    def test_bad_experiment_output_rejected(self):
        def wrong_shape(rng, count):
            return rng.random(count + 1) < 0.5

        with pytest.raises(ParameterError):
            TrialRunner(base_seed=0).run_flags_batched(wrong_shape, 10, "bad")

    def test_validation(self):
        runner = TrialRunner(base_seed=0)
        with pytest.raises(ParameterError):
            runner.run_flags_batched(_batched_coin, 0, "x")
        with pytest.raises(ParameterError):
            runner.run_flags_batched(_batched_coin, 10, "x", batch=0)
        with pytest.raises(ParameterError):
            runner.run_flags_batched(_batched_coin, 10, "x", workers=0)

    def test_estimate_probability_batched_wrapper(self):
        scalar = estimate_probability(_scalar_coin, 800, seed=2)
        batched = estimate_probability_batched(_batched_coin, 800, seed=2)
        assert scalar.failures == batched.failures
