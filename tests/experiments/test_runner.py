"""Tests for the seeded trial runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.experiments import TrialRunner, estimate_probability


class TestTrialRunner:
    def test_reproducible_across_instances(self):
        def coin(rng: np.random.Generator) -> bool:
            return bool(rng.random() < 0.3)

        a = TrialRunner(base_seed=5).error_rate(coin, 200, "cfg", 1)
        b = TrialRunner(base_seed=5).error_rate(coin, 200, "cfg", 1)
        assert a.failures == b.failures

    def test_labels_isolate_configurations(self):
        def coin(rng):
            return bool(rng.random() < 0.5)

        a = TrialRunner(base_seed=5).error_rate(coin, 100, "cfg", 1)
        b = TrialRunner(base_seed=5).error_rate(coin, 100, "cfg", 2)
        assert a.failures != b.failures  # overwhelming probability

    def test_rate_converges(self):
        def coin(rng):
            return bool(rng.random() < 0.25)

        est = TrialRunner(base_seed=0).error_rate(coin, 3000, "p25")
        assert est.rate == pytest.approx(0.25, abs=0.03)

    def test_trial_count_validated(self):
        with pytest.raises(ParameterError):
            TrialRunner(base_seed=0).error_rate(lambda rng: True, 0)


class TestEstimateProbability:
    def test_convenience_wrapper(self):
        est = estimate_probability(lambda rng: bool(rng.random() < 0.1), 1000, seed=1)
        assert est.rate == pytest.approx(0.1, abs=0.04)
