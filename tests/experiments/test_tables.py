"""Tests for the ASCII table renderer."""

from __future__ import annotations

import pytest

from repro.experiments import Table


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "long_column"], title="T")
        t.add_row([1, "x"])
        t.add_row([22222, "yy"])
        lines = t.render().splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)
        # Column boundaries align.
        pipes = [line.index("|") for line in lines[1:] if "|" in line]
        assert len(set(pipes)) == 1

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([0.5])
        t.add_row([1234.5678])
        t.add_row([0.000123])
        body = t.render()
        assert "0.5" in body
        assert "1.23e+03" in body or "1234" in body
        assert "0.000123" in body

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_no_title(self):
        t = Table(["x"])
        t.add_row([1])
        assert not t.render().startswith("\n")
