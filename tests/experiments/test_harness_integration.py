"""Integration of the experiment harness with real testers.

The harness exists to run the benchmarks; these tests run a miniature
version of that pipeline end to end — sweep, estimate with intervals,
fit the scaling shape — so harness regressions surface in the unit suite
rather than mid-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import threshold_parameters
from repro.experiments import (
    Table,
    TrialRunner,
    geometric_int_grid,
    loglog_slope,
)


class TestMiniSweep:
    def test_threshold_scaling_mini(self):
        """A 3-point k-sweep reproduces the -1/2 slope, harness-driven."""
        n, eps = 50_000, 0.9
        ks = geometric_int_grid(10_000, 160_000, 3)
        ss = [threshold_parameters(n, k, eps).s for k in ks]
        slope, _ = loglog_slope(ks, ss)
        assert -0.7 <= slope <= -0.3

    def test_trial_runner_with_real_tester(self):
        """TrialRunner drives a real tester deterministically."""
        from repro.distributions import uniform
        from repro.zeroround.network import collision_reject_flags

        params = threshold_parameters(50_000, 20_000, 0.9)
        u = uniform(50_000)

        def experiment(rng: np.random.Generator) -> bool:
            alarms = int(
                collision_reject_flags(u, params.k, params.s, rng).sum()
            )
            return alarms >= params.threshold  # error on uniform

        runner = TrialRunner(base_seed=42)
        first = runner.error_rate(experiment, 6, "mini", params.k)
        second = runner.error_rate(experiment, 6, "mini", params.k)
        assert first.failures == second.failures
        assert first.rate <= 1 / 3 + 0.35  # 6 trials, generous

    def test_table_renders_sweep(self):
        table = Table(["k", "s"], title="mini sweep")
        for k in (10, 20):
            table.add_row([k, k * 2])
        text = table.render()
        assert "mini sweep" in text and "20" in text
