"""Bit-reproducibility contracts of the fault-injection layer.

Two guarantees, both load-bearing for the benchmark suite:

1. **Null-plan identity** — running any protocol with
   ``faults=FaultPlan.none()`` (or no plan) is bit-identical to the
   pre-fault engine.  The E5/E6/E7 snapshots below were captured on the
   engine *before* the fault layer existed; they must keep matching.
2. **Plan determinism** — the same (rng seed, fault plan) pair replays to
   a bit-identical :class:`EngineReport`, run after run.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.congest import CongestUniformityTester, HardenedCongestTester
from repro.congest.token_packaging import run_token_packaging
from repro.distributions import far_family, uniform
from repro.localmodel import luby_mis
from repro.localmodel.gather_protocol import run_gather_protocol
from repro.simulator import FaultPlan, Topology


def h(x) -> str:
    return hashlib.sha256(repr(x).encode()).hexdigest()[:16]


NULL_PLANS = [None, FaultPlan.none()]
IDS = ["no-plan", "null-plan"]


class TestPreFaultSnapshots:
    """E5/E6/E7 snapshots captured on the pre-fault-layer engine."""

    @pytest.mark.parametrize("plan", NULL_PLANS, ids=IDS)
    def test_e5_token_packaging(self, plan):
        topo = Topology.grid(6, 6)
        outcomes, rep = run_token_packaging(
            topo, list(range(topo.k)), 5, rng=7, faults=plan
        )
        assert (
            rep.rounds,
            rep.messages,
            rep.total_bits,
            rep.max_edge_bits_per_round,
        ) == (29, 860, 9200, 12)
        assert h(outcomes) == "032d74e12b38a03f"
        assert (rep.drops, rep.delays, rep.crashes) == (0, 0, 0)

    @pytest.mark.parametrize("plan", NULL_PLANS, ids=IDS)
    def test_e6_congest_tester(self, plan):
        tester = CongestUniformityTester.solve(500, 1500, 0.9, samples_per_node=4)
        topo = Topology.star(1500)
        far = far_family("paninski", 500, 0.9, rng=0)
        v, rep = tester.run(topo, far, rng=11, faults=plan)
        assert (
            v,
            rep.rounds,
            rep.messages,
            rep.total_bits,
            rep.max_edge_bits_per_round,
        ) == (False, 17, 17984, 226300, 22)
        assert h(rep.outputs) == "1e672e3378e51ff2"

    @pytest.mark.parametrize("plan", NULL_PLANS, ids=IDS)
    def test_e7_local_gather(self, plan):
        topo = Topology.ring(48)
        power = topo.power_graph(4)
        mis, _ = luby_mis(power, rng=3)
        samples = np.random.default_rng(5).integers(0, 500, size=topo.k)
        res = run_gather_protocol(topo, mis, samples, 4, rng=1, faults=plan)
        assert (res.rounds, res.report.messages, res.report.total_bits) == (
            9,
            179,
            8352,
        )
        assert h(res.owner) == "3fbc2b81e2c4d272"
        assert h(sorted(res.samples_at.items())) == "4fb97ff089786efe"


class TestPlanDeterminism:
    def test_hardened_tester_replays_bit_identically(self):
        tester = HardenedCongestTester.solve(
            100, 100, 0.9, p=0.45, samples_per_node=16
        )
        topo = Topology.ring(100)
        dist = uniform(100)
        plan = FaultPlan(seed=42, drop_prob=0.05, crashes={7: 20})
        runs = [tester.run(topo, dist, rng=5, faults=plan) for _ in range(2)]
        assert repr(runs[0].report) == repr(runs[1].report)
        assert runs[0].verdict == runs[1].verdict
        assert runs[0].outcomes == runs[1].outcomes
        assert runs[0].report.drops > 0
        assert runs[0].report.crashes == 1

    def test_gather_replays_bit_identically_under_faults(self):
        topo = Topology.ring(48)
        power = topo.power_graph(4)
        mis, _ = luby_mis(power, rng=3)
        samples = np.random.default_rng(5).integers(0, 500, size=topo.k)
        plan = FaultPlan(seed=9, drop_prob=0.1)
        runs = [
            run_gather_protocol(
                topo, mis, samples, 4, rng=1, strict=False, faults=plan
            )
            for _ in range(2)
        ]
        assert repr(runs[0].report) == repr(runs[1].report)
        assert runs[0].undelivered == runs[1].undelivered
        assert runs[0].report.drops > 0

    def test_warm_and_cold_gather_agree_under_same_plan(self):
        """Warm start changes the rounds run, not the fault stream's keys
        for the routing phase it shares — owners must match cold."""
        topo = Topology.ring(48)
        power = topo.power_graph(4)
        mis, _ = luby_mis(power, rng=3)
        samples = np.random.default_rng(5).integers(0, 500, size=topo.k)
        cold = run_gather_protocol(topo, mis, samples, 4, rng=1, strict=False)
        warm = run_gather_protocol(
            topo, mis, samples, 4, rng=1, warm_start=True, strict=False
        )
        assert warm.owner == cold.owner
        assert warm.samples_at == cold.samples_at
