"""Cross-module integration tests: the paper's pipelines end to end.

Each test exercises a complete chain the way a downstream user would:
solve parameters → run the distributed protocol → check the statistical
outcome, across all three models plus the lower-bound machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AndRuleNetworkTester,
    CostVector,
    ThresholdNetworkTester,
    asymmetric_threshold_parameters,
    far_family,
    uniform,
)
from repro.congest import CongestUniformityTester
from repro.core import CollisionGapTester, cp_constant
from repro.core.bounds import threshold_rule_samples, zero_round_lower_bound
from repro.localmodel import LocalUniformityTester
from repro.simulator import Topology
from repro.smp import BCGMapping, ConcatenatedCode, TesterBasedEqualityProtocol


class TestZeroRoundPipelines:
    def test_threshold_model_distinguishes(self):
        n, k, eps = 20_000, 10_000, 1.0
        tester = ThresholdNetworkTester.solve(n, k, eps)
        u, f = uniform(n), far_family("two_bump", n, eps, rng=0)
        acc_u = sum(tester.test(u, rng=i) for i in range(12))
        acc_f = sum(tester.test(f, rng=100 + i) for i in range(12))
        assert acc_u >= 9 and acc_f <= 3

    def test_and_model_distinguishes_weakly(self):
        n, k, eps, p = 50_000, 2048, 1.0, 0.45
        tester = AndRuleNetworkTester.solve(n, k, eps, p)
        u, f = uniform(n), far_family("paninski", n, eps, rng=1)
        acc_u = sum(tester.test(u, rng=i) for i in range(40))
        acc_f = sum(tester.test(f, rng=500 + i) for i in range(40))
        assert acc_u > acc_f  # the gap exists
        assert acc_u >= 40 * (1 - p - 0.2)

    def test_asymmetric_network_end_to_end(self):
        n, eps = 20_000, 0.9
        costs = CostVector.of([1.0] * 8000 + [2.0] * 4000)
        params = asymmetric_threshold_parameters(n, costs, eps)
        f = far_family("heavy", n, eps, rng=2)
        rejected = sum(not params.test(f, rng=i) for i in range(6))
        assert rejected >= 3

    def test_sandwich_between_bounds(self):
        """Measured per-node samples sit between Thm 1.3's lower bound and
        Thm 1.2's upper curve."""
        n, k, eps = 50_000, 20_000, 0.9
        tester = ThresholdNetworkTester.solve(n, k, eps)
        lower = zero_round_lower_bound(n, k)
        upper = threshold_rule_samples(n, k, eps)
        assert lower <= tester.samples_per_node <= upper * 2


class TestCongestPipeline:
    def test_grid_network_full_protocol(self):
        """Moderate-diameter topology (grid, D ~ 110): both verdict sides."""
        n, k, eps = 500, 3000, 0.9
        tester = CongestUniformityTester.solve(n, k, eps)
        topo = Topology.grid(50, 60)
        accepted_u, report_u = tester.run(topo, uniform(n), rng=0)
        far = far_family("paninski", n, eps, rng=1)
        accepted_f, report_f = tester.run(topo, far, rng=2)
        budget = tester.params.predicted_rounds(topo.diameter())
        assert report_u.rounds <= budget
        assert report_f.rounds <= budget
        # At least one of the two verdicts is correct w.p. >= 1 - 2/9.
        assert accepted_u or not accepted_f


class TestLocalPipeline:
    def test_ring_network_full_protocol(self):
        tester = LocalUniformityTester(n=20_000, eps=1.0, p=0.45)
        ring = Topology.ring(4096)
        plan = tester.plan(ring, 64, rng=0)
        u_ok = sum(
            tester.test_with_plan(plan, uniform(20_000), rng=i) for i in range(20)
        )
        far = far_family("paninski", 20_000, 1.0, rng=1)
        f_rej = sum(
            not tester.test_with_plan(plan, far, rng=100 + i) for i in range(20)
        )
        assert u_ok >= 20 * 0.55 - 4
        assert f_rej >= 20 * 0.55 - 4


class TestLowerBoundPipeline:
    def test_tester_to_equality_protocol_chain(self):
        """Theorem 7.1's chain run forward with the paper's own tester."""
        code = ConcatenatedCode.for_message_bits(96)
        mapping = BCGMapping(code=code)
        tester = CollisionGapTester.from_delta(mapping.domain_size, 0.2)
        proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)

        rng = np.random.default_rng(3)
        x = rng.integers(0, 2, 96)
        y = x.copy()
        y[0] ^= 1
        acc_eq = proto.estimate_acceptance(x, x, trials=1500, rng=4)
        acc_neq = proto.estimate_acceptance(x, y, trials=1500, rng=5)
        # (delta, alpha)-gap becomes (delta, tau*delta) EQ error profile.
        assert acc_eq >= 1 - 0.2 - 0.03
        assert acc_neq <= acc_eq - 0.005

    def test_communication_against_lower_bound(self):
        """The reduction's cost obeys SMP >= Omega(sqrt(f δ n)) / log n."""
        from repro.core.bounds import smp_equality_lower_bound

        code = ConcatenatedCode.for_message_bits(96)
        mapping = BCGMapping(code=code)
        delta = 0.2
        tester = CollisionGapTester.from_delta(mapping.domain_size, delta)
        proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
        guarantee = tester.guarantee(mapping.far_distance)
        lower = smp_equality_lower_bound(
            mapping.domain_size, guarantee.delta, max(guarantee.alpha, 1.01)
        )
        assert proto.communication_bits >= lower
