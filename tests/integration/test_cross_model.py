"""Cross-model consistency: all the paper's testers agree on easy inputs.

Every model in the library — 0-round threshold, 0-round AND, CONGEST,
referee — ultimately tests the same promise problem.  On *easy* inputs
(uniform, and maximally-far distributions) they must all land on the same
side with their respective guarantees; this test pins that consistency,
which a refactor of any shared substrate (sampling, collision kernel,
binomial tails) would be most likely to break.
"""

from __future__ import annotations

import pytest

from repro.congest import CongestUniformityTester
from repro.distributions import far_family, uniform
from repro.simulator import Topology
from repro.smp import RefereeProtocol
from repro.zeroround import ThresholdNetworkTester


class TestAllModelsAgree:
    N = 4_096
    EPS = 1.0

    @pytest.fixture(scope="class")
    def verdicts(self):
        n, eps = self.N, self.EPS
        u = uniform(n)
        far = far_family("paninski", n, eps, rng=0)

        votes = {"uniform": {}, "far": {}}

        thr = ThresholdNetworkTester.solve(n, 8_000, eps)
        votes["uniform"]["threshold"] = [thr.test(u, rng=i) for i in range(5)]
        votes["far"]["threshold"] = [thr.test(far, rng=50 + i) for i in range(5)]

        congest = CongestUniformityTester.solve(n, 4_000, eps, samples_per_node=4)
        star = Topology.star(4_000)
        votes["uniform"]["congest"] = [
            congest.run(star, u, rng=100 + i)[0] for i in range(3)
        ]
        votes["far"]["congest"] = [
            congest.run(star, far, rng=200 + i)[0] for i in range(3)
        ]

        ref = RefereeProtocol(
            n=n, eps=eps, message_bits=8,
            players=RefereeProtocol.players_needed(n, eps, 8),
        )
        votes["uniform"]["referee"] = [ref.run(u, rng=300 + i) for i in range(5)]
        votes["far"]["referee"] = [ref.run(far, rng=400 + i) for i in range(5)]
        return votes

    def test_every_model_mostly_accepts_uniform(self, verdicts):
        for model, vs in verdicts["uniform"].items():
            assert sum(vs) >= len(vs) - 1, (model, vs)

    def test_every_model_mostly_rejects_far(self, verdicts):
        for model, vs in verdicts["far"].items():
            assert sum(vs) <= 1, (model, vs)

    def test_majority_verdicts_unanimous_across_models(self, verdicts):
        majorities_u = {
            model: sum(vs) * 2 > len(vs) for model, vs in verdicts["uniform"].items()
        }
        majorities_f = {
            model: sum(vs) * 2 > len(vs) for model, vs in verdicts["far"].items()
        }
        assert all(majorities_u.values())
        assert not any(majorities_f.values())
