"""Tests for the 0-round harness and its vectorised kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CollisionGapTester, RepeatedAndTester
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.zeroround import (
    AndRule,
    ThresholdRule,
    ZeroRoundNetwork,
    collision_reject_flags,
    repeated_collision_reject_flags,
)
from repro.zeroround.network import estimate_rejection_probability


class TestZeroRoundNetwork:
    def test_result_accounting(self):
        tester = CollisionGapTester(n=1000, s=5)
        net = ZeroRoundNetwork(testers=[tester] * 4, rule=AndRule())
        result = net.run(uniform(1000), rng=0)
        assert result.accepts.shape == (4,)
        assert result.total_samples == 20
        assert result.rejection_count == int((~result.accepts).sum())

    def test_none_testers_abstain(self):
        tester = CollisionGapTester(n=1000, s=5)
        net = ZeroRoundNetwork(testers=[tester, None, None], rule=AndRule())
        result = net.run(uniform(1000), rng=0)
        assert result.accepts[1] and result.accepts[2]
        assert result.samples_per_node[1] == 0

    def test_empty_network_rejected(self):
        with pytest.raises(ParameterError):
            ZeroRoundNetwork(testers=[], rule=AndRule())

    def test_deterministic_given_seed(self):
        tester = CollisionGapTester(n=100, s=8)
        net = ZeroRoundNetwork(testers=[tester] * 6, rule=ThresholdRule(2))
        a = net.run(uniform(100), rng=3)
        b = net.run(uniform(100), rng=3)
        assert np.array_equal(a.accepts, b.accepts)


class TestVectorisedKernels:
    def test_flags_shape(self):
        flags = collision_reject_flags(uniform(1000), k=50, s=8, rng=0)
        assert flags.shape == (50,) and flags.dtype == bool

    def test_matches_object_model_statistically(self):
        """Kernel and object model must estimate the same rejection rate."""
        n, k, s = 500, 2000, 12
        dist = uniform(n)
        kernel_rate = collision_reject_flags(dist, k, s, rng=1).mean()
        tester = CollisionGapTester(n=n, s=s)
        object_rate = np.mean([
            not tester.decide(dist.sample(s, rng=100 + i)) for i in range(2000)
        ])
        assert kernel_rate == pytest.approx(object_rate, abs=0.03)

    def test_repeated_kernel_and_polarity(self):
        n, k, m, s = 500, 3000, 2, 12
        dist = uniform(n)
        single = collision_reject_flags(dist, k, s, rng=2).mean()
        double = repeated_collision_reject_flags(dist, k, m, s, rng=3).mean()
        # AND-of-2 rejection should be ~ (single)^2.
        assert double == pytest.approx(single**2, abs=0.02)

    def test_invalid_shapes(self):
        with pytest.raises(ParameterError):
            collision_reject_flags(uniform(10), k=0, s=5)
        with pytest.raises(ParameterError):
            repeated_collision_reject_flags(uniform(10), k=5, m=0, s=5)


class TestEstimateRejectionProbability:
    def test_uniform_rate_near_delta(self):
        n, s = 2000, 20
        tester = CollisionGapTester(n=n, s=s)
        rate = estimate_rejection_probability(uniform(n), s, trials=8000, rng=4)
        assert rate <= tester.delta + 0.02

    def test_far_rate_above_uniform_rate(self):
        n, s, eps = 2000, 20, 0.9
        far = far_family("paninski", n, eps, rng=5)
        rate_u = estimate_rejection_probability(uniform(n), s, trials=8000, rng=6)
        rate_f = estimate_rejection_probability(far, s, trials=8000, rng=7)
        assert rate_f > rate_u

    def test_trials_validated(self):
        with pytest.raises(ParameterError):
            estimate_rejection_probability(uniform(10), 5, trials=0)
