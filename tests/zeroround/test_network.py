"""Tests for the 0-round harness and its vectorised kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CollisionGapTester, RepeatedAndTester
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.rng import ensure_rng
from repro.zeroround import (
    AndRule,
    MajorityRule,
    ThresholdRule,
    ZeroRoundNetwork,
    and_rule_verdicts,
    auto_batch,
    collision_reject_flags,
    repeated_collision_reject_flags,
    threshold_verdicts,
)
from repro.zeroround.network import estimate_rejection_probability


class TestZeroRoundNetwork:
    def test_result_accounting(self):
        tester = CollisionGapTester(n=1000, s=5)
        net = ZeroRoundNetwork(testers=[tester] * 4, rule=AndRule())
        result = net.run(uniform(1000), rng=0)
        assert result.accepts.shape == (4,)
        assert result.total_samples == 20
        assert result.rejection_count == int((~result.accepts).sum())

    def test_none_testers_abstain(self):
        tester = CollisionGapTester(n=1000, s=5)
        net = ZeroRoundNetwork(testers=[tester, None, None], rule=AndRule())
        result = net.run(uniform(1000), rng=0)
        assert result.accepts[1] and result.accepts[2]
        assert result.samples_per_node[1] == 0

    def test_empty_network_rejected(self):
        with pytest.raises(ParameterError):
            ZeroRoundNetwork(testers=[], rule=AndRule())

    def test_deterministic_given_seed(self):
        tester = CollisionGapTester(n=100, s=8)
        net = ZeroRoundNetwork(testers=[tester] * 6, rule=ThresholdRule(2))
        a = net.run(uniform(100), rng=3)
        b = net.run(uniform(100), rng=3)
        assert np.array_equal(a.accepts, b.accepts)


class TestVectorisedKernels:
    def test_flags_shape(self):
        flags = collision_reject_flags(uniform(1000), k=50, s=8, rng=0)
        assert flags.shape == (50,) and flags.dtype == bool

    def test_matches_object_model_statistically(self):
        """Kernel and object model must estimate the same rejection rate."""
        n, k, s = 500, 2000, 12
        dist = uniform(n)
        kernel_rate = collision_reject_flags(dist, k, s, rng=1).mean()
        tester = CollisionGapTester(n=n, s=s)
        object_rate = np.mean([
            not tester.decide(dist.sample(s, rng=100 + i)) for i in range(2000)
        ])
        assert kernel_rate == pytest.approx(object_rate, abs=0.03)

    def test_repeated_kernel_and_polarity(self):
        n, k, m, s = 500, 3000, 2, 12
        dist = uniform(n)
        single = collision_reject_flags(dist, k, s, rng=2).mean()
        double = repeated_collision_reject_flags(dist, k, m, s, rng=3).mean()
        # AND-of-2 rejection should be ~ (single)^2.
        assert double == pytest.approx(single**2, abs=0.02)

    def test_invalid_shapes(self):
        with pytest.raises(ParameterError):
            collision_reject_flags(uniform(10), k=0, s=5)
        with pytest.raises(ParameterError):
            repeated_collision_reject_flags(uniform(10), k=5, m=0, s=5)


class TestRunMany:
    """run_many must be bit-identical to a loop of run() calls sharing one
    generator — including on heterogeneous Section-4 networks."""

    def _heterogeneous_net(self):
        return ZeroRoundNetwork(
            testers=[
                CollisionGapTester(n=400, s=6),
                None,
                RepeatedAndTester(CollisionGapTester(n=400, s=4), m=2),
                CollisionGapTester(n=400, s=9),
            ],
            rule=ThresholdRule(2),
        )

    def test_matches_looped_run_bitwise(self):
        net = self._heterogeneous_net()
        dist = uniform(400)
        looped_gen = ensure_rng(3)
        looped = np.array(
            [net.run(dist, looped_gen).accepted for _ in range(300)]
        )
        many = net.run_many(dist, 300, ensure_rng(3), batch=64)
        assert np.array_equal(looped, many)

    def test_batch_invariance(self):
        net = self._heterogeneous_net()
        dist = uniform(400)
        reference = net.run_many(dist, 200, ensure_rng(7), batch=200)
        for batch in (1, 13, 4096):
            verdicts = net.run_many(dist, 200, ensure_rng(7), batch=batch)
            assert np.array_equal(reference, verdicts), f"batch={batch}"

    def test_homogeneous_and_rule(self):
        tester = CollisionGapTester(n=300, s=7)
        net = ZeroRoundNetwork(testers=[tester] * 5, rule=AndRule())
        dist = uniform(300)
        looped_gen = ensure_rng(11)
        looped = np.array([net.run(dist, looped_gen).accepted for _ in range(150)])
        many = net.run_many(dist, 150, ensure_rng(11))
        assert np.array_equal(looped, many)

    def test_majority_rule_generic_path(self):
        tester = CollisionGapTester(n=300, s=7)
        net = ZeroRoundNetwork(testers=[tester] * 5, rule=MajorityRule())
        dist = uniform(300)
        looped_gen = ensure_rng(13)
        looped = np.array([net.run(dist, looped_gen).accepted for _ in range(100)])
        many = net.run_many(dist, 100, ensure_rng(13))
        assert np.array_equal(looped, many)

    def test_trials_validated(self):
        with pytest.raises(ParameterError):
            self._heterogeneous_net().run_many(uniform(400), 0)


class TestTrialBatchedKernels:
    """The network kernels must be bit-identical to sequential single-trial
    flat-kernel calls on a shared generator."""

    def test_threshold_verdicts_match_sequential(self):
        dist, k, s, threshold, trials = uniform(250), 40, 8, 5, 60
        gen = ensure_rng(2)
        sequential = np.array([
            int(collision_reject_flags(dist, k, s, gen).sum()) < threshold
            for _ in range(trials)
        ])
        batched = threshold_verdicts(dist, k, s, threshold, trials, rng=2)
        assert np.array_equal(sequential, batched)

    def test_and_rule_verdicts_match_sequential(self):
        dist, k, m, s, trials = uniform(250), 30, 2, 6, 60
        gen = ensure_rng(4)
        sequential = np.array([
            not repeated_collision_reject_flags(dist, k, m, s, gen).any()
            for _ in range(trials)
        ])
        batched = and_rule_verdicts(dist, k, m, s, trials, rng=4)
        assert np.array_equal(sequential, batched)

    def test_kernel_validation(self):
        with pytest.raises(ParameterError):
            threshold_verdicts(uniform(10), k=5, s=3, threshold=2, trials=0)
        with pytest.raises(ParameterError):
            and_rule_verdicts(uniform(10), k=0, m=1, s=3, trials=5)


class TestAutoBatch:
    def test_caps_by_memory(self):
        assert auto_batch(1 << 20, cap=1 << 24) == 16

    def test_at_least_one(self):
        assert auto_batch(1 << 30, cap=1 << 24) == 1

    def test_validates(self):
        with pytest.raises(ParameterError):
            auto_batch(0)


class TestEstimateRejectionProbability:
    def test_uniform_rate_near_delta(self):
        n, s = 2000, 20
        tester = CollisionGapTester(n=n, s=s)
        rate = estimate_rejection_probability(uniform(n), s, trials=8000, rng=4)
        assert rate <= tester.delta + 0.02

    def test_far_rate_above_uniform_rate(self):
        n, s, eps = 2000, 20, 0.9
        far = far_family("paninski", n, eps, rng=5)
        rate_u = estimate_rejection_probability(uniform(n), s, trials=8000, rng=6)
        rate_f = estimate_rejection_probability(far, s, trials=8000, rng=7)
        assert rate_f > rate_u

    def test_trials_validated(self):
        with pytest.raises(ParameterError):
            estimate_rejection_probability(uniform(10), 5, trials=0)
