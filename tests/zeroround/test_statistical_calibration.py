"""Deep statistical calibration checks for the threshold construction.

These tests pin the *quantitative* pieces of Theorem 1.2's proof to the
implementation: the alarm count really is binomial with the predicted
parameter, the Chernoff bounds really dominate the exact tails, and the
threshold really sits between the two conditional alarm distributions.
They complement the pass/fail error-rate tests with distribution-level
assertions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.binomial import binom_cdf, binom_sf
from repro.core.collision import collision_free_probability_uniform
from repro.core.params import threshold_parameters
from repro.distributions import far_family, uniform
from repro.zeroround import ThresholdNetworkTester

N, K, EPS = 20_000, 10_000, 1.0


@pytest.fixture(scope="module")
def tester() -> ThresholdNetworkTester:
    return ThresholdNetworkTester.solve(N, K, EPS)


@pytest.fixture(scope="module")
def uniform_counts(tester) -> np.ndarray:
    u = uniform(N)
    return np.array([tester.rejection_count(u, rng=i) for i in range(60)])


@pytest.fixture(scope="module")
def far_counts(tester) -> np.ndarray:
    far = far_family("paninski", N, EPS, rng=0)
    return np.array(
        [tester.rejection_count(far, rng=100 + i) for i in range(60)]
    )


class TestAlarmDistribution:
    def test_uniform_mean_matches_binomial(self, tester, uniform_counts):
        """E[R | uniform] = k * (1 - birthday product) exactly."""
        p_alarm = 1.0 - collision_free_probability_uniform(N, tester.params.s)
        expected = K * p_alarm
        sem = np.sqrt(K * p_alarm) / np.sqrt(len(uniform_counts))
        assert uniform_counts.mean() == pytest.approx(expected, abs=5 * sem)

    def test_uniform_variance_matches_binomial(self, tester, uniform_counts):
        p_alarm = 1.0 - collision_free_probability_uniform(N, tester.params.s)
        expected_var = K * p_alarm * (1 - p_alarm)
        # Sample variance of 60 draws: allow a wide factor-2 band.
        assert expected_var / 2 <= uniform_counts.var(ddof=1) <= expected_var * 2

    def test_far_mean_at_least_eta_far(self, tester, far_counts):
        """Paninski sits at the Lemma 3.2 floor, so its mean alarm count
        must be at least eta_far (the solver's far-side lower bound)."""
        sem = far_counts.std(ddof=1) / np.sqrt(len(far_counts))
        assert far_counts.mean() >= tester.params.eta_far - 5 * sem

    def test_distributions_separated_by_threshold(
        self, tester, uniform_counts, far_counts
    ):
        t = tester.params.threshold
        assert (uniform_counts >= t).mean() <= 1 / 3
        assert (far_counts < t).mean() <= 1 / 3
        # And with a genuine gap, not at the edge:
        assert uniform_counts.max() < far_counts.min() + 0.5 * (
            far_counts.mean() - uniform_counts.mean()
        )


class TestChernoffVsExact:
    def test_chernoff_bounds_dominate_exact_tails(self):
        """Eq. (5)'s Chernoff bounds are valid (>= exact binomial tails)
        at the solved parameters, for both sides."""
        params = threshold_parameters(50_000, 20_000, 0.9)
        p_u = params.eta_uniform / params.k
        p_f = params.eta_far / params.k
        exact_complete = binom_sf(params.threshold, params.k, p_u)
        exact_sound = binom_cdf(params.threshold - 1, params.k, p_f)
        assert exact_complete <= params.completeness_error_bound + 1e-12
        assert exact_sound <= params.soundness_error_bound + 1e-12

    def test_exact_tails_much_tighter(self):
        """The E12a story at unit-test scale: exact tails leave a large
        margin where Chernoff is nearly spent."""
        params = threshold_parameters(50_000, 20_000, 0.9)
        p_u = params.eta_uniform / params.k
        exact = binom_sf(params.threshold, params.k, p_u)
        assert exact < params.completeness_error_bound / 3
