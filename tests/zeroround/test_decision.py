"""Tests for network decision rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.zeroround import AndRule, MajorityRule, ThresholdRule


def votes(*bits):
    return np.array(bits, dtype=bool)


class TestAndRule:
    def test_all_accept(self):
        assert AndRule().decide(votes(1, 1, 1))

    def test_single_alarm_rejects(self):
        assert not AndRule().decide(votes(1, 0, 1))

    def test_empty_vector_rejected(self):
        with pytest.raises(ParameterError):
            AndRule().decide(np.array([], dtype=bool))


class TestThresholdRule:
    def test_below_threshold_accepts(self):
        assert ThresholdRule(3).decide(votes(0, 0, 1, 1, 1))

    def test_at_threshold_rejects(self):
        assert not ThresholdRule(3).decide(votes(0, 0, 0, 1, 1))

    def test_threshold_one_equals_and_rule(self):
        for pattern in [(1, 1, 1), (1, 0, 1), (0, 0, 0)]:
            assert ThresholdRule(1).decide(votes(*pattern)) == AndRule().decide(
                votes(*pattern)
            )

    def test_threshold_must_be_positive(self):
        with pytest.raises(ParameterError):
            ThresholdRule(0)

    def test_threshold_exceeding_network_size(self):
        with pytest.raises(ParameterError):
            ThresholdRule(5).decide(votes(1, 1))


class TestMajorityRule:
    def test_strict_majority_accepts(self):
        assert MajorityRule().decide(votes(1, 1, 0))

    def test_tie_rejects(self):
        assert not MajorityRule().decide(votes(1, 1, 0, 0))

    def test_minority_rejects(self):
        assert not MajorityRule().decide(votes(1, 0, 0))
