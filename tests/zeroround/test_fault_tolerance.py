"""Failure injection: crashed (abstaining) nodes in the 0-round model.

A crashed node sends no alarm — under both decision rules that is an
"accept" vote.  Crashes therefore never hurt completeness (uniform gets
*more* likely to be accepted) and eat into the soundness margin: the
threshold tester solved for k nodes keeps rejecting ε-far inputs as long
as the surviving alarm mass clears T.  These tests quantify that margin
and check the graceful-degradation story a deployment depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.zeroround import ThresholdNetworkTester
from repro.zeroround.network import collision_reject_flags

N, K, EPS = 50_000, 20_000, 0.9


@pytest.fixture(scope="module")
def tester() -> ThresholdNetworkTester:
    return ThresholdNetworkTester.solve(N, K, EPS)


def _alarms_with_crashes(tester, dist, crashed: int, rng) -> int:
    """Alarm count when `crashed` of the k nodes abstain."""
    alive = tester.params.k - crashed
    flags = collision_reject_flags(dist, alive, tester.params.s, rng)
    return int(flags.sum())


class TestCompleteness:
    def test_crashes_never_hurt_uniform(self, tester):
        """Fewer voters -> fewer alarms: uniform acceptance only improves."""
        u = uniform(N)
        threshold = tester.params.threshold
        for crashed in (0, K // 10, K // 2):
            wrong = sum(
                _alarms_with_crashes(tester, u, crashed, rng=crashed + i)
                >= threshold
                for i in range(10)
            )
            assert wrong <= 3


class TestSoundnessMargin:
    def test_tolerates_moderate_crashes(self, tester):
        """The solved margin eta_far - T covers ~the same fraction of
        crashed nodes: 10% crashes must not break detection."""
        far = far_family("paninski", N, EPS, rng=0)
        threshold = tester.params.threshold
        crashed = K // 10
        missed = sum(
            _alarms_with_crashes(tester, far, crashed, rng=100 + i) < threshold
            for i in range(10)
        )
        assert missed <= 3

    def test_margin_formula(self, tester):
        """Expected alarms scale with survivors: crashes up to
        f* = k(1 - T/eta_far) keep E[alarms] above T."""
        p = tester.params
        f_star = int(K * (1 - p.threshold / p.eta_far))
        assert f_star > K // 20  # the solved instance has real slack
        far = far_family("paninski", N, EPS, rng=1)
        # At half the critical crash count, detection should still work.
        crashed = f_star // 2
        alarms = np.mean([
            _alarms_with_crashes(tester, far, crashed, rng=200 + i)
            for i in range(10)
        ])
        assert alarms > p.threshold

    def test_catastrophic_crashes_break_detection(self, tester):
        """Sanity: with 95% of nodes down the far signal cannot clear T."""
        far = far_family("paninski", N, EPS, rng=2)
        crashed = int(K * 0.95)
        alarms = np.mean([
            _alarms_with_crashes(tester, far, crashed, rng=300 + i)
            for i in range(10)
        ])
        assert alarms < tester.params.threshold


class TestResolveAfterCrash:
    def test_resolving_for_survivors_restores_guarantee(self):
        """Operational playbook: when f nodes are known dead, re-solve at
        k' = k - f; the new instance regains both error sides."""
        survivors = K - K // 2
        tester = ThresholdNetworkTester.solve(N, survivors, EPS)
        u = uniform(N)
        far = far_family("paninski", N, EPS, rng=3)
        err_u = tester.estimate_error(u, True, trials=10, rng=4)
        err_f = tester.estimate_error(far, False, trials=10, rng=5)
        assert err_u <= 1 / 3 + 0.2
        assert err_f <= 1 / 3 + 0.2
