"""Tests for the Theorem 1.1 (AND rule) network tester."""

from __future__ import annotations

import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.zeroround import AndRuleNetworkTester

# A feasible, fast configuration: weak error budget, many nodes.
N, K, EPS, P = 50_000, 1024, 1.0, 0.45


@pytest.fixture(scope="module")
def tester() -> AndRuleNetworkTester:
    return AndRuleNetworkTester.solve(N, K, EPS, P)


class TestConstruction:
    def test_samples_exposed(self, tester):
        assert tester.samples_per_node == tester.params.samples_per_node

    def test_as_network_shape(self, tester):
        net = tester.as_network()
        assert net.k == K

    def test_domain_mismatch_rejected(self, tester):
        with pytest.raises(ParameterError):
            tester.test(uniform(N + 1), rng=0)


class TestStatisticalGuarantees:
    def test_uniform_error_within_budget(self, tester):
        err = tester.estimate_error(uniform(N), True, trials=60, rng=1)
        # Budget 0.45; 60 trials put a ~0.13 sigma on the estimate.
        assert err <= P + 0.20

    def test_far_error_within_budget(self, tester):
        far = far_family("paninski", N, EPS, rng=2)
        err = tester.estimate_error(far, False, trials=60, rng=3)
        assert err <= P + 0.20

    def test_kernel_agrees_with_object_model(self, tester):
        """The vectorised path and the honest per-node path must match in
        distribution: compare acceptance rates."""
        dist = far_family("heavy", N, EPS, rng=4)
        kernel = sum(tester.test(dist, rng=100 + i) for i in range(20)) / 20
        net = tester.as_network()
        objects = sum(
            net.run(dist, rng=200 + i).accepted for i in range(20)
        ) / 20
        assert kernel == pytest.approx(objects, abs=0.35)

    def test_trials_validated(self, tester):
        with pytest.raises(ParameterError):
            tester.estimate_error(uniform(N), True, trials=0)
