"""Tests for the Theorem 1.2 (threshold rule) network tester."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.zeroround import ThresholdNetworkTester

N, K, EPS = 50_000, 20_000, 0.9


@pytest.fixture(scope="module")
def tester() -> ThresholdNetworkTester:
    return ThresholdNetworkTester.solve(N, K, EPS)


class TestConstruction:
    def test_parameters_consistent(self, tester):
        p = tester.params
        assert p.eta_uniform < p.threshold < p.eta_far
        assert tester.samples_per_node == p.s

    def test_as_network(self, tester):
        net = tester.as_network()
        assert net.k == K
        assert net.rule.threshold == tester.params.threshold

    def test_domain_mismatch(self, tester):
        with pytest.raises(ParameterError):
            tester.test(uniform(N - 1), rng=0)


class TestRejectionCounts:
    def test_uniform_counts_concentrate_below_threshold(self, tester):
        counts = [tester.rejection_count(uniform(N), rng=i) for i in range(15)]
        assert np.mean(counts) < tester.params.threshold
        # Mean should be near (at most) eta_uniform.
        assert np.mean(counts) <= tester.params.eta_uniform * 1.15

    def test_far_counts_concentrate_above_threshold(self, tester):
        far = far_family("paninski", N, EPS, rng=1)
        counts = [tester.rejection_count(far, rng=100 + i) for i in range(15)]
        assert np.mean(counts) > tester.params.threshold
        assert np.mean(counts) >= tester.params.eta_far * 0.85


class TestDecisions:
    def test_uniform_error_below_budget(self, tester):
        err = tester.estimate_error(uniform(N), True, trials=40, rng=2)
        assert err <= 1 / 3  # typically 0 at these parameters

    def test_far_error_below_budget(self, tester):
        far = far_family("paninski", N, EPS, rng=3)
        err = tester.estimate_error(far, False, trials=40, rng=4)
        assert err <= 1 / 3

    @pytest.mark.parametrize("family", ["two_bump", "heavy", "support"])
    def test_all_far_families_detected(self, tester, family):
        far = far_family(family, N, EPS, rng=5)
        err = tester.estimate_error(far, False, trials=20, rng=6)
        assert err <= 1 / 3

    def test_less_far_distribution_harder(self, tester):
        """A distribution at eps/3 sits inside the promise gap: the tester
        may accept it -- rejection rate must be far below the eps-far one."""
        mild = far_family("paninski", N, EPS / 3, rng=7)
        counts_mild = np.mean(
            [tester.rejection_count(mild, rng=200 + i) for i in range(10)]
        )
        strong = far_family("paninski", N, EPS, rng=8)
        counts_strong = np.mean(
            [tester.rejection_count(strong, rng=300 + i) for i in range(10)]
        )
        assert counts_mild < counts_strong
