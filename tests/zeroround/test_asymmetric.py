"""Tests for the Section 4 asymmetric-cost constructions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.zeroround import (
    CostVector,
    asymmetric_and_parameters,
    asymmetric_threshold_parameters,
    lemma41_products,
)

N, EPS = 50_000, 0.9


class TestCostVector:
    def test_inverse(self):
        cv = CostVector.of([1.0, 2.0, 4.0])
        assert np.allclose(cv.inverse, [1.0, 0.5, 0.25])

    def test_l2_norm_symmetric_case(self):
        cv = CostVector.symmetric(16)
        assert cv.inverse_norm(2) == pytest.approx(4.0)

    def test_norm_order_monotonicity(self):
        cv = CostVector.of([1.0, 2.0, 3.0])
        assert cv.inverse_norm(2) >= cv.inverse_norm(4) >= cv.inverse_norm(8)

    def test_rejects_non_positive_costs(self):
        with pytest.raises(ParameterError):
            CostVector.of([1.0, 0.0])
        with pytest.raises(ParameterError):
            CostVector.of([])


class TestAsymmetricThreshold:
    def test_symmetric_costs_recover_theorem_12(self):
        """With unit costs the solver must land near the symmetric solver."""
        from repro.core import threshold_parameters

        k = 20_000
        sym = threshold_parameters(N, k, EPS)
        asym = asymmetric_threshold_parameters(N, CostVector.symmetric(k), EPS)
        samples = [s for s in asym.samples if s > 0]
        assert min(samples) == max(samples)  # all equal
        assert samples[0] == pytest.approx(sym.s, abs=max(3, sym.s // 3))

    def test_expensive_nodes_draw_fewer_samples(self):
        costs = CostVector.of([1.0] * 10_000 + [5.0] * 10_000)
        params = asymmetric_threshold_parameters(N, costs, EPS)
        cheap = params.samples[0]
        expensive = params.samples[-1]
        assert expensive < cheap
        assert cheap == pytest.approx(5 * expensive, abs=5)

    def test_max_cost_balanced(self):
        costs = CostVector.of([1.0] * 10_000 + [4.0] * 10_000)
        params = asymmetric_threshold_parameters(N, costs, EPS)
        per_node_cost = np.asarray(params.samples) * np.asarray(costs.costs)
        active = per_node_cost[np.asarray(params.samples) > 0]
        # Everyone's cost should be within one sample-cost of the max.
        assert active.max() - active.min() <= 4.0 + 1e-9

    def test_cost_tracks_inverse_l2_norm(self):
        """Doubling every cost doubles the max individual cost."""
        base = CostVector.of([1.0] * 20_000)
        doubled = CostVector.of([2.0] * 20_000)
        p1 = asymmetric_threshold_parameters(N, base, EPS)
        p2 = asymmetric_threshold_parameters(N, doubled, EPS)
        assert p2.max_cost == pytest.approx(2 * p1.max_cost, rel=0.2)

    def test_network_statistically_sound(self):
        costs = CostVector.of([1.0] * 15_000 + [3.0] * 5_000)
        params = asymmetric_threshold_parameters(N, costs, EPS)
        far = far_family("paninski", N, EPS, rng=1)
        wrong_far = sum(params.test(far, rng=100 + i) for i in range(8))
        wrong_uni = sum(not params.test(uniform(N), rng=200 + i) for i in range(8))
        assert wrong_far <= 4 and wrong_uni <= 4

    def test_vectorised_matches_object_model(self):
        """The grouped kernel and the per-node network agree in distribution."""
        costs = CostVector.of([1.0] * 4800 + [2.0] * 3200)
        params = asymmetric_threshold_parameters(5_000, costs, 1.0)
        far = far_family("paninski", 5_000, 1.0, rng=2)
        net = params.build_network()
        kernel = np.mean([params.rejection_count(far, rng=i) for i in range(12)])
        objects = np.mean(
            [net.run(far, rng=100 + i).rejection_count for i in range(12)]
        )
        sigma = max(3.0, kernel**0.5)
        assert abs(kernel - objects) <= 4 * sigma

    def test_infeasible_tiny_network(self):
        with pytest.raises(InfeasibleParametersError):
            asymmetric_threshold_parameters(100, CostVector.symmetric(4), 0.5)


class TestAsymmetricAnd:
    def test_feasible_instance(self):
        costs = CostVector.of([1.0] * 512 + [3.0] * 512)
        params = asymmetric_and_parameters(N, costs, 1.0, p=0.45)
        assert params.m >= 1
        cheap = params.samples[0]
        expensive = params.samples[-1]
        assert expensive < cheap

    def test_completeness_product(self):
        costs = CostVector.of([1.0] * 512 + [3.0] * 512)
        params = asymmetric_and_parameters(N, costs, 1.0, p=0.45)
        complete = float(np.prod(1.0 - np.asarray(params.node_deltas)))
        assert complete >= 1 - 0.45 - 1e-9

    def test_symmetric_recovers_theorem_11_cost(self):
        from repro.core import and_rule_parameters

        k = 1024
        sym = and_rule_parameters(N, k, 1.0, p=0.45)
        asym = asymmetric_and_parameters(N, CostVector.symmetric(k), 1.0, p=0.45)
        assert asym.max_cost == pytest.approx(
            sym.samples_per_node, rel=0.6
        )


class TestLemma41:
    def test_symmetric_point_is_maximum(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            k = int(rng.integers(2, 8))
            x = rng.uniform(0, 0.05, size=k)
            c = float(np.prod(1 - x))
            a = 1.0 + 0.5 * rng.random() * min(1.0, (1 / (1 - c) - 1))
            if a <= 1.0:
                continue
            g_x, g_y = lemma41_products(x, a)
            assert g_x <= g_y + 1e-12

    def test_equality_at_symmetric_input(self):
        g_x, g_y = lemma41_products([0.01] * 5, 1.5)
        assert g_x == pytest.approx(g_y)

    def test_validations(self):
        with pytest.raises(ParameterError):
            lemma41_products([0.5, 1.0], 1.5)
        with pytest.raises(ParameterError):
            lemma41_products([0.1, 0.1], 1.0)
        with pytest.raises(ParameterError):
            # a >= 1/(1-c) violates the lemma's precondition.
            lemma41_products([0.5, 0.5], 5.0)
