"""Property-based tests for the distributed protocols."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localmodel import assign_catchments, luby_mis, verify_mis
from repro.simulator import FloodMaxProgram, SynchronousEngine, Topology
from repro.smp import EqualityProtocol


@st.composite
def connected_graphs(draw):
    """Random connected graphs (tree skeleton plus extra edges)."""
    k = draw(st.integers(2, 20))
    edges = []
    for v in range(1, k):
        parent = draw(st.integers(0, v - 1))
        edges.append((parent, v))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=10,
        )
    )
    edges += [tuple(sorted(e)) for e in extra]
    return Topology.from_edges(k, sorted(set(edges)))


class TestFloodProperties:
    @given(connected_graphs(), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_always_elects_global_max(self, topo, seed):
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(lambda v: FloodMaxProgram(v, topo.k), rng=seed)
        assert report.halted
        assert all(out[0] == topo.k - 1 for out in report.outputs)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_distances_exact(self, topo):
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(lambda v: FloodMaxProgram(v, topo.k), rng=0)
        truth = topo.bfs_distances(topo.k - 1)
        assert all(
            report.outputs[v][1] == truth[v] for v in range(topo.k)
        )

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_rounds_within_diameter_plus_constant(self, topo):
        engine = SynchronousEngine(topo, bandwidth_bits=64)
        report = engine.run(lambda v: FloodMaxProgram(v, topo.k), rng=1)
        assert report.rounds <= topo.diameter() + 4


class TestMISProperties:
    @given(connected_graphs(), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_luby_always_valid(self, topo, seed):
        membership, _ = luby_mis(topo, rng=seed)
        verify_mis(topo, membership)

    @given(connected_graphs(), st.integers(1, 4), st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_mis_gather_pipeline(self, topo, r, seed):
        """MIS on G^r always yields a full catchment assignment within r."""
        radius = min(r, topo.k - 1)
        power = topo.power_graph(radius) if topo.k > 1 else topo
        membership, _ = luby_mis(power, rng=seed)
        result = assign_catchments(topo, membership, radius)
        # Partition and ownership sanity.
        owned = sorted(v for pile in result.samples_at.values() for v in pile)
        assert owned == list(range(topo.k))
        assert result.routing_rounds <= radius


class TestEqualityProtocolProperties:
    PROTO = EqualityProtocol.build(n_bits=96, delta=0.05, tau=1.5)

    @given(st.lists(st.integers(0, 1), min_size=96, max_size=96), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_perfect_completeness(self, bits, seed):
        x = np.asarray(bits)
        accepted, cost = self.PROTO.run(x, x.copy(), rng=seed)
        assert accepted
        assert cost == self.PROTO.communication_bits

    @given(
        st.lists(st.integers(0, 1), min_size=96, max_size=96),
        st.integers(0, 95),
    )
    @settings(max_examples=30, deadline=None)
    def test_nonzero_rejection_on_any_flip(self, bits, flip):
        """Any single-bit difference is rejected with the certified rate."""
        x = np.asarray(bits)
        y = x.copy()
        y[flip] ^= 1
        rate = self.PROTO.estimate_rejection(x, y, trials=3000, rng=7)
        bound = self.PROTO.rejection_probability_bound
        sigma = (bound / 3000) ** 0.5
        assert rate >= bound - 5 * sigma
