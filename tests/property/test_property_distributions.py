"""Property-based tests (hypothesis) for the distribution substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    DiscreteDistribution,
    collision_probability,
    hellinger_distance,
    kl_divergence,
    l1_distance,
    l1_distance_to_uniform,
    total_variation,
    uniform,
)


@st.composite
def prob_vectors(draw, min_size=2, max_size=40):
    """Random valid probability vectors."""
    size = draw(st.integers(min_size, max_size))
    weights = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=size,
            max_size=size,
        ).filter(lambda w: sum(w) > 1e-6)
    )
    arr = np.asarray(weights, dtype=np.float64)
    return arr / arr.sum()


@st.composite
def dist_pairs(draw):
    p = draw(prob_vectors())
    q_weights = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=p.size,
            max_size=p.size,
        ).filter(lambda w: sum(w) > 1e-6)
    )
    q = np.asarray(q_weights, dtype=np.float64)
    return DiscreteDistribution(p), DiscreteDistribution(q / q.sum())


class TestMetricProperties:
    @given(dist_pairs())
    @settings(max_examples=100, deadline=None)
    def test_l1_symmetry_and_range(self, pair):
        p, q = pair
        d = l1_distance(p, q)
        assert d == pytest.approx(l1_distance(q, p))
        assert 0.0 <= d <= 2.0 + 1e-12

    @given(dist_pairs())
    @settings(max_examples=100, deadline=None)
    def test_identity_of_indiscernibles(self, pair):
        p, _ = pair
        assert l1_distance(p, p) == 0.0

    @given(dist_pairs())
    @settings(max_examples=100, deadline=None)
    def test_tv_hellinger_inequalities(self, pair):
        """h^2 <= TV <= sqrt(2) h (the classical sandwich)."""
        p, q = pair
        tv = total_variation(p, q)
        h = hellinger_distance(p, q)
        assert h * h <= tv + 1e-9
        assert tv <= np.sqrt(2.0) * h + 1e-9

    @given(dist_pairs())
    @settings(max_examples=100, deadline=None)
    def test_pinsker(self, pair):
        """KL >= 2 TV^2 (Pinsker's inequality, nats)."""
        p, q = pair
        kl = kl_divergence(p, q)
        tv = total_variation(p, q)
        assert kl >= 2 * tv * tv - 1e-9


class TestCollisionProperties:
    @given(prob_vectors())
    @settings(max_examples=100, deadline=None)
    def test_uniform_minimises_collision(self, probs):
        chi = collision_probability(probs)
        assert chi >= 1.0 / probs.size - 1e-12

    @given(prob_vectors())
    @settings(max_examples=100, deadline=None)
    def test_lemma_3_2(self, probs):
        """chi >= (1 + eps^2)/n with eps the L1 distance to uniform.

        This is the paper's Lemma 3.2 verified on arbitrary distributions.
        """
        n = probs.size
        eps = l1_distance_to_uniform(probs)
        chi = collision_probability(probs)
        assert chi >= (1.0 + eps * eps) / n - 1e-12

    @given(prob_vectors())
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariance(self, probs):
        d = DiscreteDistribution(probs)
        rng = np.random.default_rng(0)
        perm = rng.permutation(d.n)
        p = d.permuted(perm)
        assert collision_probability(p) == pytest.approx(
            collision_probability(d)
        )
        assert l1_distance_to_uniform(p) == pytest.approx(
            l1_distance_to_uniform(d)
        )


class TestMixtureProperties:
    @given(dist_pairs(), st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_mixing_is_a_contraction_toward_components(self, pair, w):
        p, q = pair
        mixed = p.mix(q, w)
        # Distance from the mixture to p is (1-w) * d(p, q) exactly for L1.
        assert l1_distance(mixed, p) == pytest.approx(
            (1 - w) * l1_distance(p, q), abs=1e-9
        )

    @given(prob_vectors())
    @settings(max_examples=50, deadline=None)
    def test_conditioning_preserves_validity(self, probs):
        d = DiscreteDistribution(probs)
        support = d.support()
        if support.size == 0:
            return
        c = d.conditioned_on(support.tolist())
        assert c.probs.sum() == pytest.approx(1.0)
