"""Property-based tests for the coding stack and the BCG mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import l1_distance_to_uniform
from repro.smp import BCGMapping, ConcatenatedCode, GF, ReedSolomonCode


@st.composite
def rs_message_pairs(draw):
    k_sym = 16
    a = draw(st.lists(st.integers(0, 255), min_size=k_sym, max_size=k_sym))
    b = draw(st.lists(st.integers(0, 255), min_size=k_sym, max_size=k_sym))
    return np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)


RS = ReedSolomonCode(field=GF(8), n_sym=48, k_sym=16)
CODE = ConcatenatedCode.for_message_bits(96)
MAPPING = BCGMapping(code=CODE)


class TestReedSolomonProperties:
    @given(rs_message_pairs())
    @settings(max_examples=100, deadline=None)
    def test_distance_or_equal(self, pair):
        a, b = pair
        dist = int((RS.encode(a) != RS.encode(b)).sum())
        if np.array_equal(a, b):
            assert dist == 0
        else:
            assert dist >= RS.min_distance

    @given(rs_message_pairs())
    @settings(max_examples=100, deadline=None)
    def test_linearity(self, pair):
        a, b = pair
        assert np.array_equal(RS.encode(a ^ b), RS.encode(a) ^ RS.encode(b))


@st.composite
def bit_pairs(draw):
    bits = CODE.message_bits
    a = draw(st.lists(st.integers(0, 1), min_size=bits, max_size=bits))
    b = draw(st.lists(st.integers(0, 1), min_size=bits, max_size=bits))
    return np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)


class TestConcatenatedProperties:
    @given(bit_pairs())
    @settings(max_examples=60, deadline=None)
    def test_certified_distance(self, pair):
        x, y = pair
        if np.array_equal(x, y):
            return
        rel = float((CODE.encode(x) != CODE.encode(y)).mean())
        assert rel >= CODE.relative_distance - 1e-12

    @given(bit_pairs())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, pair):
        x, _ = pair
        assert np.array_equal(CODE.encode(x), CODE.encode(x))


class TestBCGProperties:
    @given(bit_pairs())
    @settings(max_examples=40, deadline=None)
    def test_mixture_dichotomy(self, pair):
        """Equal inputs -> exactly uniform; unequal -> certified-far."""
        x, y = pair
        mix = MAPPING.mixture_distribution(x, y)
        if np.array_equal(x, y):
            assert mix.is_uniform()
        else:
            assert l1_distance_to_uniform(mix) >= (
                MAPPING.far_distance - 1e-12
            )

    @given(bit_pairs())
    @settings(max_examples=40, deadline=None)
    def test_mixture_distance_equals_hamming_fraction(self, pair):
        x, y = pair
        frac = float((CODE.encode(x) != CODE.encode(y)).mean())
        mix = MAPPING.mixture_distribution(x, y)
        assert l1_distance_to_uniform(mix) == pytest.approx(frac, abs=1e-9)
