"""Property-based tests for token packaging over random trees/graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import run_token_packaging, verify_packaging
from repro.simulator import Topology


@st.composite
def random_trees(draw):
    """Random labelled trees built from a Prüfer-like parent sequence."""
    k = draw(st.integers(2, 24))
    edges = []
    for v in range(1, k):
        parent = draw(st.integers(0, v - 1))
        edges.append((parent, v))
    return Topology.from_edges(k, edges, name=f"rand-tree({k})")


@st.composite
def random_connected_graphs(draw):
    """Random connected graphs: a tree skeleton plus extra edges."""
    topo = draw(random_trees())
    k = topo.k
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=12,
        )
    )
    edges = topo.edges() + [tuple(sorted(e)) for e in extra]
    return Topology.from_edges(k, sorted(set(edges)), name=f"rand-graph({k})")


class TestDefinition2Properties:
    @given(random_trees(), st.integers(1, 6), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_packaging_on_random_trees(self, topo, tau, seed):
        tokens = np.random.default_rng(seed).integers(0, 100, size=topo.k)
        outcomes, report = run_token_packaging(topo, tokens, tau, rng=seed)
        verify_packaging(outcomes, tokens, tau)
        assert report.halted

    @given(random_connected_graphs(), st.integers(1, 5), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_packaging_on_random_graphs(self, topo, tau, seed):
        tokens = np.random.default_rng(seed).integers(0, 100, size=topo.k)
        outcomes, report = run_token_packaging(topo, tokens, tau, rng=seed)
        verify_packaging(outcomes, tokens, tau)

    @given(random_trees(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_round_bound_on_random_trees(self, topo, tau):
        tokens = list(range(topo.k))
        _, report = run_token_packaging(topo, tokens, tau, rng=0)
        assert report.rounds <= 4 * topo.diameter() + tau + 12

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_package_count_maximal(self, topo):
        """floor(k/tau) packages must be produced (only < tau tokens drop)."""
        tau = 2
        tokens = list(range(topo.k))
        outcomes, _ = run_token_packaging(topo, tokens, tau, rng=1)
        total = sum(len(o.packages) for o in outcomes)
        assert total == topo.k // tau
