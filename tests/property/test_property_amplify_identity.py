"""Property-based tests: gap amplification algebra + the identity filter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CollisionGapTester, GapSpec, RepeatedAndTester, amplified_gap
from repro.distributions import DiscreteDistribution, IdentityFilter, grain
from repro.distributions.distances import l1_distance


@st.composite
def gap_specs(draw):
    delta = draw(st.floats(1e-6, 0.4))
    alpha = draw(st.floats(1.0001, min(4.0, 0.99 / delta)))
    eps = draw(st.floats(0.05, 1.5))
    return GapSpec(delta=delta, alpha=alpha, eps=eps)


class TestAmplificationAlgebra:
    @given(gap_specs(), st.integers(1, 10))
    @settings(max_examples=150, deadline=None)
    def test_amplified_spec_relations(self, spec, m):
        try:
            amp = amplified_gap(spec, m)
        except Exception:
            return  # alpha^m * delta^m > 1: legitimately unrepresentable
        # delta shrinks, multiplicative gap grows, absolute signal shrinks.
        assert amp.delta <= spec.delta
        assert amp.alpha >= spec.alpha
        assert amp.far_reject_bound <= spec.far_reject_bound + 1e-12

    @given(gap_specs())
    @settings(max_examples=100, deadline=None)
    def test_m_equals_one_is_identity(self, spec):
        assert amplified_gap(spec, 1) == spec


@st.composite
def batch_patterns(draw):
    """Explicit per-repetition batches with known collision structure."""
    m = draw(st.integers(1, 4))
    s = draw(st.integers(2, 6))
    batches = []
    colliding_flags = []
    for i in range(m):
        collide = draw(st.booleans())
        colliding_flags.append(collide)
        base = list(range(i * 100, i * 100 + s))
        if collide:
            base[-1] = base[0]
        batches.append(base)
    return m, s, np.concatenate(batches), colliding_flags


class TestRepeatedTesterSemantics:
    @given(batch_patterns())
    @settings(max_examples=150, deadline=None)
    def test_rejects_iff_every_batch_collides(self, pattern):
        m, s, flat, colliding = pattern
        tester = RepeatedAndTester(base=CollisionGapTester(n=10_000, s=s), m=m)
        expected_accept = not all(colliding)
        assert tester.decide(flat) == expected_accept


@st.composite
def grained_target_and_mu(draw):
    n = draw(st.integers(2, 12))
    m = draw(st.integers(n, 4 * n))
    weights = draw(
        st.lists(st.floats(0.1, 10.0), min_size=n, max_size=n)
    )
    eta = grain(
        DiscreteDistribution(np.asarray(weights) / sum(weights)), m
    )
    mu_weights = draw(
        st.lists(st.floats(0.1, 10.0), min_size=n, max_size=n)
    )
    mu = DiscreteDistribution(np.asarray(mu_weights) / sum(mu_weights))
    return eta, m, mu


class TestIdentityFilterProperties:
    @given(grained_target_and_mu())
    @settings(max_examples=100, deadline=None)
    def test_distance_preserved_exactly_on_full_support(self, case):
        eta, m, mu = case
        if eta.support_size() < eta.n:
            return  # graining may zero out a tiny cell; covered elsewhere
        filt = IdentityFilter.for_target(eta, m)
        d_in, d_out = filt.distance_guarantee(mu)
        assert d_out == pytest.approx(d_in, abs=1e-9)

    @given(grained_target_and_mu())
    @settings(max_examples=100, deadline=None)
    def test_eta_maps_to_uniform(self, case):
        eta, m, _ = case
        if eta.support_size() < eta.n:
            return
        filt = IdentityFilter.for_target(eta, m)
        image = filt.image_distribution(eta)
        assert image.is_uniform()

    @given(grained_target_and_mu())
    @settings(max_examples=60, deadline=None)
    def test_filter_is_stochastic_map(self, case):
        """Image probabilities are a valid distribution for any input."""
        eta, m, mu = case
        if eta.support_size() < eta.n:
            return
        filt = IdentityFilter.for_target(eta, m)
        image = filt.image_distribution(mu)
        assert image.probs.min() >= 0
        assert image.probs.sum() == pytest.approx(1.0)
