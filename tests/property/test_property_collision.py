"""Property-based tests for the collision tester's analytic pieces."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binomial import binom_cdf, binom_sf
from repro.core.collision import (
    collision_free_probability_uniform,
    effective_delta,
    far_accept_upper_bound,
    sample_size_for_delta,
)


class TestSampleSizeSolver:
    @given(st.integers(10, 10**7), st.floats(1e-6, 0.99))
    @settings(max_examples=200, deadline=None)
    def test_floor_characterisation(self, n, delta):
        s = sample_size_for_delta(n, delta)
        assert s >= 2
        # s is the floor root (or clamped to 2): s(s-1) <= 2 delta n
        # unless the clamp applied.
        if s > 2:
            assert s * (s - 1) <= 2 * delta * n
            assert (s + 1) * s > 2 * delta * n

    @given(st.integers(10, 10**6), st.floats(1e-4, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_effective_delta_below_request(self, n, delta):
        s = sample_size_for_delta(n, delta)
        if s > 2:
            assert effective_delta(n, s) <= delta + 1e-12


class TestBirthdayBounds:
    @given(st.integers(2, 10**5), st.integers(2, 300))
    @settings(max_examples=200, deadline=None)
    def test_product_in_unit_interval(self, n, s):
        p = collision_free_probability_uniform(n, s)
        assert 0.0 <= p <= 1.0

    @given(st.integers(50, 10**5), st.integers(2, 100))
    @settings(max_examples=200, deadline=None)
    def test_markov_lower_bound(self, n, s):
        """1 - binom(s,2)/n <= exact no-collision probability (uniform)."""
        exact = collision_free_probability_uniform(n, s)
        assert exact >= 1 - s * (s - 1) / (2 * n) - 1e-12

    @given(st.integers(50, 10**5), st.integers(2, 100))
    @settings(max_examples=200, deadline=None)
    def test_wiener_upper_bound_dominates_uniform(self, n, s):
        """Lemma 3.3 at chi = 1/n upper-bounds the uniform birthday product."""
        exact = collision_free_probability_uniform(n, s)
        bound = far_accept_upper_bound(1.0 / n, s)
        assert exact <= bound + 1e-12

    @given(st.floats(1e-6, 0.5), st.integers(2, 200))
    @settings(max_examples=200, deadline=None)
    def test_wiener_bound_monotone_in_chi(self, chi, s):
        tighter = far_accept_upper_bound(min(1.0, chi * 2), s)
        looser = far_accept_upper_bound(chi, s)
        assert tighter <= looser + 1e-12


class TestBinomialTails:
    @given(st.integers(1, 500), st.floats(0.0, 1.0), st.integers(0, 500))
    @settings(max_examples=200, deadline=None)
    def test_complementarity(self, n, p, t):
        assert binom_sf(t, n, p) + binom_cdf(t - 1, n, p) == pytest.approx(
            1.0, abs=1e-9
        )

    @given(st.integers(1, 300), st.floats(0.01, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_sf_monotone_in_threshold(self, n, p):
        values = [binom_sf(t, n, p) for t in range(0, n + 2)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @given(st.integers(2, 200), st.floats(0.05, 0.45))
    @settings(max_examples=100, deadline=None)
    def test_sf_monotone_in_p(self, n, p):
        t = n // 3
        assert binom_sf(t, n, p) <= binom_sf(t, n, min(0.99, p + 0.1)) + 1e-12
