"""Tests for synthetic epoch streams."""

from __future__ import annotations

import pytest

from repro.distributions import (
    DiscreteDistribution,
    far_family,
    l1_distance,
    l1_distance_to_uniform,
    uniform,
)
from repro.exceptions import ParameterError
from repro.monitoring import AttackWindowStream, DriftStream, StationaryStream


class TestStationary:
    def test_constant(self):
        stream = StationaryStream(uniform(100))
        assert stream.distribution_at(0) == stream.distribution_at(99)

    def test_negative_epoch(self):
        with pytest.raises(ParameterError):
            StationaryStream(uniform(10)).distribution_at(-1)


class TestDrift:
    def test_endpoints(self):
        import numpy as np

        start, end = uniform(100), far_family("two_bump", 100, 0.8)
        stream = DriftStream(start=start, end=end, duration=10)
        # Epoch 0 goes through a mix (float round-off possible)...
        assert np.allclose(stream.distribution_at(0).probs, start.probs)
        # ... past the window the endpoint object is returned as-is.
        assert stream.distribution_at(10) == end
        assert stream.distribution_at(50) == end

    def test_distance_grows_linearly(self):
        start, end = uniform(100), far_family("two_bump", 100, 0.8)
        stream = DriftStream(start=start, end=end, duration=10)
        d5 = l1_distance_to_uniform(stream.distribution_at(5))
        assert d5 == pytest.approx(0.4, abs=1e-9)

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            DriftStream(start=uniform(10), end=uniform(20), duration=5)


class TestAttackWindow:
    def test_window_semantics(self):
        base = uniform(100)
        attack = far_family("heavy", 100, 1.0)
        stream = AttackWindowStream(
            baseline=base, attack=attack, share=0.5, start=3, end=6
        )
        assert stream.distribution_at(2) == base
        assert stream.distribution_at(6) == base
        inside = stream.distribution_at(4)
        assert l1_distance(inside, base) > 0

    def test_share_scales_deviation(self):
        base = uniform(100)
        attack = far_family("heavy", 100, 1.0)
        small = AttackWindowStream(base, attack, 0.2, 0, 1).distribution_at(0)
        large = AttackWindowStream(base, attack, 0.8, 0, 1).distribution_at(0)
        assert l1_distance_to_uniform(large) > l1_distance_to_uniform(small)

    def test_window_validation(self):
        with pytest.raises(ParameterError):
            AttackWindowStream(uniform(10), uniform(10), 0.5, 5, 5)
        with pytest.raises(ParameterError):
            AttackWindowStream(uniform(10), uniform(10), 0.0, 0, 5)
