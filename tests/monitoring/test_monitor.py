"""Tests for the epoch monitor with hysteresis."""

from __future__ import annotations

import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.monitoring import (
    AttackWindowStream,
    StationaryStream,
    UniformityMonitor,
)
from repro.zeroround import ThresholdNetworkTester

N, K, EPS = 20_000, 10_000, 1.0


@pytest.fixture(scope="module")
def tester() -> ThresholdNetworkTester:
    return ThresholdNetworkTester.solve(N, K, EPS)


class TestHealthyStream:
    def test_no_incidents_on_uniform(self, tester):
        monitor = UniformityMonitor(tester=tester, raise_after=2, clear_after=2)
        report = monitor.run(StationaryStream(uniform(N)), epochs=30, rng=0)
        assert report.incidents == ()
        assert report.epochs == 30
        assert report.epochs_in_incident() == 0


class TestPersistentDeviation:
    def test_incident_raised_quickly(self, tester):
        far = far_family("paninski", N, EPS, rng=1)
        monitor = UniformityMonitor(tester=tester, raise_after=2, clear_after=2)
        report = monitor.run(StationaryStream(far), epochs=20, rng=2)
        assert len(report.incidents) == 1
        incident = report.incidents[0]
        assert incident.raised_at <= 4  # two alarms back to back, fast
        assert incident.cleared_at is None  # never clears: deviation persists
        assert incident.duration(20) >= 15


class TestAttackWindow:
    def test_incident_brackets_the_attack(self, tester):
        base = uniform(N)
        attack = far_family("heavy", N, 1.0, rng=3)
        stream = AttackWindowStream(
            baseline=base, attack=attack, share=1.0, start=10, end=20
        )
        monitor = UniformityMonitor(tester=tester, raise_after=2, clear_after=2)
        report = monitor.run(stream, epochs=35, rng=4)
        assert len(report.incidents) == 1
        incident = report.incidents[0]
        # Raised within the window (+ hysteresis), cleared shortly after it.
        assert 10 <= incident.raised_at <= 14
        assert incident.cleared_at is not None
        assert 20 <= incident.cleared_at <= 25

    def test_epoch_records_track_state(self, tester):
        base = uniform(N)
        attack = far_family("heavy", N, 1.0, rng=5)
        stream = AttackWindowStream(
            baseline=base, attack=attack, share=1.0, start=5, end=12
        )
        monitor = UniformityMonitor(tester=tester, raise_after=1, clear_after=1)
        report = monitor.run(stream, epochs=20, rng=6)
        assert report.incident_open_at(8)
        assert not report.incident_open_at(0)


class TestHysteresis:
    def test_larger_raise_after_delays_incident(self, tester):
        far = far_family("paninski", N, EPS, rng=7)
        fast = UniformityMonitor(tester=tester, raise_after=1).run(
            StationaryStream(far), epochs=15, rng=8
        )
        slow = UniformityMonitor(tester=tester, raise_after=4).run(
            StationaryStream(far), epochs=15, rng=8
        )
        assert fast.incidents[0].raised_at <= slow.incidents[0].raised_at

    def test_validation(self, tester):
        with pytest.raises(ParameterError):
            UniformityMonitor(tester=tester, raise_after=0)
        with pytest.raises(ParameterError):
            UniformityMonitor(tester=tester).run(
                StationaryStream(uniform(N)), epochs=0
            )


class TestDeterminism:
    def test_short_run_is_prefix_of_long_run(self, tester):
        """Epoch draws are keyed by (seed, epoch): extending a run never
        rewrites its history."""
        monitor = UniformityMonitor(tester=tester, raise_after=2, clear_after=2)
        stream = StationaryStream(uniform(N))
        short = monitor.run(stream, epochs=6, rng=11)
        long = monitor.run(stream, epochs=12, rng=11)
        assert long.records[: short.epochs] == short.records

    def test_same_seed_reproduces(self, tester):
        monitor = UniformityMonitor(tester=tester)
        stream = StationaryStream(uniform(N))
        a = monitor.run(stream, epochs=5, rng=13)
        b = monitor.run(stream, epochs=5, rng=13)
        assert a.records == b.records
        assert a.incidents == b.incidents

    def test_incident_open_at_bounds(self, tester):
        monitor = UniformityMonitor(tester=tester)
        report = monitor.run(StationaryStream(uniform(N)), epochs=4, rng=0)
        with pytest.raises(ParameterError):
            report.incident_open_at(4)
        with pytest.raises(ParameterError):
            report.incident_open_at(-1)
