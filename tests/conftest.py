"""Shared fixtures for the test suite.

Conventions:

- every randomized test pins its seed (through the fixtures or literals),
- statistical assertions leave generous margins (≥ 4σ) so the suite is
  deterministic in practice,
- "small" fixtures keep unit tests fast; the integration tests own the
  larger configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution, far_family, uniform


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, pinned generator per test."""
    return np.random.default_rng(20180723)


@pytest.fixture
def small_uniform() -> DiscreteDistribution:
    """Uniform distribution on a small domain."""
    return uniform(200)


@pytest.fixture
def small_far() -> DiscreteDistribution:
    """A certified 0.8-far distribution on the same small domain."""
    return far_family("paninski", 200, 0.8, rng=7)


@pytest.fixture
def medium_uniform() -> DiscreteDistribution:
    """Uniform distribution sized for statistical assertions."""
    return uniform(10_000)


@pytest.fixture
def medium_far() -> DiscreteDistribution:
    """A certified 0.9-far distribution on the medium domain."""
    return far_family("paninski", 10_000, 0.9, rng=11)
