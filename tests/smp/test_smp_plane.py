"""Tests for the vectorised SMP trial plane (the bit-identity contract).

Every test here pins the plane to the scalar Section 7 protocols: same
chunk-keyed streams, same verdicts, bit for bit — across field sizes,
seeds, and both protocols (the Lemma 7.3 torus and the Theorem 7.1
BCG reduction).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import CollisionGapTester
from repro.core.baselines import CollisionCountTester
from repro.core.gap import decide_many
from repro.exceptions import ParameterError, SimulationError
from repro.smp import (
    BCGMapping,
    ConcatenatedCode,
    EqualityProtocol,
    EqualityTrialRunner,
    TesterBasedEqualityProtocol,
)
from repro.telemetry import Tracer, tracing

SEEDS = [11, 22, 33, 44]

#: Three field sizes (GF(2^3), GF(2^4), GF(2^8)) with message lengths
#: that keep the outer Reed-Solomon code inside each field.
CONFIGS = [(3, 12), (4, 32), (8, 256)]


def _pair(n_bits: int):
    rng = np.random.default_rng(7)
    x = rng.integers(0, 2, n_bits)
    y = x.copy()
    y[0] ^= 1
    return x, y


def _torus(q: int, n_bits: int) -> EqualityProtocol:
    code = ConcatenatedCode.for_message_bits(n_bits, q=q)
    return EqualityProtocol.build(n_bits, delta=0.05, tau=2.0, code=code)


def _bcg(q: int, n_bits: int) -> TesterBasedEqualityProtocol:
    mapping = BCGMapping(code=ConcatenatedCode.for_message_bits(n_bits, q=q))
    tester = CollisionGapTester.from_delta(mapping.domain_size, 0.25)
    return TesterBasedEqualityProtocol(mapping=mapping, tester=tester)


class TestPerSeedBitIdentity:
    """Verdict ``i`` must equal the scalar ``run(x, y, rng=seeds[i])``."""

    @pytest.mark.parametrize("q,n_bits", CONFIGS)
    @pytest.mark.parametrize("equal", [True, False])
    def test_torus_matches_scalar_run(self, q, n_bits, equal):
        proto = _torus(q, n_bits)
        x, y = _pair(n_bits)
        b = x if equal else y
        runner = EqualityTrialRunner.for_torus(proto, x, b)
        scalar = [proto.run(x, b, rng=seed)[0] for seed in SEEDS]
        assert runner.verdicts_for_seeds(SEEDS) == scalar

    @pytest.mark.parametrize("q,n_bits", CONFIGS)
    @pytest.mark.parametrize("equal", [True, False])
    def test_bcg_matches_scalar_run(self, q, n_bits, equal):
        proto = _bcg(q, n_bits)
        x, y = _pair(n_bits)
        b = x if equal else y
        runner = EqualityTrialRunner.for_reduction(proto, x, b)
        scalar = [proto.run(x, b, rng=seed) for seed in SEEDS]
        assert runner.verdicts_for_seeds(SEEDS) == scalar


class TestTrialEngineBitIdentity:
    """Batched flags must equal the scalar experiment on the same
    chunk-keyed streams, at any batch split."""

    @pytest.mark.parametrize("q,n_bits", CONFIGS[:2])
    def test_torus_flags(self, q, n_bits):
        proto = _torus(q, n_bits)
        x, y = _pair(n_bits)
        runner = EqualityTrialRunner.for_torus(proto, x, y, base_seed=3)
        assert np.array_equal(runner.run_flags(200), runner.scalar_flags(200))

    @pytest.mark.parametrize("q,n_bits", CONFIGS[:2])
    def test_bcg_flags(self, q, n_bits):
        proto = _bcg(q, n_bits)
        x, y = _pair(n_bits)
        runner = EqualityTrialRunner.for_reduction(proto, x, y, base_seed=3)
        assert np.array_equal(runner.run_flags(200), runner.scalar_flags(200))

    def test_engine_check_full_prefix_passes(self):
        proto = _torus(4, 32)
        x, y = _pair(32)
        runner = EqualityTrialRunner.for_torus(proto, x, y, base_seed=1)
        flags = runner.run_flags(100, engine_check=1.0)
        assert flags.shape == (100,)

    def test_error_rate_matches_scalar(self):
        proto = _bcg(4, 32)
        x, y = _pair(32)
        runner = EqualityTrialRunner.for_reduction(proto, x, y, base_seed=2)
        assert runner.error_rate(150) == runner.scalar_error_rate(150)

    def test_tracing_does_not_change_flags(self):
        proto = _torus(4, 32)
        x, y = _pair(32)
        runner = EqualityTrialRunner.for_torus(proto, x, y, base_seed=5)
        untraced = runner.run_flags(120)
        with tracing(Tracer()):
            traced = runner.run_flags(120, engine_check=0.1)
        assert np.array_equal(traced, untraced)


class TestEngineCheck:
    def test_torus_divergence_raises(self):
        """A tampered codeword table must trip the scalar cross-check."""
        proto = _torus(4, 32)
        x, _ = _pair(32)
        runner = EqualityTrialRunner.for_torus(proto, x, x, base_seed=0)
        bad_kernel = dataclasses.replace(
            runner.kernel, table_b=1 - runner.kernel.table_b
        )
        tampered = dataclasses.replace(runner, kernel=bad_kernel)
        with pytest.raises(SimulationError, match="diverge"):
            tampered.run_flags(64, engine_check=1.0)

    def test_bcg_divergence_raises(self):
        """A tampered support must trip the scalar cross-check."""
        proto = _bcg(4, 32)
        x, y = _pair(32)
        runner = EqualityTrialRunner.for_reduction(proto, x, y, base_seed=0)
        bad_kernel = dataclasses.replace(
            runner.kernel, support_bob=runner.kernel.support_alice
        )
        tampered = dataclasses.replace(runner, kernel=bad_kernel)
        with pytest.raises(SimulationError, match="diverge"):
            tampered.run_flags(64, engine_check=1.0)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_fraction_range_validated(self, bad):
        proto = _torus(4, 32)
        x, y = _pair(32)
        runner = EqualityTrialRunner.for_torus(proto, x, y)
        with pytest.raises(ParameterError, match="engine_check"):
            runner.run_flags(10, engine_check=bad)


class _SumTester:
    """A centralized tester `decide_many` has no kernel for."""

    samples_required = 5

    def decide(self, samples):
        return int(np.sum(samples)) % 2 == 0


class TestDecideMany:
    @pytest.mark.parametrize(
        "tester",
        [
            CollisionGapTester.from_delta(64, 0.25),
            CollisionCountTester(n=64, s=12, eps=0.5),
        ],
        ids=["gap", "count"],
    )
    def test_matches_scalar_decide(self, tester):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 64, size=(50, tester.samples_required))
        want = [bool(tester.decide(row)) for row in samples]
        assert decide_many(tester, samples).tolist() == want

    def test_generic_fallback(self):
        tester = _SumTester()
        rng = np.random.default_rng(1)
        samples = rng.integers(0, 10, size=(20, 5))
        want = [tester.decide(row) for row in samples]
        assert decide_many(tester, samples).tolist() == want

    def test_shape_validated(self):
        tester = CollisionGapTester.from_delta(64, 0.25)
        wrong = np.zeros((4, tester.samples_required + 1), dtype=np.int64)
        with pytest.raises(ParameterError):
            decide_many(tester, wrong)

    def test_empty_batch(self):
        tester = CollisionGapTester.from_delta(64, 0.25)
        empty = np.zeros((0, tester.samples_required), dtype=np.int64)
        out = decide_many(tester, empty)
        assert out.shape == (0,) and out.dtype == bool
