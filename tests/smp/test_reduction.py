"""Tests for the BCG reduction (Theorem 7.1, forward direction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CollisionGapTester
from repro.core.baselines import CollisionCountTester
from repro.distributions import l1_distance_to_uniform
from repro.exceptions import ParameterError
from repro.smp import BCGMapping, ConcatenatedCode, TesterBasedEqualityProtocol

N_BITS = 128


@pytest.fixture(scope="module")
def mapping() -> BCGMapping:
    return BCGMapping(code=ConcatenatedCode.for_message_bits(N_BITS))


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, N_BITS)
    y = x.copy()
    y[3] ^= 1
    return x, y


class TestMapping:
    def test_equal_inputs_give_exactly_uniform_mixture(self, mapping, inputs):
        x, _ = inputs
        mix = mapping.mixture_distribution(x, x)
        assert mix.is_uniform()
        assert mix.n == mapping.domain_size

    def test_unequal_inputs_give_far_mixture(self, mapping, inputs):
        x, y = inputs
        mix = mapping.mixture_distribution(x, y)
        assert l1_distance_to_uniform(mix) >= mapping.far_distance - 1e-12

    def test_distance_equals_codeword_hamming_fraction(self, mapping, inputs):
        x, y = inputs
        wa = mapping.code.encode(x)
        wb = mapping.code.encode(y)
        frac = (wa != wb).mean()
        mix = mapping.mixture_distribution(x, y)
        assert l1_distance_to_uniform(mix) == pytest.approx(frac)

    def test_supports_disjoint_iff_equal(self, mapping, inputs):
        x, _ = inputs
        a = set(mapping.alice_support(x))
        b = set(mapping.bob_support(x))
        assert not a & b
        assert len(a | b) == mapping.domain_size

    def test_samples_come_from_support(self, mapping, inputs):
        x, _ = inputs
        support = set(mapping.alice_support(x))
        draws = mapping.sample_alice(x, 500, rng=1)
        assert set(draws) <= support


class TestProtocol:
    def test_communication_formula(self, mapping):
        tester = CollisionGapTester.from_delta(mapping.domain_size, 0.05)
        proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
        import math

        expected = tester.samples_required * math.ceil(
            math.log2(mapping.domain_size)
        )
        assert proto.communication_bits == expected

    def test_gap_tester_transfers_its_gap(self, mapping, inputs):
        """The asymmetric-error regime survives the reduction: acceptance on
        equal inputs ~ 1 - delta; on unequal inputs strictly lower."""
        x, y = inputs
        tester = CollisionGapTester.from_delta(mapping.domain_size, 0.25)
        proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
        acc_eq = proto.estimate_acceptance(x, x, trials=3000, rng=2)
        acc_neq = proto.estimate_acceptance(x, y, trials=3000, rng=3)
        assert acc_eq >= 1 - 0.25 - 0.03
        assert acc_neq < acc_eq

    def test_strong_tester_gives_strong_protocol(self, mapping, inputs):
        """Plugging a constant-error tester yields a constant-error EQ
        protocol -- the reduction preserves both regimes."""
        x, y = inputs
        eps = mapping.far_distance
        tester = CollisionCountTester.with_standard_budget(
            mapping.domain_size, eps, constant=6.0
        )
        proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)
        acc_eq = proto.estimate_acceptance(x, x, trials=60, rng=4)
        acc_neq = proto.estimate_acceptance(x, y, trials=60, rng=5)
        assert acc_eq >= 2 / 3
        assert acc_neq <= 1 / 3


class TestValidationAndEstimateError:
    @pytest.fixture(scope="class")
    def proto(self, mapping):
        tester = CollisionGapTester.from_delta(mapping.domain_size, 0.25)
        return TesterBasedEqualityProtocol(mapping=mapping, tester=tester)

    @pytest.mark.parametrize("trials", [0, -1, 2.5, True])
    def test_estimate_acceptance_trials_validated(self, proto, inputs, trials):
        x, y = inputs
        with pytest.raises(ParameterError, match="trials"):
            proto.estimate_acceptance(x, y, trials=trials)

    @pytest.mark.parametrize("trials", [0, -1, 2.5, True])
    def test_estimate_error_trials_validated(self, proto, inputs, trials):
        x, y = inputs
        with pytest.raises(ParameterError, match="trials"):
            proto.estimate_error(x, y, trials=trials)

    def test_fast_path_matches_scalar(self, proto, inputs):
        x, y = inputs
        fast = proto.estimate_error(x, y, trials=150, rng=9, fast_path=True)
        slow = proto.estimate_error(x, y, trials=150, rng=9, fast_path=False)
        assert fast == slow

    def test_engine_check_passes_on_honest_plane(self, proto, inputs):
        x, _ = inputs
        err = proto.estimate_error(
            x, x.copy(), trials=40, rng=2, fast_path=True, engine_check=1.0
        )
        assert 0.0 <= err <= 1.0

    def test_generator_rng_rejects_fast_path(self, proto, inputs):
        x, y = inputs
        gen = np.random.default_rng(0)
        with pytest.raises(ParameterError, match="seed-like"):
            proto.estimate_error(x, y, trials=10, rng=gen, fast_path=True)

    def test_driver_split_pinned_to_choice(self, mapping, inputs):
        """`sample_alice` must keep consuming the generator exactly like
        `Generator.choice` (the stream contract the plane relies on)."""
        from repro.smp.reduction import support_driver

        x, _ = inputs
        driver = support_driver(mapping.domain_size // 2)
        u = driver.sample_uniform(64, rng=11)
        assert np.array_equal(
            driver.index_quantiles(u), driver.sample(64, rng=11)
        )
