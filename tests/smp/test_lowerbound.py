"""Tests for the quantitative lower-bound machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import (
    f_tau,
    gap_tester_lower_bound,
    gap_tester_samples,
    smp_equality_lower_bound,
    smp_equality_upper_bound,
    zero_round_lower_bound,
)
from repro.exceptions import ParameterError
from repro.smp import anonymous_tester_requirements, verify_kl_separation


class TestLemma21:
    @pytest.mark.parametrize("delta", [0.01, 0.05, 0.2])
    @pytest.mark.parametrize("tau", [1.1, 2.0, 4.0])
    def test_kl_separation_holds(self, delta, tau):
        if tau >= 1.0 / delta:
            pytest.skip("outside lemma preconditions")
        exact, bound = verify_kl_separation(delta, tau)
        assert exact >= bound - 1e-15

    def test_grid_sweep(self):
        """Lemma 2.1 over a dense parameter grid."""
        for delta in np.linspace(0.005, 0.24, 25):
            for tau in np.linspace(1.01, min(4.0, 0.99 / delta), 25):
                exact, bound = verify_kl_separation(float(delta), float(tau))
                assert exact >= bound - 1e-15

    def test_preconditions_enforced(self):
        with pytest.raises(ParameterError):
            verify_kl_separation(0.3, 2.0)
        with pytest.raises(ParameterError):
            verify_kl_separation(0.1, 11.0)


class TestTheorem13Requirements:
    def test_alpha_exceeds_five_fourths(self):
        """The paper: any k forces alpha > 5/4."""
        for k in (1, 2, 10, 1000, 100_000):
            _, alpha_min = anonymous_tester_requirements(k)
            assert alpha_min > 5 / 4

    def test_alpha_tends_to_cp(self):
        from repro.core import cp_constant

        _, alpha_min = anonymous_tester_requirements(10_000_000)
        assert alpha_min == pytest.approx(cp_constant(1 / 3), rel=1e-3)

    def test_delta_max_shrinks_with_k(self):
        d1, _ = anonymous_tester_requirements(100)
        d2, _ = anonymous_tester_requirements(10_000)
        assert d2 < d1
        assert d2 == pytest.approx(d1 / 100, rel=0.05)


class TestSandwich:
    def test_construction_sits_between_bounds(self):
        """Cor 7.4 lower <= our tester's cost, for the Theorem 1.3 regime."""
        n = 1_000_000
        for k in (100, 10_000):
            delta_max, alpha_min = anonymous_tester_requirements(k)
            lower = gap_tester_lower_bound(n, delta_max, alpha_min)
            upper = gap_tester_samples(n, delta_max)
            assert lower <= upper
            # And the k-form of the lower bound is consistent.
            assert zero_round_lower_bound(n, k) <= upper * math.sqrt(
                1 / (2 * math.log(1.5))
            ) * 2

    def test_smp_bounds_scale_together(self):
        n = 100_000
        lo1 = smp_equality_lower_bound(n, 0.01, 2.0)
        lo2 = smp_equality_lower_bound(4 * n, 0.01, 2.0)
        up1 = smp_equality_upper_bound(n, 0.01, 2.0)
        up2 = smp_equality_upper_bound(4 * n, 0.01, 2.0)
        assert lo2 / lo1 == pytest.approx(2.0)
        assert up2 / up1 == pytest.approx(2.0)

    def test_f_tau_drives_both_sides(self):
        assert f_tau(3.0) > f_tau(2.0) > f_tau(1.5) > 0
