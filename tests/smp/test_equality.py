"""Tests for the Lemma 7.3 torus-chunk Equality protocol."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.smp import EqualityProtocol

N_BITS, DELTA, TAU = 256, 0.05, 2.0


@pytest.fixture(scope="module")
def proto() -> EqualityProtocol:
    return EqualityProtocol.build(n_bits=N_BITS, delta=DELTA, tau=TAU)


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2, N_BITS)
    y = x.copy()
    y[17] ^= 1
    return x, y


class TestConstruction:
    def test_rejection_bound_meets_target(self, proto):
        assert proto.rejection_probability_bound >= TAU * DELTA - 1e-12

    def test_chunk_within_side(self, proto):
        assert 1 <= proto.chunk_length <= proto.side

    def test_infeasible_target_raises(self):
        with pytest.raises(ParameterError):
            EqualityProtocol.build(n_bits=256, delta=0.5, tau=1.5)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            EqualityProtocol.build(n_bits=256, delta=0.0, tau=2.0)
        with pytest.raises(ParameterError):
            EqualityProtocol.build(n_bits=256, delta=0.1, tau=1.0)


class TestCommunication:
    def test_worst_case_bits_formula(self, proto):
        coord = math.ceil(math.log2(proto.side))
        assert proto.communication_bits == 2 * coord + proto.chunk_length

    def test_actual_messages_match_declared_cost(self, proto, inputs):
        x, _ = inputs
        msg = proto.alice_message(x, rng=1)
        assert msg.size_in_bits(proto.side) == proto.communication_bits

    def test_scales_as_sqrt_delta_n(self):
        """Lemma 7.3: cost = O(sqrt(tau delta n)); quadrupling delta ~ doubles t."""
        small = EqualityProtocol.build(n_bits=512, delta=0.01, tau=2.0)
        large = EqualityProtocol.build(n_bits=512, delta=0.04, tau=2.0)
        assert large.chunk_length == pytest.approx(2 * small.chunk_length, rel=0.2)


class TestCorrectness:
    def test_perfect_completeness(self, proto, inputs):
        x, _ = inputs
        for seed in range(50):
            accepted, _ = proto.run(x, x.copy(), rng=seed)
            assert accepted

    def test_rejection_rate_meets_bound(self, proto, inputs):
        x, y = inputs
        rate = proto.estimate_rejection(x, y, trials=40_000, rng=2)
        assert rate >= proto.rejection_probability_bound - 0.01

    def test_estimate_matches_run(self, proto, inputs):
        x, y = inputs
        fast = proto.estimate_rejection(x, y, trials=4000, rng=3)
        slow = sum(not proto.run(x, y, rng=100 + i)[0] for i in range(4000)) / 4000
        assert fast == pytest.approx(slow, abs=0.03)

    def test_many_bit_differences_reject_more(self, proto):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 2, N_BITS)
        y_near = x.copy()
        y_near[0] ^= 1
        y_far = 1 - x
        near = proto.estimate_rejection(x, y_near, trials=20_000, rng=5)
        far = proto.estimate_rejection(x, y_far, trials=20_000, rng=6)
        assert far >= near

    def test_referee_crossing_geometry(self, proto, inputs):
        """When the chunks provably do not cross, the referee accepts."""
        from repro.smp.equality import TorusChunkMessage

        t = proto.chunk_length
        if t >= proto.side:
            pytest.skip("chunks cover the torus at these parameters")
        alice = TorusChunkMessage(row=0, col=0, bits=tuple([0] * t))
        bob = TorusChunkMessage(row=t, col=1, bits=tuple([1] * t))
        # Bob's row (t) is outside Alice's [0, t); no crossing.
        assert proto.referee(alice, bob)


class TestValidation:
    @pytest.mark.parametrize("trials", [0, -1, 2.5, True])
    def test_estimate_rejection_trials_validated(self, proto, inputs, trials):
        x, y = inputs
        with pytest.raises(ParameterError, match="trials"):
            proto.estimate_rejection(x, y, trials=trials)

    @pytest.mark.parametrize("trials", [0, -1, 2.5, True])
    def test_estimate_error_trials_validated(self, proto, inputs, trials):
        x, y = inputs
        with pytest.raises(ParameterError, match="trials"):
            proto.estimate_error(x, y, trials=trials)

    @pytest.mark.parametrize("n_bits", [0, -4, 3.5, True])
    def test_build_n_bits_validated(self, n_bits):
        with pytest.raises(ParameterError, match="n_bits"):
            EqualityProtocol.build(n_bits=n_bits, delta=DELTA, tau=TAU)


class TestEstimateError:
    def test_fast_path_matches_scalar(self, proto, inputs):
        x, y = inputs
        fast = proto.estimate_error(x, y, trials=200, rng=9, fast_path=True)
        slow = proto.estimate_error(x, y, trials=200, rng=9, fast_path=False)
        assert fast == slow

    def test_engine_check_passes_on_honest_plane(self, proto, inputs):
        x, y = inputs
        err = proto.estimate_error(
            x, y, trials=50, rng=1, fast_path=True, engine_check=1.0
        )
        assert 0.0 <= err <= 1.0

    def test_generator_rng_rejects_fast_path(self, proto, inputs):
        x, y = inputs
        gen = np.random.default_rng(0)
        with pytest.raises(ParameterError, match="seed-like"):
            proto.estimate_error(x, y, trials=10, rng=gen, fast_path=True)

    def test_generator_rng_takes_legacy_loop(self, proto, inputs):
        x, _ = inputs
        gen = np.random.default_rng(0)
        err = proto.estimate_error(
            x, x.copy(), trials=20, rng=gen, fast_path=False
        )
        assert err == 0.0  # perfect completeness
