"""Tests for the referee-model (hash-and-test) protocol."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.smp import (
    RefereeProtocol,
    enumerate_balanced_partitions,
    expected_induced_distance,
    induced_distribution,
    random_balanced_partition,
)

N, EPS = 4096, 0.9


class TestPartition:
    def test_balanced(self):
        part = random_balanced_partition(100, 8, rng=0)
        counts = np.bincount(part, minlength=8)
        assert counts.max() - counts.min() <= 1

    def test_exactly_balanced_when_divisible(self):
        part = random_balanced_partition(64, 8, rng=1)
        assert set(np.bincount(part)) == {8}

    def test_random_across_seeds(self):
        a = random_balanced_partition(50, 4, rng=2)
        b = random_balanced_partition(50, 4, rng=3)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            random_balanced_partition(10, 1)
        with pytest.raises(ParameterError):
            random_balanced_partition(10, 20)


class TestInducedDistribution:
    def test_uniform_stays_uniform_when_divisible(self):
        part = random_balanced_partition(64, 8, rng=0)
        induced = induced_distribution(uniform(64), part)
        assert induced.is_uniform()

    def test_mass_conserved(self):
        far = far_family("heavy", 100, 0.5)
        part = random_balanced_partition(100, 10, rng=1)
        induced = induced_distribution(far, part)
        assert induced.probs.sum() == pytest.approx(1.0)

    def test_contraction_follows_sqrt_law(self):
        """mean induced distance ~ kappa_hat * eps * sqrt(B/n) with
        kappa_hat in a stable band across bucket counts."""
        far = far_family("paninski", N, EPS, rng=0)
        ratios = []
        for ell in (4, 6, 8):
            buckets = 1 << ell
            mean_d, _ = expected_induced_distance(far, buckets, trials=20, rng=1)
            ratios.append(mean_d / (EPS * math.sqrt(buckets / N)))
        assert all(0.5 <= r <= 1.1 for r in ratios)
        # The band is narrow: the sqrt law is the right shape.
        assert max(ratios) - min(ratios) < 0.3

    def test_kappa_constant_is_conservative(self):
        """CONTRACTION_KAPPA must lower-bound the measured contraction on
        every certified far family (else the referee threshold is wrong)."""
        from repro.smp.referee import CONTRACTION_KAPPA

        for family in ("paninski", "two_bump", "heavy", "support"):
            far = far_family(family, N, EPS, rng=2)
            mean_d, min_d = expected_induced_distance(far, 64, trials=20, rng=3)
            law = CONTRACTION_KAPPA * EPS * math.sqrt(64 / N)
            assert min_d >= law * 0.9, family


class TestRefereeProtocol:
    def test_communication_accounting(self):
        proto = RefereeProtocol(n=N, eps=EPS, message_bits=8, players=100)
        assert proto.buckets == 256
        assert proto.total_communication_bits == 800

    def test_bucket_count_capped_by_domain(self):
        with pytest.raises(ParameterError):
            RefereeProtocol(n=100, eps=0.5, message_bits=8, players=10)

    def test_trade_off_direction(self):
        """[ACT18]'s headline: more bits per player, fewer players."""
        ks = [RefereeProtocol.players_needed(N, EPS, ell) for ell in (4, 6, 8, 10)]
        assert ks == sorted(ks, reverse=True)

    def test_players_scale_as_inverse_sqrt_buckets(self):
        k4 = RefereeProtocol.players_needed(N, EPS, 4)
        k8 = RefereeProtocol.players_needed(N, EPS, 8)
        # k ~ n/(eps^2 sqrt(B)): 16x buckets -> 4x fewer players.
        assert k4 / k8 == pytest.approx(4.0, rel=0.1)

    def test_statistical_guarantee(self):
        u = uniform(N)
        far = far_family("paninski", N, EPS, rng=4)
        proto = RefereeProtocol(
            n=N, eps=EPS, message_bits=8,
            players=RefereeProtocol.players_needed(N, EPS, 8),
        )
        assert proto.estimate_error(u, True, trials=20, rng=5) <= 1 / 3
        assert proto.estimate_error(far, False, trials=20, rng=6) <= 1 / 3

    def test_domain_mismatch(self):
        proto = RefereeProtocol(n=N, eps=EPS, message_bits=8, players=10)
        with pytest.raises(ParameterError):
            proto.run(uniform(N + 1), rng=0)


class TestInducedDistanceEstimators:
    """Exact enumeration vs the batched sampler (the E13 contraction
    measurement's two routes)."""

    def test_enumeration_shape_and_balance(self):
        parts = enumerate_balanced_partitions(6, 3)
        assert parts.shape == (90, 6)  # 6!/(2!2!2!) = 90
        counts = np.stack([(parts == b).sum(axis=1) for b in range(3)])
        assert np.all(counts == 2)

    def test_enumeration_rows_unique(self):
        parts = enumerate_balanced_partitions(6, 2)
        assert len({tuple(row) for row in parts}) == parts.shape[0]

    def test_enumeration_refuses_above_limit(self):
        with pytest.raises(ParameterError, match="enumeration limit"):
            enumerate_balanced_partitions(30, 5)

    def test_exact_matches_sampled(self):
        """The sampled estimator must converge to the exact expectation."""
        mu = far_family("paninski", 8, 0.9, rng=0)
        exact_mean, exact_min = expected_induced_distance(
            mu, 2, trials=1, method="exact"
        )
        samp_mean, samp_min = expected_induced_distance(
            mu, 2, trials=40_000, rng=1, method="sampled"
        )
        assert samp_mean == pytest.approx(exact_mean, abs=0.01)
        assert samp_min >= exact_min - 1e-12

    def test_sampled_matches_scalar_shuffle_loop(self):
        """The batched ``permuted`` sampler draws the same marginal as
        the historical one-shuffle-per-trial loop."""
        mu = far_family("paninski", 10, 0.9, rng=0)
        batched_mean, _ = expected_induced_distance(
            mu, 2, trials=20_000, rng=2, method="sampled"
        )
        gen = np.random.default_rng(3)
        base = np.arange(10, dtype=np.int64) % 2
        total = 0.0
        for _ in range(20_000):
            part = base.copy()
            gen.shuffle(part)
            induced = np.bincount(part, weights=mu.probs, minlength=2)
            total += float(np.abs(induced - 0.5).sum())
        assert batched_mean == pytest.approx(total / 20_000, abs=0.01)

    def test_auto_picks_exact_when_enumerable(self):
        """Under the limit, auto must return the deterministic exact
        value regardless of rng."""
        mu = far_family("paninski", 8, 0.9, rng=0)
        a = expected_induced_distance(mu, 2, trials=10, rng=1)
        b = expected_induced_distance(mu, 2, trials=10, rng=999)
        assert a == b

    def test_method_validated(self):
        mu = far_family("paninski", 8, 0.9, rng=0)
        with pytest.raises(ParameterError, match="method"):
            expected_induced_distance(mu, 2, trials=10, method="bogus")

    @pytest.mark.parametrize("trials", [0, -3, 2.5, True])
    def test_trials_validated(self, trials):
        mu = far_family("paninski", 8, 0.9, rng=0)
        with pytest.raises(ParameterError, match="trials"):
            expected_induced_distance(mu, 2, trials=trials)

    def test_estimate_error_trials_validated(self):
        proto = RefereeProtocol(n=16, eps=0.9, message_bits=2, players=20)
        mu = far_family("paninski", 16, 0.9, rng=0)
        with pytest.raises(ParameterError, match="trials"):
            proto.estimate_error(mu, False, trials=0)
