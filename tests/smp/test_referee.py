"""Tests for the referee-model (hash-and-test) protocol."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.smp import (
    RefereeProtocol,
    expected_induced_distance,
    induced_distribution,
    random_balanced_partition,
)

N, EPS = 4096, 0.9


class TestPartition:
    def test_balanced(self):
        part = random_balanced_partition(100, 8, rng=0)
        counts = np.bincount(part, minlength=8)
        assert counts.max() - counts.min() <= 1

    def test_exactly_balanced_when_divisible(self):
        part = random_balanced_partition(64, 8, rng=1)
        assert set(np.bincount(part)) == {8}

    def test_random_across_seeds(self):
        a = random_balanced_partition(50, 4, rng=2)
        b = random_balanced_partition(50, 4, rng=3)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            random_balanced_partition(10, 1)
        with pytest.raises(ParameterError):
            random_balanced_partition(10, 20)


class TestInducedDistribution:
    def test_uniform_stays_uniform_when_divisible(self):
        part = random_balanced_partition(64, 8, rng=0)
        induced = induced_distribution(uniform(64), part)
        assert induced.is_uniform()

    def test_mass_conserved(self):
        far = far_family("heavy", 100, 0.5)
        part = random_balanced_partition(100, 10, rng=1)
        induced = induced_distribution(far, part)
        assert induced.probs.sum() == pytest.approx(1.0)

    def test_contraction_follows_sqrt_law(self):
        """mean induced distance ~ kappa_hat * eps * sqrt(B/n) with
        kappa_hat in a stable band across bucket counts."""
        far = far_family("paninski", N, EPS, rng=0)
        ratios = []
        for ell in (4, 6, 8):
            buckets = 1 << ell
            mean_d, _ = expected_induced_distance(far, buckets, trials=20, rng=1)
            ratios.append(mean_d / (EPS * math.sqrt(buckets / N)))
        assert all(0.5 <= r <= 1.1 for r in ratios)
        # The band is narrow: the sqrt law is the right shape.
        assert max(ratios) - min(ratios) < 0.3

    def test_kappa_constant_is_conservative(self):
        """CONTRACTION_KAPPA must lower-bound the measured contraction on
        every certified far family (else the referee threshold is wrong)."""
        from repro.smp.referee import CONTRACTION_KAPPA

        for family in ("paninski", "two_bump", "heavy", "support"):
            far = far_family(family, N, EPS, rng=2)
            mean_d, min_d = expected_induced_distance(far, 64, trials=20, rng=3)
            law = CONTRACTION_KAPPA * EPS * math.sqrt(64 / N)
            assert min_d >= law * 0.9, family


class TestRefereeProtocol:
    def test_communication_accounting(self):
        proto = RefereeProtocol(n=N, eps=EPS, message_bits=8, players=100)
        assert proto.buckets == 256
        assert proto.total_communication_bits == 800

    def test_bucket_count_capped_by_domain(self):
        with pytest.raises(ParameterError):
            RefereeProtocol(n=100, eps=0.5, message_bits=8, players=10)

    def test_trade_off_direction(self):
        """[ACT18]'s headline: more bits per player, fewer players."""
        ks = [RefereeProtocol.players_needed(N, EPS, ell) for ell in (4, 6, 8, 10)]
        assert ks == sorted(ks, reverse=True)

    def test_players_scale_as_inverse_sqrt_buckets(self):
        k4 = RefereeProtocol.players_needed(N, EPS, 4)
        k8 = RefereeProtocol.players_needed(N, EPS, 8)
        # k ~ n/(eps^2 sqrt(B)): 16x buckets -> 4x fewer players.
        assert k4 / k8 == pytest.approx(4.0, rel=0.1)

    def test_statistical_guarantee(self):
        u = uniform(N)
        far = far_family("paninski", N, EPS, rng=4)
        proto = RefereeProtocol(
            n=N, eps=EPS, message_bits=8,
            players=RefereeProtocol.players_needed(N, EPS, 8),
        )
        assert proto.estimate_error(u, True, trials=20, rng=5) <= 1 / 3
        assert proto.estimate_error(far, False, trials=20, rng=6) <= 1 / 3

    def test_domain_mismatch(self):
        proto = RefereeProtocol(n=N, eps=EPS, message_bits=8, players=10)
        with pytest.raises(ParameterError):
            proto.run(uniform(N + 1), rng=0)
