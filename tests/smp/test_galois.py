"""Tests for GF(2^q) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CodingError
from repro.smp import GF


@pytest.fixture(scope="module")
def gf8() -> GF:
    return GF(8)


@pytest.fixture(scope="module")
def gf4() -> GF:
    return GF(4)


class TestFieldAxioms:
    def test_addition_is_xor(self, gf8):
        assert gf8.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity(self, gf8):
        for a in (1, 7, 255):
            assert gf8.mul(a, 1) == a

    def test_zero_annihilates(self, gf8):
        assert gf8.mul(0, 123) == 0

    def test_commutativity(self, gf4):
        for a in range(16):
            for b in range(16):
                assert gf4.mul(a, b) == gf4.mul(b, a)

    def test_associativity_sampled(self, gf8):
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf8.mul(gf8.mul(a, b), c) == gf8.mul(a, gf8.mul(b, c))

    def test_distributivity_sampled(self, gf8):
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf8.mul(a, b ^ c) == gf8.mul(a, b) ^ gf8.mul(a, c)

    def test_inverses(self, gf4):
        for a in range(1, 16):
            assert gf4.mul(a, gf4.inv(a)) == 1

    def test_zero_has_no_inverse(self, gf8):
        with pytest.raises(CodingError):
            gf8.inv(0)


class TestPow:
    def test_pow_matches_repeated_mul(self, gf8):
        a = 9
        acc = 1
        for e in range(10):
            assert gf8.pow(a, e) == acc
            acc = gf8.mul(acc, a)

    def test_fermat(self, gf4):
        # a^(2^q - 1) = 1 for nonzero a.
        for a in range(1, 16):
            assert gf4.pow(a, 15) == 1

    def test_negative_exponent(self, gf8):
        assert gf8.pow(7, -1) == gf8.inv(7)


class TestVectorised:
    def test_mul_vec_matches_scalar(self, gf8):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        vec = gf8.mul_vec(a, b)
        scalar = [gf8.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert list(vec) == scalar

    def test_poly_eval_horner(self, gf8):
        # p(x) = 3 + 5x + x^2 at x = 2 computed by hand via field ops.
        coeffs = np.array([3, 5, 1])
        x = 2
        expected = 3 ^ gf8.mul(5, x) ^ gf8.mul(x, x)
        assert gf8.poly_eval(coeffs, np.array([x]))[0] == expected

    def test_element_range_checked(self, gf4):
        with pytest.raises(CodingError):
            gf4.mul(16, 1)


class TestConstruction:
    def test_unsupported_q(self):
        with pytest.raises(CodingError):
            GF(11)

    def test_supported_sizes(self):
        for q in (2, 3, 4, 8):
            assert GF(q).order == 1 << q


class TestBatchedKernels:
    """The batched GF kernels are pinned element-identical to the
    scalar ops they replace (the smp-plane encode contract)."""

    @pytest.mark.parametrize("q", [3, 4, 8])
    def test_poly_eval_many_matches_horner(self, q):
        gf = GF(q)
        rng = np.random.default_rng(q)
        coeffs = rng.integers(0, gf.order, size=(5, 7))
        points = np.arange(gf.order)
        batched = gf.poly_eval_many(coeffs, points)
        for i, row in enumerate(coeffs):
            for j, p in enumerate(points):
                assert batched[i, j] == gf.poly_eval(row, int(p))

    def test_power_table_matches_pow(self, gf8):
        points = np.arange(gf8.order)
        table = gf8.power_table(points, 6)
        for i in range(6):
            for j, p in enumerate(points):
                assert table[i, j] == gf8.pow(int(p), i)

    def test_power_table_zero_conventions(self, gf4):
        table = gf4.power_table(np.array([0]), 3)
        assert table[:, 0].tolist() == [1, 0, 0]  # 0^0 = 1, 0^i = 0

    def test_mul_matrix_matches_mul(self, gf4):
        rng = np.random.default_rng(2)
        a = rng.integers(0, gf4.order, size=(3, 4))
        b = rng.integers(0, gf4.order, size=(4, 5))
        got = gf4.mul_matrix(a, b)
        for i in range(3):
            for j in range(5):
                acc = 0
                for t in range(4):
                    acc ^= gf4.mul(int(a[i, t]), int(b[t, j]))
                assert got[i, j] == acc

    def test_mul_matrix_shape_validated(self, gf4):
        with pytest.raises(CodingError):
            gf4.mul_matrix(np.zeros((2, 3), dtype=np.int64),
                           np.zeros((4, 2), dtype=np.int64))

    def test_element_range_checked_in_batch(self, gf4):
        with pytest.raises(CodingError):
            gf4.poly_eval_many(np.array([[0, gf4.order]]), np.array([1]))
