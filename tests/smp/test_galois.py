"""Tests for GF(2^q) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CodingError
from repro.smp import GF


@pytest.fixture(scope="module")
def gf8() -> GF:
    return GF(8)


@pytest.fixture(scope="module")
def gf4() -> GF:
    return GF(4)


class TestFieldAxioms:
    def test_addition_is_xor(self, gf8):
        assert gf8.add(0b1010, 0b0110) == 0b1100

    def test_multiplicative_identity(self, gf8):
        for a in (1, 7, 255):
            assert gf8.mul(a, 1) == a

    def test_zero_annihilates(self, gf8):
        assert gf8.mul(0, 123) == 0

    def test_commutativity(self, gf4):
        for a in range(16):
            for b in range(16):
                assert gf4.mul(a, b) == gf4.mul(b, a)

    def test_associativity_sampled(self, gf8):
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf8.mul(gf8.mul(a, b), c) == gf8.mul(a, gf8.mul(b, c))

    def test_distributivity_sampled(self, gf8):
        rng = np.random.default_rng(1)
        for _ in range(100):
            a, b, c = (int(x) for x in rng.integers(0, 256, 3))
            assert gf8.mul(a, b ^ c) == gf8.mul(a, b) ^ gf8.mul(a, c)

    def test_inverses(self, gf4):
        for a in range(1, 16):
            assert gf4.mul(a, gf4.inv(a)) == 1

    def test_zero_has_no_inverse(self, gf8):
        with pytest.raises(CodingError):
            gf8.inv(0)


class TestPow:
    def test_pow_matches_repeated_mul(self, gf8):
        a = 9
        acc = 1
        for e in range(10):
            assert gf8.pow(a, e) == acc
            acc = gf8.mul(acc, a)

    def test_fermat(self, gf4):
        # a^(2^q - 1) = 1 for nonzero a.
        for a in range(1, 16):
            assert gf4.pow(a, 15) == 1

    def test_negative_exponent(self, gf8):
        assert gf8.pow(7, -1) == gf8.inv(7)


class TestVectorised:
    def test_mul_vec_matches_scalar(self, gf8):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, 50)
        b = rng.integers(0, 256, 50)
        vec = gf8.mul_vec(a, b)
        scalar = [gf8.mul(int(x), int(y)) for x, y in zip(a, b)]
        assert list(vec) == scalar

    def test_poly_eval_horner(self, gf8):
        # p(x) = 3 + 5x + x^2 at x = 2 computed by hand via field ops.
        coeffs = np.array([3, 5, 1])
        x = 2
        expected = 3 ^ gf8.mul(5, x) ^ gf8.mul(x, x)
        assert gf8.poly_eval(coeffs, np.array([x]))[0] == expected

    def test_element_range_checked(self, gf4):
        with pytest.raises(CodingError):
            gf4.mul(16, 1)


class TestConstruction:
    def test_unsupported_q(self):
        with pytest.raises(CodingError):
            GF(11)

    def test_supported_sizes(self):
        for q in (2, 3, 4, 8):
            assert GF(q).order == 1 << q
