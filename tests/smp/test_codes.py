"""Tests for Reed-Solomon, inner codes, and the concatenation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CodingError
from repro.smp import ConcatenatedCode, GF, InnerCode, ReedSolomonCode, repetition_inner_code


class TestReedSolomon:
    @pytest.fixture(scope="class")
    def rs(self) -> ReedSolomonCode:
        return ReedSolomonCode(field=GF(8), n_sym=40, k_sym=20)

    def test_mds_distance(self, rs):
        assert rs.min_distance == 21
        assert rs.relative_distance == pytest.approx(21 / 40)

    def test_linear(self, rs):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 20)
        b = rng.integers(0, 256, 20)
        assert np.array_equal(rs.encode(a ^ b), rs.encode(a) ^ rs.encode(b))

    def test_distance_on_random_pairs(self, rs):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = rng.integers(0, 256, 20)
            b = a.copy()
            b[int(rng.integers(20))] ^= int(rng.integers(1, 256))
            assert (rs.encode(a) != rs.encode(b)).sum() >= rs.min_distance

    def test_systematic_zero(self, rs):
        assert np.all(rs.encode(np.zeros(20, dtype=np.int64)) == 0)

    def test_shape_validation(self, rs):
        with pytest.raises(CodingError):
            rs.encode(np.zeros(19, dtype=np.int64))

    def test_n_bounded_by_field(self):
        with pytest.raises(CodingError):
            ReedSolomonCode(field=GF(4), n_sym=17, k_sym=2)


class TestInnerCode:
    def test_search_finds_verified_code(self):
        code = InnerCode.search(4, 8, 3, rng=0)
        assert code.min_distance >= 3
        assert InnerCode.exact_min_distance(
            np.asarray(code.generator)
        ) == code.min_distance

    def test_encode_matches_generator(self):
        code = repetition_inner_code(3, 2)
        assert list(code.encode(np.array([1, 0, 1]))) == [1, 1, 0, 0, 1, 1]

    def test_encode_symbols_consistent(self):
        code = InnerCode.search(4, 8, 3, rng=1)
        symbols = np.arange(16)
        table = code.encode_symbols(symbols)
        for s in range(16):
            bits = np.array([(s >> (3 - i)) & 1 for i in range(4)])
            assert np.array_equal(table[s], code.encode(bits))

    def test_repetition_distance(self):
        assert repetition_inner_code(5, 3).min_distance == 3

    def test_search_infeasible_target(self):
        with pytest.raises(CodingError):
            InnerCode.search(4, 5, 4, rng=2, attempts=50)


class TestConcatenatedCode:
    @pytest.fixture(scope="class")
    def code(self) -> ConcatenatedCode:
        return ConcatenatedCode.for_message_bits(128)

    def test_shape(self, code):
        assert code.message_bits >= 128
        assert code.codeword_bits == code.outer.n_sym * code.inner.n_bits
        assert 0.1 <= code.rate <= 0.6

    def test_certified_distance_positive(self, code):
        assert code.relative_distance > 0.1

    def test_distance_bound_holds_on_random_pairs(self, code):
        rng = np.random.default_rng(3)
        for _ in range(10):
            x = rng.integers(0, 2, 128)
            y = x.copy()
            y[int(rng.integers(128))] ^= 1
            rel = (code.encode(x) != code.encode(y)).mean()
            assert rel >= code.relative_distance - 1e-12

    def test_padding_short_messages(self, code):
        short = np.array([1, 0, 1])
        word = code.encode(short)
        assert word.size == code.codeword_bits

    def test_binary_input_enforced(self, code):
        with pytest.raises(CodingError):
            code.encode(np.array([0, 2, 1]))

    def test_inner_outer_compatibility_checked(self):
        outer = ReedSolomonCode(field=GF(8), n_sym=32, k_sym=16)
        with pytest.raises(CodingError):
            ConcatenatedCode(outer=outer, inner=repetition_inner_code(4, 2))

    def test_scales_to_larger_messages(self):
        big = ConcatenatedCode.for_message_bits(1024)
        assert big.message_bits >= 1024
        assert big.relative_distance > 0.05


class TestBatchedEncoding:
    """``encode_many`` is pinned codeword-for-codeword to ``encode``
    (the smp-plane encode contract)."""

    def test_rs_encode_many_matches_encode(self):
        rs = ReedSolomonCode(field=GF(8), n_sym=40, k_sym=20)
        rng = np.random.default_rng(5)
        messages = rng.integers(0, 256, size=(6, 20))
        batched = rs.encode_many(messages)
        for i, msg in enumerate(messages):
            assert np.array_equal(batched[i], rs.encode(msg))

    def test_rs_encode_many_shape_validated(self):
        rs = ReedSolomonCode(field=GF(8), n_sym=40, k_sym=20)
        with pytest.raises(CodingError):
            rs.encode_many(np.zeros((2, 19), dtype=np.int64))

    @pytest.mark.parametrize("q,bits", [(3, 12), (4, 32), (8, 128)])
    def test_concatenated_encode_many_matches_encode(self, q, bits):
        code = ConcatenatedCode.for_message_bits(bits, q=q)
        rng = np.random.default_rng(q)
        rows = rng.integers(0, 2, size=(5, bits))
        batched = code.encode_many(rows)
        for i, row in enumerate(rows):
            assert np.array_equal(batched[i], code.encode(row))

    def test_concatenated_encode_many_pads_short_rows(self):
        code = ConcatenatedCode.for_message_bits(32, q=4)
        rows = np.array([[1, 0, 1]])
        assert np.array_equal(code.encode_many(rows)[0],
                              code.encode(rows[0]))

    def test_concatenated_encode_many_binary_enforced(self):
        code = ConcatenatedCode.for_message_bits(32, q=4)
        with pytest.raises(CodingError):
            code.encode_many(np.array([[0, 2, 1]]))

    def test_for_message_bits_rejects_non_integer(self):
        with pytest.raises(CodingError):
            ConcatenatedCode.for_message_bits(12.5)
        with pytest.raises(CodingError):
            ConcatenatedCode.for_message_bits(True)
