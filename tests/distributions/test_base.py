"""Tests for DiscreteDistribution (construction, functionals, sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution, uniform
from repro.exceptions import InvalidDistributionError


class TestConstruction:
    def test_normalises_within_tolerance(self):
        d = DiscreteDistribution([0.25, 0.25, 0.25, 0.25 + 1e-9])
        assert abs(d.probs.sum() - 1.0) < 1e-12

    def test_rejects_negative_mass(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, -0.1, 0.6])

    def test_rejects_wrong_total(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([])

    def test_rejects_nan(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, float("nan"), 0.5])

    def test_rejects_matrix(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([[0.5, 0.5]])

    def test_probs_are_read_only(self):
        d = uniform(4)
        with pytest.raises(ValueError):
            d.probs[0] = 0.9


class TestAccessors:
    def test_domain_size(self):
        assert uniform(17).n == 17

    def test_prob_lookup(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        assert d.prob(1) == pytest.approx(0.3)

    def test_support(self):
        d = DiscreteDistribution([0.5, 0.0, 0.5])
        assert list(d.support()) == [0, 2]
        assert d.support_size() == 2

    def test_is_uniform(self):
        assert uniform(10).is_uniform()
        assert not DiscreteDistribution([0.6, 0.4]).is_uniform()


class TestFunctionals:
    def test_collision_probability_uniform(self):
        assert uniform(100).collision_probability() == pytest.approx(0.01)

    def test_collision_probability_point_mass(self):
        d = DiscreteDistribution([1.0, 0.0, 0.0])
        assert d.collision_probability() == pytest.approx(1.0)

    def test_entropy_uniform(self):
        assert uniform(8).entropy() == pytest.approx(np.log(8))

    def test_renyi2_matches_collision(self):
        d = DiscreteDistribution([0.5, 0.25, 0.25])
        assert d.renyi2_entropy() == pytest.approx(-np.log(d.collision_probability()))


class TestSampling:
    def test_sample_shape_and_range(self):
        d = uniform(50)
        s = d.sample(1000, rng=0)
        assert s.shape == (1000,)
        assert s.min() >= 0 and s.max() < 50

    def test_sample_deterministic_with_seed(self):
        d = uniform(50)
        assert np.array_equal(d.sample(100, rng=5), d.sample(100, rng=5))

    def test_sample_zero(self):
        assert uniform(10).sample(0, rng=0).size == 0

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            uniform(10).sample(-1)

    def test_sample_respects_support(self):
        d = DiscreteDistribution([0.0, 1.0, 0.0])
        assert set(d.sample(200, rng=1)) == {1}

    def test_sample_matrix_shape(self):
        m = uniform(20).sample_matrix(4, 6, rng=2)
        assert m.shape == (4, 6)

    def test_sample_frequencies_converge(self):
        d = DiscreteDistribution([0.7, 0.3])
        s = d.sample(20_000, rng=3)
        assert (s == 0).mean() == pytest.approx(0.7, abs=0.02)


class TestDerivations:
    def test_mix_halfway(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.0, 1.0])
        assert np.allclose(a.mix(b, 0.5).probs, [0.5, 0.5])

    def test_mix_domain_mismatch(self):
        with pytest.raises(InvalidDistributionError):
            uniform(3).mix(uniform(4), 0.5)

    def test_permuted_preserves_multiset(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        p = d.permuted([2, 0, 1])
        assert sorted(p.probs) == sorted(d.probs)
        assert p.prob(2) == pytest.approx(0.5)

    def test_permuted_invalid(self):
        with pytest.raises(ValueError):
            uniform(3).permuted([0, 0, 1])

    def test_conditioned_on(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        c = d.conditioned_on([0, 1])
        assert c.prob(2) == 0.0
        assert c.prob(0) == pytest.approx(0.625)

    def test_conditioned_on_null_event(self):
        d = DiscreteDistribution([0.5, 0.5, 0.0])
        with pytest.raises(InvalidDistributionError):
            d.conditioned_on([2])


class TestValueSemantics:
    def test_equality(self):
        assert uniform(5) == uniform(5)
        assert uniform(5) != uniform(6)

    def test_hash_consistency(self):
        assert hash(uniform(5)) == hash(uniform(5))

    def test_repr_mentions_name(self):
        assert "uniform" in repr(uniform(5))
