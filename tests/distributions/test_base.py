"""Tests for DiscreteDistribution (construction, functionals, sampling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution, uniform
from repro.exceptions import InvalidDistributionError


class TestConstruction:
    def test_normalises_within_tolerance(self):
        d = DiscreteDistribution([0.25, 0.25, 0.25, 0.25 + 1e-9])
        assert abs(d.probs.sum() - 1.0) < 1e-12

    def test_rejects_negative_mass(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, -0.1, 0.6])

    def test_rejects_wrong_total(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([])

    def test_rejects_nan(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([0.5, float("nan"), 0.5])

    def test_rejects_matrix(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteDistribution([[0.5, 0.5]])

    def test_probs_are_read_only(self):
        d = uniform(4)
        with pytest.raises(ValueError):
            d.probs[0] = 0.9


class TestAccessors:
    def test_domain_size(self):
        assert uniform(17).n == 17

    def test_prob_lookup(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        assert d.prob(1) == pytest.approx(0.3)

    def test_support(self):
        d = DiscreteDistribution([0.5, 0.0, 0.5])
        assert list(d.support()) == [0, 2]
        assert d.support_size() == 2

    def test_is_uniform(self):
        assert uniform(10).is_uniform()
        assert not DiscreteDistribution([0.6, 0.4]).is_uniform()


class TestFunctionals:
    def test_collision_probability_uniform(self):
        assert uniform(100).collision_probability() == pytest.approx(0.01)

    def test_collision_probability_point_mass(self):
        d = DiscreteDistribution([1.0, 0.0, 0.0])
        assert d.collision_probability() == pytest.approx(1.0)

    def test_entropy_uniform(self):
        assert uniform(8).entropy() == pytest.approx(np.log(8))

    def test_renyi2_matches_collision(self):
        d = DiscreteDistribution([0.5, 0.25, 0.25])
        assert d.renyi2_entropy() == pytest.approx(-np.log(d.collision_probability()))


class TestSampling:
    def test_sample_shape_and_range(self):
        d = uniform(50)
        s = d.sample(1000, rng=0)
        assert s.shape == (1000,)
        assert s.min() >= 0 and s.max() < 50

    def test_sample_deterministic_with_seed(self):
        d = uniform(50)
        assert np.array_equal(d.sample(100, rng=5), d.sample(100, rng=5))

    def test_sample_zero(self):
        assert uniform(10).sample(0, rng=0).size == 0

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            uniform(10).sample(-1)

    def test_sample_respects_support(self):
        d = DiscreteDistribution([0.0, 1.0, 0.0])
        assert set(d.sample(200, rng=1)) == {1}

    def test_sample_matrix_shape(self):
        m = uniform(20).sample_matrix(4, 6, rng=2)
        assert m.shape == (4, 6)

    def test_sample_uniform_matrix_pinned_to_sample_matrix(self):
        d = DiscreteDistribution([0.5, 0.25, 0.25])
        u = d.sample_uniform_matrix(4, 6, rng=2)
        assert u.shape == (4, 6)
        assert np.array_equal(d.index_quantiles(u), d.sample_matrix(4, 6, rng=2))

    def test_sample_uniform_matrix_negative_raises(self):
        with pytest.raises(ValueError):
            uniform(10).sample_uniform_matrix(-1, 3)

    def test_sample_frequencies_converge(self):
        d = DiscreteDistribution([0.7, 0.3])
        s = d.sample(20_000, rng=3)
        assert (s == 0).mean() == pytest.approx(0.7, abs=0.02)


class TestQuantileSplit:
    """``sample`` must equal ``index_quantiles ∘ sample_uniform`` exactly.

    The LOCAL trial plane leans on this split (draw every slot's driver
    value, quantile-map only the slots it reads), so the equality is a
    bit-identity contract, not an approximation.
    """

    _CASES = [
        uniform(200),
        DiscreteDistribution([0.7, 0.3]),
        # Zero-mass runs exercise the guide table's tie handling.
        DiscreteDistribution(
            np.concatenate([np.full(50, 0.02), np.zeros(100)])
        ),
        DiscreteDistribution(np.linspace(1, 40, 40) / np.linspace(1, 40, 40).sum()),
    ]

    @pytest.mark.parametrize("seed", [0, 1, 2018])
    @pytest.mark.parametrize("case", range(len(_CASES)))
    def test_split_matches_sample_bit_for_bit(self, case, seed):
        d = self._CASES[case]
        want = d.sample(5_000, rng=seed)
        got = d.index_quantiles(d.sample_uniform(5_000, rng=seed))
        np.testing.assert_array_equal(got, want)

    def test_sample_uniform_consumes_generator_like_sample(self):
        d = uniform(64)
        g1, g2 = np.random.default_rng(9), np.random.default_rng(9)
        d.sample(257, rng=g1)
        d.sample_uniform(257, rng=g2)
        assert g1.bit_generator.state == g2.bit_generator.state

    def test_index_quantiles_matches_searchsorted(self):
        d = DiscreteDistribution([0.5, 0.0, 0.25, 0.25])
        u = np.linspace(0.0, 1.0, 101, endpoint=False)
        cdf = d.probs.cumsum()
        cdf /= cdf[-1]
        np.testing.assert_array_equal(
            d.index_quantiles(u), cdf.searchsorted(u, side="right")
        )

    def test_index_quantiles_rejects_out_of_range(self):
        d = uniform(4)
        for bad in ([-0.1], [1.0]):
            with pytest.raises(ValueError, match=r"\[0, 1\)"):
                d.index_quantiles(np.asarray(bad))

    def test_sample_uniform_validation_and_zero(self):
        assert uniform(5).sample_uniform(0, rng=0).size == 0
        with pytest.raises(ValueError):
            uniform(5).sample_uniform(-1)

    def test_max_bin_width_bounds_same_outcome_pairs(self):
        d = DiscreteDistribution([0.5, 0.1, 0.4])
        assert d.max_bin_width() == pytest.approx(0.5)
        # Any two driver draws mapping to one outcome differ by < width.
        u = np.sort(d.sample_uniform(4_000, rng=7))
        idx = d.index_quantiles(u)
        gaps = np.diff(u)
        assert (gaps[np.diff(idx) == 0] < d.max_bin_width()).all()


class TestDerivations:
    def test_mix_halfway(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.0, 1.0])
        assert np.allclose(a.mix(b, 0.5).probs, [0.5, 0.5])

    def test_mix_domain_mismatch(self):
        with pytest.raises(InvalidDistributionError):
            uniform(3).mix(uniform(4), 0.5)

    def test_permuted_preserves_multiset(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        p = d.permuted([2, 0, 1])
        assert sorted(p.probs) == sorted(d.probs)
        assert p.prob(2) == pytest.approx(0.5)

    def test_permuted_invalid(self):
        with pytest.raises(ValueError):
            uniform(3).permuted([0, 0, 1])

    def test_conditioned_on(self):
        d = DiscreteDistribution([0.5, 0.3, 0.2])
        c = d.conditioned_on([0, 1])
        assert c.prob(2) == 0.0
        assert c.prob(0) == pytest.approx(0.625)

    def test_conditioned_on_null_event(self):
        d = DiscreteDistribution([0.5, 0.5, 0.0])
        with pytest.raises(InvalidDistributionError):
            d.conditioned_on([2])


class TestValueSemantics:
    def test_equality(self):
        assert uniform(5) == uniform(5)
        assert uniform(5) != uniform(6)

    def test_hash_consistency(self):
        assert hash(uniform(5)) == hash(uniform(5))

    def test_repr_mentions_name(self):
        assert "uniform" in repr(uniform(5))
